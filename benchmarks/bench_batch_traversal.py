"""Batch traversal engine: per-query vs batch vs batch+n_jobs.

Times the same fitted :class:`~repro.core.classifier.TKDCClassifier`
classifying one query block under each engine and records the result in
``BENCH_batch_traversal.json`` at the repo root so the perf trajectory
is tracked across commits. Labels must be identical across engines on
every workload — the batch engine replicates the per-query traversal
exactly, it only amortizes the interpreter overhead.

Two extra sections cover the engine's tuning knobs:

- the parallel path is only attempted at or above the classifier's
  spawn-amortization floor (``_PARALLEL_MIN_QUERIES``); small blocks
  fall back to the serial batch engine, which the ``parallel_fallback``
  row flag records. A large-block section times n_jobs=1 vs 2 above the
  floor, where the pool actually pays off;
- a block-size sweep times the batch engine at block sizes 128/512/2048
  on a 2048-query block, backing the DEFAULT_BLOCK_SIZE choice in
  :mod:`repro.core.batch_bounds`;
- a ``section: "smoke"`` block produced by
  :func:`repro.bench.gate.traversal_smoke_rows` — the committed
  baseline the bench regression gate (``make bench-gate``) compares
  fresh runs against.

Run standalone (``make bench-batch``) or under pytest.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.bench.gate import traversal_smoke_rows
from repro.bench.harness import Timer, human_rate, throughput
from repro.bench.reporting import report_metadata
from repro.core.batch_bounds import DEFAULT_BLOCK_SIZE
from repro.core.classifier import (
    _CHUNKS_PER_WORKER,
    _PARALLEL_MIN_QUERIES,
    TKDCClassifier,
)
from repro.core.config import TKDCConfig
from repro.io.atomic import atomic_write_text
from repro.datasets.registry import load

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_traversal.json"

# (dataset, n, n_queries): hep is ~50x slower per query at d=27, so it
# gets a smaller block; gauss d=2 n=50k is the acceptance workload.
WORKLOADS = (
    ("gauss", 50_000, 1000),
    ("hep", 20_000, 100),
)

ENGINES = (
    ("per-query", 1),
    ("batch", 1),
    ("batch", 2),
)

#: Query count for the dedicated parallel section: far enough above the
#: spawn-amortization floor that pool startup is amortized.
PARALLEL_QUERIES = 16_384

#: Batch-engine block sizes swept on a 2048-query block.
BLOCK_SIZES = (128, 512, 2048)
BLOCK_SWEEP_QUERIES = 2048


def _falls_back(engine: str, n_jobs: int, n_queries: int) -> bool:
    """Whether this invocation takes the classifier's serial fallback."""
    return bool(
        engine == "batch" and n_jobs > 1
        and (
            n_queries < _PARALLEL_MIN_QUERIES
            or min(n_jobs, os.cpu_count() or 1) < 2
        )
    )


def _query_block(data: np.ndarray, n_queries: int, rng: np.random.Generator) -> np.ndarray:
    # Outlier-scoring mix: half in-distribution points, half uniform
    # over the data bounding box. All-inlier query sets short-circuit
    # through the grid cache and never reach the traversal engine.
    inliers = data[rng.choice(data.shape[0], size=n_queries // 2, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0),
        size=(n_queries - n_queries // 2, data.shape[1]),
    )
    return rng.permutation(np.concatenate([inliers, box]))


def _fit(dataset: str, n: int, seed: int = 0) -> tuple[TKDCClassifier, np.ndarray]:
    data = load(dataset, n=n, seed=seed)
    config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False, bootstrap_s0=min(2000, n)
    )
    clf = TKDCClassifier(config).fit(data)
    clf.tree.flatten()  # build the flat view outside the timed region
    return clf, data


def _bench_workload(dataset: str, n: int, n_queries: int, seed: int = 0) -> list[dict]:
    clf, data = _fit(dataset, n, seed)
    rng = np.random.default_rng(seed + 1)
    queries = _query_block(data, n_queries, rng)

    rows = []
    reference_labels: np.ndarray | None = None
    for engine, n_jobs in ENGINES:
        clf.classify(queries[:8], engine=engine, n_jobs=n_jobs)  # warm up
        kernels_before = clf.stats.kernel_evaluations
        with Timer() as timer:
            labels = clf.predict(queries, engine=engine, n_jobs=n_jobs)
        kernels = clf.stats.kernel_evaluations - kernels_before
        if reference_labels is None:
            reference_labels = labels
        rows.append({
            "dataset": dataset,
            "n": n,
            "dim": data.shape[1],
            "n_queries": n_queries,
            "engine": engine,
            "n_jobs": n_jobs,
            "parallel_fallback": _falls_back(engine, n_jobs, n_queries),
            "seconds": timer.elapsed,
            "queries_per_s": throughput(n_queries, timer.elapsed),
            # Machine-independent cost proxy (the paper's figure-12
            # currency); pooled runs include worker counts via the
            # TraversalStats to_dict/from_dict round-trip.
            "kernels_per_query": kernels / n_queries,
            "labels_match_per_query": bool(np.array_equal(labels, reference_labels)),
        })

    base = rows[0]["queries_per_s"]
    for row in rows:
        row["speedup_vs_per_query"] = row["queries_per_s"] / base
    return rows


def _bench_parallel(
    dataset: str = "gauss", n: int = 50_000,
    n_queries: int = PARALLEL_QUERIES, seed: int = 0,
) -> list[dict]:
    """n_jobs=1 vs 2 above the spawn-amortization floor."""
    clf, data = _fit(dataset, n, seed)
    queries = _query_block(data, n_queries, np.random.default_rng(seed + 2))
    rows = []
    reference_labels: np.ndarray | None = None
    for n_jobs in (1, 2):
        clf.classify(queries[:8], n_jobs=1)  # warm up
        with Timer() as timer:
            labels = clf.predict(queries, engine="batch", n_jobs=n_jobs)
        if reference_labels is None:
            reference_labels = labels
        rows.append({
            "section": "parallel",
            "dataset": dataset, "n": n, "dim": data.shape[1],
            "n_queries": n_queries, "engine": "batch", "n_jobs": n_jobs,
            "parallel_fallback": _falls_back("batch", n_jobs, n_queries),
            "seconds": timer.elapsed,
            "queries_per_s": throughput(n_queries, timer.elapsed),
            "labels_match_per_query": bool(np.array_equal(labels, reference_labels)),
        })
    base = rows[0]["queries_per_s"]
    for row in rows:
        row["speedup_vs_serial"] = row["queries_per_s"] / base
    return rows


def _bench_block_sizes(
    dataset: str = "gauss", n: int = 50_000,
    n_queries: int = BLOCK_SWEEP_QUERIES, seed: int = 0,
) -> list[dict]:
    """Batch-engine throughput as a function of the traversal block size."""
    clf, data = _fit(dataset, n, seed)
    queries = _query_block(data, n_queries, np.random.default_rng(seed + 3))
    rows = []
    for block_size in BLOCK_SIZES:
        clf.config = clf.config.with_updates(batch_block_size=block_size)
        clf.predict(queries[:8])  # warm up
        with Timer() as timer:
            clf.predict(queries, engine="batch", n_jobs=1)
        rows.append({
            "section": "block_size",
            "dataset": dataset, "n": n, "dim": data.shape[1],
            "n_queries": n_queries, "engine": "batch", "n_jobs": 1,
            "block_size": block_size,
            "seconds": timer.elapsed,
            "queries_per_s": throughput(n_queries, timer.elapsed),
        })
    clf.config = clf.config.with_updates(batch_block_size=DEFAULT_BLOCK_SIZE)
    return rows


def run_benchmark(workloads=WORKLOADS) -> list[dict]:
    rows = []
    for dataset, n, n_queries in workloads:
        print(f"\n[{dataset} n={n}]")
        for row in _bench_workload(dataset, n, n_queries):
            rows.append(row)
            print(
                f"  {row['engine']:>9} n_jobs={row['n_jobs']}: "
                f"{human_rate(row['queries_per_s'])} "
                f"({row['speedup_vs_per_query']:.2f}x, "
                f"labels_match={row['labels_match_per_query']}, "
                f"fallback={row['parallel_fallback']})"
            )

    print(f"\n[parallel section: gauss n=50k, {PARALLEL_QUERIES} queries]")
    for row in _bench_parallel():
        rows.append(row)
        print(
            f"  batch n_jobs={row['n_jobs']}: {human_rate(row['queries_per_s'])} "
            f"({row['speedup_vs_serial']:.2f}x vs serial)"
        )

    print(f"\n[block-size sweep: gauss n=50k, {BLOCK_SWEEP_QUERIES} queries]")
    for row in _bench_block_sizes():
        rows.append(row)
        print(
            f"  block_size={row['block_size']:>5}: "
            f"{human_rate(row['queries_per_s'])}"
        )

    # The bench-gate's smoke workload, produced by the exact code the
    # gate re-runs (repro.bench.gate) so baseline and measurement can
    # never drift apart structurally.
    print("\n[gate smoke workload]")
    for row in traversal_smoke_rows():
        rows.append(row)
        print(
            f"  {row['engine']:>9}: {human_rate(row['queries_per_s'])} "
            f"({row['speedup_vs_per_query']:.2f}x, "
            f"{row['kernels_per_query']:.1f} kernels/query)"
        )
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "batch_traversal",
        **report_metadata(),
        "settings": {
            "default_block_size": DEFAULT_BLOCK_SIZE,
            "parallel_min_queries": _PARALLEL_MIN_QUERIES,
            "chunks_per_worker": _CHUNKS_PER_WORKER,
            "cpu_count": os.cpu_count(),
        },
        "rows": rows,
    }
    atomic_write_text(REPORT_PATH, json.dumps(report, indent=2) + "\n")
    return REPORT_PATH


def test_batch_engine_speedup(benchmark):
    rows = run_benchmark()
    path = write_report(rows)
    print(f"\n[saved {len(rows)} rows to {path}]")

    assert all(r.get("labels_match_per_query", True) for r in rows)
    gauss_batch = next(
        r for r in rows
        if r["dataset"] == "gauss" and r["engine"] == "batch"
        and r["n_jobs"] == 1 and "speedup_vs_per_query" in r
    )
    assert gauss_batch["speedup_vs_per_query"] >= 3.0
    # The small-block n_jobs=2 row must take the serial fallback (the
    # pre-fallback regression: 2.15x with a pool vs 4.36x serial).
    gauss_parallel_small = next(
        r for r in rows
        if r["dataset"] == "gauss" and r["n_jobs"] == 2
        and "speedup_vs_per_query" in r
    )
    assert gauss_parallel_small["parallel_fallback"]
    assert gauss_parallel_small["speedup_vs_per_query"] >= 3.0

    # Representative op for the pytest-benchmark table: the batch engine
    # on the acceptance workload's data scale.
    data = load("gauss", n=50_000, seed=0)
    clf = TKDCClassifier(
        TKDCConfig(p=0.01, seed=0, refine_threshold=False)
    ).fit(data)
    benchmark.pedantic(clf.predict, args=(data[:200],), rounds=1, iterations=1)


if __name__ == "__main__":
    write_report(run_benchmark())
    print(f"\nwrote {REPORT_PATH}")
