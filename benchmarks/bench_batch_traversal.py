"""Batch traversal engine: per-query vs batch vs batch+n_jobs.

Times the same fitted :class:`~repro.core.classifier.TKDCClassifier`
classifying one query block under each engine and records the result in
``BENCH_batch_traversal.json`` at the repo root so the perf trajectory
is tracked across commits. Labels must be identical across engines on
every workload — the batch engine replicates the per-query traversal
exactly, it only amortizes the interpreter overhead.

Run standalone (``make bench-batch``) or under pytest.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import numpy as np

from repro.bench.harness import Timer, human_rate, throughput
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.datasets.registry import load

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_traversal.json"

# (dataset, n, n_queries): hep is ~50x slower per query at d=27, so it
# gets a smaller block; gauss d=2 n=50k is the acceptance workload.
WORKLOADS = (
    ("gauss", 50_000, 1000),
    ("hep", 20_000, 100),
)

ENGINES = (
    ("per-query", 1),
    ("batch", 1),
    ("batch", 2),
)


def _bench_workload(dataset: str, n: int, n_queries: int, seed: int = 0) -> list[dict]:
    data = load(dataset, n=n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    # Outlier-scoring mix: half in-distribution points, half uniform
    # over the data bounding box. All-inlier query sets short-circuit
    # through the grid cache and never reach the traversal engine.
    inliers = data[rng.choice(n, size=n_queries // 2, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0),
        size=(n_queries - n_queries // 2, data.shape[1]),
    )
    queries = rng.permutation(np.concatenate([inliers, box]))
    config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False, bootstrap_s0=min(2000, n)
    )
    clf = TKDCClassifier(config).fit(data)
    clf.tree.flatten()  # build the flat view outside the timed region

    rows = []
    reference_labels: np.ndarray | None = None
    for engine, n_jobs in ENGINES:
        clf.classify(queries[:8], engine=engine, n_jobs=n_jobs)  # warm up
        with Timer() as timer:
            labels = clf.predict(queries, engine=engine, n_jobs=n_jobs)
        if reference_labels is None:
            reference_labels = labels
        rows.append({
            "dataset": dataset,
            "n": n,
            "dim": data.shape[1],
            "n_queries": n_queries,
            "engine": engine,
            "n_jobs": n_jobs,
            "seconds": timer.elapsed,
            "queries_per_s": throughput(n_queries, timer.elapsed),
            "labels_match_per_query": bool(np.array_equal(labels, reference_labels)),
        })

    base = rows[0]["queries_per_s"]
    for row in rows:
        row["speedup_vs_per_query"] = row["queries_per_s"] / base
    return rows


def run_benchmark(workloads=WORKLOADS) -> list[dict]:
    rows = []
    for dataset, n, n_queries in workloads:
        print(f"\n[{dataset} n={n}]")
        for row in _bench_workload(dataset, n, n_queries):
            rows.append(row)
            print(
                f"  {row['engine']:>9} n_jobs={row['n_jobs']}: "
                f"{human_rate(row['queries_per_s'])} "
                f"({row['speedup_vs_per_query']:.2f}x, "
                f"labels_match={row['labels_match_per_query']})"
            )
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "batch_traversal",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return REPORT_PATH


def test_batch_engine_speedup(benchmark):
    rows = run_benchmark()
    path = write_report(rows)
    print(f"\n[saved {len(rows)} rows to {path}]")

    assert all(r["labels_match_per_query"] for r in rows)
    gauss_batch = next(
        r for r in rows
        if r["dataset"] == "gauss" and r["engine"] == "batch" and r["n_jobs"] == 1
    )
    assert gauss_batch["speedup_vs_per_query"] >= 3.0

    # Representative op for the pytest-benchmark table: the batch engine
    # on the acceptance workload's data scale.
    data = load("gauss", n=50_000, seed=0)
    clf = TKDCClassifier(
        TKDCConfig(p=0.01, seed=0, refine_threshold=False)
    ).fit(data)
    benchmark.pedantic(clf.predict, args=(data[:200],), rounds=1, iterations=1)


if __name__ == "__main__":
    write_report(run_benchmark())
    print(f"\nwrote {REPORT_PATH}")
