"""Batch traversal engine: per-query vs batch vs batch+n_jobs.

A thin wrapper over the experiment orchestrator: each section is a
declarative :class:`~repro.orchestrator.spec.ExperimentSpec`, executed
through the :class:`~repro.orchestrator.scheduler.TrialScheduler` (one
trial at a time — wall-clock numbers must never share a machine), and
the resulting store records are reshaped into the same rows this
benchmark has always committed to ``BENCH_batch_traversal.json``. The
measurements themselves run in :mod:`repro.orchestrator.runner` — the
exact code path ``tkdc bench run`` and the bench gate use — and every
run leaves build-stamped trial records in the results store
(``.repro-bench/``) as a side effect, so the perf trajectory
accumulates per build instead of being overwritten per run.

Sections:

- per-workload engine comparison (per-query vs batch, serial and
  n_jobs=2), with the ``parallel_fallback`` flag recording when the
  classifier's spawn-amortization floor forces the serial path;
- a dedicated parallel section far above that floor, where the pool
  pays off;
- a block-size sweep backing DEFAULT_BLOCK_SIZE (a tuning knob, not a
  trial axis — measured directly through the runner's primitives);
- the ``section: "smoke"`` rows from
  :func:`repro.bench.gate.traversal_smoke_rows` — the committed
  baseline the bench regression gate compares fresh runs against.

Run standalone (``make bench-batch``), with ``--smoke`` for a
CI-sized pass that writes no report, or under pytest.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.gate import traversal_smoke_rows
from repro.bench.harness import human_rate
from repro.bench.reporting import report_metadata
from repro.core.batch_bounds import DEFAULT_BLOCK_SIZE
from repro.core.classifier import (
    _CHUNKS_PER_WORKER,
    _PARALLEL_MIN_QUERIES,
    TKDCClassifier,
)
from repro.core.config import TKDCConfig
from repro.datasets.registry import load
from repro.io.atomic import atomic_write_text
from repro.orchestrator import (
    ExperimentSpec,
    ResultsStore,
    SchedulerPolicy,
    TrialScheduler,
)
from repro.orchestrator.runner import fit_for_trial, measure_engine
from repro.orchestrator.spec import Trial

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batch_traversal.json"

# (dataset, n, n_queries): hep is ~50x slower per query at d=27, so it
# gets a smaller block; gauss d=2 n=50k is the acceptance workload.
WORKLOADS = (
    ("gauss", 50_000, 1000),
    ("hep", 20_000, 100),
)

#: CI-sized workload for ``--smoke`` (report not written).
SMOKE_WORKLOADS = (("gauss", 8_000, 256),)

#: Query count for the dedicated parallel section: far enough above the
#: spawn-amortization floor that pool startup is amortized.
PARALLEL_QUERIES = 16_384

#: Batch-engine block sizes swept on a 2048-query block.
BLOCK_SIZES = (128, 512, 2048)
BLOCK_SWEEP_QUERIES = 2048

#: Per-trial deadline for the scheduler (hep per-query is the slow one).
TRIAL_DEADLINE = 1_800.0


def _falls_back(engine: str, n_jobs: int, n_queries: int) -> bool:
    """Whether this invocation takes the classifier's serial fallback."""
    return bool(
        engine == "batch" and n_jobs > 1
        and (
            n_queries < _PARALLEL_MIN_QUERIES
            or min(n_jobs, os.cpu_count() or 1) < 2
        )
    )


def _run_spec(spec: ExperimentSpec, store: ResultsStore | None = None) -> list[dict]:
    """Run a spec's trials sequentially; returns its store records.

    Sequential on purpose: these are wall-clock measurements, and two
    trials sharing the machine would contaminate each other. The
    experiment name is timestamped so repeated bench runs accumulate in
    the store instead of colliding.
    """
    store = store if store is not None else ResultsStore()
    experiment = f"{spec.name}-{time.strftime('%Y%m%d-%H%M%S')}"
    summary = TrialScheduler(
        store, SchedulerPolicy(jobs=1, deadline=TRIAL_DEADLINE)
    ).run(spec, experiment)
    if not summary.complete:
        raise RuntimeError(
            f"benchmark trials failed: {summary.render()} — "
            f"`tkdc bench run --resume {experiment}` retries them"
        )
    return store.records(experiment)


def _engine_spec(workloads) -> ExperimentSpec:
    """The per-workload engine-comparison grid."""
    return ExperimentSpec(
        name="bench-batch-traversal",
        description="per-query vs batch engine, serial and n_jobs=2",
        workloads=tuple(workloads),
        engines=("per-query", "batch"),
        jobs=(1, 2),
    )


def _parallel_spec() -> ExperimentSpec:
    """n_jobs=1 vs 2 above the spawn-amortization floor."""
    return ExperimentSpec(
        name="bench-batch-parallel",
        description="batch engine pool payoff above the amortization floor",
        workloads=(("gauss", 50_000, PARALLEL_QUERIES),),
        engines=("batch",),
        jobs=(1, 2),
    )


def _record_row(record: dict) -> dict:
    """One legacy benchmark row from one store record."""
    config = record["config"]
    metrics = record["metrics"]
    return {
        "dataset": config["dataset"],
        "n": config["n"],
        "dim": metrics["dim"],
        "n_queries": config["n_queries"],
        "engine": config["engine"],
        "n_jobs": config["jobs"],
        "seed": record["seed"],
        "parallel_fallback": _falls_back(
            config["engine"], config["jobs"], config["n_queries"]
        ),
        "seconds": metrics["seconds"],
        "queries_per_s": metrics["queries_per_s"],
        "kernels_per_query": metrics["kernels_per_query"],
        "labels_sha256": metrics["labels_sha256"],
    }


def _engine_rows(records: list[dict]) -> list[dict]:
    """Engine-comparison rows, grouped per workload, referenced to the
    serial per-query trial of the same workload."""
    rows: list[dict] = []
    by_workload: dict[tuple, list[dict]] = {}
    for record in records:
        config = record["config"]
        key = (config["dataset"], config["n"], config["n_queries"])
        by_workload.setdefault(key, []).append(_record_row(record))
    for key in sorted(by_workload, key=lambda k: str(k)):
        group = sorted(
            by_workload[key],
            key=lambda r: (r["engine"] != "per-query", r["engine"], r["n_jobs"]),
        )
        reference = next(
            r for r in group if r["engine"] == "per-query" and r["n_jobs"] == 1
        )
        reference_sha = reference["labels_sha256"]
        reference_rate = reference["queries_per_s"]
        for row in group:
            row["labels_match_per_query"] = row["labels_sha256"] == reference_sha
            row["speedup_vs_per_query"] = row["queries_per_s"] / reference_rate
            del row["labels_sha256"]
        rows.extend(group)
    return rows


def _parallel_rows(records: list[dict]) -> list[dict]:
    rows = sorted((_record_row(r) for r in records), key=lambda r: r["n_jobs"])
    reference_sha = rows[0]["labels_sha256"]
    reference_rate = rows[0]["queries_per_s"]
    for row in rows:
        row["section"] = "parallel"
        row["labels_match_per_query"] = row["labels_sha256"] == reference_sha
        row["speedup_vs_serial"] = row["queries_per_s"] / reference_rate
        del row["labels_sha256"], row["kernels_per_query"]
    return rows


def _bench_block_sizes(
    dataset: str = "gauss", n: int = 50_000,
    n_queries: int = BLOCK_SWEEP_QUERIES, seed: int = 0,
) -> list[dict]:
    """Batch-engine throughput as a function of the traversal block size.

    Block size is a tuning knob of one engine, not a scenario axis, so
    this section measures directly through the runner's primitives
    (same fit, same query block, same timed region as a trial).
    """
    trial = Trial(
        experiment="bench", dataset=dataset, n=n, n_queries=n_queries,
        engine="batch", seed=seed,
    )
    clf, data, queries = fit_for_trial(trial)
    rows = []
    for block_size in BLOCK_SIZES:
        clf.config = clf.config.with_updates(batch_block_size=block_size)
        metrics, __ = measure_engine(clf, queries, trial)
        rows.append({
            "section": "block_size",
            "dataset": dataset, "n": n, "dim": data.shape[1],
            "n_queries": n_queries, "engine": "batch", "n_jobs": 1,
            "block_size": block_size,
            "seed": seed,
            "seconds": metrics["seconds"],
            "queries_per_s": metrics["queries_per_s"],
        })
    clf.config = clf.config.with_updates(batch_block_size=DEFAULT_BLOCK_SIZE)
    return rows


def run_benchmark(workloads=WORKLOADS, store: ResultsStore | None = None) -> list[dict]:
    rows = []
    engine_rows = _engine_rows(_run_spec(_engine_spec(workloads), store))
    current = None
    for row in engine_rows:
        if (row["dataset"], row["n"]) != current:
            current = (row["dataset"], row["n"])
            print(f"\n[{row['dataset']} n={row['n']}]")
        rows.append(row)
        print(
            f"  {row['engine']:>9} n_jobs={row['n_jobs']}: "
            f"{human_rate(row['queries_per_s'])} "
            f"({row['speedup_vs_per_query']:.2f}x, "
            f"labels_match={row['labels_match_per_query']}, "
            f"fallback={row['parallel_fallback']})"
        )

    print(f"\n[parallel section: gauss n=50k, {PARALLEL_QUERIES} queries]")
    for row in _parallel_rows(_run_spec(_parallel_spec(), store)):
        rows.append(row)
        print(
            f"  batch n_jobs={row['n_jobs']}: {human_rate(row['queries_per_s'])} "
            f"({row['speedup_vs_serial']:.2f}x vs serial)"
        )

    print(f"\n[block-size sweep: gauss n=50k, {BLOCK_SWEEP_QUERIES} queries]")
    for row in _bench_block_sizes():
        rows.append(row)
        print(
            f"  block_size={row['block_size']:>5}: "
            f"{human_rate(row['queries_per_s'])}"
        )

    # The bench-gate's smoke workload, produced by the exact code the
    # gate re-runs (repro.bench.gate, itself on the orchestrator's
    # runner) so baseline and measurement can never drift structurally.
    print("\n[gate smoke workload]")
    for row in traversal_smoke_rows():
        rows.append(row)
        print(
            f"  {row['engine']:>9}: {human_rate(row['queries_per_s'])} "
            f"({row['speedup_vs_per_query']:.2f}x, "
            f"{row['kernels_per_query']:.1f} kernels/query)"
        )
    return rows


def run_smoke(store: ResultsStore | None = None) -> list[dict]:
    """CI-sized pass: the smoke workload grid only, report not written."""
    rows = _engine_rows(_run_spec(_engine_spec(SMOKE_WORKLOADS), store))
    for row in rows:
        print(
            f"  {row['engine']:>9} n_jobs={row['n_jobs']}: "
            f"{human_rate(row['queries_per_s'])} "
            f"(labels_match={row['labels_match_per_query']})"
        )
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "batch_traversal",
        **report_metadata(),
        "settings": {
            "default_block_size": DEFAULT_BLOCK_SIZE,
            "parallel_min_queries": _PARALLEL_MIN_QUERIES,
            "chunks_per_worker": _CHUNKS_PER_WORKER,
            "cpu_count": os.cpu_count(),
        },
        "rows": rows,
    }
    atomic_write_text(REPORT_PATH, json.dumps(report, indent=2) + "\n")
    return REPORT_PATH


def test_batch_engine_speedup(benchmark):
    rows = run_benchmark()
    path = write_report(rows)
    print(f"\n[saved {len(rows)} rows to {path}]")

    assert all(r.get("labels_match_per_query", True) for r in rows)
    gauss_batch = next(
        r for r in rows
        if r["dataset"] == "gauss" and r["engine"] == "batch"
        and r["n_jobs"] == 1 and "speedup_vs_per_query" in r
    )
    assert gauss_batch["speedup_vs_per_query"] >= 3.0
    # The small-block n_jobs=2 row must take the serial fallback (the
    # pre-fallback regression: 2.15x with a pool vs 4.36x serial).
    gauss_parallel_small = next(
        r for r in rows
        if r["dataset"] == "gauss" and r["engine"] == "batch"
        and r["n_jobs"] == 2 and "speedup_vs_per_query" in r
    )
    assert gauss_parallel_small["parallel_fallback"]
    assert gauss_parallel_small["speedup_vs_per_query"] >= 3.0

    # Representative op for the pytest-benchmark table: the batch engine
    # on the acceptance workload's data scale.
    data = load("gauss", n=50_000, seed=0)
    clf = TKDCClassifier(
        TKDCConfig(p=0.01, seed=0, refine_threshold=False)
    ).fit(data)
    benchmark.pedantic(clf.predict, args=(data[:200],), rounds=1, iterations=1)


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        smoke_rows = run_smoke()
        assert all(r["labels_match_per_query"] for r in smoke_rows)
        print(f"\nsmoke OK ({len(smoke_rows)} rows, report not written)")
    else:
        write_report(run_benchmark())
        print(f"\nwrote {REPORT_PATH}")
