"""Figure 11: query throughput vs dimensionality (hep subsets)."""

import pytest

from repro.bench.experiments import fig11_dims

DIMS = (1, 2, 4, 8, 16, 27)


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig11_dims",
        fig11_dims(dims=DIMS, n=8000, n_queries=200, seed=0, verbose=True),
    )


def test_fig11_dimension_scaling(rows, benchmark):
    def check():
        for dim in DIMS:
            subset = {r["algorithm"]: r for r in rows if r["d"] == dim}
            # The naive baseline's kernel count is dimension-independent
            # (always n); tkdc's stays well below it at every d.
            assert subset["simple"]["kernels_per_query"] == pytest.approx(8000, rel=0.01)
            assert subset["tkdc"]["kernels_per_query"] < 0.5 * 8000, dim
        # Pruning weakens with dimension (curse of dimensionality): d=27
        # needs more kernel work per query than d=2.
        low_d = next(r for r in rows if r["d"] == 2 and r["algorithm"] == "tkdc")
        high_d = next(r for r in rows if r["d"] == 27 and r["algorithm"] == "tkdc")
        assert high_d["kernels_per_query"] > low_d["kernels_per_query"]

    benchmark.pedantic(check, rounds=1, iterations=1)
