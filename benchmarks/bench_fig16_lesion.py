"""Figure 16: lesion analysis — remove one optimization at a time."""

import pytest

from repro.bench.experiments import fig16_lesion_analysis


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig16_lesion",
        fig16_lesion_analysis(n=12_000, n_queries=1_000, slow_queries=60,
                              seed=0, verbose=True),
    )


def test_fig16_no_optimization_redundant(rows, benchmark):
    def check():
        by_variant = {row["variant"]: row for row in rows}
        complete = by_variant["complete"]["kernels_per_pt"]
        # Removing the threshold rule erases nearly all of the gains —
        # the paper's foundation claim.
        assert by_variant["-threshold"]["kernels_per_pt"] > 20 * complete
        # The other lesions stay in the same order of magnitude but each
        # variant remains a valid classifier run.
        for variant in ("-tolerance", "-equiwidth", "-grid"):
            assert by_variant[variant]["kernels_per_pt"] < 0.25 * 12_000, variant
        return by_variant

    benchmark.pedantic(check, rounds=1, iterations=1)
