"""Table 2: the algorithm roster, cross-validated on one workload.

Prints the roster with agreement-vs-exact and throughput per algorithm
(run with ``-s``), and times tKDC's end-to-end train+classify pass as
the representative benchmark unit.
"""

import pytest

from repro.bench.algorithms import run_amortized
from repro.bench.experiments import table2_algorithms
from repro.datasets.registry import load


@pytest.fixture(scope="module")
def rows(persist):
    return persist("table2_algorithms", table2_algorithms(n=3000, seed=0, verbose=True))


def test_table2_tkdc_amortized(rows, benchmark):
    """Time one tKDC train+classify pass; verify the roster agreement."""
    for row in rows:
        assert row["agreement_vs_exact"] > 0.97
    data = load("gauss", n=3000, seed=0)
    run = benchmark.pedantic(run_amortized, args=("tkdc", data, 0.01, 0.01, 0),
                             rounds=2, iterations=1)
    assert run.items_classified == 3000
