"""Table 3: dataset roster — generator statistics and generation speed."""

import pytest

from repro.bench.experiments import table3_datasets
from repro.datasets.registry import load


@pytest.fixture(scope="module")
def rows(persist):
    return persist("table3_datasets", table3_datasets(scale=0.01, seed=0, verbose=True))


def test_table3_generators(rows, benchmark):
    """Verify the roster and time the largest-dimensional generator."""
    assert {row["name"] for row in rows} == {
        "gauss", "tmy3", "home", "hep", "sift", "mnist", "shuttle"
    }
    data = benchmark(load, "mnist", 2000)
    assert data.shape == (2000, 784)
