"""Figure 10: the size sweep on the 27-dimensional hep simulator.

At d=27 the paper's bound n^((d-1)/d) = n^0.963 is close to linear, so
the asymptotic advantage is muted — but tKDC still beats its
conservative bound and the O(n) baselines as n grows.
"""

import numpy as np
import pytest

from repro.bench.experiments import fig10_scaling_hep
from repro.bench.harness import fit_loglog_slope

SIZES = (2_000, 4_000, 8_000, 16_000)


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig10_scaling_hep",
        fig10_scaling_hep(sizes=SIZES, n_queries=120, seed=0, verbose=True),
    )


def test_fig10_sublinear_kernel_growth(rows, benchmark):
    def fit_slopes():
        kernels = {
            name: np.array([
                r["kernels_per_query"] for r in rows
                if r["algorithm"] == name and r["n"] > 0
            ])
            for name in ("tkdc", "simple")
        }
        xs = np.array(SIZES, dtype=float)
        simple_slope = fit_loglog_slope(xs, kernels["simple"])
        tkdc_slope = fit_loglog_slope(xs, kernels["tkdc"])
        assert simple_slope == pytest.approx(1.0, abs=0.01)
        # tkdc grows sublinearly even in 27 dimensions.
        assert tkdc_slope < 0.97
        return tkdc_slope

    benchmark.pedantic(fit_slopes, rounds=1, iterations=1)
