"""Figure 9: query throughput vs dataset size on gauss d=2.

The fitted log-log slopes verify the Section 3.8 asymptotics:
tKDC's per-query kernel work grows as n^((d-1)/d) (= n^0.5 at d=2, and
empirically flatter) while the naive/rkde baselines grow as n.
"""

import numpy as np
import pytest

from repro.bench.experiments import fig9_scaling_n
from repro.bench.harness import fit_loglog_slope
from repro.bench.algorithms import train_for_queries
from repro.datasets.registry import load

SIZES = (1_000, 2_000, 4_000, 8_000, 16_000, 32_000)


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig09_scaling_n",
        fig9_scaling_n(sizes=SIZES, n_queries=300, seed=0, verbose=True),
    )


def test_fig9_asymptotic_slopes(rows, benchmark):
    kernels = {
        name: np.array([
            r["kernels_per_query"] for r in rows
            if r["algorithm"] == name and r["n"] > 0
        ])
        for name in ("tkdc", "simple")
    }
    xs = np.array(SIZES, dtype=float)
    assert fit_loglog_slope(xs, kernels["simple"]) == pytest.approx(1.0, abs=0.01)
    assert fit_loglog_slope(xs, kernels["tkdc"]) < 0.55  # paper bound: (d-1)/d = 0.5

    data = load("gauss", n=16_000, seed=0)
    queries = data[:200]
    trained = train_for_queries("tkdc", data, p=0.01, seed=0)
    run = benchmark(trained.classify, queries)
    assert run.items_classified == 200


def test_fig9_tkdc_wins_at_scale(rows, benchmark):
    """At the largest size, tKDC out-throughputs every baseline."""
    def check():
        largest = max(SIZES)
        subset = {r["algorithm"]: r for r in rows if r["n"] == largest}
        for name in ("sklearn", "simple", "rkde"):
            assert subset["tkdc"]["queries_per_s"] > subset[name]["queries_per_s"], name
        return subset

    benchmark.pedantic(check, rounds=1, iterations=1)
