"""Figure 1: density classification of the shuttle measurement plane."""

import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.bench.experiments import fig1_shuttle_classification
from repro.datasets.registry import load


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig01_shuttle",
        fig1_shuttle_classification(n=8000, p=0.15, grid_cells=32, seed=0, verbose=True),
    )


def test_fig1_shuttle_training(rows, benchmark):
    """Time the full tKDC fit on the 2-d shuttle columns."""
    row = rows[0]
    assert 0.0 < row["high_region_fraction"] < 1.0
    assert abs(row["training_low_fraction"] - 0.15) < 0.03

    data = load("shuttle", n=8000, seed=0)[:, [3, 5]]
    # A full fit takes ~15 s; one timed round is plenty.
    clf = benchmark.pedantic(
        lambda: TKDCClassifier(TKDCConfig(p=0.15, seed=0)).fit(data),
        rounds=1, iterations=1,
    )
    assert clf.is_fitted
