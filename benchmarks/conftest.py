"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the corresponding experiment from
:mod:`repro.bench.experiments` (printing the paper-style rows — run with
``-s`` to see them live), persists the rows as JSON under ``results/``,
and times a representative operation with pytest-benchmark.

Scale note: workload sizes here are chosen so the whole suite finishes
in minutes on a laptop. The experiment functions accept larger ``n`` for
higher-fidelity runs via the CLI (``python -m repro run <exp> --n ...``).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import save_results

collect_ignore_glob: list[str] = []


@pytest.fixture(scope="session")
def persist():
    """Save experiment rows under results/ and return them unchanged."""

    def _persist(name: str, rows: list[dict]) -> list[dict]:
        path = save_results(name, rows)
        print(f"\n[saved {len(rows)} rows to {path}]")
        return rows

    return _persist
