"""Figure 7: end-to-end amortized throughput across all eight panels.

Regenerates the paper's panel rows (dataset x algorithm). At this scale
tKDC's wall-clock advantage over the numpy-vectorized naive baseline is
visible in kernels/pt everywhere and in throughput against the
tree-based baselines; the full 1000x gaps need the paper's dataset
sizes (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.algorithms import run_amortized
from repro.bench.experiments import fig7_throughput
from repro.datasets.registry import load


#: Per-panel dataset size. The O(n)-per-query baselines (nocut, sklearn,
#: rkde) dominate this bench's wall-clock; 2500 keeps the full 8-panel x
#: 6-algorithm sweep to a couple of minutes. Use the CLI for larger runs:
#: ``python -m repro run fig7 --n 20000``.
PANEL_N = 2_500


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig07_throughput",
        fig7_throughput(n=PANEL_N, seed=0, verbose=True),
    )


def test_fig7_tkdc_prunes_everywhere(rows, benchmark):
    """tKDC's kernel evaluations per point stay below n on every panel,
    and far below it outside the paper's hard regime (small n at very
    high d, where the paper itself reports muted speedups on mnist)."""
    tkdc_rows = [row for row in rows if row["algorithm"] == "tkdc"]
    assert len(tkdc_rows) == 8
    for row in tkdc_rows:
        assert row["kernels_per_pt"] < 0.75 * row["n"], row
        if row["d"] <= 27:
            assert row["kernels_per_pt"] < 0.25 * row["n"], row

    data = load("tmy3", n=PANEL_N, d=4, seed=0)
    run = benchmark.pedantic(run_amortized, args=("tkdc", data, 0.01, 0.01, 0),
                             rounds=2, iterations=1)
    assert run.amortized_throughput > 0


def test_fig7_tkdc_beats_tree_baselines(rows, benchmark):
    """Head-to-head against the same-substrate tree baselines."""
    def check():
        by_key = {(row["dataset"], row["d"], row["algorithm"]): row for row in rows}
        for dataset, dim in [("gauss", 2), ("tmy3", 4), ("tmy3", 8), ("home", 10)]:
            tkdc = by_key[(dataset, dim, "tkdc")]
            nocut = by_key[(dataset, dim, "nocut")]
            assert tkdc["throughput"] > nocut["throughput"], (dataset, dim)
        return by_key

    benchmark.pedantic(check, rounds=1, iterations=1)
