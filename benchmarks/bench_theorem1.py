"""Theorem 1 / Lemma 1 (Appendix A): near-fraction and cost scaling."""

import numpy as np
import pytest

from repro.analysis.theory import (
    fit_cost_scaling,
    fit_near_scaling,
    predicted_cost_exponent,
)
from repro.bench.experiments import thm1_scaling

SIZES = (1_000, 2_000, 4_000, 8_000, 16_000, 32_000)


@pytest.fixture(scope="module")
def rows(persist):
    return persist("thm1_scaling", thm1_scaling(sizes=SIZES, n_queries=300, verbose=True))


def test_thm1_cost_beats_bound(rows, benchmark):
    def check():
        sweep = [row for row in rows if row["n"] > 0]
        sizes = np.array([row["n"] for row in sweep], dtype=float)
        costs = np.array([max(row["kernels_per_query"], 1e-6) for row in sweep])
        fit = fit_cost_scaling(sizes, costs, dim=2)
        # tKDC's measured cost exponent stays below the conservative
        # (d-1)/d bound (the paper sees the same: Figure 9 beats n^-0.5).
        assert fit.fitted_exponent < predicted_cost_exponent(2)
        return fit.fitted_exponent

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_lemma1_near_fraction_shrinks(rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sweep = [row for row in rows if row["n"] > 0]
    sizes = np.array([row["n"] for row in sweep], dtype=float)
    fractions = np.array([max(row["near_fraction"], 1e-6) for row in sweep])
    fit = fit_near_scaling(sizes, fractions, dim=2)
    # The near-region probability decreases with n, within fitting slack
    # of the predicted n^(-1/d).
    assert fit.fitted_exponent < 0.0
    assert fit.satisfied
