"""Observability overhead: metrics off vs on vs full per-query tracing.

The acceptance bar for the obs subsystem is that instrumentation is
near-free when disabled and cheap when enabled:

- **metrics off** (``REGISTRY.disable()``): every record path begins
  with an ``enabled`` check, so the only residual cost is that branch —
  the reference timing;
- **metrics on** (the default): counters and histograms are reported
  per classify call / per traversal block, never per node, so the cost
  stays amortized across the block;
- **tracing on**: the opt-in ``TraceRecorder`` captures the full bound
  trajectory per query — the expensive mode, priced here so the docs
  can say what ``repro explain`` costs.

Labels must be bit-identical across all three modes — observability
may never change an answer. Timing is reported (median of repeats) but
only the label identity is asserted: wall-clock ratios at this workload
size are scheduler noise, and the cross-commit perf trajectory is
already guarded by ``make bench-gate``.

Run standalone (``python benchmarks/bench_obs_overhead.py``); writes no
report file.
"""

from __future__ import annotations

import numpy as np

from repro.bench.gate import SMOKE_N, query_block
from repro.bench.harness import Timer, throughput
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.obs.registry import REGISTRY
from repro.obs.trace import TraceRecorder
from repro.datasets.registry import load

N_QUERIES = 1024
REPEATS = 5


def _median_time(fn) -> tuple[float, object]:
    times = []
    result = None
    for __ in range(REPEATS):
        with Timer() as timer:
            result = fn()
        times.append(timer.elapsed)
    return float(np.median(times)), result


def run_benchmark(seed: int = 0) -> list[dict]:
    data = load("gauss", n=SMOKE_N, seed=seed)
    config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False,
        bootstrap_s0=min(2000, SMOKE_N),
    )
    clf = TKDCClassifier(config).fit(data)
    clf.tree.flatten()
    queries = query_block(data, N_QUERIES, np.random.default_rng(seed + 1))
    clf.predict(queries[:8])  # warm up

    was_enabled = REGISTRY.enabled
    rows = []
    try:
        REGISTRY.disable()
        off_seconds, off_labels = _median_time(
            lambda: clf.predict(queries, engine="batch", n_jobs=1)
        )
        rows.append({
            "mode": "metrics_off", "seed": seed, "seconds": off_seconds,
            "queries_per_s": throughput(N_QUERIES, off_seconds),
            "overhead_vs_off": 0.0, "labels_match_off": True,
        })

        REGISTRY.enable()
        on_seconds, on_labels = _median_time(
            lambda: clf.predict(queries, engine="batch", n_jobs=1)
        )
        rows.append({
            "mode": "metrics_on", "seed": seed, "seconds": on_seconds,
            "queries_per_s": throughput(N_QUERIES, on_seconds),
            "overhead_vs_off": on_seconds / off_seconds - 1.0,
            "labels_match_off": bool(np.array_equal(on_labels, off_labels)),
        })

        def traced() -> np.ndarray:
            return clf.classify(
                queries, engine="batch",
                trace=TraceRecorder(engine="batch"),
            )

        trace_seconds, trace_labels = _median_time(traced)
        rows.append({
            "mode": "tracing_on", "seed": seed, "seconds": trace_seconds,
            "queries_per_s": throughput(N_QUERIES, trace_seconds),
            "overhead_vs_off": trace_seconds / off_seconds - 1.0,
            "labels_match_off": bool(
                np.array_equal(np.asarray(trace_labels, dtype=int),
                               np.asarray(off_labels, dtype=int))
            ),
        })
    finally:
        if was_enabled:
            REGISTRY.enable()
        else:
            REGISTRY.disable()
    return rows


def main() -> int:
    rows = run_benchmark()
    print(f"[obs overhead: gauss n={SMOKE_N}, {N_QUERIES} queries, "
          f"batch engine, median of {REPEATS}]")
    for row in rows:
        print(
            f"  {row['mode']:>11}: {row['queries_per_s']:,.0f} q/s "
            f"({row['overhead_vs_off']:+.1%} vs metrics_off, "
            f"labels_match={row['labels_match_off']})"
        )
    if not all(row["labels_match_off"] for row in rows):
        print("FAIL: observability changed labels")
        return 1
    print("labels bit-identical across metrics_off / metrics_on / tracing_on")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
