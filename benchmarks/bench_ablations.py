"""Extra ablations beyond the paper (DESIGN.md Section 5): frontier
priority orders, leaf size, and kernel family."""

import pytest

from repro.bench.experiments import (
    ablation_epsilon,
    ablation_kernels,
    ablation_leaf_size,
    ablation_priority_orders,
    ablation_tree_family,
)


@pytest.fixture(scope="module")
def priority_rows(persist):
    return persist(
        "ablation_priority",
        ablation_priority_orders(n=10_000, n_queries=400, seed=0, verbose=True),
    )


@pytest.fixture(scope="module")
def leaf_rows(persist):
    return persist(
        "ablation_leafsize",
        ablation_leaf_size(leaf_sizes=(4, 8, 16, 32, 64, 128), n=10_000,
                           n_queries=400, seed=0, verbose=True),
    )


@pytest.fixture(scope="module")
def kernel_rows(persist):
    return persist("ablation_kernel", ablation_kernels(n=8_000, seed=0, verbose=True))


@pytest.fixture(scope="module")
def epsilon_rows(persist):
    return persist(
        "ablation_epsilon",
        ablation_epsilon(epsilons=(0.001, 0.01, 0.1, 0.5), n=5_000, seed=0,
                         verbose=True),
    )


def test_epsilon_trade(epsilon_rows, benchmark):
    def check():
        # Accuracy never degrades beyond the licensed band: disagreement
        # with the exact classifier stays tiny at every epsilon.
        for row in epsilon_rows:
            assert row["label_disagreement"] < 0.01, row
        return epsilon_rows

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def tree_rows(persist):
    return persist(
        "ablation_tree",
        ablation_tree_family(n=8_000, dims=(2, 4, 8, 16), n_queries=250,
                             seed=0, verbose=True),
    )


def test_tree_families_both_prune(tree_rows, benchmark):
    def check():
        for row in tree_rows:
            # Both index families must deliver real pruning (far below
            # an exhaustive 8000 kernels/query) at every dimension.
            assert row["kernels_per_pt"] < 0.25 * 8_000, row
        # Boxes are the tighter bound in low dimensions (the reason the
        # paper's k-d tree choice is sound).
        by_key = {(r["d"], r["index"]): r for r in tree_rows}
        assert (
            by_key[(2, "kdtree")]["kernels_per_pt"]
            <= by_key[(2, "balltree")]["kernels_per_pt"]
        )
        return by_key

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_priority_discrepancy_competitive(priority_rows, benchmark):
    def check():
        by_priority = {r["priority"]: r for r in priority_rows}
        # The paper's discrepancy ordering does no more kernel work than
        # blind FIFO/LIFO expansion.
        for other in ("fifo", "lifo"):
            assert (
                by_priority["discrepancy"]["kernels_per_pt"]
                <= by_priority[other]["kernels_per_pt"] * 1.2
            ), other
        return by_priority

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_leaf_size_tradeoff(leaf_rows, benchmark):
    def check():
        kernels = [r["kernels_per_pt"] for r in leaf_rows]
        # Bigger leaves evaluate more kernels (coarser pruning)...
        assert kernels[0] < kernels[-1]
        return kernels

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_kernel_families_consistent(kernel_rows, benchmark):
    def check():
        by_kernel = {r["kernel"]: r for r in kernel_rows}
        for row in by_kernel.values():
            assert abs(row["low_fraction"] - 0.01) < 0.01
        return by_kernel

    benchmark.pedantic(check, rounds=1, iterations=1)
