"""HBE engine vs the batch tree engine across dimensionality.

For each dimensionality one classifier is fitted on a gauss workload and
the same query block is timed through both engines — identical model,
identical threshold — so any label disagreement is purely the sampler's
doing. Results land in ``BENCH_hbe.json`` at the repo root with the
quality ledger the engine is accountable to:

- ``label_agreement``: fraction of queries labeled identically to the
  batch engine;
- ``agreement_outside_band``: the same fraction restricted to queries
  whose exact density lies outside the widened band
  ``|f(q) - t| <= eps * t + 2 * eta`` — where the hbe engine's
  fall-back-on-straddle design promises parity. Must be 1.0 at every
  dimensionality (the bench gate enforces this on the committed
  report);
- ``speedup_vs_batch``: wall-clock ratio on the query path (index build
  time is reported separately — it is paid once per model).

Bandwidth: Scott's rule is an AMISE prescription for smooth univariate-
style estimation; above ~10 dimensions it shrinks the bandwidth until
the KDE degenerates into a nearest-neighbour spike field (kernel ratios
of e^20 between points 13% apart in distance), a regime outside both
tKDC's and HBE's operating envelope — and one the engine's visibility
guard refuses to certify LOWs in. The sweep therefore applies a
per-dimension ``bandwidth_scale`` (below) chosen as the widest
log-density spread — wide spread means decisive queries, which is where
sampling wins — subject to the visibility guard passing with headroom
and exact label parity at the bench seed.

Run standalone (``make bench-hbe``) or under pytest; ``--smoke`` runs a
tiny d=32 workload for CI without touching the checked-in report.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.bench.harness import Timer, human_rate, throughput
from repro.bench.reporting import report_metadata
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.coresets.validate import exact_density
from repro.datasets.registry import load
from repro.io.atomic import atomic_write_text

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hbe.json"

DATASET = "gauss"
N = 50_000
N_QUERIES = 500

#: Per-dimension bandwidth_scale (see module docstring). The visibility
#: guard bound scales as 1/n, so these are tuned for the n=50k
#: acceptance workload; smaller runs at the same scales may see the
#: guard route more LOWs through the tree fallback (correct, slower).
BANDWIDTH_SCALE = {8: 1.41, 16: 2.0, 32: 2.83, 64: 3.2, 128: 3.8}

DIMS = (8, 16, 32, 64, 128)

#: Tiny workload for the CI smoke run (``--smoke``): one dimensionality,
#: small n, hard assertion on outside-band parity; the checked-in
#: report is not touched.
SMOKE_N = 4_000
SMOKE_DIM = 32
SMOKE_QUERIES = 200


def _query_block(
    data: np.ndarray, n_queries: int, rng: np.random.Generator
) -> np.ndarray:
    """Half in-distribution points, half uniform box draws (outlier mix)."""
    inliers = data[rng.choice(data.shape[0], size=n_queries // 2, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0),
        size=(n_queries - n_queries // 2, data.shape[1]),
    )
    return rng.permutation(np.concatenate([inliers, box]))


def _bench_dim(
    dim: int, n: int = N, n_queries: int = N_QUERIES, seed: int = 0
) -> dict:
    data = load(DATASET, n=n, d=dim, seed=seed)
    queries = _query_block(data, n_queries, np.random.default_rng(seed + 1))
    config = TKDCConfig(
        p=0.01,
        seed=seed,
        refine_threshold=False,
        # Threshold estimation pays near-exact density evaluations at
        # high d (the tree has little pruning power there — that is the
        # point of this bench); 500 bootstrap points keep fit times sane
        # and both engines share the threshold either way.
        bootstrap_s0=min(500, n),
        engine="hbe",
        bandwidth_scale=BANDWIDTH_SCALE[dim],
    )
    with Timer() as fit_timer:
        clf = TKDCClassifier(config).fit(data)
    clf.tree.flatten()
    with Timer() as build_timer:
        index = clf._ensure_hbe()

    clf.classify(queries[:8])  # warm up (hbe)
    clf.classify(queries[:8], engine="batch")  # warm up (batch)

    clf._stats.extras.clear()
    with Timer() as hbe_timer:
        hbe_labels = clf.classify(queries)
    extras = {
        key: int(value)
        for key, value in clf.stats.extras.items()
        if key.startswith("hbe")
    }
    with Timer() as batch_timer:
        batch_labels = clf.classify(queries, engine="batch")

    t_base = clf.threshold.value
    scaled_data = clf.kernel.scale(data)
    f_exact = exact_density(scaled_data, clf.kernel, clf.kernel.scale(queries))
    band = config.epsilon * t_base + 2.0 * clf.eta_applied
    outside = np.abs(f_exact - t_base) > band
    agree = hbe_labels == batch_labels

    return {
        "dataset": DATASET,
        "n": n,
        "dim": dim,
        "bandwidth_scale": BANDWIDTH_SCALE[dim],
        "n_queries": n_queries,
        "seed": seed,
        "threshold": t_base,
        "hash_depth": index.tables.depth,
        "tables": index.n_tables,
        "visibility_bound_over_band": (
            index.low_visibility_bound() / (t_base * (1.0 - config.epsilon))
            if t_base > 0.0
            else math.inf
        ),
        "fit_seconds": fit_timer.elapsed,
        "hbe_build_seconds": build_timer.elapsed,
        "hbe_seconds": hbe_timer.elapsed,
        "batch_seconds": batch_timer.elapsed,
        "hbe_queries_per_s": throughput(n_queries, hbe_timer.elapsed),
        "batch_queries_per_s": throughput(n_queries, batch_timer.elapsed),
        "speedup_vs_batch": batch_timer.elapsed / hbe_timer.elapsed,
        "label_agreement": float(np.mean(agree)),
        "fraction_in_band": float(np.mean(~outside)),
        "agreement_outside_band": (
            float(np.mean(agree[outside])) if outside.any() else 1.0
        ),
        **extras,
    }


def run_benchmark(
    dims=DIMS, n: int = N, n_queries: int = N_QUERIES, seed: int = 0
) -> list[dict]:
    rows = []
    for dim in dims:
        row = _bench_dim(dim, n=n, n_queries=n_queries, seed=seed)
        rows.append(row)
        print(
            f"  d={dim:>3} b={row['bandwidth_scale']}: "
            f"hbe {human_rate(row['hbe_queries_per_s'])} vs batch "
            f"{human_rate(row['batch_queries_per_s'])} "
            f"({row['speedup_vs_batch']:.2f}x, "
            f"agree={row['label_agreement']:.3f}, "
            f"outside-band agree={row['agreement_outside_band']:.3f}, "
            f"high={row.get('hbe_decided_high', 0)} "
            f"low={row.get('hbe_decided_low', 0)} "
            f"fallback={row.get('hbe_fallbacks', 0)})",
            flush=True,
        )
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "hbe",
        **report_metadata(),
        "settings": {
            "p": 0.01,
            "epsilon": 0.01,
            "engines": ["hbe", "batch"],
            "band": "eps * t_base + 2 * eta",
            "bandwidth_scale": {str(k): v for k, v in BANDWIDTH_SCALE.items()},
        },
        "rows": rows,
    }
    atomic_write_text(REPORT_PATH, json.dumps(report, indent=2) + "\n")
    return REPORT_PATH


def test_hbe_speedup(benchmark):
    rows = run_benchmark()
    path = write_report(rows)
    print(f"\n[saved {len(rows)} rows to {path}]")

    # Acceptance: outside-band label parity at every dimensionality, and
    # >= 5x over the batch engine wherever hashing claims the win (d >=
    # 32 on gauss n=50k).
    assert all(r["agreement_outside_band"] == 1.0 for r in rows)
    assert all(
        r["speedup_vs_batch"] >= 5.0 for r in rows if r["dim"] >= 32
    )

    data = load(DATASET, n=SMOKE_N, d=SMOKE_DIM, seed=0)
    clf = TKDCClassifier(
        TKDCConfig(p=0.01, seed=0, refine_threshold=False,
                   bootstrap_s0=500, engine="hbe",
                   bandwidth_scale=BANDWIDTH_SCALE[SMOKE_DIM])
    ).fit(data)
    benchmark.pedantic(clf.classify, args=(data[:200],), rounds=1, iterations=1)


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        print(f"[smoke: {DATASET} n={SMOKE_N} d={SMOKE_DIM}]")
        smoke_rows = run_benchmark(
            dims=(SMOKE_DIM,), n=SMOKE_N, n_queries=SMOKE_QUERIES
        )
        row = smoke_rows[0]
        assert row["agreement_outside_band"] == 1.0, row
        assert row.get("hbe_decided_high", 0) + row.get("hbe_decided_low", 0) > 0, row
        print(f"\nsmoke OK ({len(smoke_rows)} rows, report not written)")
    else:
        print(f"[{DATASET} n={N}]")
        write_report(run_benchmark())
        print(f"\nwrote {REPORT_PATH}")
