"""Robustness-layer overhead: supervised pool, guards, anytime budgets.

The robustness layer must be close to free when nothing goes wrong:

- **Supervised dispatch** (``repro.robustness.supervisor``) replaces the
  bare ``Pool.map`` of the parallel classify path with per-chunk
  futures, deadlines, and retry bookkeeping. The acceptance bar is <= 5%
  throughput overhead versus an unsupervised pool on the gauss d=2
  n=50k workload.
- **Invariant guards** (``guard_policy="repair"``, the default) add
  vectorized finiteness/ordering checks per node sweep; measured
  against ``guard_policy="off"`` on the serial batch engine.
- **Anytime budgets** trade accuracy for latency; the sweep records
  throughput and the degraded fraction at each cap so the budget knob's
  cost curve is visible.
- **Streaming refit loop** (``repro.streaming``): one scripted drift
  episode measuring the refit latency, the detection→swap staleness
  window against the pipeline's declared bound, and the mid-drift label
  lag (how many post-drift points the exact-buffer path needs before a
  new-mode probe flips HIGH, i.e. before the refit even lands).
- **Durability** (``repro.streaming.wal``): WAL append latency per
  fsync policy (the price of the ``always`` durability point versus
  ``interval``/``off``), and crash-recovery time — a WAL populated with
  acknowledged batches is abandoned mid-flight and recovered, measuring
  replay seconds and asserting zero acknowledged-point loss.

Writes ``BENCH_robustness.json`` at the repo root. Run standalone
(``make bench-robustness``) or under pytest via ``make bench``. The
bench gate (``repro.bench.gate``) validates the committed streaming row.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import Timer, human_rate, throughput
from repro.bench.reporting import report_metadata
from repro.core.classifier import (
    _CHUNKS_PER_WORKER,
    _WORKER_STATE,
    TKDCClassifier,
)
from repro.core.config import TKDCConfig
from repro.core.result import Label
from repro.core.stats import TraversalStats
from repro.datasets.registry import load
from repro.io.atomic import atomic_write_text
from repro.streaming import StreamingPipeline, StreamSettings

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_robustness.json"

#: The acceptance workload: gauss d=2 n=50k, a pool-worthy query block.
DATASET = "gauss"
N_TRAIN = 50_000
POOL_QUERIES = 16_384
SERIAL_QUERIES = 2_048
POOL_JOBS = 2
#: Timing repeats per candidate; the median absorbs scheduler noise.
REPEATS = 3

#: Budget sweep: node-expansion caps (None = unbounded baseline).
BUDGETS = (None, 64, 8)

#: Streaming drift episode: initial fit size, the injected mode shift,
#: the ingest batch size, and a hard cap on post-drift stream length.
STREAM_INITIAL = 10_000
STREAM_SHIFT = (6.0, 6.0)
STREAM_BATCH = 64
STREAM_MAX_POST = 4_096

#: Durability workload: WAL append batch size and count per fsync
#: policy, the recovery-bench initial fit, and how many acknowledged
#: batches each recovery run replays.
WAL_BATCH_ROWS = 64
WAL_APPENDS = 200
RECOVERY_INITIAL = 5_000
RECOVERY_SIZES = (64, 256)


def _raw_pool_chunk(chunk: np.ndarray) -> tuple[np.ndarray, TraversalStats]:
    """Old-style unsupervised worker: the pre-supervision baseline."""
    stats = TraversalStats()
    highs = _WORKER_STATE["classifier"]._classify_scaled_block(
        chunk, _WORKER_STATE["threshold"], stats, engine="batch"
    )
    return highs, stats


def _fit(seed: int = 0) -> tuple[TKDCClassifier, np.ndarray]:
    data = load(DATASET, n=N_TRAIN, seed=seed)
    config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False,
        bootstrap_s0=min(2000, N_TRAIN), worker_backoff=0.0,
    )
    clf = TKDCClassifier(config).fit(data)
    clf.tree.flatten()
    return clf, data


def _query_block(data: np.ndarray, n_queries: int, rng: np.random.Generator) -> np.ndarray:
    inliers = data[rng.choice(data.shape[0], size=n_queries // 2, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0),
        size=(n_queries - n_queries // 2, data.shape[1]),
    )
    return rng.permutation(np.concatenate([inliers, box]))


def _classify_raw_pool(
    clf: TKDCClassifier, scaled: np.ndarray, threshold: float, n_jobs: int
) -> np.ndarray:
    """The pre-supervision parallel path: bare fork + ``Pool.map``."""
    context = multiprocessing.get_context("fork")
    n_chunks = min(
        n_jobs * _CHUNKS_PER_WORKER,
        max(n_jobs, scaled.shape[0] // clf.config.batch_block_size),
    )
    chunks = np.array_split(scaled, n_chunks)
    _WORKER_STATE["classifier"] = clf
    _WORKER_STATE["threshold"] = threshold
    try:
        with context.Pool(n_jobs) as pool:
            results = pool.map(_raw_pool_chunk, chunks)
    finally:
        _WORKER_STATE.clear()
    return np.concatenate([highs for highs, __ in results])


def _median_time(fn) -> tuple[float, object]:
    """Median wall time of REPEATS runs; returns (seconds, last result)."""
    times = []
    result = None
    for __ in range(REPEATS):
        with Timer() as timer:
            result = fn()
        times.append(timer.elapsed)
    return float(np.median(times)), result


def bench_supervised_pool(seed: int = 0) -> list[dict]:
    """Supervised vs unsupervised pool on the same fitted classifier."""
    clf, data = _fit(seed)
    queries = _query_block(data, POOL_QUERIES, np.random.default_rng(seed + 1))
    scaled = clf.kernel.scale(queries)
    threshold = clf.threshold.value

    _classify_raw_pool(clf, scaled[:64], threshold, POOL_JOBS)  # warm up
    raw_seconds, raw_highs = _median_time(
        lambda: _classify_raw_pool(clf, scaled, threshold, POOL_JOBS)
    )
    supervised_seconds, supervised_highs = _median_time(
        lambda: clf._classify_parallel(scaled, threshold, POOL_JOBS)
    )
    rows = [
        {
            "section": "supervised_pool", "variant": "raw_pool_map",
            "dataset": DATASET, "n": N_TRAIN, "n_queries": POOL_QUERIES,
            "n_jobs": POOL_JOBS, "seconds": raw_seconds,
            "queries_per_s": throughput(POOL_QUERIES, raw_seconds),
        },
        {
            "section": "supervised_pool", "variant": "supervised",
            "dataset": DATASET, "n": N_TRAIN, "n_queries": POOL_QUERIES,
            "n_jobs": POOL_JOBS, "seconds": supervised_seconds,
            "queries_per_s": throughput(POOL_QUERIES, supervised_seconds),
            "labels_match_raw": bool(np.array_equal(raw_highs, supervised_highs)),
            "overhead_vs_raw": supervised_seconds / raw_seconds - 1.0,
        },
    ]
    return rows


def bench_guard_overhead(seed: int = 0) -> list[dict]:
    """guard_policy="off" vs the default "repair" on the serial engine."""
    clf, data = _fit(seed)
    queries = _query_block(data, SERIAL_QUERIES, np.random.default_rng(seed + 2))
    rows = []
    baseline_seconds = None
    for policy in ("off", "repair"):
        clf.config = clf.config.with_updates(guard_policy=policy)
        clf.predict(queries[:8])  # warm up
        seconds, __ = _median_time(lambda: clf.predict(queries, engine="batch"))
        row = {
            "section": "guards", "guard_policy": policy,
            "dataset": DATASET, "n": N_TRAIN, "n_queries": SERIAL_QUERIES,
            "seconds": seconds,
            "queries_per_s": throughput(SERIAL_QUERIES, seconds),
        }
        if baseline_seconds is None:
            baseline_seconds = seconds
        else:
            row["overhead_vs_off"] = seconds / baseline_seconds - 1.0
        rows.append(row)
    clf.config = clf.config.with_updates(guard_policy="repair")
    return rows


def bench_budget(seed: int = 0) -> list[dict]:
    """Anytime-budget sweep: throughput and degraded fraction per cap."""
    clf, data = _fit(seed)
    queries = _query_block(data, SERIAL_QUERIES, np.random.default_rng(seed + 3))
    rows = []
    for budget in BUDGETS:
        clf.config = clf.config.with_updates(max_node_expansions=budget)
        clf.classify_detailed(queries[:8])  # warm up
        seconds, result = _median_time(lambda: clf.classify_detailed(queries))
        rows.append({
            "section": "budget",
            "max_node_expansions": budget,
            "dataset": DATASET, "n": N_TRAIN, "n_queries": SERIAL_QUERIES,
            "seconds": seconds,
            "queries_per_s": throughput(SERIAL_QUERIES, seconds),
            "degraded_fraction": result.n_degraded / SERIAL_QUERIES,
            "uncertain_fraction": int(np.count_nonzero(result.uncertain))
            / SERIAL_QUERIES,
        })
    clf.config = clf.config.with_updates(max_node_expansions=None)
    return rows


def bench_streaming(seed: int = 0) -> list[dict]:
    """One scripted drift episode through the streaming pipeline.

    Metrics: refit latency (the supervised subprocess fit), the
    detection→swap staleness window vs the pipeline's declared bound,
    and the mid-drift label lag — post-drift points ingested before the
    exact-buffer path alone flips a new-mode probe to HIGH.
    """
    data = load(DATASET, n=STREAM_INITIAL, seed=seed)
    config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False,
        bootstrap_s0=min(2000, STREAM_INITIAL), worker_backoff=0.0,
    )
    settings = StreamSettings(
        monitor_window=256, hysteresis=2, check_interval=0.05,
        min_refit_interval=0.0, refit_deadline=300.0, refit_retries=1,
    )
    pipeline = StreamingPipeline.from_data(data, config, settings=settings)
    shift = np.asarray(STREAM_SHIFT, dtype=np.float64)
    probe = shift[None, :]
    assert pipeline.classify(probe)[0] is Label.LOW, (
        "probe must start out-of-distribution"
    )

    rng = np.random.default_rng(seed + 4)
    label_lag = None
    first_drift_at = None
    detect_to_swap = None
    ingested = 0
    while ingested < STREAM_MAX_POST and pipeline.swaps == 0:
        batch = rng.normal(size=(STREAM_BATCH, data.shape[1])) * 0.5 + shift
        pipeline.ingest(batch)
        ingested += STREAM_BATCH
        if label_lag is None and pipeline.classify(probe)[0] is Label.HIGH:
            label_lag = ingested
        decision = pipeline.check_drift_once()
        if decision.drifted and first_drift_at is None:
            first_drift_at = time.perf_counter()
        if pipeline.swaps and first_drift_at is not None:
            detect_to_swap = time.perf_counter() - first_drift_at

    refit = pipeline._last_refit
    accounting = pipeline.verify_accounting()
    converged = bool(
        pipeline.swaps >= 1
        and label_lag is not None
        and pipeline.classify(probe)[0] is Label.HIGH
    )
    return [{
        "section": "streaming",
        "dataset": DATASET,
        "n_initial": STREAM_INITIAL,
        "post_drift_points": ingested,
        "monitor_window": settings.monitor_window,
        "hysteresis": settings.hysteresis,
        "label_lag_points": label_lag,
        "refit_seconds": None if refit is None else refit.seconds,
        "detect_to_swap_seconds": detect_to_swap,
        "staleness_bound_seconds": settings.staleness_bound,
        "swaps": pipeline.swaps,
        "converged": converged,
        "accounting_ok": bool(accounting["ok"]),
    }]


def bench_durability(seed: int = 0) -> list[dict]:
    """WAL append cost per fsync policy, plus crash-recovery time.

    Append rows: p50/p99 latency of ``append_ingest`` for each fsync
    policy on a batch-of-64 workload. Recovery rows: a pipeline ingests
    acknowledged batches over a WAL, the process "dies" (the WAL is
    abandoned without a shutdown snapshot), and a successor recovers —
    measuring replay seconds and checking every acknowledged point
    survived (``acknowledged_loss`` must be exactly 0).
    """
    import tempfile

    from repro.streaming.wal import WriteAheadLog

    rows = []
    rng = np.random.default_rng(seed + 9)
    batch = rng.normal(size=(WAL_BATCH_ROWS, 2))
    for policy in ("always", "interval", "off"):
        with tempfile.TemporaryDirectory(prefix="tkdc-wal-bench-") as tmp:
            wal = WriteAheadLog(Path(tmp) / "wal", fsync_policy=policy)
            latencies = []
            started = time.perf_counter()
            for i in range(WAL_APPENDS):
                t0 = time.perf_counter()
                wal.append_ingest(batch, {"source": "bench", "seq": i + 1})
                latencies.append(time.perf_counter() - t0)
            elapsed = time.perf_counter() - started
            stats = wal.stats()
            wal.close()
        latencies = np.asarray(latencies)
        rows.append({
            "section": "durability",
            "variant": "wal_append",
            "fsync_policy": policy,
            "rows_per_append": WAL_BATCH_ROWS,
            "appends": WAL_APPENDS,
            "fsyncs": stats["fsyncs"],
            "append_p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "append_p99_ms": float(np.percentile(latencies, 99) * 1e3),
            "appends_per_s": float(WAL_APPENDS / elapsed),
        })

    data = load(DATASET, n=RECOVERY_INITIAL, seed=seed)
    config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False,
        bootstrap_s0=min(2000, RECOVERY_INITIAL), worker_backoff=0.0,
    )
    for batches in RECOVERY_SIZES:
        with tempfile.TemporaryDirectory(prefix="tkdc-recover-bench-") as tmp:
            wal_dir = Path(tmp) / "wal"
            pipeline = StreamingPipeline.from_data(
                data, config,
                settings=StreamSettings(fsync_policy="always"),
                wal_dir=wal_dir,
            )
            acknowledged = 0
            for i in range(batches):
                out = pipeline.ingest_batch(
                    rng.normal(size=(WAL_BATCH_ROWS, 2)) * 0.5,
                    source="bench", source_seq=i + 1,
                )
                acknowledged += int(out["accepted"])
            wal_bytes = pipeline.wal.size_bytes()
            fallback = pipeline.model.classifier
            pipeline.wal.abandon()  # simulated SIGKILL: no shutdown snapshot

            t0 = time.perf_counter()
            recovered = StreamingPipeline.recover(
                wal_dir,
                settings=StreamSettings(fsync_policy="always"),
                fallback_classifier=fallback,
            )
            recovery_seconds = time.perf_counter() - t0
            loss = acknowledged - recovered.ingested_total
            conserved = bool(
                recovered.model.n_total
                == recovered.initial_n + recovered.ingested_total
            )
            recovered.stop(join=True)
        rows.append({
            "section": "durability",
            "variant": "recovery",
            "acknowledged_batches": batches,
            "acknowledged_points": acknowledged,
            "wal_bytes": int(wal_bytes),
            "recovery_seconds": float(recovery_seconds),
            "acknowledged_loss": int(loss),
            "conservation_ok": conserved,
        })
    return rows


def run_benchmark(seed: int = 0) -> list[dict]:
    rows = []
    print(f"\n[supervised pool: {DATASET} n={N_TRAIN}, {POOL_QUERIES} queries, "
          f"n_jobs={POOL_JOBS}]")
    for row in bench_supervised_pool(seed):
        rows.append(row)
        extra = ""
        if "overhead_vs_raw" in row:
            extra = (f" (overhead {row['overhead_vs_raw']:+.1%}, "
                     f"labels_match={row['labels_match_raw']})")
        print(f"  {row['variant']:>14}: {human_rate(row['queries_per_s'])}{extra}")

    print(f"\n[guards: {SERIAL_QUERIES} queries, serial batch engine]")
    for row in bench_guard_overhead(seed):
        rows.append(row)
        extra = (f" (overhead {row['overhead_vs_off']:+.1%})"
                 if "overhead_vs_off" in row else "")
        print(f"  guard_policy={row['guard_policy']:>6}: "
              f"{human_rate(row['queries_per_s'])}{extra}")

    print(f"\n[budget sweep: {SERIAL_QUERIES} queries]")
    for row in bench_budget(seed):
        rows.append(row)
        print(f"  max_expansions={str(row['max_node_expansions']):>4}: "
              f"{human_rate(row['queries_per_s'])}, "
              f"{row['degraded_fraction']:.1%} degraded")

    print(f"\n[streaming drift episode: {DATASET} n={STREAM_INITIAL}]")
    for row in bench_streaming(seed):
        rows.append(row)
        print(f"  label lag {row['label_lag_points']} points, "
              f"refit {row['refit_seconds']:.2f}s, "
              f"detect->swap {row['detect_to_swap_seconds']:.2f}s "
              f"(bound {row['staleness_bound_seconds']:.0f}s), "
              f"converged={row['converged']}")

    print(f"\n[durability: {WAL_APPENDS} appends of {WAL_BATCH_ROWS} rows, "
          f"recovery over {RECOVERY_SIZES} acked batches]")
    for row in bench_durability(seed):
        rows.append(row)
        if row["variant"] == "wal_append":
            print(f"  fsync={row['fsync_policy']:>8}: "
                  f"p50 {row['append_p50_ms']:.3f}ms "
                  f"p99 {row['append_p99_ms']:.3f}ms, "
                  f"{human_rate(row['appends_per_s'])} appends/s "
                  f"({row['fsyncs']} fsyncs)")
        else:
            print(f"  recover {row['acknowledged_batches']:>4} batches "
                  f"({row['wal_bytes'] / 1024:.0f} KiB): "
                  f"{row['recovery_seconds']:.3f}s, "
                  f"loss={row['acknowledged_loss']}")
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "robustness",
        **report_metadata(),
        "settings": {
            "pool_queries": POOL_QUERIES,
            "pool_jobs": POOL_JOBS,
            "repeats": REPEATS,
            "cpu_count": os.cpu_count(),
        },
        "rows": rows,
    }
    atomic_write_text(REPORT_PATH, json.dumps(report, indent=2) + "\n")
    return REPORT_PATH


def test_robustness_overhead(benchmark):
    rows = run_benchmark()
    path = write_report(rows)
    print(f"\n[saved {len(rows)} rows to {path}]")

    supervised = next(r for r in rows if r.get("variant") == "supervised")
    assert supervised["labels_match_raw"]
    # Acceptance bar: supervision adds at most 5% over the bare pool.
    assert supervised["overhead_vs_raw"] <= 0.05

    budget_rows = [r for r in rows if r["section"] == "budget"]
    unbounded = next(r for r in budget_rows if r["max_node_expansions"] is None)
    tightest = next(r for r in budget_rows if r["max_node_expansions"] == 8)
    assert unbounded["degraded_fraction"] == 0.0
    assert tightest["degraded_fraction"] > 0.0

    streaming = next(r for r in rows if r["section"] == "streaming")
    assert streaming["converged"] and streaming["accounting_ok"]
    assert streaming["detect_to_swap_seconds"] <= (
        streaming["staleness_bound_seconds"]
    )

    recoveries = [
        r for r in rows
        if r["section"] == "durability" and r["variant"] == "recovery"
    ]
    assert recoveries, "durability section produced no recovery rows"
    for row in recoveries:
        # The durability contract: every acknowledged point survives.
        assert row["acknowledged_loss"] == 0, row
        assert row["conservation_ok"], row
        assert row["recovery_seconds"] < 30.0, row

    clf, data = _fit()
    queries = _query_block(data, 512, np.random.default_rng(7))
    benchmark(lambda: clf.predict(queries, engine="batch"))


if __name__ == "__main__":
    rows = run_benchmark()
    path = write_report(rows)
    print(f"\nwrote {path}")
