"""Micro-benchmarks for tKDC's core operations (not a paper figure).

Useful for tracking performance regressions in the hot paths: tree
construction, a single pruned density-bounding traversal, grid lookup,
and the exact vectorized baseline.
"""

import numpy as np
import pytest

from repro.baselines.simple import NaiveKDE
from repro.core.bounds import bound_density
from repro.core.grid import GridCache
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.factory import kernel_for_data

N = 20_000
DIM = 4


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(N, DIM))
    kernel = kernel_for_data(data)
    scaled = kernel.scale(data)
    tree = KDTree(scaled)
    naive = NaiveKDE().fit(data)
    threshold = float(np.quantile(naive.density(data[:500]), 0.05))
    return scaled, kernel, tree, threshold


def test_bench_tree_build(workload, benchmark):
    scaled, __, __, __ = workload
    tree = benchmark(KDTree, scaled)
    assert tree.size == N


def test_bench_bound_density_pruned(workload, benchmark):
    scaled, kernel, tree, threshold = workload
    query = scaled[7]

    def one_query():
        return bound_density(
            tree, kernel, query, threshold, threshold, 0.01, TraversalStats()
        )

    result = benchmark(one_query)
    assert result.lower <= result.upper


def test_bench_bound_density_exhaustive(workload, benchmark):
    scaled, kernel, tree, __ = workload
    query = scaled[7]

    def one_query():
        return bound_density(
            tree, kernel, query, 0.0, np.inf, 0.01, TraversalStats(),
            use_threshold_rule=False, use_tolerance_rule=False,
        )

    result = benchmark(one_query)
    assert result.upper - result.lower < 1e-9 * kernel.max_value


def test_bench_grid_lookup(workload, benchmark):
    scaled, kernel, __, threshold = workload
    grid = GridCache(scaled, kernel)
    query = scaled[7]
    benchmark(grid.is_certain_inlier, query, threshold, 0.01)


def test_bench_naive_batch(workload, benchmark):
    scaled, __, __, __ = workload
    rng = np.random.default_rng(1)
    data = rng.normal(size=(N, DIM))
    naive = NaiveKDE().fit(data)
    queries = data[:100]
    densities = benchmark(naive.density, queries)
    assert densities.shape == (100,)
