"""Extension bench: OCSVM training cost vs tKDC (paper Section 5).

The paper dismisses one-class SVMs for this task on training cost
("O(n^3) naively and O(n^2.5) using accelerated methods ... even slower
than evaluating KDE"). With both implemented on the same substrate we
can measure the scaling head-to-head.
"""

import numpy as np
import pytest

from repro.bench.harness import Timer, fit_loglog_slope
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.datasets.registry import load
from repro.outliers import OneClassSVM

SIZES = (500, 1_000, 2_000, 4_000)


@pytest.fixture(scope="module")
def rows(persist):
    results = []
    for n in SIZES:
        data = load("gauss", n=n, seed=0)
        with Timer() as svm_timer:
            OneClassSVM(nu=0.05).fit(data)
        with Timer() as tkdc_timer:
            TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(data)
        results.append(
            {"n": n, "ocsvm_train_s": svm_timer.elapsed,
             "tkdc_train_s": tkdc_timer.elapsed}
        )
    return persist("ocsvm_cost", results)


def test_ocsvm_scales_worse_than_tkdc(rows, benchmark):
    def check():
        sizes = np.array([row["n"] for row in rows], dtype=float)
        svm = np.array([row["ocsvm_train_s"] for row in rows])
        tkdc = np.array([row["tkdc_train_s"] for row in rows])
        svm_slope = fit_loglog_slope(sizes, svm)
        tkdc_slope = fit_loglog_slope(sizes, tkdc)
        # OCSVM training grows clearly superlinearly; tKDC stays near
        # linear (n log n plus the bootstrap).
        assert svm_slope > 1.3
        assert tkdc_slope < svm_slope
        return svm_slope, tkdc_slope

    benchmark.pedantic(check, rounds=1, iterations=1)
