"""Figure 14: mnist dimensionality sweep (PCA projections, 3x bandwidth).

Reproduces the paper's finding that tKDC's advantage shrinks in very
high dimensions on small datasets but never degrades below the naive
computation's kernel count.
"""

import pytest

from repro.bench.experiments import fig14_mnist_dims

DIMS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig14_mnist_dims",
        fig14_mnist_dims(dims=DIMS, n=3000, n_queries=100, seed=0, verbose=True),
    )


def test_fig14_high_dim_behaviour(rows, benchmark):
    def check():
        tkdc = {r["d"]: r for r in rows if r["algorithm"] == "tkdc"}
        simple = {r["d"]: r for r in rows if r["algorithm"] == "simple"}
        # Never worse than naive in kernel evaluations...
        for dim in DIMS:
            assert tkdc[dim]["kernels_per_query"] <= simple[dim]["kernels_per_query"] * 1.01
        # ...with strong pruning in low dimensions that fades at d>=128
        # (the paper: no meaningful speedups past ~100 dims at this n).
        assert tkdc[2]["kernels_per_query"] < 0.1 * 3000
        return tkdc

    benchmark.pedantic(check, rounds=1, iterations=1)
