"""Coreset compression: classify against a sketch vs the full index.

A thin wrapper over the experiment orchestrator: the workload x
construction x fraction grid is one declarative
:class:`~repro.orchestrator.spec.ExperimentSpec` (coresets are a native
grid axis), run through the
:class:`~repro.orchestrator.scheduler.TrialScheduler` with
``record_labels=True`` so every trial's label vector lands in the
results store. The trial runner already computes the certificate ledger
per coreset trial (``k``, ``eta``, ``eta_empirical``, ``eta_applied``,
``certified``, ``rounds``); the only thing the wrapper adds is the
*exact* full-data density of the query block — which needs the data and
the fitted kernel in-process, via the same
:func:`~repro.orchestrator.runner.fit_for_trial` the trials themselves
used — to derive the band-membership quality columns:

- ``label_agreement``: fraction of queries labeled identically to the
  uncompressed classifier;
- ``agreement_outside_band``: the same fraction restricted to queries
  whose exact full-data density lies outside the allowed widened band
  ``|f_X(q) - t| <= eps * t + 2 * eta`` — the only region where the
  certificate permits a flip (eta of estimate error plus eta of
  threshold shift plus the paper's eps-tolerance). Must be 1.0 whenever
  the certificate ``eta`` actually bounds the sketch error;
- ``fraction_in_band``: how much of the query block the widened band
  swallows (small for a sharp certificate, 1.0 when ``eta`` is so
  coarse the guarantee is vacuous);
- ``eta_empirical``: measured ``max |f_X - f_S|`` over probes, to show
  the certificate's slack.

Results go to ``BENCH_coreset.json`` as always, and every run also
leaves build-stamped trial records in ``.repro-bench/``.

Run standalone (``make bench-coreset``), with ``--smoke`` for a
CI-sized pass that writes no report, or under pytest.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import human_rate
from repro.bench.reporting import report_metadata
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.coresets.validate import exact_density
from repro.io.atomic import atomic_write_text
from repro.datasets.registry import load
from repro.orchestrator import (
    ExperimentSpec,
    ResultsStore,
    SchedulerPolicy,
    TrialScheduler,
)
from repro.orchestrator.runner import fit_for_trial
from repro.orchestrator.spec import Trial

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_coreset.json"

# (dataset, n, n_queries): gauss d=2 n=50k is the acceptance workload;
# hep-like d=27 exercises the constructions where the grid cache is off.
WORKLOADS = (
    ("gauss", 50_000, 2000),
    ("hep", 20_000, 200),
)

METHODS = ("uniform", "merge-reduce")

#: Compression levels k/n swept per workload.
FRACTIONS = (0.01, 0.05, 0.20)

#: Tiny workload for the CI smoke run (``--smoke``): exercises both
#: constructions end-to-end in well under a minute, without touching
#: the checked-in report.
SMOKE_WORKLOADS = (("gauss", 5_000, 200),)
SMOKE_FRACTIONS = (0.05,)

#: Per-trial deadline (merge-reduce at n=50k is the slow fit).
TRIAL_DEADLINE = 1_800.0


def _coreset_axis(fractions) -> tuple[tuple[str | None, float], ...]:
    """The grid axis: uncompressed first, then method x fraction."""
    return ((None, 1.0),) + tuple(
        (method, fraction) for fraction in fractions for method in METHODS
    )


def _spec(workloads, fractions) -> ExperimentSpec:
    return ExperimentSpec(
        name="bench-coreset",
        description="coreset constructions x fractions vs uncompressed, "
                    "with labels recorded for the agreement ledger",
        workloads=tuple(workloads),
        engines=("batch",),
        coresets=_coreset_axis(fractions),
        record_labels=True,
    )


def _run_spec(spec: ExperimentSpec, store: ResultsStore | None = None) -> list[dict]:
    """Run a spec's trials sequentially; returns its store records."""
    store = store if store is not None else ResultsStore()
    experiment = f"{spec.name}-{time.strftime('%Y%m%d-%H%M%S')}"
    summary = TrialScheduler(
        store, SchedulerPolicy(jobs=1, deadline=TRIAL_DEADLINE)
    ).run(spec, experiment)
    if not summary.complete:
        raise RuntimeError(
            f"benchmark trials failed: {summary.render()} — "
            f"`tkdc bench run --resume {experiment}` retries them"
        )
    return store.records(experiment)


def _metric(metrics: dict, key: str) -> float:
    """A stored metric as a float (the store spells infinity "inf")."""
    value = metrics[key]
    return math.inf if value == "inf" else float(value)


def _workload_rows(
    dataset: str, n: int, records: list[dict], seed: int = 0
) -> list[dict]:
    """Legacy benchmark rows for one workload's store records."""
    base = next(
        r for r in records if r["config"]["coreset"] is None
    )
    n_queries = base["config"]["n_queries"]
    base_metrics = base["metrics"]
    base_rate = base_metrics["queries_per_s"]
    base_labels = np.asarray(base_metrics["labels"], dtype=np.int64)
    t_base = base_metrics["threshold"]
    epsilon = base["config"]["epsilon"]

    # Exact full-data densities of the query block, for band membership.
    # Same fit, data draw, and query block as the base trial itself
    # (fit_for_trial is deterministic in the trial seed), re-done here
    # because the kernel object can't travel through a JSONL record.
    base_trial = Trial(
        experiment="bench", dataset=dataset, n=n, n_queries=n_queries,
        engine="batch", seed=seed,
    )
    clf, data, queries = fit_for_trial(base_trial)
    scaled_data = clf.kernel.scale(data)
    f_exact = exact_density(scaled_data, clf.kernel, clf.kernel.scale(queries))

    rows = [{
        "dataset": dataset, "n": n, "dim": base_metrics["dim"],
        "n_queries": n_queries, "method": "none", "fraction": 1.0,
        "k": n, "eta": 0.0, "eta_empirical": 0.0, "eta_applied": 0.0,
        "certified": True, "rounds": 0,
        "threshold": t_base, "seed": seed,
        "seconds": base_metrics["seconds"],
        "queries_per_s": base_rate, "speedup_vs_uncompressed": 1.0,
        "label_agreement": 1.0, "fraction_in_band": 0.0,
        "agreement_outside_band": 1.0,
    }]
    compressed = sorted(
        (r for r in records if r["config"]["coreset"] is not None),
        key=lambda r: (r["config"]["coreset_fraction"], r["config"]["coreset"]),
    )
    for record in compressed:
        config = record["config"]
        metrics = record["metrics"]
        labels = np.asarray(metrics["labels"], dtype=np.int64)
        eta = _metric(metrics, "eta")
        # A flip is only permitted where estimate error (eta), threshold
        # shift (eta again) and the paper's tolerance (eps * t) can
        # together carry f_X across the threshold.
        band = epsilon * t_base + 2.0 * eta
        outside = np.abs(f_exact - t_base) > band
        agree = labels == base_labels
        rows.append({
            "dataset": dataset, "n": n, "dim": metrics["dim"],
            "n_queries": n_queries,
            "method": config["coreset"], "fraction": config["coreset_fraction"],
            "k": metrics["k"], "eta": eta,
            "eta_empirical": _metric(metrics, "eta_empirical"),
            "eta_applied": _metric(metrics, "eta_applied"),
            "certified": metrics["certified"],
            "rounds": metrics["rounds"],
            "threshold": metrics["threshold"],
            "seed": record["seed"],
            "fit_seconds": metrics["fit_seconds"],
            "seconds": metrics["seconds"],
            "queries_per_s": metrics["queries_per_s"],
            "speedup_vs_uncompressed": metrics["queries_per_s"] / base_rate,
            "label_agreement": float(np.mean(agree)),
            "fraction_in_band": float(np.mean(~outside)),
            "agreement_outside_band": (
                float(np.mean(agree[outside])) if outside.any() else 1.0
            ),
        })
    return rows


def run_benchmark(
    workloads=WORKLOADS, fractions=FRACTIONS,
    store: ResultsStore | None = None,
) -> list[dict]:
    records = _run_spec(_spec(workloads, fractions), store)
    by_workload: dict[tuple[str, int], list[dict]] = {}
    for record in records:
        config = record["config"]
        by_workload.setdefault(
            (config["dataset"], config["n"]), []
        ).append(record)

    rows = []
    for dataset, n, __ in workloads:
        print(f"\n[{dataset} n={n}]")
        for row in _workload_rows(dataset, n, by_workload[(dataset, n)]):
            rows.append(row)
            print(
                f"  {row['method']:>12} k/n={row['fraction']:.0%}: "
                f"{human_rate(row['queries_per_s'])} "
                f"({row['speedup_vs_uncompressed']:.2f}x, "
                f"agree={row['label_agreement']:.3f}, "
                f"outside-band agree={row['agreement_outside_band']:.3f}, "
                f"eta={row['eta']:.3g} emp={row['eta_empirical']:.3g})"
            )
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "coreset",
        **report_metadata(),
        "settings": {
            "p": 0.01,
            "epsilon": 0.01,
            "engine": "batch",
            "band": "eps * t_base + 2 * eta",
        },
        "rows": rows,
    }
    atomic_write_text(
        REPORT_PATH, json.dumps(report, indent=2, default=_jsonable) + "\n"
    )
    return REPORT_PATH


def _jsonable(value):
    if isinstance(value, float) and math.isinf(value):  # pragma: no cover
        return "inf"
    raise TypeError(f"not JSON serializable: {value!r}")


def _sanitize(rows: list[dict]) -> list[dict]:
    """Replace inf eta values with the string 'inf' for strict JSON."""
    out = []
    for row in rows:
        row = dict(row)
        for key in ("eta", "eta_empirical"):
            if isinstance(row.get(key), float) and math.isinf(row[key]):
                row[key] = "inf"
        out.append(row)
    return out


def test_coreset_speedup(benchmark):
    rows = run_benchmark()
    path = write_report(_sanitize(rows))
    print(f"\n[saved {len(rows)} rows to {path}]")

    # Acceptance: >= 3x over the uncompressed batch engine at k/n = 5%
    # on gauss d=2 n=50k, with full agreement outside the widened band.
    gauss_5 = [
        r for r in rows
        if r["dataset"] == "gauss" and r["fraction"] == 0.05
    ]
    assert any(r["speedup_vs_uncompressed"] >= 3.0 for r in gauss_5)
    finite = [
        r for r in rows
        if r["method"] != "none" and np.isfinite(r["eta"])
    ]
    assert all(r["agreement_outside_band"] == 1.0 for r in finite)

    data = load("gauss", n=50_000, seed=0)
    clf = TKDCClassifier(
        TKDCConfig(p=0.01, seed=0, refine_threshold=False,
                   coreset="uniform", coreset_fraction=0.05)
    ).fit(data)
    benchmark.pedantic(clf.predict, args=(data[:200],), rounds=1, iterations=1)


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        smoke_rows = run_benchmark(
            workloads=SMOKE_WORKLOADS, fractions=SMOKE_FRACTIONS
        )
        finite_rows = [
            r for r in smoke_rows
            if r["method"] != "none" and np.isfinite(r["eta"])
        ]
        assert all(r["agreement_outside_band"] == 1.0 for r in finite_rows)
        print(f"\nsmoke OK ({len(smoke_rows)} rows, report not written)")
    else:
        write_report(_sanitize(run_benchmark()))
        print(f"\nwrote {REPORT_PATH}")
