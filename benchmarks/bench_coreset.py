"""Coreset compression: classify against a sketch vs the full index.

For each workload and compression level this fits one uncompressed
classifier and one per coreset construction, times the same query block
through ``classify`` (batch engine, serial), and records the result in
``BENCH_coreset.json`` at the repo root. Alongside throughput it reports
the quality ledger compression is accountable to:

- ``label_agreement``: fraction of queries labeled identically to the
  uncompressed classifier;
- ``agreement_outside_band``: the same fraction restricted to queries
  whose *exact* full-data density lies outside the allowed widened band
  ``|f_X(q) - t| <= eps * t + 2 * eta`` — the only region where the
  certificate permits a flip (eta of estimate error plus eta of
  threshold shift plus the paper's eps-tolerance). Must be 1.0 whenever
  the certificate ``eta`` actually bounds the sketch error;
- ``fraction_in_band``: how much of the query block the widened band
  swallows (small for a sharp certificate, 1.0 when ``eta`` is so coarse
  the guarantee is vacuous);
- ``eta_empirical``: measured ``max |f_X - f_S|`` over probes
  (:func:`repro.coresets.validate.empirical_eta`), to show the
  certificate's slack.

Run standalone (``make bench-coreset``) or under pytest.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.bench.harness import Timer, human_rate, throughput
from repro.bench.reporting import report_metadata
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.coresets.validate import empirical_eta, exact_density
from repro.io.atomic import atomic_write_text
from repro.datasets.registry import load

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_coreset.json"

# (dataset, n, n_queries): gauss d=2 n=50k is the acceptance workload;
# hep-like d=27 exercises the constructions where the grid cache is off.
WORKLOADS = (
    ("gauss", 50_000, 2000),
    ("hep", 20_000, 200),
)

METHODS = ("uniform", "merge-reduce")

#: Compression levels k/n swept per workload.
FRACTIONS = (0.01, 0.05, 0.20)

#: Tiny workload for the CI smoke run (``--smoke``): exercises both
#: constructions end-to-end in well under a minute, without touching
#: the checked-in report.
SMOKE_WORKLOADS = (("gauss", 5_000, 200),)
SMOKE_FRACTIONS = (0.05,)


def _query_block(data: np.ndarray, n_queries: int, rng: np.random.Generator) -> np.ndarray:
    """Half in-distribution points, half uniform box draws (outlier mix)."""
    inliers = data[rng.choice(data.shape[0], size=n_queries // 2, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0),
        size=(n_queries - n_queries // 2, data.shape[1]),
    )
    return rng.permutation(np.concatenate([inliers, box]))


def _bench_workload(
    dataset: str, n: int, n_queries: int, fractions=FRACTIONS, seed: int = 0
) -> list[dict]:
    data = load(dataset, n=n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    queries = _query_block(data, n_queries, rng)
    base_config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False, bootstrap_s0=min(2000, n)
    )

    base = TKDCClassifier(base_config).fit(data)
    base.tree.flatten()
    base.predict(queries[:8])  # warm up
    with Timer() as timer:
        base_labels = base.predict(queries)
    base_rate = throughput(n_queries, timer.elapsed)
    t_base = base.threshold.value
    epsilon = base_config.epsilon

    # Exact full-data densities of the query block, for band membership.
    scaled_data = base.kernel.scale(data)
    f_exact = exact_density(scaled_data, base.kernel, base.kernel.scale(queries))

    rows = [{
        "dataset": dataset, "n": n, "dim": data.shape[1],
        "n_queries": n_queries, "method": "none", "fraction": 1.0,
        "k": n, "eta": 0.0, "eta_empirical": 0.0, "eta_applied": 0.0,
        "certified": True, "rounds": 0,
        "threshold": t_base, "seconds": timer.elapsed,
        "queries_per_s": base_rate, "speedup_vs_uncompressed": 1.0,
        "label_agreement": 1.0, "fraction_in_band": 0.0,
        "agreement_outside_band": 1.0,
    }]
    for fraction in fractions:
        for method in METHODS:
            config = base_config.with_updates(
                coreset=method, coreset_fraction=fraction
            )
            with Timer() as fit_timer:
                clf = TKDCClassifier(config).fit(data)
            clf.tree.flatten()
            clf.predict(queries[:8])  # warm up
            with Timer() as timer:
                labels = clf.predict(queries)
            rate = throughput(n_queries, timer.elapsed)

            coreset = clf.coreset_
            eta = coreset.eta
            eta_emp = empirical_eta(
                scaled_data, coreset, clf.kernel,
                rng=np.random.default_rng(seed + 2),
            )
            # A flip is only permitted where estimate error (eta),
            # threshold shift (eta again) and the paper's tolerance
            # (eps * t) can together carry f_X across the threshold.
            band = epsilon * t_base + 2.0 * eta
            outside = np.abs(f_exact - t_base) > band
            agree = labels == base_labels
            rows.append({
                "dataset": dataset, "n": n, "dim": data.shape[1],
                "n_queries": n_queries, "method": method, "fraction": fraction,
                "k": coreset.k, "eta": eta, "eta_empirical": eta_emp,
                "eta_applied": clf.eta_applied, "certified": clf.certified,
                "rounds": coreset.rounds,
                "threshold": clf.threshold.value,
                "fit_seconds": fit_timer.elapsed,
                "seconds": timer.elapsed, "queries_per_s": rate,
                "speedup_vs_uncompressed": rate / base_rate,
                "label_agreement": float(np.mean(agree)),
                "fraction_in_band": float(np.mean(~outside)),
                "agreement_outside_band": (
                    float(np.mean(agree[outside])) if outside.any() else 1.0
                ),
            })
    return rows


def run_benchmark(workloads=WORKLOADS, fractions=FRACTIONS) -> list[dict]:
    rows = []
    for dataset, n, n_queries in workloads:
        print(f"\n[{dataset} n={n}]")
        for row in _bench_workload(dataset, n, n_queries, fractions=fractions):
            rows.append(row)
            print(
                f"  {row['method']:>12} k/n={row['fraction']:.0%}: "
                f"{human_rate(row['queries_per_s'])} "
                f"({row['speedup_vs_uncompressed']:.2f}x, "
                f"agree={row['label_agreement']:.3f}, "
                f"outside-band agree={row['agreement_outside_band']:.3f}, "
                f"eta={row['eta']:.3g} emp={row['eta_empirical']:.3g})"
            )
    return rows


def write_report(rows: list[dict]) -> Path:
    report = {
        "benchmark": "coreset",
        **report_metadata(),
        "settings": {
            "p": 0.01,
            "epsilon": 0.01,
            "engine": "batch",
            "band": "eps * t_base + 2 * eta",
        },
        "rows": rows,
    }
    atomic_write_text(
        REPORT_PATH, json.dumps(report, indent=2, default=_jsonable) + "\n"
    )
    return REPORT_PATH


def _jsonable(value):
    if isinstance(value, float) and math.isinf(value):  # pragma: no cover
        return "inf"
    raise TypeError(f"not JSON serializable: {value!r}")


def _sanitize(rows: list[dict]) -> list[dict]:
    """Replace inf eta values with the string 'inf' for strict JSON."""
    out = []
    for row in rows:
        row = dict(row)
        for key in ("eta", "eta_empirical"):
            if isinstance(row.get(key), float) and math.isinf(row[key]):
                row[key] = "inf"
        out.append(row)
    return out


def test_coreset_speedup(benchmark):
    rows = run_benchmark()
    path = write_report(_sanitize(rows))
    print(f"\n[saved {len(rows)} rows to {path}]")

    # Acceptance: >= 3x over the uncompressed batch engine at k/n = 5%
    # on gauss d=2 n=50k, with full agreement outside the widened band.
    gauss_5 = [
        r for r in rows
        if r["dataset"] == "gauss" and r["fraction"] == 0.05
    ]
    assert any(r["speedup_vs_uncompressed"] >= 3.0 for r in gauss_5)
    finite = [
        r for r in rows
        if r["method"] != "none" and np.isfinite(r["eta"])
    ]
    assert all(r["agreement_outside_band"] == 1.0 for r in finite)

    data = load("gauss", n=50_000, seed=0)
    clf = TKDCClassifier(
        TKDCConfig(p=0.01, seed=0, refine_threshold=False,
                   coreset="uniform", coreset_fraction=0.05)
    ).fit(data)
    benchmark.pedantic(clf.predict, args=(data[:200],), rounds=1, iterations=1)


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        smoke_rows = run_benchmark(
            workloads=SMOKE_WORKLOADS, fractions=SMOKE_FRACTIONS
        )
        finite_rows = [
            r for r in smoke_rows
            if r["method"] != "none" and np.isfinite(r["eta"])
        ]
        assert all(r["agreement_outside_band"] == 1.0 for r in finite_rows)
        print(f"\nsmoke OK ({len(smoke_rows)} rows, report not written)")
    else:
        write_report(_sanitize(run_benchmark()))
        print(f"\nwrote {REPORT_PATH}")
