"""Figure 13: rkde cutoff-radius sweep vs tKDC.

Shows the paper's point: shrinking the radius buys rkde speed only at
the cost of density errors on the order of the threshold itself, and
even then it cannot match tKDC.
"""

import pytest

from repro.bench.experiments import fig13_rkde_radius


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig13_rkde_radius",
        fig13_rkde_radius(radii=(0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
                          n=12_000, n_queries=200, seed=0, verbose=True),
    )


def test_fig13_radius_tradeoff(rows, benchmark):
    def check():
        rkde = [r for r in rows if r["algorithm"] == "rkde"]
        radii = [r["radius"] for r in rkde]
        errors = [r["max_err_over_t"] for r in rkde]
        rates = [r["queries_per_s"] for r in rkde]
        # Error shrinks monotonically with radius...
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))
        # ...and small radii (r <= 1.2 bandwidths) carry errors on the
        # order of the threshold, as the paper reports.
        assert errors[radii.index(0.5)] > 0.5
        # Speed decreases as the radius grows.
        assert rates[0] > rates[-1]
        return errors

    benchmark.pedantic(check, rounds=1, iterations=1)
