"""Figure 8: classification F1 against exact-KDE ground truth."""

import pytest

from repro.bench.experiments import fig8_accuracy


@pytest.fixture(scope="module")
def rows(persist):
    return persist("fig08_accuracy", fig8_accuracy(n=4000, seed=0, verbose=True))


def test_fig8_accuracy_shape(rows, benchmark):
    """tkdc/sklearn near-perfect; ks degrades sharply at d=4."""
    def summarize():
        by_key = {(r["dataset"], r["d"], r["algorithm"]): r["f1_low_class"] for r in rows}
        for (dataset, dim, algo), f1 in by_key.items():
            if algo in ("tkdc", "sklearn"):
                assert f1 > 0.9, (dataset, dim, algo, f1)
        ks_d2 = [f1 for (d, dim, a), f1 in by_key.items() if a == "ks" and dim == 2]
        ks_d4 = [f1 for (d, dim, a), f1 in by_key.items() if a == "ks" and dim == 4]
        assert min(ks_d2) > max(ks_d4) - 0.05
        return by_key

    benchmark.pedantic(summarize, rounds=1, iterations=1)
