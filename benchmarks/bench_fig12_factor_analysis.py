"""Figure 12: cumulative factor analysis of tKDC's optimizations.

Reproduces the paper's headline internal result: adding the threshold
pruning rule to a plain tree traversal cuts kernel evaluations per point
by orders of magnitude; tolerance, equi-width splits, and the grid each
contribute incremental improvements.
"""

import pytest

from repro.bench.experiments import fig12_factor_analysis


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig12_factor_analysis",
        fig12_factor_analysis(n=12_000, n_queries=1_000, slow_queries=60,
                              seed=0, verbose=True),
    )


def test_fig12_cumulative_gains(rows, benchmark):
    def check():
        by_variant = {row["variant"]: row for row in rows}
        baseline = by_variant["baseline"]["kernels_per_pt"]
        threshold = by_variant["+threshold"]["kernels_per_pt"]
        final = by_variant["+grid"]["kernels_per_pt"]
        # Baseline evaluates every kernel; the threshold rule removes
        # >95% of them; the full stack is at least as good again.
        assert baseline == pytest.approx(12_000, rel=0.01)
        assert threshold < 0.05 * baseline
        assert final <= threshold * 1.5
        # Throughput ordering: the full stack beats the bare baseline by
        # a wide margin.
        assert (
            by_variant["+grid"]["points_per_s"]
            > 5 * by_variant["baseline"]["points_per_s"]
        )
        return by_variant

    benchmark.pedantic(check, rounds=1, iterations=1)
