"""Figure 15: tKDC query throughput across quantile thresholds p."""

import pytest

from repro.bench.experiments import fig15_threshold_sweep

QUANTILES = (0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99)


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "fig15_threshold_sweep",
        fig15_threshold_sweep(quantiles=QUANTILES, n=12_000, n_queries=300,
                              seed=0, verbose=True),
    )


def test_fig15_quantile_dependence(rows, benchmark):
    def check():
        tkdc = {r["p"]: r for r in rows if r["algorithm"] == "tkdc"}
        # Cost tracks the density of points near the threshold
        # (Appendix A: runtime proportional to q'(t)): extreme-low
        # quantiles are much cheaper than the middle.
        assert tkdc[0.01]["kernels_per_query"] < 0.2 * tkdc[0.5]["kernels_per_query"]
        # And tkdc remains far below the n=12000 naive kernel count at
        # every p.
        for p in QUANTILES:
            assert tkdc[p]["kernels_per_query"] < 0.25 * 12_000, p
        return tkdc

    benchmark.pedantic(check, rounds=1, iterations=1)
