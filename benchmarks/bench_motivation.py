"""Section 2.3 motivation: raw density thresholds across datasets."""

import pytest

from repro.bench.experiments import motivation_thresholds


@pytest.fixture(scope="module")
def rows(persist):
    return persist(
        "motivation_thresholds",
        motivation_thresholds(n=3_000, seed=0, verbose=True),
    )


def test_raw_thresholds_span_many_decades(rows, benchmark):
    def check():
        spread = next(row for row in rows if row["dataset"] == "SPREAD")["log10_t"]
        # The same p = 1% maps to raw densities many orders of magnitude
        # apart — the reason tKDC is parameterized by quantile.
        assert spread > 6.0
        return spread

    benchmark.pedantic(check, rounds=1, iterations=1)
