"""Serving-daemon behaviour under load: latency, shedding, degradation.

Spins up the real HTTP daemon (in-process, ephemeral port) against a
synthetic gauss model and drives it through three phases:

- **steady**: offered load inside the admission capacity — the
  baseline p50/p99 service latency of the full pipeline (HTTP parse,
  admission, budgeting, watchdog, JSON response).
- **overload**: several times more concurrent clients than execution
  slots — measures how much traffic is shed with structured 429s and
  verifies latency of the *answered* requests stays bounded instead of
  queueing without limit.
- **tight deadlines**: per-request deadlines far below what the full
  traversal needs — measures how often the anytime budget produces
  honestly-flagged degraded answers instead of deadline blowups.

It then sweeps the multi-process fleet (``workers`` = 1/2/4; the
workers=1 point is the unchanged single-process daemon) and records
the throughput-scaling ratio together with ``cpu_count`` — scaling is
physically bounded by the cores available, so the gate interprets the
ratio relative to the recorded core count, not an absolute target.

Writes ``BENCH_serving.json`` at the repo root. ``--smoke`` runs a
tiny workload and skips the report (CI guard: the daemon starts,
serves, sheds, and drains inside the job timeout).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import report_metadata
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.io.atomic import atomic_write_text
from repro.io.models import save_model
from repro.serve import (
    FleetServer,
    ModelManager,
    ServeClient,
    ServeConfig,
    TKDCServer,
    WorkerFleet,
)

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

N_TRAIN = 20_000
N_TRAIN_SMOKE = 2_000
SEED = 7


def fit_and_save(n_train: int, directory: Path) -> Path:
    rng = np.random.default_rng(SEED)
    a = rng.normal(size=(n_train // 2, 2)) * 0.5 + np.array([-2.0, 0.0])
    b = rng.normal(size=(n_train // 2, 2)) * 0.5 + np.array([2.0, 0.0])
    data = np.concatenate([a, b])
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=SEED)).fit(data)
    return save_model(directory / "bench_model", clf)


def start_server(model_path: Path, config: ServeConfig):
    manager = ModelManager(model_path, config)
    server = TKDCServer(manager)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ServeClient("127.0.0.1", server.port, timeout=60.0)
    assert client.wait_ready(15.0), "daemon never became ready"
    return server, thread, client


def start_fleet(model_path: Path, config: ServeConfig):
    fleet = WorkerFleet(model_path, config)
    server = FleetServer(fleet)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ServeClient("127.0.0.1", server.port, timeout=60.0)
    assert client.wait_ready(90.0), "fleet never became ready"
    return fleet, server, thread, client


def workers_sweep(model_path: Path, smoke: bool, rng: np.random.Generator) -> dict:
    """Measure answered/s at workers = 1, 2, 4 over identical load shape.

    Offered load scales with the worker count (2 clients per worker) so
    each point is driven at the same per-worker pressure; the workers=1
    point goes through the unchanged single-process TKDCServer path.
    """
    counts = (1, 2) if smoke else (1, 2, 4)
    requests_per_thread = 5 if smoke else 25
    points = []
    for workers in counts:
        config = ServeConfig(
            port=0,
            workers=workers,
            max_concurrency=2,
            queue_depth=4,
            default_deadline=2.0,
            calibration_queries=64 if smoke else 256,
        )
        if workers == 1:
            server, thread, client = start_server(model_path, config)
            fleet = None
        else:
            fleet, server, thread, client = start_fleet(model_path, config)
        try:
            sample = drive(
                client, 2 * workers, requests_per_thread, 2_000.0, rng
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
            if fleet is not None:
                fleet.stop()
        points.append({"workers": workers, **sample})

    base = points[0]["answered_per_s"]
    top = points[-1]["answered_per_s"]
    return {
        "cpu_count": os.cpu_count() or 1,
        "points": points,
        "max_workers": points[-1]["workers"],
        "scaling_ratio": round(top / base, 3) if base else 0.0,
    }


def percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def drive(
    client: ServeClient,
    n_threads: int,
    requests_per_thread: int,
    deadline_ms: float,
    rng: np.random.Generator,
) -> dict:
    """Hammer /classify from ``n_threads`` workers; aggregate outcomes."""
    points_pool = [
        (rng.normal(size=(8, 2)) * 3.0).tolist() for __ in range(32)
    ]
    lock = threading.Lock()
    latencies: list[float] = []
    counts = {"ok": 0, "shed": 0, "timed_out": 0, "degraded": 0, "other": 0}

    def worker(offset: int) -> None:
        for i in range(requests_per_thread):
            body = points_pool[(offset + i) % len(points_pool)]
            t0 = time.monotonic()
            status, payload = client.classify(body, deadline_ms=deadline_ms)
            elapsed = time.monotonic() - t0
            with lock:
                if status == 200:
                    counts["ok"] += 1
                    latencies.append(elapsed)
                    if payload.get("degraded_any"):
                        counts["degraded"] += 1
                elif status == 429:
                    counts["shed"] += 1
                elif status == 503:
                    counts["timed_out"] += 1
                else:
                    counts["other"] += 1

    threads = [
        threading.Thread(target=worker, args=(k,), daemon=True)
        for k in range(n_threads)
    ]
    t0 = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t0

    total = n_threads * requests_per_thread
    return {
        "clients": n_threads,
        "requests": total,
        "seed": SEED,
        "deadline_ms": deadline_ms,
        "wall_s": round(wall, 3),
        "answered_per_s": round(counts["ok"] / wall, 1) if wall else 0.0,
        "ok": counts["ok"],
        "shed": counts["shed"],
        "timed_out": counts["timed_out"],
        "other": counts["other"],
        "shed_rate": round(counts["shed"] / total, 4),
        "degraded_rate": (
            round(counts["degraded"] / counts["ok"], 4) if counts["ok"] else 0.0
        ),
        "latency_p50_ms": round(percentile(latencies, 0.50) * 1000.0, 3),
        "latency_p99_ms": round(percentile(latencies, 0.99) * 1000.0, 3),
    }


def run_benchmark(smoke: bool) -> dict:
    import tempfile

    scale = 1 if smoke else 4
    config = ServeConfig(
        port=0,
        max_concurrency=2,
        queue_depth=4,
        default_deadline=2.0,
        calibration_queries=64 if smoke else 256,
    )
    with tempfile.TemporaryDirectory() as tmp:
        model_path = fit_and_save(
            N_TRAIN_SMOKE if smoke else N_TRAIN, Path(tmp)
        )
        server, thread, client = start_server(model_path, config)
        rng = np.random.default_rng(SEED)
        try:
            phases = {
                # Offered load ~= capacity: latency baseline.
                "steady": drive(client, 2, 10 * scale, 2_000.0, rng),
                # 6x the slot count: shedding must kick in.
                "overload": drive(client, 12, 5 * scale, 2_000.0, rng),
                # Deadlines below the full-traversal time: degraded answers.
                "tight_deadline": drive(client, 2, 10 * scale, 2.0, rng),
            }
            statz = client.statz()[1]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10.0)
        fleet_scaling = workers_sweep(model_path, smoke, rng)

    terminal = (
        statz["completed"] + statz["shed"] + statz["rejected"]
        + statz["timed_out"] + statz["errors"] + statz["drained"]
    )
    return {
        "benchmark": "serving",
        **report_metadata(),
        "n_train": N_TRAIN_SMOKE if smoke else N_TRAIN,
        "serve_config": {
            "max_concurrency": config.max_concurrency,
            "queue_depth": config.queue_depth,
        },
        "expansions_per_second": statz["expansions_per_second"],
        "phases": phases,
        "fleet_scaling": fleet_scaling,
        "accounting": {
            "submitted": statz["submitted"],
            "terminal": terminal,
            "balanced": terminal == statz["submitted"],
        },
    }


def main() -> int:
    smoke = "--smoke" in sys.argv
    report = run_benchmark(smoke)
    print(json.dumps(report, indent=2))
    if not report["accounting"]["balanced"]:
        print("FAIL: statz accounting does not balance", file=sys.stderr)
        return 1
    overload = report["phases"]["overload"]
    if overload["shed"] == 0:
        print("FAIL: overload phase shed nothing", file=sys.stderr)
        return 1
    if any(p["ok"] == 0 for p in report["fleet_scaling"]["points"]):
        print("FAIL: a fleet sweep point answered nothing", file=sys.stderr)
        return 1
    if smoke:
        print("\nsmoke OK (report not written)")
        return 0
    atomic_write_text(REPORT_PATH, json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
