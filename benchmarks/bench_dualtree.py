"""Extension bench: dual-tree batch classification vs per-query tKDC.

The paper's Section 5 future-work direction, measured on its natural
workload — classifying a dense grid of the 2-d shuttle measurement
plane for region visualization (Figure 1b).
"""

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.bench.harness import Timer
from repro.datasets.registry import load

GRID_SIDE = 90


@pytest.fixture(scope="module")
def workload():
    data = load("shuttle", n=8000, seed=0)[:, [3, 5]]
    clf = TKDCClassifier(TKDCConfig(p=0.1, seed=0)).fit(data)
    xs = np.linspace(data[:, 0].min(), data[:, 0].max(), GRID_SIDE)
    ys = np.linspace(data[:, 1].min(), data[:, 1].max(), GRID_SIDE)
    grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
    queries = np.column_stack([grid_x.ravel(), grid_y.ravel()])
    return clf, queries


@pytest.fixture(scope="module")
def rows(workload, persist):
    clf, queries = workload
    with Timer() as single_timer:
        single = clf.classify(queries)
    with Timer() as dual_timer:
        dual = clf.classify_batch(queries)
    agreement = float(np.mean([int(a) == int(b) for a, b in zip(single, dual)]))
    results = [
        {
            "mode": "per-query", "queries": queries.shape[0],
            "seconds": single_timer.elapsed,
            "queries_per_s": queries.shape[0] / max(single_timer.elapsed, 1e-12),
            "agreement": agreement,
        },
        {
            "mode": "dual-tree", "queries": queries.shape[0],
            "seconds": dual_timer.elapsed,
            "queries_per_s": queries.shape[0] / max(dual_timer.elapsed, 1e-12),
            "agreement": agreement,
        },
    ]
    return persist("dualtree_grid", results)


def test_bench_dualtree_batch(workload, rows, benchmark):
    """Time the dual-tree batch; verify agreement and the win."""
    assert rows[0]["agreement"] == 1.0
    # On a coherent grid the dual-tree must not lose; it typically wins
    # by 2-3x at this density.
    assert rows[1]["seconds"] < rows[0]["seconds"] * 1.2

    clf, queries = workload
    labels = benchmark(clf.classify_batch, queries)
    assert labels.shape == (queries.shape[0],)
