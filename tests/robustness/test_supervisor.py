"""Supervised dispatch unit tests: crash, stall, error, retry, fallback.

Workers live at module level so the pool can pickle them by reference;
faults key on ``(chunk_index, attempt)`` exactly like the production
plan, so every scenario is deterministic.
"""

import multiprocessing
import os
import threading

import pytest

from repro.robustness.supervisor import (
    SupervisionPolicy,
    SupervisionReport,
    supervised_map,
)

FORK = multiprocessing.get_context("fork")

#: Deadlines are generous vs the work (instant) but small vs suite time.
FAST = SupervisionPolicy(timeout=10.0, max_retries=2, backoff=0.0)


def _echo(index, attempt, chunk):
    return (index, attempt, chunk)


def _crash_first_attempt(index, attempt, chunk):
    if index == 0 and attempt == 0:
        os._exit(17)
    return (index, attempt, chunk)


def _always_crash(index, attempt, chunk):
    os._exit(17)


def _stall_first_attempt(index, attempt, chunk):
    if index == 0 and attempt == 0:
        threading.Event().wait()  # blocks until the deadline reclaims it
    return (index, attempt, chunk)


def _raise_first_attempt(index, attempt, chunk):
    if index == 2 and attempt == 0:
        raise ValueError("transient worker bug")
    return (index, attempt, chunk)


def _serial(index, chunk):
    return ("serial", index, chunk)


class TestPolicyValidation:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            SupervisionPolicy(timeout=0.0)

    def test_rejects_negative_retries_and_backoff(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            SupervisionPolicy(backoff=-0.1)

    def test_none_timeout_allowed(self):
        assert SupervisionPolicy(timeout=None).timeout is None


class TestReport:
    def test_degraded_flag(self):
        assert not SupervisionReport(pools_created=1, retries=0).degraded
        assert SupervisionReport(crashes=1).degraded
        assert SupervisionReport(timeouts=1).degraded
        assert SupervisionReport(serial_fallbacks=1).degraded

    def test_as_extras_shape(self):
        extras = SupervisionReport(crashes=2).as_extras()
        assert extras["supervisor_crashes"] == 2.0
        assert all(key.startswith("supervisor_") for key in extras)
        assert all(isinstance(value, float) for value in extras.values())


class TestSupervisedMap:
    def test_clean_run_is_ordered_and_undegraded(self):
        results, report = supervised_map(
            _echo, ["a", "b", "c"], 2, FAST, _serial, FORK
        )
        assert [chunk for (__, __, chunk) in results] == ["a", "b", "c"]
        assert [index for (index, __, __) in results] == [0, 1, 2]
        assert report.pools_created == 1
        assert not report.degraded

    def test_crashed_worker_is_detected_and_chunk_retried(self):
        results, report = supervised_map(
            _crash_first_attempt, ["a", "b", "c"], 2, FAST, _serial, FORK
        )
        assert [chunk for (*__, chunk) in results] == ["a", "b", "c"]
        # Chunk 0 completed on a retry, not the serial fallback.
        assert results[0][1] >= 1
        assert report.crashes >= 1
        assert report.retries >= 1
        assert report.pools_created >= 2  # broken pool was rebuilt
        assert report.serial_fallbacks == 0
        assert report.degraded

    def test_stalled_worker_is_reclaimed_by_deadline(self):
        policy = SupervisionPolicy(timeout=1.5, max_retries=2, backoff=0.0)
        results, report = supervised_map(
            _stall_first_attempt, ["a", "b"], 2, policy, _serial, FORK
        )
        assert [chunk for (*__, chunk) in results] == ["a", "b"]
        assert results[0][1] >= 1
        assert report.timeouts >= 1
        assert report.pools_created >= 2  # suspect pool was torn down
        assert report.serial_fallbacks == 0

    def test_worker_exception_is_retried_not_fatal(self):
        results, report = supervised_map(
            _raise_first_attempt, ["a", "b", "c"], 2, FAST, _serial, FORK
        )
        assert [chunk for (*__, chunk) in results] == ["a", "b", "c"]
        assert report.errors == 1
        assert report.retries >= 1

    def test_permanent_crash_falls_back_to_serial(self):
        # One chunk, so retry accounting is exact: attempts 0 and 1 both
        # crash, the attempt counter passes max_retries, and the serial
        # fallback completes the batch in-process.
        policy = SupervisionPolicy(timeout=10.0, max_retries=1, backoff=0.0)
        results, report = supervised_map(
            _always_crash, ["only"], 1, policy, _serial, FORK
        )
        assert results == [("serial", 0, "only")]
        assert report.serial_fallbacks == 1
        assert report.crashes == 2
        assert report.retries == 1
        assert report.degraded
