"""Atomic temp-then-rename writes: never a torn file, never a leftover."""

import os
import pickle
import stat

import numpy as np
import pytest

from repro.io.atomic import atomic_write_bytes, atomic_write_text
from repro.io.models import load_model, save_model


def _entries(directory):
    return sorted(p.name for p in directory.iterdir())


class TestAtomicWrite:
    def test_roundtrip_text_and_bytes(self, tmp_path):
        text_path = atomic_write_text(tmp_path / "report.json", '{"ok": 1}')
        assert text_path.read_text() == '{"ok": 1}'
        bytes_path = atomic_write_bytes(tmp_path / "blob.bin", b"\x00\x01")
        assert bytes_path.read_bytes() == b"\x00\x01"
        # No temp residue next to either artifact.
        assert _entries(tmp_path) == ["blob.bin", "report.json"]

    def test_overwrite_replaces_complete_content(self, tmp_path):
        target = tmp_path / "model.json"
        atomic_write_text(target, "x" * 4096)
        atomic_write_text(target, "short")
        assert target.read_text() == "short"  # no stale suffix from the long file
        assert _entries(tmp_path) == ["model.json"]

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(target, "made it")
        assert target.read_text() == "made it"

    def test_failed_write_leaves_old_file_and_no_temp(self, tmp_path, monkeypatch):
        target = tmp_path / "precious.json"
        atomic_write_text(target, "old complete content")

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(target, "new content that never lands")
        # The interrupted write changed nothing observable.
        assert target.read_text() == "old complete content"
        assert _entries(tmp_path) == ["precious.json"]


class TestDirectoryDurability:
    """The rename itself must be made durable: fsync the parent dir."""

    def test_parent_directory_fsynced_after_replace(self, tmp_path, monkeypatch):
        events: list[str] = []
        real_replace = os.replace
        real_fsync = os.fsync

        def recording_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        def recording_fsync(fd):
            is_dir = stat.S_ISDIR(os.fstat(fd).st_mode)
            events.append("fsync_dir" if is_dir else "fsync_file")
            return real_fsync(fd)

        monkeypatch.setattr(os, "replace", recording_replace)
        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write_bytes(tmp_path / "out.bin", b"payload")
        assert "fsync_dir" in events, "parent directory was never fsynced"
        # Ordering: file contents reach disk, then the rename, and only
        # then the directory entry is flushed — any other order can lose
        # either the data or the rename on power cut.
        assert (
            events.index("fsync_file")
            < events.index("replace")
            < events.index("fsync_dir")
        )

    def test_directory_fsync_refusal_is_tolerated(self, tmp_path, monkeypatch):
        real_fsync = os.fsync

        def picky_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("directory fsync not supported here")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", picky_fsync)
        target = atomic_write_bytes(tmp_path / "out.bin", b"still lands")
        assert target.read_bytes() == b"still lands"

    def test_directory_open_refusal_is_tolerated(self, tmp_path, monkeypatch):
        real_open = os.open

        def picky_open(path, flags, *args, **kwargs):
            if os.path.isdir(path):
                raise OSError("cannot open directories on this platform")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", picky_open)
        target = atomic_write_text(tmp_path / "out.txt", "still lands")
        assert target.read_text() == "still lands"


def test_model_save_is_atomic(tmp_path, fitted, query_points):
    """``save_model`` rides the atomic path end to end."""
    path = tmp_path / "clf.tkdc"
    save_model(path, fitted)
    assert _entries(tmp_path) == ["clf.tkdc"]
    loaded = load_model(path)
    assert np.array_equal(
        loaded.classify(query_points), fitted.classify(query_points)
    )
    # The payload on disk is a complete pickle (a torn prefix would not
    # unpickle at all).
    with open(path, "rb") as handle:
        pickle.load(handle)
