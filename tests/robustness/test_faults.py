"""FaultPlan / FaultInjector determinism: faults fire exactly as planned."""

import numpy as np
import pytest

from repro.robustness.faults import (
    WORKER_CRASH,
    WORKER_STALL,
    FaultInjector,
    FaultPlan,
)


class TestFaultPlanValidation:
    def test_rejects_unknown_bound_mode(self):
        with pytest.raises(ValueError, match="corrupt_bound_mode"):
            FaultPlan(corrupt_bound_mode="flip")

    def test_rejects_negative_fail_attempts(self):
        with pytest.raises(ValueError, match="fail_attempts"):
            FaultPlan(fail_attempts=-1)

    @pytest.mark.parametrize("field", ["bound_rate", "leaf_rate"])
    def test_rejects_out_of_range_rates(self, field):
        with pytest.raises(ValueError, match=field):
            FaultPlan(**{field: 1.5})

    def test_rejects_crash_stall_overlap(self):
        with pytest.raises(ValueError, match=r"\[1\]"):
            FaultPlan(crash_chunks=(0, 1), stall_chunks=(1, 2))

    def test_targets_properties(self):
        assert not FaultPlan().targets_traversal
        assert not FaultPlan().targets_workers
        assert FaultPlan(corrupt_bound_nodes=(3,)).targets_traversal
        assert FaultPlan(underflow_leaves=(0,)).targets_traversal
        assert FaultPlan(bound_rate=0.1).targets_traversal
        assert FaultPlan(crash_chunks=(0,)).targets_workers
        assert FaultPlan(stall_chunks=(2,)).targets_workers
        assert not FaultPlan(crash_chunks=(0,)).targets_traversal


class TestWorkerFault:
    def test_pure_function_of_chunk_and_attempt(self):
        plan = FaultPlan(crash_chunks=(0,), stall_chunks=(2,), fail_attempts=2)
        assert plan.worker_fault(0, 0) == WORKER_CRASH
        assert plan.worker_fault(0, 1) == WORKER_CRASH
        assert plan.worker_fault(0, 2) is None  # retries past fail_attempts clear
        assert plan.worker_fault(2, 0) == WORKER_STALL
        assert plan.worker_fault(1, 0) is None

    def test_zero_fail_attempts_never_fires(self):
        plan = FaultPlan(crash_chunks=(0,), fail_attempts=0)
        assert plan.worker_fault(0, 0) is None


class TestInjectorOrdinals:
    def test_scalar_bound_ordinals_fire_exactly_as_planned(self):
        injector = FaultInjector(FaultPlan(corrupt_bound_nodes=(1, 3)))
        outcomes = [injector.corrupt_bounds(0.25, 0.75) for _ in range(5)]
        for ordinal, (lower, upper) in enumerate(outcomes):
            if ordinal in (1, 3):
                assert np.isnan(lower)  # default mode corrupts the lower edge
            else:
                assert (lower, upper) == (0.25, 0.75)
        assert injector.fired == 2

    def test_array_hook_consumes_one_ordinal_per_pair(self):
        injector = FaultInjector(FaultPlan(corrupt_bound_nodes=(2, 4)))
        lower = np.full(3, 0.1)
        upper = np.full(3, 0.9)
        out_l, out_u = injector.corrupt_bounds_array(lower, upper)  # ordinals 0-2
        assert np.isnan(out_l[2]) and not np.isnan(out_l[:2]).any()
        out_l2, __ = injector.corrupt_bounds_array(lower, upper)  # ordinals 3-5
        assert np.isnan(out_l2[1])
        assert injector.fired == 2
        # Inputs are never corrupted in place.
        assert not np.isnan(lower).any()

    def test_scalar_and_array_hooks_agree_on_ordinals(self):
        plan = FaultPlan(corrupt_bound_nodes=(0, 5))
        scalar = FaultInjector(plan)
        hits_scalar = [
            np.isnan(scalar.corrupt_bounds(0.0, 1.0)[0]) for _ in range(6)
        ]
        vector = FaultInjector(plan)
        out_l, __ = vector.corrupt_bounds_array(np.zeros(6), np.ones(6))
        assert hits_scalar == list(np.isnan(out_l))

    @pytest.mark.parametrize(
        "mode,check",
        [
            ("nan", lambda lo, up: np.isnan(lo)),
            ("inf", lambda lo, up: np.isposinf(up)),
            ("invert", lambda lo, up: lo > up),
        ],
    )
    def test_corruption_modes(self, mode, check):
        injector = FaultInjector(
            FaultPlan(corrupt_bound_nodes=(0,), corrupt_bound_mode=mode)
        )
        lower, upper = injector.corrupt_bounds(0.2, 0.8)
        assert check(lower, upper)

    def test_leaf_ordinals_and_value(self):
        injector = FaultInjector(
            FaultPlan(underflow_leaves=(1,), underflow_value=-1.0)
        )
        assert injector.corrupt_leaf(3.0) == 3.0
        assert injector.corrupt_leaf(3.0) == -1.0
        assert injector.corrupt_leaf(3.0) == 3.0
        exact = np.array([5.0, 6.0])
        injector2 = FaultInjector(FaultPlan(underflow_leaves=(1,)))
        out = injector2.corrupt_leaves_array(exact)
        assert out[0] == 5.0 and out[1] == 0.0
        assert exact[1] == 6.0  # input untouched
        assert injector2.fired == 1

    def test_rate_draws_are_deterministic_given_seed(self):
        plan = FaultPlan(bound_rate=0.5, seed=42)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for _ in range(50):
            hit_a = np.isnan(a.corrupt_bounds(0.0, 1.0)[0])
            hit_b = np.isnan(b.corrupt_bounds(0.0, 1.0)[0])
            assert hit_a == hit_b
        assert a.fired == b.fired > 0
