"""Shared fixtures for the fault-injection suite.

Fitting is the slow part, so one clean classifier (and its reference
labels) is shared module-wide; tests that need a faulted or budgeted
variant swap the *config* on the fitted instance via ``with_updates``
rather than refitting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig


@pytest.fixture(scope="package")
def train_data() -> np.ndarray:
    rng = np.random.default_rng(7)
    a = rng.normal(size=(600, 2)) * 0.5 + np.array([-2.0, 0.0])
    b = rng.normal(size=(600, 2)) * 0.5 + np.array([2.0, 0.0])
    return np.concatenate([a, b])


@pytest.fixture(scope="package")
def query_points() -> np.ndarray:
    rng = np.random.default_rng(11)
    # Mix of dense-region, sparse-region, and near-threshold queries so
    # traversals exercise prunes, leaf evaluations, and deep expansion.
    dense = rng.normal(size=(40, 2)) * 0.5 + np.array([-2.0, 0.0])
    sparse = rng.uniform(-8.0, 8.0, size=(40, 2))
    return np.concatenate([dense, sparse])


@pytest.fixture(scope="package")
def fitted(train_data: np.ndarray) -> TKDCClassifier:
    """A clean fitted classifier; tests must not mutate its config in place."""
    return TKDCClassifier(TKDCConfig(p=0.05, seed=3)).fit(train_data)


@pytest.fixture(scope="package")
def clean_labels(fitted: TKDCClassifier, query_points: np.ndarray) -> np.ndarray:
    return fitted.classify(query_points)


@pytest.fixture()
def restore_config(fitted: TKDCClassifier):
    """Let a test swap ``fitted.config`` and put the original back."""
    original = fitted.config
    yield fitted
    fitted.config = original
