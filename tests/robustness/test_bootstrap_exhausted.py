"""Regression: an exhausted threshold bootstrap degrades diagnosably.

The failure is simulated by capping the iteration budget at 1 with more
data than ``bootstrap_r0`` covers, so the bootstrap cannot reach the
final full-data round before the cap.
"""

import math

import numpy as np
import pytest

import repro.core.threshold as threshold_module
from repro import BootstrapExhausted, GuardWarning, TKDCClassifier, TKDCConfig


@pytest.fixture()
def starved(monkeypatch):
    monkeypatch.setattr(threshold_module, "_MAX_ITERATIONS", 1)


def _data() -> np.ndarray:
    rng = np.random.default_rng(5)
    return rng.normal(size=(500, 2))  # > bootstrap_r0, so round 1 != final


def test_exhausted_bootstrap_carries_the_last_bracket(starved):
    config = TKDCConfig(p=0.05, seed=3)
    assert config.bootstrap_r0 < 500
    with pytest.raises(BootstrapExhausted) as info:
        TKDCClassifier(config).fit(_data())
    error = info.value
    # The working bracket survives on the exception instead of dying
    # with the traceback: finite, ordered, and non-negative.
    assert math.isfinite(error.t_lower) and math.isfinite(error.t_upper)
    assert 0.0 <= error.t_lower <= error.t_upper
    assert error.iterations == 1
    assert error.backoffs >= 0
    assert "bootstrap_accept_widened" in str(error)
    assert isinstance(error, RuntimeError)  # old excepts still catch it


def test_accept_widened_completes_the_fit_with_a_warning(starved):
    config = TKDCConfig(p=0.05, seed=3, bootstrap_accept_widened=True)
    with pytest.warns(GuardWarning, match="iteration cap"):
        clf = TKDCClassifier(config).fit(_data())
    assert clf.is_fitted
    estimate = clf.threshold
    assert math.isfinite(estimate.value)
    assert 0.0 <= estimate.lower <= estimate.value <= estimate.upper
    # The degraded fit still classifies.
    labels = clf.classify(np.array([[0.0, 0.0], [8.0, 8.0]]))
    assert labels.shape == (2,)


def test_converged_fit_never_warns_or_raises():
    # Control arm with the real iteration budget: same data, clean fit.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", GuardWarning)
        clf = TKDCClassifier(TKDCConfig(p=0.05, seed=3)).fit(_data())
    assert clf.is_fitted
