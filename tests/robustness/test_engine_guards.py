"""Injected traversal corruption caught by the guards, engine by engine.

Every scenario runs against BOTH engines: the per-query reference
(`bound_density`) and the vectorized batch traversal
(`bound_densities`) share the guard sites, so the observable behaviour
under each policy must be identical in kind.
"""

import numpy as np
import pytest

from repro import (
    FaultPlan,
    GuardWarning,
    InvariantViolation,
    TKDCClassifier,
    TKDCConfig,
)
from repro.robustness.guards import REPAIRS_KEY

ENGINES = ("per-query", "batch")


def _faulted(restore_config, **config_changes):
    clf = restore_config
    clf.config = clf.config.with_updates(**config_changes)
    return clf


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("mode", ["nan", "invert", "inf"])
class TestBoundCorruption:
    def _plan(self, mode):
        # Ordinal 0 is the root-bound computation: guaranteed to run for
        # every traversed query, whatever the tree shape.
        return FaultPlan(corrupt_bound_nodes=(0,), corrupt_bound_mode=mode)

    def test_repair_keeps_labels_correct_and_counts(
        self, restore_config, query_points, clean_labels, engine, mode
    ):
        clf = _faulted(
            restore_config,
            fault_plan=self._plan(mode), guard_policy="repair",
        )
        before = clf.stats.extras.get(REPAIRS_KEY, 0.0)
        labels = clf.classify(query_points, engine=engine)
        assert np.array_equal(labels, clean_labels)
        assert clf.stats.extras.get(REPAIRS_KEY, 0.0) > before

    def test_warn_emits_guard_warning(
        self, restore_config, query_points, clean_labels, engine, mode
    ):
        clf = _faulted(
            restore_config,
            fault_plan=self._plan(mode), guard_policy="warn",
        )
        with pytest.warns(GuardWarning):
            labels = clf.classify(query_points, engine=engine)
        assert np.array_equal(labels, clean_labels)

    def test_raise_fails_fast(
        self, restore_config, query_points, engine, mode
    ):
        clf = _faulted(
            restore_config,
            fault_plan=self._plan(mode), guard_policy="raise",
        )
        with pytest.raises(InvariantViolation):
            clf.classify(query_points, engine=engine)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_off_lets_the_corruption_through(
        self, restore_config, query_points, engine, mode
    ):
        # The control arm: with guards disabled the same fault flows
        # into the traversal unchecked (no exception, no repair count).
        clf = _faulted(
            restore_config,
            fault_plan=self._plan(mode), guard_policy="off",
        )
        before = clf.stats.extras.get(REPAIRS_KEY, 0.0)
        clf.classify(query_points, engine=engine)
        assert clf.stats.extras.get(REPAIRS_KEY, 0.0) == before


@pytest.mark.parametrize("engine", ENGINES)
class TestLeafCorruption:
    """Leaf sums that escape their envelope (classically: underflow)."""

    @pytest.fixture()
    def leaf_clf(self, train_data):
        # A leaf-only tree (leaf_size >= n) makes leaf ordinal 0 the
        # first evaluation of every traversal, so the fault always fires.
        return TKDCClassifier(
            TKDCConfig(p=0.05, seed=3, leaf_size=4096, use_grid=False)
        ).fit(train_data)

    def test_repair_catches_escaped_leaf_sum(self, leaf_clf, query_points, engine):
        leaf_clf.config = leaf_clf.config.with_updates(
            fault_plan=FaultPlan(
                underflow_leaves=tuple(range(len(query_points))),
                underflow_value=float("nan"),
            ),
            guard_policy="repair",
        )
        before = leaf_clf.stats.extras.get(REPAIRS_KEY, 0.0)
        labels = leaf_clf.classify(query_points, engine=engine)
        assert labels.shape[0] == query_points.shape[0]
        assert leaf_clf.stats.extras.get(REPAIRS_KEY, 0.0) > before

    def test_raise_catches_escaped_leaf_sum(self, leaf_clf, query_points, engine):
        leaf_clf.config = leaf_clf.config.with_updates(
            fault_plan=FaultPlan(
                underflow_leaves=(0,), underflow_value=float("nan")
            ),
            guard_policy="raise",
        )
        with pytest.raises(InvariantViolation, match="leaf"):
            leaf_clf.classify(query_points, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_fit_time_guards_cover_the_bootstrap(train_data, engine):
    """A fit under guard_policy='repair' completes with correct plumbing.

    The threshold bootstrap passes the policy into its traversal calls
    and re-guards the order-statistic bracket; on clean data this must
    be a no-op that still produces a working classifier.
    """
    clf = TKDCClassifier(
        TKDCConfig(p=0.05, seed=3, engine=engine, guard_policy="repair")
    ).fit(train_data)
    assert clf.is_fitted
    assert 0.0 <= clf.threshold.lower <= clf.threshold.value <= clf.threshold.upper
