"""Unit tests for the invariant-guard primitives (all four policies)."""

import numpy as np
import pytest

from repro.core.stats import TraversalStats
from repro.robustness.guards import (
    REPAIRS_KEY,
    GuardWarning,
    InvariantViolation,
    guard_interval,
    guard_interval_arrays,
    guard_value_in_interval,
    guard_values_in_intervals,
)


class TestGuardInterval:
    def test_valid_interval_passes_untouched(self):
        assert guard_interval(0.2, 0.8, "repair") == (0.2, 0.8)

    def test_off_passes_even_garbage(self):
        lower, upper = guard_interval(float("nan"), -1.0, "off")
        assert np.isnan(lower) and upper == -1.0

    def test_benign_float_inversion_is_reordered_under_every_policy(self):
        for policy in ("repair", "warn", "raise"):
            lower, upper = guard_interval(0.5 + 1e-12, 0.5, policy)
            assert lower <= upper

    def test_repair_widens_to_envelope(self):
        stats = TraversalStats()
        lower, upper = guard_interval(
            float("nan"), 0.8, "repair", stats, ceiling=2.0
        )
        assert (lower, upper) == (0.0, 2.0)
        assert stats.extras[REPAIRS_KEY] == 1.0

    def test_repair_on_genuine_inversion(self):
        lower, upper = guard_interval(0.9, 0.1, "repair", ceiling=3.0)
        assert (lower, upper) == (0.0, 3.0)

    def test_warn_repairs_and_warns(self):
        with pytest.warns(GuardWarning, match="threshold"):
            lower, upper = guard_interval(
                float("inf"), float("inf"), "warn", site="threshold"
            )
        assert np.isfinite(lower)

    def test_raise_carries_site_and_detail(self):
        with pytest.raises(InvariantViolation, match="root") as info:
            guard_interval(float("nan"), 1.0, "raise", site="root")
        assert info.value.site == "root"
        assert "non-finite" in info.value.detail


class TestGuardIntervalArrays:
    def test_mixed_batch_repairs_only_bad_rows(self):
        stats = TraversalStats()
        lower = np.array([0.1, np.nan, 0.9, 0.3])
        upper = np.array([0.5, 0.6, 0.2, 0.7])
        ceiling = np.array([1.0, 2.0, 3.0, 4.0])
        out_l, out_u, bad = guard_interval_arrays(
            lower, upper, "repair", stats, ceiling=ceiling
        )
        assert list(bad) == [False, True, True, False]
        assert out_l[1] == 0.0 and out_u[1] == 2.0  # per-node ceiling applied
        assert out_l[2] == 0.0 and out_u[2] == 3.0
        assert out_l[0] == 0.1 and out_u[3] == 0.7  # good rows untouched
        assert stats.extras[REPAIRS_KEY] == 2.0
        assert np.isnan(lower[1])  # inputs not mutated

    def test_clean_batch_returns_inputs_without_copy(self):
        lower = np.array([0.1, 0.2])
        upper = np.array([0.3, 0.4])
        out_l, out_u, bad = guard_interval_arrays(lower, upper, "repair")
        assert out_l is lower and out_u is upper
        assert not bad.any()

    def test_raise_reports_first_offender(self):
        with pytest.raises(InvariantViolation, match="offset 1"):
            guard_interval_arrays(
                np.array([0.1, np.inf]), np.array([0.2, np.inf]), "raise"
            )

    def test_warn_counts_all_offenders(self):
        with pytest.warns(GuardWarning, match="2 invariant violation"):
            guard_interval_arrays(
                np.array([np.nan, 5.0, 0.0]),
                np.array([1.0, 1.0, 1.0]),
                "warn",
            )


class TestGuardValueInInterval:
    def test_escape_is_clamped(self):
        assert guard_value_in_interval(0.0, 0.2, 0.8, "repair") == 0.2
        assert guard_value_in_interval(1.5, 0.2, 0.8, "repair") == 0.8

    def test_inside_passes(self):
        assert guard_value_in_interval(0.5, 0.2, 0.8, "repair") == 0.5

    def test_non_finite_repairs_to_midpoint(self):
        assert guard_value_in_interval(float("nan"), 0.2, 0.8, "repair") == 0.5

    def test_raise_on_escape(self):
        with pytest.raises(InvariantViolation, match="leaf"):
            guard_value_in_interval(-1.0, 0.2, 0.8, "raise")

    def test_vectorized_matches_scalar(self):
        values = np.array([0.0, 0.5, np.nan, 2.0])
        lower = np.full(4, 0.2)
        upper = np.full(4, 0.8)
        with pytest.warns(GuardWarning):
            out = guard_values_in_intervals(values, lower, upper, "warn")
        expected = [0.2, 0.5, 0.5, 0.8]
        assert np.allclose(out, expected)
        assert np.isnan(values[2])  # input untouched
