"""Anytime node-expansion budgets: degraded but always-valid answers."""

import numpy as np
import pytest

from repro import ClassificationResult, Label
from repro.core.bounds import BUDGET_STOPS_KEY

ENGINES = ("per-query", "batch")


def _budgeted(restore_config, budget):
    clf = restore_config
    clf.config = clf.config.with_updates(max_node_expansions=budget)
    return clf


@pytest.mark.parametrize("engine", ENGINES)
class TestBudget:
    def test_tiny_budget_degrades_with_valid_bounds(
        self, restore_config, query_points, engine
    ):
        clf = _budgeted(restore_config, 1)
        before = clf.stats.extras.get(BUDGET_STOPS_KEY, 0.0)
        result = clf.classify_detailed(query_points, engine=engine)
        assert isinstance(result, ClassificationResult)
        assert result.degraded.any()
        assert clf.stats.extras.get(BUDGET_STOPS_KEY, 0.0) > before
        # Degraded or not, every interval must be a true statement:
        # ordered, with a finite non-negative lower edge.
        assert np.all(result.lower <= result.upper)
        assert np.all(result.lower >= 0.0)
        assert np.all(np.isfinite(result.lower))
        # Labels are still plain HIGH/LOW; UNCERTAIN appears only after
        # explicit resolution of the undecidable subset.
        assert set(result.labels) <= {Label.HIGH, Label.LOW}

    def test_uncertain_rows_resolve_to_uncertain_label(
        self, restore_config, query_points, engine
    ):
        clf = _budgeted(restore_config, 1)
        result = clf.classify_detailed(query_points, engine=engine)
        resolved = result.resolved_labels()
        assert np.array_equal(
            resolved == Label.UNCERTAIN, result.uncertain
        )
        # A query whose budget-capped bounds straddle the threshold has
        # no directional evidence; with budget 1 some query must.
        assert result.uncertain.any()
        # Uncertain is a subset of degraded.
        assert not (result.uncertain & ~result.degraded).any()

    def test_degraded_bounds_still_bracket_the_unbudgeted_interval(
        self, restore_config, query_points, engine
    ):
        # Anytime validity: stopping early can only WIDEN the interval,
        # so the budgeted bounds must contain the converged ones.
        clf = _budgeted(restore_config, 4)
        capped = clf.classify_detailed(query_points, engine=engine)
        clf.config = clf.config.with_updates(max_node_expansions=None)
        full = clf.classify_detailed(query_points, engine=engine)
        tol = 1e-9
        assert np.all(capped.lower <= full.lower + tol)
        assert np.all(capped.upper >= full.upper - tol)

    def test_unbudgeted_run_is_not_degraded_and_matches_classify(
        self, restore_config, query_points, clean_labels, engine
    ):
        clf = _budgeted(restore_config, None)
        result = clf.classify_detailed(query_points, engine=engine)
        assert not result.degraded.any()
        assert not result.invalid.any()
        assert np.array_equal(result.labels, clean_labels)

    def test_generous_budget_converges_undegraded(
        self, restore_config, query_points, clean_labels, engine
    ):
        clf = _budgeted(restore_config, 10_000)
        result = clf.classify_detailed(query_points, engine=engine)
        assert not result.degraded.any()
        assert np.array_equal(result.labels, clean_labels)
