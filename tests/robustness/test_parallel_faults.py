"""End-to-end parallel classify under injected worker faults.

These tests drive ``TKDCClassifier._classify_parallel`` directly (the
public ``classify`` clamps ``n_jobs`` to the machine's core count and
gates on a minimum batch size — irrelevant here, where the point is the
supervision behaviour, not the speedup). The acceptance bar from the
issue: a killed worker and a stalled worker must BOTH yield a complete,
label-correct batch.
"""

import numpy as np
import pytest

from repro import FaultPlan, Label


def _extras_delta(clf, before):
    return {
        key: value - before.get(key, 0.0)
        for key, value in clf.stats.extras.items()
    }


@pytest.fixture()
def scaled_queries(fitted, query_points):
    return fitted.kernel.scale(query_points)


@pytest.fixture()
def clean_highs(clean_labels):
    return np.array([label == Label.HIGH for label in clean_labels])


def _run_parallel(fitted, scaled):
    return fitted._classify_parallel(scaled, fitted.threshold.value, 2)


class TestParallelFaults:
    def test_unfaulted_parallel_matches_serial_labels(
        self, restore_config, scaled_queries, clean_highs
    ):
        clf = restore_config
        before = dict(clf.stats.extras)
        highs = _run_parallel(clf, scaled_queries)
        delta = _extras_delta(clf, before)
        assert np.array_equal(highs, clean_highs)
        assert delta.get("supervisor_pools_created") == 1.0
        for event in ("crashes", "timeouts", "errors", "serial_fallbacks"):
            assert delta.get(f"supervisor_{event}", 0.0) == 0.0

    def test_killed_worker_yields_complete_correct_batch(
        self, restore_config, scaled_queries, clean_highs
    ):
        clf = restore_config
        clf.config = clf.config.with_updates(
            fault_plan=FaultPlan(crash_chunks=(0,)),
            worker_backoff=0.0,
        )
        before = dict(clf.stats.extras)
        highs = _run_parallel(clf, scaled_queries)
        delta = _extras_delta(clf, before)
        assert highs.shape[0] == scaled_queries.shape[0]
        assert np.array_equal(highs, clean_highs)
        assert delta.get("supervisor_crashes", 0.0) >= 1.0
        assert delta.get("supervisor_retries", 0.0) >= 1.0
        assert delta.get("supervisor_pools_created", 0.0) >= 2.0

    def test_stalled_worker_yields_complete_correct_batch(
        self, restore_config, scaled_queries, clean_highs
    ):
        clf = restore_config
        clf.config = clf.config.with_updates(
            fault_plan=FaultPlan(stall_chunks=(0,)),
            worker_timeout=3.0,
            worker_backoff=0.0,
        )
        before = dict(clf.stats.extras)
        highs = _run_parallel(clf, scaled_queries)
        delta = _extras_delta(clf, before)
        assert np.array_equal(highs, clean_highs)
        assert delta.get("supervisor_timeouts", 0.0) >= 1.0
        assert delta.get("supervisor_pools_created", 0.0) >= 2.0

    def test_simultaneous_crash_and_stall_still_complete(
        self, restore_config, scaled_queries, clean_highs
    ):
        clf = restore_config
        clf.config = clf.config.with_updates(
            fault_plan=FaultPlan(crash_chunks=(0,), stall_chunks=(1,)),
            worker_timeout=3.0,
            worker_backoff=0.0,
        )
        before = dict(clf.stats.extras)
        highs = _run_parallel(clf, scaled_queries)
        delta = _extras_delta(clf, before)
        assert np.array_equal(highs, clean_highs)
        # Both faulted chunks needed supervisor intervention (the crash
        # may surface the stalled chunk as a broken pool before its
        # deadline, so only the retry total is deterministic).
        assert delta.get("supervisor_retries", 0.0) >= 2.0

    def test_permanently_poisoned_chunk_completes_via_serial_fallback(
        self, restore_config, scaled_queries, clean_highs
    ):
        clf = restore_config
        clf.config = clf.config.with_updates(
            fault_plan=FaultPlan(crash_chunks=(0,), fail_attempts=99),
            worker_retries=1,
            worker_backoff=0.0,
        )
        before = dict(clf.stats.extras)
        highs = _run_parallel(clf, scaled_queries)
        delta = _extras_delta(clf, before)
        # The fallback runs the same traversal in-process and clean, so
        # even a chunk whose every dispatch dies comes back correct.
        assert np.array_equal(highs, clean_highs)
        assert delta.get("supervisor_serial_fallbacks", 0.0) >= 1.0
