"""Shared query validation: identical behaviour from every entry point.

The hardening contract lives in ``repro.validation.as_query_matrix`` and
is applied before engine dispatch, so both engines (and every public
method) must agree exactly on what happens to a bad row.
"""

import math

import numpy as np
import pytest

from repro import Label
from repro.validation import as_query_matrix

ENGINES = ("per-query", "batch")


@pytest.fixture()
def tainted(query_points):
    queries = query_points[:10].copy()
    queries[3, 0] = np.nan
    queries[7, 1] = np.inf
    return queries


class TestValidationFunction:
    def test_raise_policy_names_the_flag_alternative(self, tainted):
        with pytest.raises(ValueError, match="query_policy='flag'"):
            as_query_matrix(tainted, dim=2, policy="raise")

    def test_flag_policy_zero_fills_and_masks(self, tainted):
        matrix, invalid = as_query_matrix(tainted, dim=2, policy="flag")
        assert list(np.flatnonzero(invalid)) == [3, 7]
        assert np.isfinite(matrix).all()  # flagged rows are never traversed
        valid = ~invalid
        assert np.array_equal(matrix[valid], tainted[valid])

    def test_shape_and_dtype_always_raise(self):
        for policy in ("raise", "flag"):
            with pytest.raises(ValueError):
                as_query_matrix(np.zeros((3, 5)), dim=2, policy=policy)
            with pytest.raises(ValueError):
                as_query_matrix(
                    np.array([["a", "b"]], dtype=object), dim=2, policy=policy
                )


@pytest.mark.parametrize("engine", ENGINES)
class TestClassifierEntryPoints:
    def test_raise_policy_rejects_the_batch(self, restore_config, tainted, engine):
        clf = restore_config
        clf.config = clf.config.with_updates(query_policy="raise")
        with pytest.raises(ValueError, match="non-finite"):
            clf.classify(tainted, engine=engine)

    def test_flag_policy_is_engine_consistent(
        self, restore_config, tainted, clean_labels, engine
    ):
        clf = restore_config
        clf.config = clf.config.with_updates(query_policy="flag")

        labels = clf.classify(tainted, engine=engine)
        assert labels[3] == Label.UNCERTAIN and labels[7] == Label.UNCERTAIN
        valid = [i for i in range(10) if i not in (3, 7)]
        assert np.array_equal(labels[valid], clean_labels[:10][valid])

        predictions = clf.predict(tainted, engine=engine)
        assert predictions[3] == 2 and predictions[7] == 2
        assert np.array_equal(
            predictions[valid],
            np.array([int(label == Label.HIGH) for label in labels[valid]]),
        )

        densities = clf.estimate_density(tainted, engine=engine)
        assert np.isnan(densities[[3, 7]]).all()
        assert np.isfinite(densities[valid]).all()

        bounds = clf.decision_bounds(tainted, engine=engine)
        for row in (3, 7):
            assert bounds[row].lower == 0.0
            assert math.isinf(bounds[row].upper)
        for row in valid:
            assert math.isfinite(bounds[row].upper)

        detailed = clf.classify_detailed(tainted, engine=engine)
        assert detailed.invalid[3] and detailed.invalid[7]
        assert detailed.degraded[3] and detailed.degraded[7]
        assert detailed.resolved_labels()[3] == Label.UNCERTAIN
        assert np.array_equal(detailed.labels[valid], labels[valid])

    def test_both_engines_reject_wrong_dimension(self, fitted, engine):
        with pytest.raises(ValueError):
            fitted.classify(np.zeros((4, 9)), engine=engine)


def test_classify_batch_flags_invalid_rows(restore_config, tainted, clean_labels):
    clf = restore_config
    clf.config = clf.config.with_updates(query_policy="flag")
    labels = clf.classify_batch(tainted)
    assert labels[3] == Label.UNCERTAIN and labels[7] == Label.UNCERTAIN
    valid = [i for i in range(10) if i not in (3, 7)]
    assert np.array_equal(labels[valid], clean_labels[:10][valid])
