"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.gaussian import GaussianKernel


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_gauss(rng: np.random.Generator) -> np.ndarray:
    """A small 2-d standard-normal sample."""
    return rng.normal(size=(400, 2))


@pytest.fixture
def medium_gauss(rng: np.random.Generator) -> np.ndarray:
    """A medium 2-d standard-normal sample (for classifier tests)."""
    return rng.normal(size=(2000, 2))


@pytest.fixture
def bimodal_2d(rng: np.random.Generator) -> np.ndarray:
    """A clearly bimodal 2-d sample with a sparse gap between modes."""
    a = rng.normal(size=(500, 2)) * 0.4 + np.array([-3.0, 0.0])
    b = rng.normal(size=(500, 2)) * 0.4 + np.array([3.0, 0.0])
    data = np.concatenate([a, b])
    rng.shuffle(data)
    return data


@pytest.fixture
def unit_kernel_2d() -> GaussianKernel:
    """A 2-d Gaussian kernel with unit bandwidth."""
    return GaussianKernel(np.array([1.0, 1.0]))


def exact_density(scaled_points: np.ndarray, kernel, scaled_query: np.ndarray) -> float:
    """Brute-force exact KDE density at one scaled query point."""
    diffs = scaled_points - scaled_query
    sq = np.einsum("ij,ij->i", diffs, diffs)
    return float(np.sum(kernel.value(sq)) / scaled_points.shape[0])
