"""Integration tests pinning down the paper's accuracy guarantee under
stress: heavy tails, duplicates, tiny thresholds, and both kernels."""

import numpy as np
import pytest

from repro import Label, TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.datasets.generators import make_shuttle
from repro.quantile.order_stats import quantile_of_sorted


def _check_guarantee(data: np.ndarray, config: TKDCConfig, kernel_name="gaussian"):
    """tKDC must match the exact classifier outside the eps-band."""
    clf = TKDCClassifier(config).fit(data)
    naive = NaiveKDE(kernel_name=kernel_name,
                     bandwidth_scale=config.bandwidth_scale).fit(data)
    n = data.shape[0]
    exact = naive.density(data) - naive.kernel.max_value / n
    t = clf.threshold.value
    eps = config.epsilon
    labels = np.asarray(clf.training_labels_)
    mismatches = 0
    for density, label in zip(exact, labels):
        if density > t * (1 + eps) and label != Label.HIGH:
            mismatches += 1
        elif density < t * (1 - eps) and label != Label.LOW:
            mismatches += 1
    assert mismatches == 0


class TestGuaranteeUnderStress:
    def test_heavy_tailed_shuttle(self):
        data = make_shuttle(3000, seed=1)[:, [3, 5]]
        _check_guarantee(data, TKDCConfig(p=0.01, seed=1))

    def test_shuttle_with_secondary_sensors(self):
        data = make_shuttle(2500, seed=2)[:, :6]
        _check_guarantee(data, TKDCConfig(p=0.01, seed=2))

    def test_duplicated_points(self, rng):
        base = rng.normal(size=(400, 2))
        data = np.concatenate([base, base, base[:100]])
        _check_guarantee(data, TKDCConfig(p=0.05, seed=0))

    def test_tiny_epsilon(self, medium_gauss):
        _check_guarantee(medium_gauss, TKDCConfig(p=0.01, epsilon=0.001, seed=0))

    def test_large_epsilon(self, medium_gauss):
        _check_guarantee(medium_gauss, TKDCConfig(p=0.01, epsilon=0.2, seed=0))

    def test_moderate_quantile(self, medium_gauss):
        _check_guarantee(medium_gauss, TKDCConfig(p=0.5, seed=0))

    def test_high_quantile(self, medium_gauss):
        _check_guarantee(medium_gauss, TKDCConfig(p=0.9, seed=0))

    def test_epanechnikov_guarantee(self, medium_gauss):
        _check_guarantee(
            medium_gauss,
            TKDCConfig(p=0.05, kernel="epanechnikov", seed=0),
            kernel_name="epanechnikov",
        )

    def test_guarantee_without_grid(self, medium_gauss):
        _check_guarantee(medium_gauss, TKDCConfig(p=0.01, use_grid=False, seed=0))

    def test_guarantee_with_median_splits(self, medium_gauss):
        _check_guarantee(medium_gauss, TKDCConfig(p=0.01, split_rule="median", seed=0))

    def test_mixed_scales(self, rng):
        # Dimensions with wildly different scales exercise the diagonal
        # bandwidth handling.
        data = rng.normal(size=(2000, 3)) * np.array([1e-3, 1.0, 1e3])
        _check_guarantee(data, TKDCConfig(p=0.02, seed=0))

    def test_clustered_and_constant_dim(self, rng):
        data = np.concatenate([
            rng.normal(size=(800, 3)) * 0.2,
            rng.normal(size=(800, 3)) * 0.2 + 4.0,
        ])
        data[:, 2] = 1.0 + rng.normal(scale=1e-9, size=1600)  # near-constant
        _check_guarantee(data, TKDCConfig(p=0.05, seed=0))


class TestThresholdAccuracyAcrossSeeds:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_threshold_within_epsilon_of_exact(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(1500, 2))
        config = TKDCConfig(p=0.05, seed=seed)
        clf = TKDCClassifier(config).fit(data)
        naive = NaiveKDE().fit(data)
        densities = naive.density(data) - naive.kernel.max_value / 1500
        exact = quantile_of_sorted(np.sort(densities), 0.05)
        assert clf.threshold.value == pytest.approx(exact, rel=2 * config.epsilon)
