"""Cross-validation: every estimator in Table 2 solves the same problem."""

import numpy as np
import pytest

from repro.baselines import BinnedKDE, NaiveKDE, RadialKDE, TreeKDE
from repro.bench.algorithms import AMORTIZED_ALGORITHMS, run_amortized
from repro.datasets.registry import load


@pytest.fixture(scope="module")
def workload():
    return load("tmy3", n=1500, d=2, seed=0)


class TestDensityAgreement:
    def test_all_estimators_close_to_exact(self, workload):
        exact = NaiveKDE().fit(workload)
        queries = workload[:100]
        truth = exact.density(queries)
        threshold = float(np.quantile(truth, 0.05))

        estimators = [
            TreeKDE(rtol=0.01),
            TreeKDE(rtol=0.1),
            RadialKDE(epsilon=0.01, threshold_hint=threshold),
            BinnedKDE(),
        ]
        for estimator in estimators:
            estimator.fit(workload)
            got = estimator.density(queries)
            rel_err = np.abs(got - truth) / truth
            # Every approximation is within its documented regime: 15%
            # worst-case leaves room for ks's bin bias at cluster edges.
            assert np.median(rel_err) < 0.02, type(estimator).__name__
            assert np.max(rel_err) < 0.25, type(estimator).__name__


class TestClassificationAgreement:
    def test_label_agreement_across_all_algorithms(self, workload):
        runs = {
            name: run_amortized(name, workload, p=0.05, seed=0)
            for name in AMORTIZED_ALGORITHMS
        }
        exact_labels = runs["simple"].labels
        for name, run in runs.items():
            agreement = float(np.mean(run.labels == exact_labels))
            assert agreement > 0.97, name

    def test_thresholds_mutually_consistent(self, workload):
        runs = {
            name: run_amortized(name, workload, p=0.05, seed=0)
            for name in ("tkdc", "simple", "nocut")
        }
        reference = runs["simple"].threshold
        for name, run in runs.items():
            assert run.threshold == pytest.approx(reference, rel=0.1), name


class TestParametricStrawman:
    def test_gmm_classification_degrades_on_multimodal_shuttle(self):
        """The paper's introductory claim, end to end: on shuttle-like
        multi-modal data, classifying with a (mis-specified) parametric
        GMM is far less faithful to the exact density classification
        than tKDC."""
        from repro.analysis.accuracy import f1_score
        from repro.baselines import GaussianMixtureKDE
        from repro.baselines.base import quantile_threshold_of
        from repro import TKDCClassifier, TKDCConfig

        data = load("shuttle", n=3000, seed=0)[:, [3, 5]]
        p = 0.05
        exact = NaiveKDE().fit(data)
        densities = exact.density(data) - exact.kernel.max_value / data.shape[0]
        truth_threshold = np.sort(densities)[int(np.ceil(p * len(densities))) - 1]
        truth = (densities <= truth_threshold).astype(int)

        tkdc = TKDCClassifier(TKDCConfig(p=p, seed=0)).fit(data)
        tkdc_pred = (np.asarray(tkdc.training_labels_) == 0).astype(int)

        gmm = GaussianMixtureKDE(n_components=5, seed=0).fit(data)
        gmm_threshold = quantile_threshold_of(gmm, data, p)
        gmm_pred = (gmm.density(data) <= gmm_threshold).astype(int)

        tkdc_f1 = f1_score(truth, tkdc_pred)
        gmm_f1 = f1_score(truth, gmm_pred)
        assert tkdc_f1 > 0.95
        assert gmm_f1 < tkdc_f1 - 0.2


class TestHigherDimensionalAgreement:
    def test_d8_tkdc_vs_simple(self):
        data = load("tmy3", n=1500, d=8, seed=0)
        tkdc = run_amortized("tkdc", data, p=0.05, seed=0)
        simple = run_amortized("simple", data, p=0.05, seed=0)
        assert float(np.mean(tkdc.labels == simple.labels)) > 0.97

    def test_d27_tkdc_vs_simple(self):
        data = load("hep", n=1200, seed=0)
        tkdc = run_amortized("tkdc", data, p=0.05, seed=0)
        simple = run_amortized("simple", data, p=0.05, seed=0)
        assert float(np.mean(tkdc.labels == simple.labels)) > 0.97
