"""Every example script must run cleanly end to end.

Examples are the public face of the library; these tests execute each
one in a subprocess (small sizes via env where supported) and check for
the landmarks of a successful run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script, args, landmark strings expected in stdout)
CASES = [
    ("quickstart.py", [], ["threshold", "HIGH", "LOW", "kernel evaluations"]),
    ("outlier_detection.py", [], ["anomaly recall", "most anomalous readings"]),
    ("contour_visualization.py", [], ["#", "marching-squares contour"]),
    ("statistical_testing.py", [], ["p-value", "certified density interval"]),
    ("algorithm_comparison.py", ["1500"], ["tkdc", "agreement", "fewer"]),
    ("density_bands.py", [], ["band", "dual-tree batch", "agreement"]),
    ("streaming_monitoring.py", [], ["NEW REGIME", "model refit"]),
    ("outlier_method_comparison.py", [], ["lof", "ocsvm", "p-value"]),
]


@pytest.mark.parametrize("script,args,landmarks", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs(script, args, landmarks):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True, text=True, timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for landmark in landmarks:
        assert landmark in result.stdout, (script, landmark, result.stdout[-1500:])


def test_every_example_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {case[0] for case in CASES}
