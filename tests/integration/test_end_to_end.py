"""End-to-end integration tests: tKDC vs exact ground truth on every
dataset simulator."""

import numpy as np
import pytest

from repro import Label, TKDCClassifier, TKDCConfig
from repro.analysis.accuracy import f1_score
from repro.baselines.simple import NaiveKDE
from repro.datasets.registry import load
from repro.quantile.order_stats import quantile_of_sorted


def _ground_truth(data: np.ndarray, p: float) -> tuple[np.ndarray, float]:
    naive = NaiveKDE().fit(data)
    densities = naive.density(data) - naive.kernel.max_value / data.shape[0]
    threshold = quantile_of_sorted(np.sort(densities), p)
    return (densities <= threshold).astype(int), threshold


@pytest.mark.parametrize("dataset,dim", [
    ("gauss", 2),
    ("shuttle", 2),
    ("shuttle", 9),
    ("tmy3", 4),
    ("tmy3", 8),
    ("home", 10),
    ("hep", 8),
])
def test_tkdc_matches_exact_classification(dataset, dim):
    data = load(dataset, n=2500, seed=0)
    if data.shape[1] > dim:
        data = data[:, :dim]
    truth, __ = _ground_truth(data, 0.01)
    clf = TKDCClassifier(TKDCConfig(p=0.01, seed=0)).fit(data)
    predicted = (np.asarray(clf.training_labels_) == Label.LOW).astype(int)
    assert f1_score(truth, predicted) > 0.95


def test_outlier_detection_workflow():
    """The paper's headline use case: find the planted low-density tail."""
    rng = np.random.default_rng(0)
    inliers = rng.normal(size=(4000, 2))
    outliers = rng.uniform(6, 10, size=(40, 2)) * rng.choice([-1, 1], size=(40, 2))
    data = np.concatenate([inliers, outliers])
    clf = TKDCClassifier(TKDCConfig(p=0.02, seed=0)).fit(data)
    labels = np.asarray(clf.training_labels_)
    outlier_labels = labels[4000:]
    # Every planted outlier sits far below the 2% quantile.
    assert np.all(outlier_labels == Label.LOW)
    # And the vast majority of inliers are kept.
    assert float(np.mean(labels[:4000] == Label.HIGH)) > 0.97


def test_fresh_query_classification_consistency():
    """classify() on held-out points agrees with exact densities."""
    rng = np.random.default_rng(1)
    train = load("tmy3", n=4000, d=4, seed=0)
    queries = train[rng.choice(4000, 300, replace=False)] + rng.normal(
        scale=0.01, size=(300, 4)
    )
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(train)
    naive = NaiveKDE().fit(train)
    exact = naive.density(queries)
    t = clf.threshold.value
    eps = clf.config.epsilon
    predicted = clf.predict(queries)
    outside_band = np.abs(exact - t) > eps * t
    expected = (exact > t).astype(int)
    agreement = np.mean(predicted[outside_band] == expected[outside_band])
    assert agreement == 1.0


def test_contour_extraction_workflow():
    """Figure 2a workflow: level-set contours of a bimodal density."""
    from repro.analysis.contours import density_grid, marching_squares
    from repro.datasets.generators import make_iris_like

    data = make_iris_like(2000, seed=0)
    clf = TKDCClassifier(TKDCConfig(p=0.3, seed=0)).fit(data)
    xs, ys, values = density_grid(
        clf.estimate_density,
        (float(data[:, 0].min()), float(data[:, 0].max())),
        (float(data[:, 1].min()), float(data[:, 1].max())),
        nx=24, ny=24,
    )
    segments = marching_squares(xs, ys, values, clf.threshold.value)
    assert len(segments) > 4  # a closed-ish boundary exists


def test_statistical_testing_workflow():
    """Section 2.1's p-value use case: density-based tail probability."""
    data = load("gauss", n=4000, seed=0)
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(data)
    scores = np.asarray(clf.training_scores_)
    # Empirical tail probability of a fresh observation's density.
    observation = np.array([[2.8, 2.8]])
    density = clf.estimate_density(observation)[0]
    p_value = float(np.mean(scores <= density))
    # (2.8, 2.8) is ~4 sigma out: rare but not impossible.
    assert 0.0 <= p_value < 0.1
