"""Regression tests for bugs found during development.

Each test pins the *mechanism* of a past defect, not just its symptom,
so refactors that reintroduce the failure mode are caught immediately.
"""

import numpy as np
import pytest

from repro import Label, TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.datasets.registry import load
from repro.quantile.order_stats import quantile_of_sorted


class TestSelfContributionShift:
    """High-d datasets have K(0)/n >> t(p). Two historical bugs:

    1. grid-hit scores recorded below the quantile corrupted the refined
       threshold (shuttle d=4);
    2. shifting the threshold bounds *before* the epsilon margin
       inflated the margin to eps*(t + K(0)/n), degrading the scoring
       pass to worse-than-exhaustive (hep d=27: 13k kernels/pt at
       n=2500).
    """

    def test_hep_scoring_stays_sublinear(self):
        data = load("hep", n=2000, seed=0)
        clf = TKDCClassifier(TKDCConfig(p=0.01, seed=0)).fit(data)
        # Worse-than-exhaustive scoring showed up as kernels/query > n.
        assert clf.stats.kernels_per_query < 0.6 * data.shape[0]

    def test_hep_threshold_matches_exact(self):
        data = load("hep", n=2000, seed=0)
        clf = TKDCClassifier(TKDCConfig(p=0.01, seed=0)).fit(data)
        naive = NaiveKDE().fit(data)
        densities = naive.density(data) - naive.kernel.max_value / data.shape[0]
        exact = quantile_of_sorted(np.sort(densities), 0.01)
        assert clf.threshold.value == pytest.approx(exact, rel=0.05)

    def test_shuttle_grid_scores_respect_quantile(self):
        data = load("shuttle", n=3000, seed=0)[:, :4]  # grid active at d=4
        clf = TKDCClassifier(TKDCConfig(p=0.01, seed=0)).fit(data)
        naive = NaiveKDE().fit(data)
        densities = naive.density(data) - naive.kernel.max_value / data.shape[0]
        exact = quantile_of_sorted(np.sort(densities), 0.01)
        assert clf.threshold.value == pytest.approx(exact, rel=0.05)
        low_fraction = float(np.mean(np.asarray(clf.training_labels_) == Label.LOW))
        assert low_fraction == pytest.approx(0.01, abs=0.005)


class TestBootstrapZeroSnapping:
    """Finite-support kernels can place the quantile at exactly zero
    density; multiplicative backoff can never reach zero, which once
    spun the bootstrap to its iteration cap."""

    def test_epanechnikov_with_isolated_points_fits(self, rng):
        cluster = rng.normal(size=(900, 2)) * 0.1
        isolated = rng.uniform(50, 300, size=(100, 2)) * rng.choice(
            [-1, 1], size=(100, 2)
        )
        data = np.concatenate([cluster, isolated])
        clf = TKDCClassifier(
            TKDCConfig(p=0.05, kernel="epanechnikov", seed=0)
        ).fit(data)
        assert clf.is_fitted
        # The isolated points have exactly-zero corrected density and
        # must be the LOW ones.
        labels = np.asarray(clf.training_labels_)
        assert np.mean(labels[900:] == Label.LOW) > 0.4


class TestDualTreeWeighting:
    """The block traversal once weighted child contributions by the
    query node's count instead of the training child's, producing
    certified-looking but wrong bounds."""

    def test_grid_batch_matches_exact_everywhere(self, rng):
        data = rng.normal(size=(2000, 2))
        clf = TKDCClassifier(TKDCConfig(p=0.1, seed=0)).fit(data)
        xs = np.linspace(-4, 4, 25)
        grid_x, grid_y = np.meshgrid(xs, xs, indexing="ij")
        queries = np.column_stack([grid_x.ravel(), grid_y.ravel()])
        dual = clf.classify_batch(queries)
        naive = NaiveKDE().fit(data)
        exact = naive.density(queries)
        t, eps = clf.threshold.value, clf.config.epsilon
        for density, label in zip(exact, dual):
            if density > t * (1 + eps):
                assert label is Label.HIGH
            elif density < t * (1 - eps):
                assert label is Label.LOW


class TestUniformKernelSupport:
    """(1 - s)^0 == 1 everywhere made the uniform kernel non-zero
    outside its support; bounds then never converged for far nodes."""

    def test_uniform_zero_outside_ball(self):
        from repro.kernels.polynomial import UniformKernel

        kernel = UniformKernel(np.ones(2))
        assert float(kernel.value(4.0)) == 0.0
        assert kernel.value_scalar(4.0) == 0.0

    def test_uniform_classifier_end_to_end(self, medium_gauss):
        clf = TKDCClassifier(TKDCConfig(p=0.05, kernel="uniform", seed=0)).fit(
            medium_gauss
        )
        assert clf.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH
