"""Smoke tests: every paper experiment runs at miniature scale and its
headline qualitative claims hold."""

import numpy as np
import pytest

from repro.bench import experiments


class TestTableExperiments:
    def test_table2(self):
        rows = experiments.table2_algorithms(n=800, seed=0, verbose=False)
        by_name = {row["algorithm"]: row for row in rows}
        assert set(by_name) == {"tkdc", "simple", "sklearn", "rkde", "nocut", "ks"}
        for row in rows:
            assert row["agreement_vs_exact"] > 0.95

    def test_table3(self):
        rows = experiments.table3_datasets(scale=0.001, verbose=False)
        assert {row["name"] for row in rows} == {
            "gauss", "tmy3", "home", "hep", "sift", "mnist", "shuttle"
        }


class TestFigure1:
    def test_runs_and_region_sane(self):
        rows = experiments.fig1_shuttle_classification(
            n=2500, grid_cells=16, seed=0, verbose=False
        )
        row = rows[0]
        assert 0.0 < row["high_region_fraction"] < 1.0
        assert row["training_low_fraction"] == pytest.approx(0.15, abs=0.03)


class TestFigure7:
    def test_tkdc_beats_simple_on_2d(self):
        rows = experiments.fig7_throughput(
            n=1500, seed=0, verbose=False,
            panels=[("gauss", 2, False)],
            algorithms=("tkdc", "simple"),
        )
        by_algo = {row["algorithm"]: row for row in rows}
        # At smoke scale we assert the machine-independent metric: tkdc
        # classifies with a small fraction of the kernel evaluations.
        # (Wall-clock dominance needs larger n in pure Python; the full
        # bench suite measures it there.)
        assert (
            by_algo["tkdc"]["kernels_per_pt"]
            < 0.1 * by_algo["simple"]["kernels_per_pt"]
        )

    def test_high_dim_panel_runs(self):
        rows = experiments.fig7_throughput(
            n=600, seed=0, verbose=False,
            panels=[("mnist", 64, True)],
            algorithms=("tkdc", "simple"),
        )
        assert len(rows) == 2


class TestFigure8:
    def test_accuracy_high_for_guaranteed_algorithms(self):
        rows = experiments.fig8_accuracy(n=1200, seed=0, verbose=False)
        for row in rows:
            if row["algorithm"] in ("tkdc", "sklearn"):
                assert row["f1_low_class"] > 0.9, row
        # ks degrades at d=4 relative to d=2 (the paper's bin-bias story).
        ks_rows = {(r["dataset"], r["d"]): r["f1_low_class"]
                   for r in rows if r["algorithm"] == "ks"}
        assert ks_rows[("tmy3", 4)] <= ks_rows[("tmy3", 2)] + 0.02


class TestFigures9And10:
    def test_slopes_reproduce_asymptotics(self):
        import numpy as np

        from repro.bench.harness import fit_loglog_slope

        sizes = (1000, 2000, 4000, 8000)
        rows = experiments.fig9_scaling_n(
            sizes=sizes, n_queries=150, seed=0,
            algorithms=("tkdc", "simple"), verbose=False,
        )
        # Fit per-query *kernel-evaluation* growth — the deterministic,
        # machine-independent counterpart of the paper's throughput
        # slopes. simple is exactly O(n); tkdc's bound is n^((d-1)/d)
        # = n^0.5 at d=2 and is usually beaten in practice.
        kernels = {
            name: np.array([
                row["kernels_per_query"] for row in rows
                if row["algorithm"] == name and row["n"] > 0
            ])
            for name in ("tkdc", "simple")
        }
        xs = np.array(sizes, dtype=float)
        assert fit_loglog_slope(xs, kernels["simple"]) == pytest.approx(1.0, abs=0.01)
        assert fit_loglog_slope(xs, kernels["tkdc"]) < 0.6

    def test_fig10_runs(self):
        rows = experiments.fig10_scaling_hep(
            sizes=(800, 1600), n_queries=50, seed=0, verbose=False
        )
        assert any(str(r["algorithm"]).endswith("loglog_slope") for r in rows)


class TestFigure11:
    def test_tkdc_prunes_at_every_dim(self):
        rows = experiments.fig11_dims(
            dims=(2, 8), n=2000, n_queries=100, seed=0,
            algorithms=("tkdc", "simple"), verbose=False,
        )
        for dim in (2, 8):
            subset = {r["algorithm"]: r for r in rows if r["d"] == dim}
            # Machine-independent claim at smoke scale: tkdc evaluates a
            # small fraction of the kernels per query at every dimension.
            assert (
                subset["tkdc"]["kernels_per_query"]
                < 0.25 * subset["simple"]["kernels_per_query"]
            )


class TestFactorAndLesion:
    def test_threshold_rule_is_the_big_win(self):
        rows = experiments.fig12_factor_analysis(
            n=3000, n_queries=200, slow_queries=30, seed=0, verbose=False
        )
        by_variant = {row["variant"]: row for row in rows}
        assert by_variant["baseline"]["kernels_per_pt"] == pytest.approx(3000, rel=0.01)
        assert by_variant["+threshold"]["kernels_per_pt"] < 0.1 * 3000

    def test_lesion_no_optimization_redundant(self):
        rows = experiments.fig16_lesion_analysis(
            n=3000, n_queries=200, slow_queries=30, seed=0, verbose=False
        )
        by_variant = {row["variant"]: row for row in rows}
        # Removing the threshold rule explodes the kernel count.
        assert (
            by_variant["-threshold"]["kernels_per_pt"]
            > 10 * by_variant["complete"]["kernels_per_pt"]
        )


class TestRadiusAndThresholdSweeps:
    def test_fig13_error_decreases_with_radius(self):
        rows = experiments.fig13_rkde_radius(
            radii=(0.5, 2.0, 4.0), n=3000, n_queries=80, seed=0, verbose=False
        )
        rkde_rows = [r for r in rows if r["algorithm"] == "rkde"]
        errors = [r["max_err_over_t"] for r in rkde_rows]
        assert errors[0] > errors[-1]

    def test_fig15_low_quantile_much_cheaper(self):
        rows = experiments.fig15_threshold_sweep(
            quantiles=(0.01, 0.5, 0.99), n=4000, n_queries=150, seed=0, verbose=False
        )
        tkdc = {r["p"]: r["kernels_per_query"] for r in rows if r["algorithm"] == "tkdc"}
        # Low thresholds have few nearby points -> aggressive pruning.
        assert tkdc[0.01] < 0.2 * tkdc[0.5]
        # The right side flattens rather than exploding: cost at p=0.99
        # stays in the same ballpark as the middle. (The paper's sharp
        # right-side dip depends on the density-of-densities of the real
        # tmy3 data; our simulator's is flatter — see EXPERIMENTS.md.)
        assert tkdc[0.99] < 2.0 * tkdc[0.5]


class TestFigure14:
    def test_mnist_sweep_runs(self):
        rows = experiments.fig14_mnist_dims(
            dims=(4, 64), n=800, n_queries=40, seed=0, verbose=False
        )
        assert {r["d"] for r in rows} == {4, 64}
        for row in rows:
            assert row["queries_per_s"] > 0


class TestExtraAblations:
    def test_priority_orders(self):
        rows = experiments.ablation_priority_orders(
            n=3000, n_queries=120, seed=0, verbose=False
        )
        by_priority = {r["priority"]: r for r in rows}
        # The paper's discrepancy ordering should not do more kernel work
        # than naive FIFO expansion.
        assert (
            by_priority["discrepancy"]["kernels_per_pt"]
            <= by_priority["fifo"]["kernels_per_pt"] * 1.5
        )

    def test_leaf_size_sweep(self):
        rows = experiments.ablation_leaf_size(
            leaf_sizes=(8, 64), n=3000, n_queries=120, seed=0, verbose=False
        )
        assert len(rows) == 2

    def test_kernel_ablation(self):
        rows = experiments.ablation_kernels(n=2500, seed=0, verbose=False)
        by_kernel = {r["kernel"]: r for r in rows}
        for row in by_kernel.values():
            assert row["low_fraction"] == pytest.approx(0.01, abs=0.01)


class TestTheorem1:
    def test_thm1_scaling_runs(self):
        rows = experiments.thm1_scaling(
            sizes=(1000, 2000, 4000), n_queries=120, seed=0, verbose=False
        )
        sweep = [r for r in rows if r["n"] > 0]
        assert len(sweep) == 3
        # Near fraction shrinks with n at this scale.
        assert sweep[-1]["near_fraction"] <= sweep[0]["near_fraction"]


class TestDeterminism:
    def test_experiments_deterministic_given_seed(self):
        first = experiments.fig8_accuracy(n=800, seed=0, verbose=False)
        second = experiments.fig8_accuracy(n=800, seed=0, verbose=False)
        f1_first = [r["f1_low_class"] for r in first]
        f1_second = [r["f1_low_class"] for r in second]
        np.testing.assert_allclose(f1_first, f1_second)
