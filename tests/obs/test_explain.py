"""Unit tests for the human-readable trace rendering."""

from __future__ import annotations

from repro.obs.explain import explain_trace, explain_traces, rule_summary
from repro.obs.trace import QueryTrace


def _trace(index: int, rule: str = "threshold_low", steps: int = 3) -> QueryTrace:
    trace = QueryTrace(query_index=index, engine="batch")
    for i in range(steps):
        trace.step(0.1 * i, 1.0 - 0.1 * i)
    trace.stop(rule, expansions=steps)
    trace.label = 0 if rule == "threshold_low" else 1
    return trace


class TestExplainTrace:
    def test_renders_rule_label_and_band(self):
        text = explain_trace(_trace(5), thresholds=(0.4, 0.6))
        assert "query #5 [batch] -> LOW" in text
        assert "threshold band: [0.4, 0.6]" in text
        assert "stopped by:     threshold_low" in text
        assert "after 3 node expansion(s)" in text
        assert "step    0" in text

    def test_long_trajectories_are_elided(self):
        text = explain_trace(_trace(0, steps=40), max_steps=6)
        assert "step(s) elided" in text
        # Head and tail survive; the middle does not.
        assert "step    0" in text
        assert "step   39" in text
        assert "step   20" not in text

    def test_guard_repairs_shown_only_when_present(self):
        trace = _trace(0)
        assert "guard repairs" not in explain_trace(trace)
        trace.guard_repairs = 2
        assert "guard repairs:  2" in explain_trace(trace)

    def test_unknown_label_and_missing_rule(self):
        trace = QueryTrace(query_index=1)
        text = explain_trace(trace)
        assert "(unlabeled)" in text
        assert "(none recorded)" in text


class TestRuleSummary:
    def test_tallies_by_rule(self):
        traces = [_trace(i) for i in range(3)] + [_trace(9, "threshold_high")]
        text = rule_summary(traces)
        assert "4 trace(s):" in text
        assert "threshold_low" in text
        assert "threshold_high" in text
        assert "(75.0%)" in text

    def test_empty_set(self):
        assert rule_summary([]) == "0 trace(s):"


class TestExplainTraces:
    def test_limit_and_footer(self):
        traces = [_trace(i) for i in range(5)]
        text = explain_traces(traces, limit=2)
        assert "query #0" in text
        assert "query #1" in text
        assert "query #2" not in text
        assert "3 more trace(s)" in text

    def test_no_footer_when_all_shown(self):
        text = explain_traces([_trace(0)], limit=10)
        assert "more trace(s)" not in text
