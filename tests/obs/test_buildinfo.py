"""Build-identity provenance: version + git describe, stamped everywhere."""

from __future__ import annotations

import pickle

import numpy as np

import repro
from repro import TKDCClassifier, TKDCConfig
from repro.bench.reporting import report_metadata
from repro.io.models import load_model, save_model
from repro.obs.buildinfo import build_info, git_describe


class TestBuildInfo:
    def test_keys_and_version(self):
        info = build_info()
        assert set(info) == {"version", "git", "python"}
        assert info["version"] == repro.__version__
        assert info["git"]  # non-empty: a describe string or "unknown"
        assert info["python"].count(".") == 2

    def test_git_describe_is_cached_and_stringy(self):
        assert git_describe() == git_describe()
        assert isinstance(git_describe(), str)


class TestReportMetadata:
    def test_carries_build_identity(self):
        meta = report_metadata()
        assert meta["build"] == build_info()
        assert meta["python"] and meta["machine"]


class TestModelBuildStamp:
    def test_saved_models_carry_build_info(self, tmp_path):
        rng = np.random.default_rng(0)
        clf = TKDCClassifier(TKDCConfig(p=0.1, seed=0)).fit(
            rng.normal(size=(300, 2))
        )
        path = save_model(tmp_path / "stamped", clf)

        # The stamp is in the raw payload (pre-classifier metadata)...
        blob = path.read_bytes()
        payload = pickle.loads(blob[: blob.rindex(b"tkdc-sha256:")])
        assert payload["build"] == build_info()
        assert payload["version"] == repro.__version__

        # ...and the file still loads as a classifier.
        assert load_model(path).is_fitted
