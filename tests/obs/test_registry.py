"""Unit tests for the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)


class TestLogBuckets:
    def test_endpoints_included(self):
        edges = log_buckets(1.0, 100.0, 3)
        assert edges == (1.0, 10.0, 100.0)

    def test_monotone_and_sized(self):
        edges = log_buckets(0.0005, 60.0, 15)
        assert len(edges) == 15
        assert list(edges) == sorted(edges)
        assert edges == LATENCY_BUCKETS

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0, 3)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0, 3)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, 1)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        counter.inc(5)
        assert counter.value == 0.0
        registry.enable()
        counter.inc(5)
        assert counter.value == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0


class TestHistogram:
    def test_observe_fills_correct_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        hist.observe(0.5)   # <= 1
        hist.observe(10.0)  # <= 10 (boundary lands in its edge bucket)
        hist.observe(1e6)   # overflow -> +Inf
        view = hist.snapshot()
        assert view["cumulative_counts"] == [1, 2, 2, 3]
        assert view["count"] == 3
        assert view["sum"] == pytest.approx(0.5 + 10.0 + 1e6)

    def test_observe_many_matches_singles(self):
        registry = MetricsRegistry()
        a = registry.histogram("a", buckets=(1.0, 4.0))
        b = registry.histogram("b", buckets=(1.0, 4.0))
        values = [0.1, 2.0, 3.0, 100.0]
        a.observe_many(values)
        for v in values:
            b.observe(v)
        assert a.snapshot()["cumulative_counts"] == b.snapshot()["cumulative_counts"]

    def test_time_uses_injectable_clock(self):
        ticks = iter([10.0, 13.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        with hist.time():
            pass
        assert hist.sum == pytest.approx(3.5)
        assert hist.count == 1

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(10.0, 1.0))

    def test_labeled_children_inherit_buckets(self):
        hist = MetricsRegistry().histogram(
            "h", labels=("engine",), buckets=(2.0, 8.0)
        )
        child = hist.labels("batch")
        child.observe(5.0)
        assert child.snapshot()["buckets"] == [2.0, 8.0]
        assert child.count == 1


class TestLabels:
    def test_positional_and_keyword_equivalent(self):
        counter = MetricsRegistry().counter("c_total", labels=("engine", "rule"))
        assert counter.labels("batch", "budget") is counter.labels(
            rule="budget", engine="batch"
        )

    def test_wrong_arity_raises(self):
        counter = MetricsRegistry().counter("c_total", labels=("engine",))
        with pytest.raises(ValueError):
            counter.labels("a", "b")

    def test_children_are_independent(self):
        counter = MetricsRegistry().counter("c_total", labels=("engine",))
        counter.labels("batch").inc(3)
        counter.labels("per-query").inc(1)
        values = {
            labels[0]: child.value
            for labels, child in counter.children()
            if child is not counter
        }
        assert values == {"batch": 3.0, "per-query": 1.0}


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", labels=("x",))
        b = registry.counter("c_total", labels=("x",))
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", labels=("b",))

    def test_reset_zeroes_but_keeps_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("engine",))
        counter.labels("batch").inc(7)
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        registry.reset()
        assert counter.labels("batch").value == 0.0
        assert hist.count == 0

    def test_snapshot_keys(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("engine",)).labels("batch").inc(2)
        registry.gauge("g").set(1.5)
        snap = registry.snapshot()
        assert snap["c_total{engine=batch}"] == 2.0
        assert snap["g"] == 1.5

    def test_concurrent_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("c_total")

        def hammer():
            for __ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000.0


class TestRenderPrometheus:
    def test_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", labels=("engine",)).labels(
            "batch"
        ).inc(2)
        registry.histogram("h", "a histogram", buckets=(1.0, 10.0)).observe(0.5)
        text = render_prometheus(registry)
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{engine="batch"} 2' in text
        assert "# TYPE h histogram" in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 0.5" in text
        assert "h_count 1" in text
        assert text.endswith("\n")

    def test_duplicate_family_across_registries_raises(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("dup_total")
        b.counter("dup_total")
        with pytest.raises(ValueError):
            render_prometheus(a, b)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("x",)).labels('he said "hi"\n').inc()
        text = render_prometheus(registry)
        assert r'x="he said \"hi\"\n"' in text


class TestInstrumentClasses:
    def test_kinds(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("a_total"), Counter)
        assert isinstance(registry.gauge("b"), Gauge)
        assert isinstance(registry.histogram("c"), Histogram)
