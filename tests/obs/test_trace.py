"""Unit tests for per-query traces, views, and the bounded JSONL sink."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    TERMINAL_RULES,
    QueryTrace,
    TraceRecorder,
    TraceSink,
    read_traces,
)


class TestQueryTrace:
    def test_step_appends_and_updates_bounds(self):
        trace = QueryTrace(query_index=3)
        trace.step(0.1, 0.9)
        trace.step(0.2, 0.8)
        assert trace.bounds == [(0.1, 0.9), (0.2, 0.8)]
        assert (trace.f_lower, trace.f_upper) == (0.2, 0.8)

    def test_stop_validates_rule(self):
        trace = QueryTrace(query_index=0)
        with pytest.raises(ValueError):
            trace.stop("made_up_rule")
        for rule in TERMINAL_RULES:
            QueryTrace(query_index=0).stop(rule)

    def test_dict_round_trip(self):
        trace = QueryTrace(query_index=7, engine="batch")
        trace.step(0.0, 1.0)
        trace.stop("tolerance", f_lower=0.4, f_upper=0.5, expansions=3)
        trace.guard_repairs = 2
        trace.label = 1
        clone = QueryTrace.from_dict(trace.to_dict())
        assert clone.to_dict() == trace.to_dict()


class TestTraceRecorder:
    def test_open_is_idempotent(self):
        recorder = TraceRecorder(engine="batch")
        assert recorder.open(4) is recorder.open(4)
        assert recorder.open(4).engine == "batch"

    def test_traces_sorted_by_index(self):
        recorder = TraceRecorder()
        for i in (5, 1, 3):
            recorder.step(i, 0.0, 1.0)
        assert [t.query_index for t in recorder.traces()] == [1, 3, 5]
        assert len(recorder) == 3
        assert recorder.get(1) is not None
        assert recorder.get(99) is None

    def test_max_steps_caps_trajectory_not_bounds(self):
        recorder = TraceRecorder(max_steps=2)
        for i in range(5):
            recorder.step(0, float(i), 10.0 - i)
        trace = recorder.get(0)
        assert len(trace.bounds) == 2
        # Terminal bounds still track the latest step past the cap.
        assert (trace.f_lower, trace.f_upper) == (4.0, 6.0)

    def test_label_assignment(self):
        recorder = TraceRecorder()
        recorder.stop(2, "grid")
        recorder.label(2, 1)
        assert recorder.get(2).label == 1


class TestTraceView:
    def test_view_remaps_indices(self):
        recorder = TraceRecorder()
        view = recorder.view([10, 20, 30])
        view.step(1, 0.1, 0.9)
        view.stop(1, "budget")
        view.repair(2)
        assert recorder.get(20).rule == "budget"
        assert recorder.get(30).guard_repairs == 1
        assert recorder.get(1) is None

    def test_views_compose(self):
        recorder = TraceRecorder()
        outer = recorder.view([100, 200, 300])
        inner = outer.view([2, 0])
        inner.step(0, 0.0, 1.0)  # local 0 -> outer 2 -> global 300
        assert recorder.get(300) is not None

    def test_view_max_steps_follows_recorder(self):
        recorder = TraceRecorder(max_steps=7)
        assert recorder.view([0]).max_steps == 7


class TestTraceSink:
    def _trace(self, index: int) -> QueryTrace:
        trace = QueryTrace(query_index=index, engine="batch")
        trace.step(0.0, 1.0)
        trace.stop("threshold_low", f_lower=0.1, f_upper=0.2, expansions=4)
        trace.label = 0
        return trace

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        originals = [self._trace(i) for i in range(5)]
        with TraceSink(path) as sink:
            assert sink.write_all(originals) == 5
        loaded = read_traces(path)
        assert [t.to_dict() for t in loaded] == [t.to_dict() for t in originals]

    def test_byte_budget_truncates_with_marker(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        one_line = json.dumps(self._trace(0).to_dict(), separators=(",", ":"))
        budget = (len(one_line) + 1) * 2  # room for two lines, not three
        with TraceSink(path, max_bytes=budget) as sink:
            written = sink.write_all([self._trace(i) for i in range(5)])
        assert written == 2
        assert sink.truncated
        lines = path.read_text().strip().splitlines()
        assert lines[-1] == TraceSink.MARKER
        # The marker line is skipped on load.
        assert len(read_traces(path)) == 2

    def test_write_all_accepts_recorder(self, tmp_path):
        recorder = TraceRecorder(engine="batch")
        recorder.stop(0, "grid")
        with TraceSink(tmp_path / "t.jsonl") as sink:
            assert sink.write_all(recorder) == 1
