"""Property-based guarantees for coreset compression.

Three invariants:

1. **Certificate validity** — the merge-reduce construction's
   deterministic ``eta`` upper-bounds the measured sup-norm error on any
   probe set, for any data shape and compression level.
2. **Certification pin** — when a fitted classifier reports
   ``certified`` (its ``eta`` was applied to the widened pruning rules,
   i.e. ``eta < eps * t_l``), no query whose full-data density is
   outside the widened ``±(eps * t + 2 * eta)`` band may flip HIGH/LOW
   relative to the uncompressed classifier.
3. **Engine parity under widening** — the batch and per-query engines
   keep producing the same prune outcomes, the same work counters, and
   densities equal to within a few ULPs with a weighted (coreset) tree
   and a nonzero ``eta``, exactly as they do without compression (the
   two engines share the traversal but not the instruction stream —
   vectorized vs scalar libm — so bit-equality is not the contract; see
   ``test_batch_engine_properties``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TKDCClassifier, TKDCConfig
from repro.core.batch_bounds import bound_densities
from repro.core.bounds import bound_density
from repro.core.stats import TraversalStats
from repro.coresets import empirical_eta, exact_density, merge_reduce_coreset
from repro.index.kdtree import KDTree
from repro.kernels.factory import kernel_for_data


@st.composite
def point_clouds(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dim = draw(st.integers(1, 3))
    n = draw(st.integers(120, 500))
    n_clusters = draw(st.integers(1, 3))
    centers = rng.uniform(-5, 5, size=(n_clusters, dim))
    spread = draw(st.sampled_from([0.05, 0.5, 1.0]))
    data = centers[rng.integers(0, n_clusters, size=n)] + spread * rng.normal(
        size=(n, dim)
    )
    fraction = draw(st.sampled_from([0.05, 0.2, 0.5]))
    kernel_name = draw(st.sampled_from(["gaussian", "epanechnikov"]))
    return data, fraction, kernel_name, seed


@given(cloud=point_clouds())
@settings(max_examples=25, deadline=None)
def test_merge_reduce_eta_bounds_measured_error(cloud):
    data, fraction, kernel_name, seed = cloud
    kernel = kernel_for_data(data, name=kernel_name)
    scaled = kernel.scale(data)
    k = max(1, int(fraction * data.shape[0]))
    coreset = merge_reduce_coreset(scaled, kernel, k)
    assert coreset.k <= max(k, 1)
    assert float(coreset.weights.sum()) == np.float64(data.shape[0])
    measured = empirical_eta(
        scaled, coreset, kernel, n_probes=128,
        rng=np.random.default_rng(seed + 1),
    )
    assert measured <= coreset.eta + 1e-12


@given(seed=st.integers(0, 2**31 - 1), fraction=st.sampled_from([0.25, 0.5]))
@settings(max_examples=10, deadline=None)
def test_certified_labels_never_flip_outside_widened_band(seed, fraction):
    """The certification pin (the tentpole's correctness contract).

    Tight near-duplicate clusters make the merge-reduce certificate
    sharp enough to certify; the pin then demands that every query whose
    exact full-data density clears the widened band gets the *same*
    label from the compressed and uncompressed classifiers.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4, 4, size=(4, 2))
    data = centers[rng.integers(0, 4, size=600)] + 1e-5 * rng.normal(size=(600, 2))
    config = TKDCConfig(p=0.2, epsilon=0.5, seed=0, use_grid=False)

    base = TKDCClassifier(config).fit(data)
    compressed = TKDCClassifier(
        config.with_updates(coreset="merge-reduce", coreset_fraction=fraction)
    ).fit(data)
    if not compressed.certified:
        return  # certificate too coarse on this draw; nothing pinned

    queries = np.concatenate([
        centers + 1e-4 * rng.normal(size=centers.shape),  # deep HIGH
        rng.uniform(8, 12, size=(8, 2)),                  # deep LOW
        rng.uniform(-6, 6, size=(30, 2)),                 # wherever
    ])
    kernel = base.kernel
    f_exact = exact_density(kernel.scale(data), kernel, kernel.scale(queries))
    t = base.threshold.value
    band = config.epsilon * t + 2.0 * compressed.eta
    outside = np.abs(f_exact - t) > band
    base_labels = base.predict(queries)
    compressed_labels = compressed.predict(queries)
    assert np.array_equal(base_labels[outside], compressed_labels[outside])


@given(cloud=point_clouds(), eta_frac=st.sampled_from([0.0, 1e-6, 1e-3]))
@settings(max_examples=15, deadline=None)
def test_engine_parity_with_weighted_tree_and_eta(cloud, eta_frac):
    data, fraction, kernel_name, seed = cloud
    kernel = kernel_for_data(data, name=kernel_name)
    scaled = kernel.scale(data)
    k = max(2, int(fraction * data.shape[0]))
    coreset = merge_reduce_coreset(scaled, kernel, k)
    tree = KDTree(coreset.points, leaf_size=8, weights=coreset.weights)
    rng = np.random.default_rng(seed + 2)
    queries = rng.uniform(scaled.min(axis=0) - 1, scaled.max(axis=0) + 1,
                          size=(20, scaled.shape[1]))
    threshold = 1e-2 * kernel.max_value
    eta = eta_frac * kernel.max_value

    ref_stats = TraversalStats()
    ref = [
        bound_density(
            tree, kernel, q, threshold, threshold, 0.05, ref_stats, eta=eta
        )
        for q in queries
    ]
    batch_stats = TraversalStats()
    batch = bound_densities(
        tree.flatten(), kernel, queries, threshold, threshold, 0.05,
        batch_stats, eta=eta,
    )
    assert batch.outcomes() == [single.outcome for single in ref]
    # Same traversal, different instruction stream (BLAS dot vs einsum,
    # math.exp vs np.exp): densities agree to a few ULPs, not bitwise.
    scale = kernel.max_value
    for i, single in enumerate(ref):
        assert batch.lower[i] == pytest.approx(single.lower, rel=1e-12, abs=1e-12 * scale)
        assert batch.upper[i] == pytest.approx(single.upper, rel=1e-12, abs=1e-12 * scale)
    assert batch_stats.snapshot() == ref_stats.snapshot()
