"""Property-based parity between the batch and per-query engines.

The batch engine replicates the per-query traversal exactly — same
discrepancy pop order, same rule order, same counters — so on any
dataset/config the two must produce identical labels and identical
prune-outcome counts, and the batch intervals must bracket the exact
density (Problem 1's correctness requirement).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TKDCClassifier, TKDCConfig
from repro.core.batch_bounds import bound_densities
from repro.core.bounds import bound_density
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.factory import kernel_for_data


@st.composite
def traversal_workloads(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dim = draw(st.integers(1, 3))
    n = draw(st.integers(100, 600))
    n_clusters = draw(st.integers(1, 3))
    centers = rng.uniform(-6, 6, size=(n_clusters, dim))
    assignments = rng.integers(0, n_clusters, size=n)
    data = centers[assignments] + rng.normal(size=(n, dim))
    queries = rng.uniform(-9, 9, size=(25, dim))
    kernel_name = draw(st.sampled_from(["gaussian", "epanechnikov"]))
    leaf_size = draw(st.sampled_from([4, 16, 32]))
    epsilon = draw(st.sampled_from([0.01, 0.1]))
    threshold_frac = draw(st.sampled_from([1e-4, 1e-2, 0.1]))
    return data, queries, kernel_name, leaf_size, epsilon, threshold_frac, seed


@given(workload=traversal_workloads())
@settings(max_examples=30, deadline=None)
def test_batch_engine_matches_per_query_engine(workload):
    data, queries, kernel_name, leaf_size, epsilon, threshold_frac, __ = workload
    kernel = kernel_for_data(data, name=kernel_name)
    scaled = kernel.scale(data)
    tree = KDTree(scaled, leaf_size=leaf_size)
    scaled_queries = kernel.scale(queries)
    threshold = threshold_frac * kernel.max_value

    ref_stats = TraversalStats()
    ref = [
        bound_density(
            tree, kernel, q, threshold, threshold, epsilon, ref_stats
        )
        for q in scaled_queries
    ]
    batch_stats = TraversalStats()
    batch = bound_densities(
        tree.flatten(), kernel, scaled_queries, threshold, threshold, epsilon,
        batch_stats,
    )

    # Identical labels...
    np.testing.assert_array_equal(
        batch.midpoint > threshold,
        np.array([r.midpoint > threshold for r in ref]),
    )
    # ...identical per-query prune outcomes (hence identical counts)...
    assert batch.outcomes() == [r.outcome for r in ref]
    # ...and identical work counters.
    assert batch_stats.snapshot() == ref_stats.snapshot()


@given(workload=traversal_workloads())
@settings(max_examples=30, deadline=None)
def test_batch_bounds_bracket_exact_density(workload):
    data, queries, kernel_name, leaf_size, epsilon, threshold_frac, __ = workload
    kernel = kernel_for_data(data, name=kernel_name)
    scaled = kernel.scale(data)
    tree = KDTree(scaled, leaf_size=leaf_size)
    scaled_queries = kernel.scale(queries)
    threshold = threshold_frac * kernel.max_value

    batch = bound_densities(
        tree.flatten(), kernel, scaled_queries, threshold, threshold, epsilon,
        TraversalStats(),
    )
    diffs = scaled[None, :, :] - scaled_queries[:, None, :]
    sq = np.einsum("qnd,qnd->qn", diffs, diffs)
    exact = np.sum(kernel.value(sq), axis=1) / scaled.shape[0]
    slack = 1e-9 * np.maximum(exact, kernel.max_value / scaled.shape[0])
    assert np.all(batch.lower <= exact + slack)
    assert np.all(batch.upper >= exact - slack)


@given(
    workload=traversal_workloads(),
    p=st.sampled_from([0.02, 0.1]),
)
@settings(max_examples=15, deadline=None)
def test_classifier_engines_agree_end_to_end(workload, p):
    data, queries, kernel_name, leaf_size, __, __, seed = workload
    base = TKDCConfig(
        p=p, seed=seed, kernel=kernel_name, leaf_size=leaf_size,
        bootstrap_s0=400,
    )
    clf_batch = TKDCClassifier(base).fit(data)
    clf_ref = TKDCClassifier(base.with_updates(engine="per-query")).fit(data)
    # The engines run the same traversal but not the same instruction
    # stream (vectorized vs scalar libm), so the refined quantile can
    # drift by a few ULPs — nothing more.
    assert clf_batch.threshold.value == pytest.approx(
        clf_ref.threshold.value, rel=1e-9
    )
    # At a *shared* threshold the engines must agree exactly.
    np.testing.assert_array_equal(
        clf_batch.predict(queries, engine="batch"),
        clf_batch.predict(queries, engine="per-query"),
    )
    # Across the two independently fitted models the thresholds differ
    # by ULPs, so a query inside the epsilon tolerance band — where
    # Problem 1's contract allows either label — may legitimately flip.
    # Any disagreement must be attributable to that band and nothing else.
    preds_batch = np.asarray(clf_batch.predict(queries))
    preds_ref = np.asarray(clf_ref.predict(queries))
    mismatched = np.flatnonzero(preds_batch != preds_ref)
    # Scalar and vectorized accumulation round differently, so any
    # score can carry absolute error at the summation-roundoff scale —
    # decisive when the refined quantile is 0 (compact-support kernels
    # leave isolated points with exactly zero leave-out density).
    kernel = kernel_for_data(data, name=kernel_name)
    atol = 1e-12 * kernel.max_value
    if mismatched.size:
        scaled = kernel.scale(data)
        scaled_q = kernel.scale(queries[mismatched])
        diffs = scaled[None, :, :] - scaled_q[:, None, :]
        sq = np.einsum("qnd,qnd->qn", diffs, diffs)
        exact = np.sum(kernel.value(sq), axis=1) / scaled.shape[0]
        t = clf_batch.threshold.value
        eps = clf_batch.config.epsilon
        assert np.all(exact >= t * (1.0 - eps) * (1.0 - 1e-9) - atol), mismatched
        assert np.all(exact <= t * (1.0 + eps) * (1.0 + 1e-9) + atol), mismatched
    # Training labels come from comparing scores against the refined
    # quantile, and the quantile sits *on* the score distribution — a
    # ULP of threshold drift may flip points at the boundary. Every
    # flipped point's score must sit within that drift of the quantile.
    flipped = np.flatnonzero(
        np.asarray(clf_batch.training_labels_)
        != np.asarray(clf_ref.training_labels_)
    )
    if flipped.size:
        t_lo = min(clf_batch.threshold.value, clf_ref.threshold.value)
        t_hi = max(clf_batch.threshold.value, clf_ref.threshold.value)
        slack = 1e-9 * t_hi + atol
        for scores in (clf_batch.training_scores_, clf_ref.training_scores_):
            boundary = np.asarray(scores)[flipped]
            assert np.all(boundary >= t_lo - slack), flipped
            assert np.all(boundary <= t_hi + slack), flipped
