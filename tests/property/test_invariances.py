"""Metamorphic invariance tests for the classifier.

Density classification with Scott's-rule bandwidths has exact symmetry
properties: the labels must be invariant under translation of the whole
problem, under per-axis rescaling (the diagonal bandwidth absorbs it),
and under permutation of the training points (for points away from the
threshold, where bootstrap sampling noise cannot flip a decision).
Violations of any of these indicate coordinate-handling bugs that
pointwise accuracy tests can miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE


def _fit_and_label(data, queries, seed):
    config = TKDCConfig(p=0.1, seed=seed, bootstrap_s0=300)
    clf = TKDCClassifier(config).fit(data)
    return clf, clf.predict(queries)


def _off_band_mask(data, queries, threshold, epsilon, margin=3.0):
    naive = NaiveKDE().fit(data)
    densities = naive.density(queries)
    return np.abs(densities - threshold) > margin * epsilon * threshold


@st.composite
def workloads(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dim = draw(st.integers(1, 3))
    n = draw(st.integers(300, 700))
    clusters = rng.uniform(-5, 5, size=(draw(st.integers(1, 3)), dim))
    assignment = rng.integers(0, clusters.shape[0], size=n)
    data = clusters[assignment] + rng.normal(size=(n, dim))
    queries = rng.uniform(-8, 8, size=(12, dim))
    return data, queries, seed


@given(workload=workloads(), shift_scale=st.floats(-1e3, 1e3, allow_nan=False))
@settings(max_examples=15, deadline=None)
def test_translation_invariance(workload, shift_scale):
    data, queries, seed = workload
    rng = np.random.default_rng(seed + 1)
    shift = rng.normal(size=data.shape[1]) * shift_scale
    clf, labels = _fit_and_label(data, queries, seed)
    __, shifted_labels = _fit_and_label(data + shift, queries + shift, seed)
    off_band = _off_band_mask(data, queries, clf.threshold.value, clf.config.epsilon)
    np.testing.assert_array_equal(labels[off_band], shifted_labels[off_band])


@given(workload=workloads(), log_scale=st.floats(-3.0, 3.0, allow_nan=False))
@settings(max_examples=15, deadline=None)
def test_axis_scaling_invariance(workload, log_scale):
    """Scaling an axis rescales densities uniformly; labels (from the
    quantile threshold, which rescales identically) must not change."""
    data, queries, seed = workload
    rng = np.random.default_rng(seed + 2)
    scales = 10.0 ** (rng.uniform(-1, 1, size=data.shape[1]) * abs(log_scale) / 3)
    clf, labels = _fit_and_label(data, queries, seed)
    __, scaled_labels = _fit_and_label(data * scales, queries * scales, seed)
    off_band = _off_band_mask(data, queries, clf.threshold.value, clf.config.epsilon)
    np.testing.assert_array_equal(labels[off_band], scaled_labels[off_band])


@given(workload=workloads())
@settings(max_examples=15, deadline=None)
def test_permutation_invariance(workload):
    """Shuffling the training rows must not flip off-band labels.

    (Near-threshold labels may legitimately differ: the bootstrap
    subsamples by row position, so the estimated threshold moves within
    its epsilon band.)"""
    data, queries, seed = workload
    rng = np.random.default_rng(seed + 3)
    permutation = rng.permutation(data.shape[0])
    clf, labels = _fit_and_label(data, queries, seed)
    __, permuted_labels = _fit_and_label(data[permutation], queries, seed)
    off_band = _off_band_mask(data, queries, clf.threshold.value, clf.config.epsilon)
    np.testing.assert_array_equal(labels[off_band], permuted_labels[off_band])


@given(workload=workloads())
@settings(max_examples=10, deadline=None)
def test_duplication_shifts_threshold_not_geometry(workload):
    """Training on the data twice over changes n (and so the bandwidth)
    but not the geometry: clearly-dense and clearly-sparse queries keep
    their labels."""
    data, queries, seed = workload
    clf, labels = _fit_and_label(data, queries, seed)
    doubled = np.concatenate([data, data])
    __, doubled_labels = _fit_and_label(doubled, queries, seed)
    # Compare only far-off-band queries (factor 10 margin): bandwidth
    # shrink moves densities, but order-of-magnitude gaps survive.
    off_band = _off_band_mask(
        data, queries, clf.threshold.value, clf.config.epsilon, margin=10.0
    )
    naive = NaiveKDE().fit(data)
    densities = naive.density(queries)
    really_clear = off_band & (
        (densities > 10 * clf.threshold.value)
        | (densities < 0.1 * clf.threshold.value)
    )
    np.testing.assert_array_equal(labels[really_clear], doubled_labels[really_clear])
