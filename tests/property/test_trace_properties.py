"""Properties of per-query pruning traces, on both engines.

The trace is a *witness* of the traversal, not a participant: recording
must change no labels, and every recorded trajectory must satisfy the
invariants the traversal itself guarantees — ``f_l`` nondecreasing and
``f_u`` nonincreasing as nodes are expanded (the bounds only tighten),
and a terminating rule consistent with the label the classifier
returned. The explain path (``repro explain``) must reproduce the
terminating rule verbatim for every sampled query, on both engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Label, TKDCClassifier, TKDCConfig
from repro.obs.explain import explain_trace
from repro.obs.trace import TERMINAL_RULES

ENGINES = ("per-query", "batch")

#: Bound-trajectory monotonicity tolerance: steps are recorded from the
#: engines' own float arithmetic, so equality is exact up to roundoff.
ATOL = 1e-12


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(17)
    data = np.concatenate([
        rng.normal(size=(1200, 2)) * 0.6 + np.array([-2.0, 0.0]),
        rng.normal(size=(1200, 2)) * 0.6 + np.array([2.0, 0.0]),
    ])
    clf = TKDCClassifier(TKDCConfig(p=0.05, seed=17)).fit(data)
    return clf, data


@pytest.fixture(scope="module")
def queries(fitted):
    clf, data = fitted
    rng = np.random.default_rng(18)
    # Mix of in-distribution, boundary-ish, and far outlier points so
    # threshold_high, threshold_low, and the cache paths all fire;
    # >= 100 queries per engine (the explain acceptance bar).
    return np.concatenate([
        data[rng.choice(data.shape[0], size=60, replace=False)],
        rng.uniform(-5.0, 5.0, size=(60, 2)),
        rng.uniform(6.0, 9.0, size=(10, 2)),
    ])


@pytest.mark.parametrize("engine", ENGINES)
class TestTraceProperties:
    def test_tracing_changes_no_labels(self, fitted, queries, engine):
        clf, __ = fitted
        plain = clf.classify(queries, engine=engine)
        traced, recorder = clf.trace_classify(queries, engine=engine)
        np.testing.assert_array_equal(
            np.asarray(plain, dtype=int), np.asarray(traced, dtype=int)
        )
        assert len(recorder) == queries.shape[0]

    def test_bound_trajectories_are_monotone(self, fitted, queries, engine):
        clf, __ = fitted
        __, recorder = clf.trace_classify(queries, engine=engine)
        checked = 0
        for trace in recorder.traces():
            lowers = [lo for lo, __ in trace.bounds]
            uppers = [hi for __, hi in trace.bounds]
            for a, b in zip(lowers, lowers[1:]):
                assert b >= a - ATOL, (
                    f"f_l regressed on query {trace.query_index}: {a} -> {b}"
                )
            for a, b in zip(uppers, uppers[1:]):
                assert b <= a + ATOL, (
                    f"f_u grew on query {trace.query_index}: {a} -> {b}"
                )
            checked += 1
        assert checked == queries.shape[0]

    def test_terminal_rule_consistent_with_label(self, fitted, queries, engine):
        clf, __ = fitted
        labels, recorder = clf.trace_classify(queries, engine=engine)
        labels = np.asarray(labels, dtype=int)
        for trace in recorder.traces():
            assert trace.rule in TERMINAL_RULES
            label = labels[trace.query_index]
            assert trace.label == int(label)
            # The provable rules pin the label outright.
            if trace.rule == "threshold_high":
                assert label == int(Label.HIGH)
            elif trace.rule == "threshold_low":
                assert label == int(Label.LOW)

    def test_explain_reproduces_rule_for_all_queries(
        self, fitted, queries, engine
    ):
        clf, __ = fitted
        assert queries.shape[0] >= 100
        __, recorder = clf.trace_classify(queries, engine=engine)
        for trace in recorder.traces():
            text = explain_trace(trace)
            assert f"stopped by:     {trace.rule}" in text
            assert f"query #{trace.query_index}" in text

    def test_traced_bounds_agree_with_final_interval(
        self, fitted, queries, engine
    ):
        clf, __ = fitted
        __, recorder = clf.trace_classify(queries, engine=engine)
        for trace in recorder.traces():
            if trace.bounds and trace.rule not in ("exact", "grid"):
                lo, hi = trace.bounds[-1]
                assert trace.f_lower == pytest.approx(lo, abs=ATOL)
                assert trace.f_upper == pytest.approx(hi, abs=ATOL)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_engines_trace_identical_rules(seed):
    """Both engines terminate every query by the same rule."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(400, 2))
    clf = TKDCClassifier(
        TKDCConfig(p=0.1, seed=seed % 100, refine_threshold=False,
                   bootstrap_s0=200)
    ).fit(data)
    queries = rng.uniform(-4, 4, size=(30, 2))
    __, per_query = clf.trace_classify(queries, engine="per-query")
    __, batch = clf.trace_classify(queries, engine="batch")
    assert [t.rule for t in per_query.traces()] == [
        t.rule for t in batch.traces()
    ]
    assert [t.label for t in per_query.traces()] == [
        t.label for t in batch.traces()
    ]
