"""Property-based tests for the density-bounding traversal.

The central soundness property of the whole paper: at every stopping
point, the interval produced by ``bound_density`` contains the exact
kernel density, and pruned classifications are correct outside the
``eps``-band.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bounds import bound_density
from repro.core.pruning import PruneOutcome
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.epanechnikov import EpanechnikovKernel
from repro.kernels.gaussian import GaussianKernel
from tests.conftest import exact_density

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, width=64)


def workloads(max_points: int = 80, max_dim: int = 3):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.tuples(
            arrays(np.float64, st.tuples(st.integers(2, max_points), st.just(d)),
                   elements=coords),
            arrays(np.float64, (d,), elements=coords),
        )
    )


@given(
    workload=workloads(),
    threshold=st.floats(min_value=1e-9, max_value=1.0),
    epsilon=st.floats(min_value=1e-3, max_value=0.5),
    kernel_cls=st.sampled_from([GaussianKernel, EpanechnikovKernel]),
    leaf_size=st.integers(1, 16),
)
@settings(max_examples=150, deadline=None)
def test_bounds_always_contain_exact_density(
    workload, threshold, epsilon, kernel_cls, leaf_size
):
    points, query = workload
    kernel = kernel_cls(np.ones(points.shape[1]))
    tree = KDTree(points, leaf_size=leaf_size)
    result = bound_density(
        tree, kernel, query, threshold, threshold, epsilon, TraversalStats()
    )
    truth = exact_density(points, kernel, query)
    slack = 1e-9 * max(truth, kernel.max_value)
    assert result.lower <= truth + slack
    assert result.upper >= truth - slack


@given(
    workload=workloads(),
    threshold=st.floats(min_value=1e-9, max_value=1.0),
    epsilon=st.floats(min_value=1e-3, max_value=0.2),
)
@settings(max_examples=150, deadline=None)
def test_pruned_classifications_are_certified(workload, threshold, epsilon):
    points, query = workload
    kernel = GaussianKernel(np.ones(points.shape[1]))
    tree = KDTree(points, leaf_size=4)
    result = bound_density(
        tree, kernel, query, threshold, threshold, epsilon, TraversalStats()
    )
    truth = exact_density(points, kernel, query)
    slack = 1e-9 * kernel.max_value
    if result.outcome is PruneOutcome.THRESHOLD_HIGH:
        assert truth > threshold * (1 + epsilon) - slack
    elif result.outcome is PruneOutcome.THRESHOLD_LOW:
        assert truth < threshold * (1 - epsilon) + slack
    elif result.outcome is PruneOutcome.TOLERANCE:
        assert result.upper - result.lower < epsilon * threshold


@given(workload=workloads())
@settings(max_examples=80, deadline=None)
def test_exhaustive_traversal_is_exact(workload):
    points, query = workload
    kernel = GaussianKernel(np.ones(points.shape[1]))
    tree = KDTree(points, leaf_size=4)
    result = bound_density(
        tree, kernel, query, 0.0, math.inf, 0.01, TraversalStats(),
        use_threshold_rule=False, use_tolerance_rule=False,
    )
    truth = exact_density(points, kernel, query)
    assert np.isclose(result.lower, truth, rtol=1e-8, atol=1e-15)
    assert np.isclose(result.upper, truth, rtol=1e-8, atol=1e-15)


@given(
    workload=workloads(max_points=60),
    priority=st.sampled_from(["discrepancy", "nearest", "fifo", "lifo"]),
    threshold=st.floats(min_value=1e-6, max_value=0.5),
)
@settings(max_examples=80, deadline=None)
def test_priority_order_never_affects_soundness(workload, priority, threshold):
    points, query = workload
    kernel = GaussianKernel(np.ones(points.shape[1]))
    tree = KDTree(points, leaf_size=4)
    result = bound_density(
        tree, kernel, query, threshold, threshold, 0.05, TraversalStats(),
        priority=priority,
    )
    truth = exact_density(points, kernel, query)
    slack = 1e-9 * kernel.max_value
    assert result.lower <= truth + slack
    assert result.upper >= truth - slack
