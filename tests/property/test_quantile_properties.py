"""Property-based tests for order-statistic quantile machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantile.order_stats import (
    binomial_order_ci,
    normal_order_ci,
    order_statistic_coverage,
    quantile_index,
    quantile_of_sorted,
)


@given(size=st.integers(1, 10_000), p=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=300)
def test_quantile_index_in_range(size, p):
    idx = quantile_index(size, p)
    assert 0 <= idx < size


@given(size=st.integers(1, 1000), p1=st.floats(0.0, 1.0), p2=st.floats(0.0, 1.0))
@settings(max_examples=200)
def test_quantile_index_monotone_in_p(size, p1, p2):
    lo, hi = sorted((p1, p2))
    assert quantile_index(size, lo) <= quantile_index(size, hi)


@given(
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200),
    p=st.floats(0.01, 0.99),
)
@settings(max_examples=200)
def test_quantile_of_sorted_is_an_element(values, p):
    arr = np.sort(np.array(values))
    q = quantile_of_sorted(arr, p)
    assert q in arr


@given(
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=10, max_size=200),
    p=st.floats(0.05, 0.95),
)
@settings(max_examples=200)
def test_quantile_splits_mass_correctly(values, p):
    arr = np.sort(np.array(values))
    q = quantile_of_sorted(arr, p)
    # At least ceil(np) values are <= q (order-statistic definition).
    assert np.count_nonzero(arr <= q) >= int(np.ceil(len(arr) * p))


@given(
    s=st.integers(10, 5000),
    p=st.floats(0.001, 0.999),
    delta=st.floats(0.001, 0.3),
)
@settings(max_examples=200)
def test_ci_ranks_are_ordered_and_in_range(s, p, delta):
    for ci in (normal_order_ci, binomial_order_ci):
        lower, upper = ci(s, p, delta)
        assert 1 <= lower <= upper <= s


@given(
    s=st.integers(50, 2000),
    p=st.floats(0.01, 0.5),
    delta=st.floats(0.01, 0.2),
)
@settings(max_examples=100)
def test_binomial_ci_coverage_property(s, p, delta):
    from hypothesis import assume
    from scipy import stats

    # The guarantee applies when each tail can be carried by an order
    # statistic (no clamping at the sample extremes); tiny s*p regimes
    # are best-effort by design (see binomial_order_ci's docstring).
    assume(stats.binom.ppf(delta / 2, s, p) >= 1)
    assume(stats.binom.ppf(1 - delta / 2, s, p) + 1 <= s)
    lower, upper = binomial_order_ci(s, p, delta)
    assert order_statistic_coverage(s, p, lower, upper) >= 1 - delta - 1e-9
