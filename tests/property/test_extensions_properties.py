"""Property-based tests for the extension modules.

Dual-tree block bounds, band assignment, and the incremental
classifier's combined-density algebra all carry the same soundness
obligation as the core traversal: never misclassify outside the
epsilon band.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bands import band_of, bound_band
from repro.core.dualtree import dual_tree_classify
from repro.core.result import Label
from repro.core.stats import TraversalStats
from repro.index.boxes import box_max_sq_dist, box_min_sq_dist
from repro.index.kdtree import KDTree
from repro.kernels.gaussian import GaussianKernel
from tests.conftest import exact_density

coords = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False, width=64)


def point_batches(max_points: int = 70, max_queries: int = 12, max_dim: int = 3):
    return st.integers(1, max_dim).flatmap(
        lambda d: st.tuples(
            arrays(np.float64, st.tuples(st.integers(4, max_points), st.just(d)),
                   elements=coords),
            arrays(np.float64, st.tuples(st.integers(1, max_queries), st.just(d)),
                   elements=coords),
        )
    )


@given(
    batch=point_batches(),
    threshold=st.floats(min_value=1e-8, max_value=0.5),
    epsilon=st.floats(min_value=1e-3, max_value=0.2),
)
@settings(max_examples=60, deadline=None)
def test_dual_tree_never_misclassifies_outside_band(batch, threshold, epsilon):
    points, queries = batch
    kernel = GaussianKernel(np.ones(points.shape[1]))
    tree = KDTree(points, leaf_size=4)
    labels = dual_tree_classify(
        tree, kernel, queries, threshold, epsilon, TraversalStats(),
        query_leaf_size=4,
    )
    slack = 1e-9 * kernel.max_value
    for query, label in zip(queries, labels):
        truth = exact_density(points, kernel, query)
        if truth > threshold * (1 + epsilon) + slack:
            assert label is Label.HIGH
        elif truth < threshold * (1 - epsilon) - slack:
            assert label is Label.LOW


@given(
    boxes=st.tuples(
        arrays(np.float64, (4, 2), elements=coords),
        arrays(np.float64, (4, 2), elements=coords),
    )
)
@settings(max_examples=150)
def test_box_box_distances_bracket_pairs(boxes):
    a, b = boxes
    lo_a, hi_a = a.min(axis=0), a.max(axis=0)
    lo_b, hi_b = b.min(axis=0), b.max(axis=0)
    pair_sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    assert box_min_sq_dist(lo_a, hi_a, lo_b, hi_b) <= pair_sq.min() + 1e-9
    assert box_max_sq_dist(lo_a, hi_a, lo_b, hi_b) >= pair_sq.max() - 1e-9


@given(
    batch=point_batches(max_queries=6),
    raw_thresholds=st.lists(
        st.floats(min_value=1e-7, max_value=0.5), min_size=1, max_size=4, unique=True
    ),
    epsilon=st.floats(min_value=1e-3, max_value=0.1),
)
@settings(max_examples=60, deadline=None)
def test_band_assignment_correct_outside_bands(batch, raw_thresholds, epsilon):
    points, queries = batch
    kernel = GaussianKernel(np.ones(points.shape[1]))
    tree = KDTree(points, leaf_size=4)
    thresholds = np.sort(np.asarray(raw_thresholds))
    for query in queries:
        band = bound_band(tree, kernel, query, thresholds, epsilon, TraversalStats())
        truth = exact_density(points, kernel, query)
        near_any = bool(np.any(np.abs(truth - thresholds) <= epsilon * thresholds
                               + 1e-12 * kernel.max_value))
        if not near_any:
            assert band == band_of(truth, thresholds)


@given(
    seed=st.integers(0, 10_000),
    n_extra=st.integers(1, 80),
)
@settings(max_examples=20, deadline=None)
def test_incremental_matches_combined_exact(seed, n_extra):
    from repro.core.config import TKDCConfig
    from repro.core.incremental import IncrementalTKDC

    rng = np.random.default_rng(seed)
    base = rng.normal(size=(400, 2))
    extra = rng.normal(size=(n_extra, 2)) * rng.uniform(0.5, 2.0)
    model = IncrementalTKDC(
        TKDCConfig(p=0.05, seed=seed, bootstrap_s0=200), refit_fraction=0.5
    ).fit(base)
    model.insert(extra)

    combined = np.concatenate([base, extra])
    kernel = model.classifier.kernel
    scaled_all = kernel.scale(combined)
    queries = rng.uniform(-4, 4, size=(10, 2))
    scaled_queries = kernel.scale(queries)
    t = model.classifier.threshold.value
    eps = model.config.epsilon
    labels = model.predict(queries)
    for i in range(queries.shape[0]):
        diffs = scaled_all - scaled_queries[i]
        sq = np.einsum("ij,ij->i", diffs, diffs)
        density = float(np.sum(kernel.value(sq))) / combined.shape[0]
        if density > t * (1 + eps):
            assert labels[i] == 1
        elif density < t * (1 - eps):
            assert labels[i] == 0
