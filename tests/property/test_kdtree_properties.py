"""Property-based tests for k-d tree invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.index.boxes import max_sq_dist, min_sq_dist
from repro.index.kdtree import KDTree

#: Finite, moderately sized coordinates keep distance arithmetic exact
#: enough for strict assertions.
coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


def point_sets(min_points: int = 1, max_points: int = 120, max_dim: int = 4):
    return st.integers(1, max_dim).flatmap(
        lambda d: arrays(
            np.float64,
            st.tuples(st.integers(min_points, max_points), st.just(d)),
            elements=coords,
        )
    )


@given(data=point_sets(), leaf_size=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_leaves_partition_points(data, leaf_size):
    tree = KDTree(data, leaf_size=leaf_size)
    assert sum(leaf.count for leaf in tree.leaves()) == data.shape[0]
    assert sorted(tree.indices.tolist()) == list(range(data.shape[0]))


@given(data=point_sets(min_points=2), leaf_size=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_every_point_inside_ancestor_boxes(data, leaf_size):
    tree = KDTree(data, leaf_size=leaf_size)
    for node in tree.iter_nodes():
        slab = tree.points[node.start : node.end]
        assert np.all(slab >= node.lo - 1e-12)
        assert np.all(slab <= node.hi + 1e-12)


@given(
    data=point_sets(min_points=3),
    query=arrays(np.float64, (4,), elements=coords),
)
@settings(max_examples=60, deadline=None)
def test_box_distance_bounds_bracket_point_distances(data, query):
    q = query[: data.shape[1]]
    tree = KDTree(data, leaf_size=4)
    for node in tree.iter_nodes():
        slab = tree.points[node.start : node.end]
        sq = np.sum((slab - q) ** 2, axis=1)
        lo = min_sq_dist(q, node.lo, node.hi)
        hi = max_sq_dist(q, node.lo, node.hi)
        assert lo <= sq.min() * (1 + 1e-9) + 1e-9
        assert hi >= sq.max() * (1 - 1e-9) - 1e-9


@given(data=point_sets(min_points=4), split_rule=st.sampled_from(["median", "trimmed_midpoint"]))
@settings(max_examples=40, deadline=None)
def test_split_rules_both_produce_valid_trees(data, split_rule):
    tree = KDTree(data, leaf_size=2, split_rule=split_rule)
    for node in tree.iter_nodes():
        if not node.is_leaf:
            left, right = node.children()
            assert left.count >= 1 and right.count >= 1
