"""Property-based tests for kernel invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.epanechnikov import EpanechnikovKernel
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.polynomial import BiweightKernel, TriweightKernel, UniformKernel

bandwidths = st.lists(
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False), min_size=1, max_size=6
).map(np.array)

sq_dists = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)

kernel_classes = st.sampled_from(
    [GaussianKernel, EpanechnikovKernel, UniformKernel, BiweightKernel, TriweightKernel]
)


@given(h=bandwidths, s1=sq_dists, s2=sq_dists, cls=kernel_classes)
@settings(max_examples=200)
def test_kernel_monotone_non_increasing(h, s1, s2, cls):
    kernel = cls(h)
    lo, hi = sorted((s1, s2))
    assert kernel.value(hi) <= kernel.value(lo) + 1e-18


@given(h=bandwidths, cls=kernel_classes)
@settings(max_examples=100)
def test_profile_normalized_at_zero(h, cls):
    kernel = cls(h)
    assert kernel.profile(np.array(0.0)) == 1.0
    assert kernel.value(0.0) == kernel.max_value


@given(h=bandwidths, s=sq_dists, cls=kernel_classes)
@settings(max_examples=200)
def test_kernel_non_negative(h, s, cls):
    assert cls(h).value(s) >= 0.0


@given(h=bandwidths, value=st.floats(min_value=1e-12, max_value=1.0), cls=kernel_classes)
@settings(max_examples=200)
def test_inverse_profile_contract(h, value, cls):
    """inverse_profile(v) is the smallest s with profile(s) <= v.

    For step profiles (the uniform kernel) an exact round-trip is
    impossible, so the contract is one-sided: the profile at the
    returned distance is at most v, and just inside it the profile is
    at least v.
    """
    kernel = cls(h)
    sq = kernel.inverse_profile(value)
    at = float(kernel.profile(np.array(sq)))
    assert at <= value * (1 + 1e-9) + 1e-15
    if sq > 0:
        just_inside = float(kernel.profile(np.array(sq * (1 - 1e-9))))
        assert just_inside >= value * (1 - 1e-6) - 1e-15


@given(h=bandwidths, tail=st.floats(min_value=1e-300, max_value=1e-3), cls=kernel_classes)
@settings(max_examples=100)
def test_cutoff_radius_guarantee(h, tail, cls):
    kernel = cls(h)
    tail_value = tail * kernel.max_value
    radius = kernel.cutoff_radius(tail_value)
    # Every point beyond the radius contributes strictly less than tail.
    beyond = radius * radius * (1 + 1e-9) + 1e-12
    assert kernel.value(beyond) <= tail_value * (1 + 1e-6)


@given(
    h=bandwidths,
    scale=st.floats(min_value=0.1, max_value=10.0),
    s=sq_dists,
)
@settings(max_examples=100)
def test_gaussian_bandwidth_scaling_of_constant(h, scale, s):
    """Scaling every bandwidth by c scales the density by c^-d."""
    base = GaussianKernel(h)
    scaled = GaussianKernel(h * scale)
    d = h.shape[0]
    assert np.isclose(
        scaled.norm_constant, base.norm_constant * scale**-d, rtol=1e-9
    )
