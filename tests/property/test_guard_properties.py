"""Property test: guard invariants hold on hostile datasets under fire.

Random datasets skew toward the shapes that historically break interval
bookkeeping — duplicate-heavy clumps (zero-width boxes) and extreme
scales (underflow-prone distances) — while a seeded ``FaultPlan``
corrupts a random fraction of node bounds and leaf sums. Under
``guard_policy="repair"`` the classifier must still deliver finite,
ordered, non-negative density intervals and plain HIGH/LOW labels for
every query, on both engines, with and without coreset compression.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultPlan, Label, TKDCClassifier, TKDCConfig


@st.composite
def hostile_workloads(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dim = draw(st.integers(1, 3))
    n = draw(st.integers(60, 200))
    scale = draw(st.sampled_from([1e-6, 1.0, 1e6]))
    duplicate_fraction = draw(st.sampled_from([0.0, 0.5, 0.9]))

    data = rng.normal(size=(n, dim)) * scale
    n_dup = int(duplicate_fraction * n)
    if n_dup:
        # Pile duplicates onto a few anchor points: zero-width leaves.
        anchors = data[rng.integers(0, max(n - n_dup, 1), size=n_dup)]
        data[n - n_dup:] = anchors
    queries = np.concatenate(
        [
            data[rng.integers(0, n, size=8)],  # on-sample (dense/duplicated)
            rng.uniform(-4 * scale, 4 * scale, size=(8, dim)),  # off-sample
        ]
    )

    engine = draw(st.sampled_from(["per-query", "batch"]))
    coreset = draw(st.sampled_from([None, "merge-reduce", "uniform"]))
    mode = draw(st.sampled_from(["nan", "invert", "inf"]))
    plan = FaultPlan(
        bound_rate=draw(st.sampled_from([0.0, 0.02, 0.1])),
        leaf_rate=draw(st.sampled_from([0.0, 0.05])),
        corrupt_bound_mode=mode,
        seed=seed,
    )
    budget = draw(st.sampled_from([None, 3]))
    return data, queries, engine, coreset, plan, budget, seed


@given(workload=hostile_workloads())
@settings(max_examples=25, deadline=None)
def test_repair_policy_yields_valid_results_under_random_faults(workload):
    data, queries, engine, coreset, plan, budget, seed = workload
    config = TKDCConfig(
        p=0.1,
        seed=seed,
        engine=engine,
        guard_policy="repair",
        coreset=coreset,
        coreset_fraction=0.5,
        max_node_expansions=budget,
        leaf_size=8,
    )
    clf = TKDCClassifier(config).fit(data)
    clf.config = config.with_updates(fault_plan=plan)

    result = clf.classify_detailed(queries, engine=engine)

    # The interval invariant: ordered, finite lower edge, non-negative.
    assert np.all(result.lower <= result.upper)
    assert np.all(np.isfinite(result.lower))
    assert np.all(result.lower >= 0.0)
    # Labels stay binary; UNCERTAIN only ever comes from resolution.
    assert set(result.labels) <= {Label.HIGH, Label.LOW}
    resolved = result.resolved_labels()
    assert set(resolved) <= {Label.HIGH, Label.LOW, Label.UNCERTAIN}
    # Whatever was repaired, the batch is complete and self-consistent.
    assert result.labels.shape == (queries.shape[0],)
    assert not (result.uncertain & ~result.degraded).any()

    # The same faulted classifier must also survive the plain paths.
    labels = clf.classify(queries, engine=engine)
    assert labels.shape == (queries.shape[0],)
