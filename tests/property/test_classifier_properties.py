"""Property-based tests for the end-to-end classifier guarantee.

Paper Problem 1: any query whose exact density is outside the
``±eps * t`` band must be classified correctly. We generate mixture-ish
datasets and random queries and verify the guarantee holds relative to
tKDC's own threshold estimate.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE


@st.composite
def clustered_datasets(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dim = draw(st.integers(1, 3))
    n_clusters = draw(st.integers(1, 4))
    n = draw(st.integers(300, 800))
    centers = rng.uniform(-10, 10, size=(n_clusters, dim))
    assignments = rng.integers(0, n_clusters, size=n)
    scales = rng.uniform(0.3, 2.0, size=n_clusters)
    data = centers[assignments] + rng.normal(size=(n, dim)) * scales[assignments, None]
    queries = rng.uniform(-14, 14, size=(15, dim))
    return data, queries, seed


@given(workload=clustered_datasets(), p=st.sampled_from([0.01, 0.05, 0.2]))
@settings(max_examples=25, deadline=None)
def test_classification_guarantee_outside_eps_band(workload, p):
    data, queries, seed = workload
    config = TKDCConfig(p=p, epsilon=0.01, seed=seed, bootstrap_s0=500)
    clf = TKDCClassifier(config).fit(data)
    naive = NaiveKDE().fit(data)
    exact = naive.density(queries)
    t = clf.threshold.value
    eps = config.epsilon
    labels = clf.predict(queries)
    for density, label in zip(exact, labels):
        if density > t * (1 + eps):
            assert label == 1
        elif density < t * (1 - eps):
            assert label == 0


@given(workload=clustered_datasets())
@settings(max_examples=15, deadline=None)
def test_training_low_fraction_close_to_p(workload):
    data, __, seed = workload
    p = 0.1
    clf = TKDCClassifier(TKDCConfig(p=p, seed=seed, bootstrap_s0=500)).fit(data)
    low_fraction = float(np.mean(np.asarray(clf.training_labels_) == 0))
    assert abs(low_fraction - p) < 0.05


@given(workload=clustered_datasets())
@settings(max_examples=15, deadline=None)
def test_threshold_bracket_contains_estimate(workload):
    data, __, seed = workload
    clf = TKDCClassifier(TKDCConfig(seed=seed, bootstrap_s0=500)).fit(data)
    t = clf.threshold
    assert t.lower <= t.value <= t.upper
    assert t.lower >= 0.0
