"""Property-based parity between the hbe engine and the batch tree engine.

The hbe engine's contract is *conditional* parity: any query whose exact
density lies outside the widened threshold band must get the identical
label through either engine, because the sampler only answers queries
its confidence interval (plus margin, plus the visibility guard) has
certified clear of the band — everything else re-runs through the batch
engine's bit-exact arithmetic. These properties pin that contract across
random workloads, with and without coreset compression, and in the
degenerate regime where every decision channel is closed and the engine
must collapse to a pure pass-through.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TKDCClassifier, TKDCConfig
from repro.coresets.validate import exact_density


def _hbe_config(seed: int, **overrides) -> TKDCConfig:
    base = dict(
        p=0.05, seed=seed, refine_threshold=False, bootstrap_s0=200,
        engine="hbe", bandwidth_scale=2.0,
    )
    base.update(overrides)
    return TKDCConfig(**base)


def _workload(seed: int, n: int, dim: int) -> tuple[np.ndarray, np.ndarray]:
    """Two-cluster training data plus an inlier/outlier query mix."""
    rng = np.random.default_rng(seed)
    half = n // 2
    data = np.concatenate([
        rng.normal(size=(half, dim)),
        rng.normal(size=(n - half, dim)) + 4.0 / np.sqrt(dim),
    ])
    inliers = data[rng.choice(n, size=30, replace=False)]
    box = rng.uniform(
        data.min(axis=0), data.max(axis=0), size=(30, dim)
    )
    return data, np.concatenate([inliers, box])


def _outside_band(clf: TKDCClassifier, data: np.ndarray,
                  queries: np.ndarray) -> np.ndarray:
    """Queries whose exact density clears the widened decision band.

    The band is ``|f - t| <= eps * t + 2 * eta`` — the region where the
    tree engines themselves may legitimately answer either way, so
    parity is only owed outside it.
    """
    f = exact_density(
        clf.kernel.scale(data), clf.kernel, clf.kernel.scale(queries)
    )
    t = clf.threshold.value
    return np.abs(f - t) > clf.config.epsilon * t + 2.0 * clf.eta_applied


@given(seed=st.integers(0, 2**31 - 1), dim=st.sampled_from([12, 16, 24]))
@settings(max_examples=8, deadline=None)
def test_outside_band_label_parity(seed, dim):
    data, queries = _workload(seed, 600, dim)
    clf = TKDCClassifier(_hbe_config(seed)).fit(data)
    hbe_labels = clf.classify(queries)
    batch_labels = clf.classify(queries, engine="batch")
    outside = _outside_band(clf, data, queries)
    np.testing.assert_array_equal(
        hbe_labels[outside], batch_labels[outside]
    )


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=4, deadline=None)
def test_outside_band_parity_with_weighted_coreset(seed):
    """Parity must survive compression: the hbe tables are built over the
    coreset's weighted points, the same sketch the tree prices."""
    data, queries = _workload(seed, 800, 16)
    clf = TKDCClassifier(_hbe_config(
        seed, coreset="merge-reduce", coreset_fraction=0.25,
    )).fit(data)
    assert clf.coreset_ is not None
    index = clf._ensure_hbe()
    assert index.tables.points.shape[0] == clf.tree.points.shape[0]
    hbe_labels = clf.classify(queries)
    batch_labels = clf.classify(queries, engine="batch")
    outside = _outside_band(clf, data, queries)
    np.testing.assert_array_equal(
        hbe_labels[outside], batch_labels[outside]
    )


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=4, deadline=None)
def test_uniform_coreset_parity(seed):
    data, queries = _workload(seed, 800, 16)
    clf = TKDCClassifier(_hbe_config(
        seed, coreset="uniform", coreset_fraction=0.25,
    )).fit(data)
    hbe_labels = clf.classify(queries)
    batch_labels = clf.classify(queries, engine="batch")
    outside = _outside_band(clf, data, queries)
    np.testing.assert_array_equal(
        hbe_labels[outside], batch_labels[outside]
    )


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=6, deadline=None)
def test_forced_full_fallback_is_bit_exact(seed):
    """Close every decision channel and the engine must be a pure
    pass-through: raw Scott's bandwidth at d=16 trips the visibility
    guard (no LOWs, including the zero-mean clause), and an absurd
    margin blocks HIGHs, so *all* labels — in band or out — must equal
    the batch engine's bit for bit."""
    data, queries = _workload(seed, 500, 16)
    clf = TKDCClassifier(_hbe_config(
        seed, bandwidth_scale=1.0, hbe_margin=1e9,
    )).fit(data)
    assert not clf.hbe_low_certifiable()
    clf._stats.extras.clear()
    hbe_labels = clf.classify(queries)
    extras = clf.stats.extras
    assert extras.get("hbe_decided_high", 0.0) == 0.0
    assert extras.get("hbe_decided_low", 0.0) == 0.0
    assert extras.get("hbe_fallbacks", 0.0) == float(queries.shape[0])
    batch_labels = clf.classify(queries, engine="batch")
    np.testing.assert_array_equal(hbe_labels, batch_labels)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=6, deadline=None)
def test_in_band_queries_route_to_fallback(seed):
    """A query whose true density straddles the band needs more
    precision than the CI can certify; the sampler must hand it back
    undecided rather than guess."""
    data, queries = _workload(seed, 600, 16)
    clf = TKDCClassifier(_hbe_config(seed)).fit(data)
    index = clf._ensure_hbe()
    scaled = clf.kernel.scale(queries)
    t = clf.threshold.value
    decision = index.decide_block(
        scaled, t, clf.config.epsilon, eta=clf.eta_applied
    )
    f = exact_density(clf.kernel.scale(data), clf.kernel, scaled)
    in_band = np.abs(f - t) <= clf.config.epsilon * t + 2.0 * clf.eta_applied
    # Every in-band query is undecided, and (unbudgeted) lands in the
    # fallback set rather than being reported exhausted.
    assert not np.any(decision.decided & in_band)
    fallback = np.zeros(queries.shape[0], dtype=bool)
    fallback[decision.fallback_rows] = True
    assert np.all(fallback[in_band])
