"""Fixtures and picklable fake trial workers for orchestrator tests.

The scheduler dispatches its worker callable into pool processes, so
every injected fake must be a *module-level* function here (a closure
would fail to pickle and silently land in the supervisor's serial
fallback — the opposite of what a test wants to exercise).
"""

from __future__ import annotations

import os

import pytest

from repro.orchestrator.spec import ExperimentSpec
from repro.orchestrator.store import ResultsStore


def ok_worker(chunk_index: int, attempt: int, payload: dict) -> dict:
    """Succeed instantly with seed-derived metrics (deterministic)."""
    del chunk_index, attempt
    return {
        "ok": True,
        "metrics": {
            "seconds": 0.01,
            "queries_per_s": 1000.0 + 100.0 * payload["seed"],
            "kernels_per_query": 5.0,
            "labels_sha256": "feedfeedfeedfeed",
            "dim": 2,
        },
    }


def flaky_worker(chunk_index: int, attempt: int, payload: dict) -> dict:
    """Fail (as a *result*, not a crash) for seed == 1."""
    if payload["seed"] == 1:
        return {"ok": False, "error": "injected failure for seed 1"}
    return ok_worker(chunk_index, attempt, payload)


def crashing_worker(chunk_index: int, attempt: int, payload: dict) -> dict:
    """Die like a segfault for seed == 1 — exercises supervision."""
    if payload["seed"] == 1:
        os._exit(3)
    return ok_worker(chunk_index, attempt, payload)


@pytest.fixture
def store(tmp_path) -> ResultsStore:
    return ResultsStore(tmp_path / "store")


@pytest.fixture
def tiny_spec() -> ExperimentSpec:
    """Three one-scenario trials (seeds 0..2) — the smallest useful grid."""
    return ExperimentSpec(
        name="tiny",
        workloads=(("gauss", 100, 4),),
        engines=("batch",),
        seeds=(0, 1, 2),
    )
