"""Spec expansion: deterministic grids, stable identities, file loading."""

from __future__ import annotations

import json

import pytest

from repro.orchestrator.spec import SUITES, ExperimentSpec, Trial


class TestTrial:
    def test_trial_id_covers_seed_config_hash_does_not(self):
        a = Trial(experiment="e", dataset="gauss", n=100, n_queries=4, seed=0)
        b = Trial(experiment="e", dataset="gauss", n=100, n_queries=4, seed=1)
        assert a.config_hash == b.config_hash
        assert a.trial_id != b.trial_id

    def test_engine_changes_both_hashes(self):
        a = Trial(experiment="e", dataset="gauss", n=100, n_queries=4)
        b = Trial(experiment="e", dataset="gauss", n=100, n_queries=4,
                  engine="per-query")
        assert a.config_hash != b.config_hash
        assert a.trial_id != b.trial_id

    def test_experiment_name_does_not_change_identity(self):
        a = Trial(experiment="run-1", dataset="gauss", n=100, n_queries=4)
        b = Trial(experiment="run-2", dataset="gauss", n=100, n_queries=4)
        assert a.trial_id == b.trial_id

    def test_record_round_trip(self):
        trial = Trial(
            experiment="e", dataset="gauss", n=100, n_queries=4,
            coreset="uniform", coreset_fraction=0.05, seed=3,
        )
        record = trial.to_record()
        assert record["trial_id"] == trial.trial_id
        assert record["config_hash"] == trial.config_hash
        assert Trial.from_record(record) == trial

    def test_scenario_key_mentions_the_axes(self):
        trial = Trial(
            experiment="e", dataset="gauss", n=100, n_queries=4, jobs=2,
            coreset="uniform", coreset_fraction=0.05, fault_plan="bound-nan",
        )
        key = trial.scenario_key
        assert "gauss" in key and "j2" in key
        assert "uniform@5%" in key and "fault=bound-nan" in key

    @pytest.mark.parametrize("kwargs", [
        {"dataset": "no-such-dataset"},
        {"engine": "no-such-engine"},
        {"fault_plan": "no-such-plan"},
        {"n": 1},
        {"n_queries": 0},
        {"coreset_fraction": 0.0},
        {"coreset_fraction": 1.5},
    ])
    def test_validation_rejects(self, kwargs):
        base = {"experiment": "e", "dataset": "gauss", "n": 100, "n_queries": 4}
        with pytest.raises(ValueError):
            Trial(**{**base, **kwargs})


class TestExpansion:
    def test_grid_is_the_full_product(self):
        spec = ExperimentSpec(
            name="grid",
            workloads=(("gauss", 100, 4), ("gauss", 200, 4)),
            engines=("batch", "per-query"),
            jobs=(1, 2),
            seeds=(0, 1, 2),
        )
        trials = spec.expand()
        assert len(trials) == 2 * 2 * 2 * 3
        assert len({t.trial_id for t in trials}) == len(trials)

    def test_expansion_is_deterministic(self, tiny_spec):
        first = [t.trial_id for t in tiny_spec.expand()]
        second = [t.trial_id for t in tiny_spec.expand()]
        assert first == second

    def test_expand_stamps_the_experiment_name(self, tiny_spec):
        assert all(t.experiment == "run-x" for t in tiny_spec.expand("run-x"))

    def test_spec_hash_tracks_the_grid(self, tiny_spec):
        changed = ExperimentSpec(
            name="tiny",
            workloads=(("gauss", 100, 4),),
            engines=("batch",),
            seeds=(0, 1, 2, 3),
        )
        assert tiny_spec.spec_hash != changed.spec_hash
        assert tiny_spec.spec_hash == ExperimentSpec.from_dict(
            tiny_spec.to_dict()
        ).spec_hash

    def test_empty_axes_are_refused(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="", workloads=(("gauss", 100, 4),))
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", workloads=())
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", workloads=(("gauss", 100, 4),), seeds=())


class TestFromDict:
    def test_datasets_ns_sugar_takes_the_product(self):
        spec = ExperimentSpec.from_dict({
            "name": "sugar",
            "datasets": ["gauss"],
            "ns": [100, 200],
            "n_queries": 8,
        })
        assert spec.workloads == (("gauss", 100, 8), ("gauss", 200, 8))

    def test_coreset_string_sugar(self):
        spec = ExperimentSpec.from_dict({
            "name": "c",
            "workloads": [["gauss", 100, 4]],
            "coresets": [None, "uniform:0.2", {"method": "merge-reduce"}],
        })
        assert spec.coresets == (
            (None, 1.0), ("uniform", 0.2), ("merge-reduce", 0.05),
        )

    def test_unknown_fields_are_refused(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            ExperimentSpec.from_dict({
                "name": "x",
                "workloads": [["gauss", 100, 4]],
                "wokloads_typo": 1,
            })


class TestFromFile:
    def test_json(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps({
            "workloads": [["gauss", 100, 4]], "seeds": [0, 1],
        }))
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "exp"  # stem fallback
        assert spec.n_trials == 2

    def test_toml(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text(
            'name = "toml-exp"\n'
            "workloads = [[\"gauss\", 100, 4]]\n"
            "engines = [\"batch\", \"per-query\"]\n"
        )
        spec = ExperimentSpec.from_file(path)
        assert spec.name == "toml-exp"
        assert spec.engines == ("batch", "per-query")


class TestSuites:
    def test_expected_suites_exist(self):
        assert set(SUITES) == {"smoke", "engines", "coreset", "full"}

    def test_smoke_matches_the_gate_grid(self):
        # 1 workload x 2 engines x 2 coreset settings x 2 seeds.
        assert SUITES["smoke"].n_trials == 8
        assert ("gauss", 8_000, 256) in SUITES["smoke"].workloads

    def test_suite_sizes(self):
        assert SUITES["engines"].n_trials == 24
        assert SUITES["coreset"].n_trials == 30
        assert SUITES["coreset"].record_labels
        assert SUITES["full"].n_trials > 100
