"""Journal durability: CRC framing, torn tails, locking, state folding."""

from __future__ import annotations

import pytest

from repro.orchestrator.journal import (
    JournalCorruptionError,
    JournalLockedError,
    TrialJournal,
    load_state,
    read_journal,
)


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.log"


def write_records(path, records):
    with TrialJournal(path) as journal:
        for record in records:
            journal.append(record)


SAMPLE = [
    {"type": "experiment", "experiment": "e", "spec_hash": "abc", "n_trials": 2},
    {"type": "start", "trial_id": "t1"},
    {"type": "done", "trial_id": "t1", "metrics": {"queries_per_s": 10.0}},
    {"type": "start", "trial_id": "t2"},
    {"type": "failed", "trial_id": "t2", "error": "boom"},
]


class TestRoundTrip:
    def test_append_then_read(self, journal_path):
        write_records(journal_path, SAMPLE)
        records, torn = read_journal(journal_path)
        assert records == SAMPLE
        assert torn == 0

    def test_state_folding(self, journal_path):
        write_records(journal_path, SAMPLE)
        state = load_state(journal_path)
        assert state.spec_hash == "abc"
        assert set(state.done) == {"t1"}
        assert set(state.failed) == {"t2"}
        assert state.started == {"t1", "t2"}
        assert state.n_records == len(SAMPLE)

    def test_done_supersedes_failed(self, journal_path):
        write_records(journal_path, SAMPLE + [
            {"type": "done", "trial_id": "t2", "metrics": {}},
        ])
        state = load_state(journal_path)
        assert set(state.done) == {"t1", "t2"}
        assert not state.failed

    def test_empty_file(self, journal_path):
        journal_path.write_bytes(b"")
        assert read_journal(journal_path) == ([], 0)


class TestTornTail:
    def test_truncation_at_every_byte_offset(self, journal_path):
        """A crash can cut the file anywhere; only the cut record may go."""
        write_records(journal_path, SAMPLE)
        raw = journal_path.read_bytes()
        # Byte offset just past each record's newline == a clean boundary.
        boundaries = [0] + [
            index + 1 for index, byte in enumerate(raw) if byte == ord("\n")
        ]
        for cut in range(len(raw) + 1):
            journal_path.write_bytes(raw[:cut])
            records, torn = read_journal(journal_path)
            complete = sum(1 for b in boundaries[1:] if b <= cut)
            # Every record whose bytes fully survived must replay;
            # at most the one cut mid-line is dropped (and counted).
            assert records == SAMPLE[:complete]
            assert torn == (0 if cut in boundaries else 1)

    def test_garbage_tail_without_newline(self, journal_path):
        write_records(journal_path, SAMPLE)
        with journal_path.open("ab") as handle:
            handle.write(b"deadbeef {\"type\": \"done\", \"trial")
        records, torn = read_journal(journal_path)
        assert records == SAMPLE
        assert torn == 1

    def test_reopen_after_torn_tail_repairs_then_appends(self, journal_path):
        """Appending after a crash must not glue the new record onto the
        torn partial line (that would be mid-file corruption)."""
        write_records(journal_path, SAMPLE)
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[:-10])  # cut the final record
        with TrialJournal(journal_path) as journal:
            journal.append({"type": "done", "trial_id": "t9"})
        records, torn = read_journal(journal_path)
        assert torn == 0
        assert records == SAMPLE[:-1] + [{"type": "done", "trial_id": "t9"}]

    def test_final_line_with_bad_crc(self, journal_path):
        write_records(journal_path, SAMPLE)
        raw = bytearray(journal_path.read_bytes())
        raw[-5] ^= 0xFF  # damage inside the final record's body
        journal_path.write_bytes(bytes(raw))
        records, torn = read_journal(journal_path)
        assert records == SAMPLE[:-1]
        assert torn == 1


class TestCorruption:
    def test_mid_file_damage_is_refused(self, journal_path):
        write_records(journal_path, SAMPLE)
        raw = bytearray(journal_path.read_bytes())
        raw[15] ^= 0xFF  # first record's body, valid records after it
        journal_path.write_bytes(bytes(raw))
        with pytest.raises(JournalCorruptionError, match="line 1"):
            read_journal(journal_path)


class TestLocking:
    def test_second_writer_is_refused(self, journal_path):
        with TrialJournal(journal_path):
            with pytest.raises(JournalLockedError):
                TrialJournal(journal_path)

    def test_lock_releases_on_close(self, journal_path):
        with TrialJournal(journal_path) as journal:
            journal.append(SAMPLE[0])
        with TrialJournal(journal_path) as journal:
            journal.append(SAMPLE[1])
        records, __ = read_journal(journal_path)
        assert records == SAMPLE[:2]
