"""Comparison statistics: bootstrap CIs and the rank-sum test.

The Mann–Whitney implementation is cross-checked against scipy when
scipy happens to be installed (the runtime never imports it — that is
the point of carrying our own).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.orchestrator.stats import (
    MannWhitneyResult,
    _average_ranks,
    bootstrap_mean_ci,
    bootstrap_ratio_ci,
    mann_whitney_u,
    verdict,
)


class TestBootstrapMean:
    def test_constant_sample_collapses(self):
        assert bootstrap_mean_ci([5.0, 5.0, 5.0]) == (5.0, 5.0)

    def test_single_observation_is_a_point(self):
        assert bootstrap_mean_ci([3.0]) == (3.0, 3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])

    def test_interval_brackets_the_mean_and_is_deterministic(self):
        values = [10.0, 11.0, 12.0, 13.0, 14.0]
        lo, hi = bootstrap_mean_ci(values, seed=0)
        assert lo <= float(np.mean(values)) <= hi
        assert min(values) <= lo < hi <= max(values)
        assert (lo, hi) == bootstrap_mean_ci(values, seed=0)

    def test_narrower_at_higher_alpha(self):
        values = [10.0, 12.0, 14.0, 16.0, 18.0]
        lo95, hi95 = bootstrap_mean_ci(values, alpha=0.05)
        lo50, hi50 = bootstrap_mean_ci(values, alpha=0.50)
        assert lo95 <= lo50 and hi50 <= hi95


class TestBootstrapRatio:
    def test_point_samples_give_the_point_ratio(self):
        assert bootstrap_ratio_ci([100.0], [200.0]) == (2.0, 2.0)

    def test_interval_brackets_the_true_ratio(self):
        baseline = [100.0, 101.0, 99.0, 100.0, 100.5]
        candidate = [199.0, 200.0, 201.0, 200.0, 200.5]
        lo, hi = bootstrap_ratio_ci(baseline, candidate)
        assert lo < 2.0 < hi
        assert hi - lo < 0.2  # tight samples, tight interval

    def test_nonpositive_baseline_is_refused(self):
        with pytest.raises(ValueError, match="positive"):
            bootstrap_ratio_ci([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([], [1.0])


class TestRanks:
    def test_midranks_share_ties(self):
        ranks = _average_ranks(np.array([10.0, 20.0, 20.0, 30.0]))
        assert ranks.tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_untied_ranks_are_a_permutation(self):
        ranks = _average_ranks(np.array([3.0, 1.0, 2.0]))
        assert ranks.tolist() == [3.0, 1.0, 2.0]


class TestMannWhitney:
    def test_hand_computed_separated_samples(self):
        # a=[1,2,3], b=[4,5,6]: U_b = 9, var = 5.25,
        # z = (9 - 4.5 - 0.5)/sqrt(5.25), p = erfc(z/sqrt(2)).
        result = mann_whitney_u([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert result.u_statistic == 9.0
        expected_p = math.erfc((4.0 / math.sqrt(5.25)) / math.sqrt(2.0))
        assert result.p_value == pytest.approx(expected_p)
        assert result.n_a == result.n_b == 3

    def test_identical_constant_samples_are_not_significant(self):
        result = mann_whitney_u([5.0, 5.0], [5.0, 5.0])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_symmetry_of_the_two_sided_p(self):
        a, b = [1.0, 3.0, 5.0, 7.0], [2.0, 4.0, 6.0, 8.0]
        assert mann_whitney_u(a, b).p_value == pytest.approx(
            mann_whitney_u(b, a).p_value
        )

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])

    def test_clear_separation_is_significant_at_n5(self):
        a = [100.0, 101.0, 102.0, 103.0, 104.0]
        b = [200.0, 201.0, 202.0, 203.0, 204.0]
        result = mann_whitney_u(a, b)
        assert result.significant(alpha=0.05)

    @pytest.mark.parametrize("a,b", [
        ([1.0, 2.0, 3.0], [4.0, 5.0, 6.0]),
        ([1.0, 2.0, 2.0, 3.0], [2.0, 3.0, 3.0, 4.0]),  # cross-sample ties
        ([5.0] * 4, [5.0] * 3 + [6.0]),                # heavy ties
        (list(range(10)), [x + 0.5 for x in range(10)]),
    ])
    def test_matches_scipy_asymptotic(self, a, b):
        scipy_stats = pytest.importorskip("scipy.stats")
        ours = mann_whitney_u(a, b)
        theirs = scipy_stats.mannwhitneyu(
            b, a, alternative="two-sided", method="asymptotic",
            use_continuity=True,
        )
        assert ours.u_statistic == pytest.approx(float(theirs.statistic))
        assert ours.p_value == pytest.approx(float(theirs.pvalue), rel=1e-9)


class TestVerdict:
    def test_verdicts(self):
        assert verdict(speedup=2.0, p_value=0.01) == "faster"
        assert verdict(speedup=0.5, p_value=0.01) == "slower"
        assert verdict(speedup=2.0, p_value=0.20) == "~"
        assert verdict(speedup=0.5, p_value=0.049, alpha=0.01) == "~"

    def test_result_dataclass_significance(self):
        assert MannWhitneyResult(1.0, 0.04, 3, 3).significant()
        assert not MannWhitneyResult(1.0, 0.06, 3, 3).significant()
