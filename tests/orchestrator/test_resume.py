"""Scheduler crash-resume: journal authority, set-difference re-runs.

These tests inject module-level fake workers (see conftest) so the
scheduler's machinery — journaling, supervision, store flushes, resume
arithmetic — is exercised without paying for real fits. The real
end-to-end SIGKILL test lives in test_sigkill_cli.py.
"""

from __future__ import annotations

import pytest

from repro.orchestrator.journal import load_state, read_journal
from repro.orchestrator.scheduler import (
    SchedulerError,
    SchedulerPolicy,
    TrialScheduler,
    rebuild_store_from_journal,
)
from repro.orchestrator.spec import ExperimentSpec

from .conftest import crashing_worker, flaky_worker, ok_worker

FAST = SchedulerPolicy(jobs=1, deadline=30.0, max_retries=0, backoff=0.01)


def scheduler(store, worker=ok_worker, policy=FAST):
    return TrialScheduler(
        store, policy, run_trial=worker, progress=lambda message: None
    )


class TestRun:
    def test_complete_run_populates_journal_and_store(self, store, tiny_spec):
        summary = scheduler(store).run(tiny_spec, "exp")
        assert summary.complete
        assert summary.n_done == 3 and summary.n_skipped == 0

        state = load_state(store.journal_path("exp"))
        assert len(state.done) == 3
        records = store.records("exp")
        assert len(records) == 3
        assert all(r["status"] == "done" for r in records)
        # The metric the fake worker derives from the seed came through.
        assert {r["metrics"]["queries_per_s"] for r in records} == {
            1000.0, 1100.0, 1200.0,
        }

    def test_rerunning_a_started_experiment_is_refused(self, store, tiny_spec):
        scheduler(store).run(tiny_spec, "exp")
        with pytest.raises(SchedulerError, match="already has a journal"):
            scheduler(store).run(tiny_spec, "exp")

    def test_trial_errors_are_results_not_crashes(self, store, tiny_spec):
        summary = scheduler(store, worker=flaky_worker).run(tiny_spec, "exp")
        assert not summary.complete
        assert summary.n_done == 2 and summary.n_failed == 1
        failed = [r for r in store.records("exp") if r["status"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["seed"] == 1
        assert "injected failure" in failed[0]["error"]

    def test_crashing_worker_exhausts_supervision_and_fails(
        self, store, tiny_spec
    ):
        summary = scheduler(store, worker=crashing_worker).run(tiny_spec, "exp")
        assert summary.n_done == 2 and summary.n_failed == 1
        failed = [r for r in store.records("exp") if r["status"] == "failed"]
        assert failed[0]["seed"] == 1
        assert "supervised retries" in failed[0]["error"]


class TestResume:
    def test_resume_reruns_exactly_the_failed_trials(self, store, tiny_spec):
        scheduler(store, worker=flaky_worker).run(tiny_spec, "exp")
        summary = scheduler(store, worker=ok_worker).resume("exp")
        assert summary.resumed
        assert summary.n_skipped == 2  # the two that succeeded first time
        assert summary.n_run == 1
        assert summary.complete
        records = store.records("exp")
        assert len(records) == 3  # replaced, not duplicated
        assert all(r["status"] == "done" for r in records)

    def test_resume_after_journal_truncation(self, store, tiny_spec):
        """Cutting the journal mid final record loses only that trial."""
        scheduler(store).run(tiny_spec, "exp")
        journal_path = store.journal_path("exp")
        raw = journal_path.read_bytes()
        journal_path.write_bytes(raw[: len(raw) - 10])  # cut the last 'done'
        store.results_path("exp").unlink()  # store lags the journal

        summary = scheduler(store).resume("exp")
        assert summary.n_skipped == 2 and summary.n_run == 1
        assert summary.complete
        # Resume backfills the journaled-done trials the store lost,
        # then appends the re-run one: the store is whole again.
        state = load_state(journal_path)
        assert len(state.done) == 3
        records = store.records("exp")
        assert len(records) == 3
        assert all(r["status"] == "done" for r in records)

    def test_resume_with_nothing_pending_runs_nothing(self, store, tiny_spec):
        scheduler(store).run(tiny_spec, "exp")
        summary = scheduler(store).resume("exp")
        assert summary.complete and summary.n_run == 0
        assert summary.n_skipped == 3

    def test_resume_refuses_a_changed_spec(self, store, tiny_spec):
        scheduler(store).run(tiny_spec, "exp")
        changed = ExperimentSpec(
            name="tiny", workloads=(("gauss", 100, 4),),
            engines=("batch",), seeds=(0, 1, 2, 3),
        )
        store.write_spec("exp", changed.to_dict())
        with pytest.raises(SchedulerError, match="spec changed"):
            scheduler(store).resume("exp")

    def test_resume_without_a_journal_is_refused(self, store, tiny_spec):
        store.write_spec("exp", tiny_spec.to_dict())
        with pytest.raises(SchedulerError, match="nothing to resume"):
            scheduler(store).resume("exp")

    def test_resume_journal_appends_a_second_header(self, store, tiny_spec):
        scheduler(store, worker=flaky_worker).run(tiny_spec, "exp")
        scheduler(store).resume("exp")
        records, torn = read_journal(store.journal_path("exp"))
        assert torn == 0
        headers = [r for r in records if r["type"] == "experiment"]
        assert len(headers) == 2
        assert headers[1]["resumed"] is True


class TestRebuild:
    def test_store_rebuilt_from_journal(self, store, tiny_spec):
        scheduler(store).run(tiny_spec, "exp")
        store.results_path("exp").unlink()
        n = rebuild_store_from_journal(store, "exp")
        assert n == 3
        records = store.records("exp")
        assert len(records) == 3
        assert {r["metrics"]["queries_per_s"] for r in records} == {
            1000.0, 1100.0, 1200.0,
        }


class TestPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy(jobs=0)
        with pytest.raises(ValueError):
            SchedulerPolicy(deadline=0.0)

    def test_parallel_rounds_complete(self, store):
        spec = ExperimentSpec(
            name="wide", workloads=(("gauss", 100, 4),),
            engines=("batch",), seeds=tuple(range(6)),
        )
        policy = SchedulerPolicy(jobs=2, deadline=30.0, max_retries=0)
        summary = scheduler(store, policy=policy).run(spec, "exp")
        assert summary.complete and summary.n_done == 6
