"""Results store: record shape, dedupe-by-identity, damage detection."""

from __future__ import annotations

import pytest

from repro.orchestrator.spec import Trial
from repro.orchestrator.store import ResultsStore, StoreError, trial_record


def make_record(seed=0, status="done", experiment="exp", **metrics):
    trial = Trial(
        experiment=experiment, dataset="gauss", n=100, n_queries=4, seed=seed,
    )
    return trial_record(
        experiment, trial.to_record(), status,
        metrics={"queries_per_s": 100.0, **metrics} if status == "done" else None,
        error=None if status == "done" else "boom",
    )


class TestRecordShape:
    def test_identity_and_build_are_stamped(self):
        record = make_record(seed=7)
        assert record["seed"] == 7
        assert record["status"] == "done"
        assert len(record["trial_id"]) == 16
        assert len(record["config_hash"]) == 16
        assert set(record["build"]) == {"version", "git", "python"}
        assert record["config"]["dataset"] == "gauss"
        assert "seed" not in record["config"]  # seed is top-level, not config

    def test_failed_record_has_error_not_metrics(self):
        record = make_record(status="failed")
        assert record["error"] == "boom"
        assert "metrics" not in record


class TestRoundTrip:
    def test_append_and_read(self, store):
        records = [make_record(seed=s) for s in range(3)]
        store.append_records("exp", records)
        stored = store.records("exp")
        assert {r["trial_id"] for r in stored} == {
            r["trial_id"] for r in records
        }

    def test_missing_experiment_reads_empty(self, store):
        assert store.records("never-ran") == []

    def test_rerun_replaces_not_duplicates(self, store):
        first = make_record(seed=0, status="failed")
        store.append_records("exp", [first])
        second = make_record(seed=0, status="done")
        assert first["trial_id"] == second["trial_id"]
        store.append_records("exp", [second])
        stored = store.records("exp")
        assert len(stored) == 1
        assert stored[0]["status"] == "done"

    def test_damaged_line_is_loud(self, store):
        store.append_records("exp", [make_record()])
        path = store.results_path("exp")
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(StoreError, match="damaged record"):
            store.records("exp")


class TestQueries:
    def test_experiment_summaries(self, store):
        store.append_records("a", [make_record(seed=0, experiment="a")])
        store.append_records("b", [
            make_record(seed=0, experiment="b"),
            make_record(seed=1, experiment="b", status="failed"),
        ])
        summaries = {s["experiment"]: s for s in store.experiments()}
        assert summaries["a"]["n_done"] == 1
        assert summaries["b"]["n_done"] == 1
        assert summaries["b"]["n_failed"] == 1

    def test_latest_experiment_with_matcher(self, store):
        store.append_records("old", [make_record(experiment="old")])
        store.append_records("new", [
            make_record(experiment="new", status="failed")
        ])
        assert store.latest_experiment() is not None
        only_done = store.latest_experiment(
            lambda records: any(r["status"] == "done" for r in records)
        )
        assert only_done == "old"
        assert store.latest_experiment(lambda records: False) is None

    def test_bad_experiment_names_are_refused(self, store):
        for name in ("../escape", "", "a b", ".hidden"):
            with pytest.raises(ValueError, match="bad experiment name"):
                store.experiment_dir(name)
