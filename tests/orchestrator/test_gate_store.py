"""Gate ``--from-store``: trusted only when the build matches HEAD."""

from __future__ import annotations

import pytest

from repro.bench.gate import (
    SMOKE_DATASET,
    SMOKE_N,
    SMOKE_QUERIES,
    GateStoreError,
    traversal_rows_from_store,
)
from repro.orchestrator.spec import Trial
from repro.orchestrator.store import ResultsStore, trial_record


def smoke_store(tmp_path, git: str | None = None) -> ResultsStore:
    """A store holding one completed smoke trial per engine; ``git``
    overrides the recorded build identity (None keeps HEAD's)."""
    store = ResultsStore(tmp_path / "store")
    records = []
    for engine, rate in (("per-query", 1000.0), ("batch", 4000.0)):
        trial = Trial(
            experiment="smoke", dataset=SMOKE_DATASET, n=SMOKE_N,
            n_queries=SMOKE_QUERIES, engine=engine, seed=0,
        )
        record = trial_record(
            "smoke", trial.to_record(), "done",
            metrics={
                "seconds": 0.1, "queries_per_s": rate,
                "kernels_per_query": 12.5, "labels_sha256": "aaaa",
                "dim": 2,
            },
        )
        if git is not None:
            record["build"]["git"] = git
        records.append(record)
    store.append_records("smoke", records)
    return store


def test_current_build_records_become_gate_rows(tmp_path):
    store = smoke_store(tmp_path)
    rows = traversal_rows_from_store(store.root)
    assert [r["engine"] for r in rows] == ["per-query", "batch"]
    assert all(r["labels_match_per_query"] for r in rows)
    batch = rows[1]
    assert batch["speedup_vs_per_query"] == pytest.approx(4.0)
    assert batch["kernels_per_query"] == 12.5
    assert batch["section"] == "smoke"


def test_stale_build_is_refused(tmp_path):
    store = smoke_store(tmp_path, git="deadbee")
    with pytest.raises(GateStoreError, match="another build"):
        traversal_rows_from_store(store.root)


def test_empty_store_is_refused(tmp_path):
    store = ResultsStore(tmp_path / "empty")
    with pytest.raises(GateStoreError, match="no experiment"):
        traversal_rows_from_store(store.root)


def test_missing_engine_is_refused(tmp_path):
    store = ResultsStore(tmp_path / "store")
    trial = Trial(
        experiment="half", dataset=SMOKE_DATASET, n=SMOKE_N,
        n_queries=SMOKE_QUERIES, engine="batch", seed=0,
    )
    store.append_records("half", [trial_record(
        "half", trial.to_record(), "done",
        metrics={"seconds": 0.1, "queries_per_s": 1.0,
                 "kernels_per_query": 1.0, "labels_sha256": "aa", "dim": 2},
    )])
    with pytest.raises(GateStoreError, match="per-query"):
        traversal_rows_from_store(store.root, experiment="half")