"""End-to-end crash-resume: SIGKILL a real ``tkdc bench run``, resume it.

The one test here drives the real CLI in a subprocess against a real
(tiny) spec: it waits for the journal to record at least one completed
trial, delivers SIGKILL — no atexit, no finally blocks, orphaned pool
workers and all — then runs ``bench run --resume`` and asserts the
experiment completes with zero missing and zero duplicated trials.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.orchestrator.journal import load_state
from repro.orchestrator.spec import ExperimentSpec
from repro.orchestrator.store import ResultsStore

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Big enough per-trial that the kill lands mid-run, small enough that
#: the whole test stays seconds-scale.
SPEC = {
    "name": "kill-test",
    "workloads": [["gauss", 4000, 128]],
    "engines": ["per-query", "batch"],
    "seeds": [0, 1, 2],
}


def bench_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", "bench", *args]


def bench_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    return env


def test_sigkill_mid_run_then_resume_completes(tmp_path):
    spec_path = tmp_path / "kill-test.json"
    spec_path.write_text(json.dumps(SPEC))
    store = ResultsStore(tmp_path / "store")
    n_trials = ExperimentSpec.from_dict(SPEC).n_trials
    journal_path = store.journal_path("kill-test")

    proc = subprocess.Popen(
        bench_cmd("run", "--spec", str(spec_path), "--store", str(store.root)),
        env=bench_env(), cwd=str(tmp_path),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Kill as soon as the journal holds >= 1 done record — several
        # trials must still be pending for the resume to be meaningful.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                pytest.fail(
                    "bench run finished before the kill landed — grow "
                    "the spec so trials outlast the polling loop"
                )
            if journal_path.exists() and b'"type":"done"' in journal_path.read_bytes():
                break
            time.sleep(0.005)
        else:
            pytest.fail("journal never recorded a completed trial")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait(timeout=30.0)

    state = load_state(journal_path)
    n_done_at_kill = len(state.done)
    assert 1 <= n_done_at_kill < n_trials, (
        "the kill must land mid-run for this test to mean anything"
    )

    # The SIGKILLed scheduler's flock must have died with it (including
    # copies inherited by orphaned pool workers) — resume must not be
    # refused, and must run exactly the missing trials.
    resumed = subprocess.run(
        bench_cmd("run", "--resume", "kill-test", "--store", str(store.root)),
        env=bench_env(), cwd=str(tmp_path),
        capture_output=True, text=True, timeout=90.0,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert f"{n_done_at_kill} already done" in resumed.stdout
    assert f"{n_trials - n_done_at_kill} to run" in resumed.stdout

    # Zero missing, zero duplicated.
    records = store.records("kill-test")
    expected_ids = {
        t.trial_id for t in ExperimentSpec.from_dict(SPEC).expand("kill-test")
    }
    done_ids = [r["trial_id"] for r in records if r["status"] == "done"]
    assert sorted(done_ids) == sorted(set(done_ids)), "duplicated trials"
    assert set(done_ids) == expected_ids, "missing trials after resume"
    assert len(load_state(journal_path).done) == n_trials
