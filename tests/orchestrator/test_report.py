"""Comparative reports: matching, statistics rows, the three renderings."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.orchestrator.report import (
    ExperimentComparison,
    ReportError,
    format_output,
    geometric_mean,
    render_html,
)
from repro.orchestrator.spec import Trial
from repro.orchestrator.store import trial_record

SEEDS = (0, 1, 2, 3, 4)


def seed_records(experiment, engine, rate, seeds=SEEDS, jitter=1.0):
    """Done records for one scenario: one trial per seed, tight spread."""
    records = []
    for index, seed in enumerate(seeds):
        trial = Trial(
            experiment=experiment, dataset="gauss", n=100, n_queries=4,
            engine=engine, seed=seed,
        )
        records.append(trial_record(
            experiment, trial.to_record(), "done",
            metrics={"queries_per_s": rate + jitter * index, "seconds": 0.1},
        ))
    return records


@pytest.fixture
def populated(store):
    """Baseline 'v1' vs candidate 'v2': batch 2x faster, per-query equal,
    plus one scenario only the candidate ran."""
    store.append_records("v1", (
        seed_records("v1", "batch", 100.0)
        + seed_records("v1", "per-query", 50.0)
    ))
    store.append_records("v2", (
        seed_records("v2", "batch", 200.0)
        + seed_records("v2", "per-query", 50.0)
        + seed_records("v2", "hbe", 300.0)
    ))
    return ExperimentComparison(store, "v1", "v2")


class TestMatching:
    def test_scenarios_match_by_config_hash(self, populated):
        keys = [key for key, __, __ in populated.scenarios]
        assert len(keys) == 2
        assert any("batch" in key for key in keys)

    def test_one_sided_scenarios_are_reported_not_dropped(self, populated):
        assert populated.unmatched["v1"] == []
        assert len(populated.unmatched["v2"]) == 1
        assert "hbe" in populated.unmatched["v2"][0]

    def test_unknown_experiment_is_loud(self, store):
        store.append_records("only", seed_records("only", "batch", 100.0))
        comparison = ExperimentComparison(store, "only", "never-ran")
        with pytest.raises(ReportError, match="known experiments"):
            comparison.rows

    def test_missing_metric_is_loud(self, populated):
        broken = ExperimentComparison(
            populated.store, "v1", "v2", metric="no_such_metric"
        )
        with pytest.raises(ReportError, match="no_such_metric"):
            broken.rows


class TestRows:
    def test_speedup_ci_and_verdict(self, populated):
        by_scenario = {row["scenario"]: row for row in populated.rows}
        batch = next(v for k, v in by_scenario.items() if "batch" in k)
        assert batch["speedup"] == pytest.approx(2.0, rel=0.05)
        assert batch["ci_lo"] < batch["speedup"] < batch["ci_hi"]
        assert batch["verdict"] == "faster"
        assert batch["n_a"] == batch["n_b"] == len(SEEDS)

        per_query = next(v for k, v in by_scenario.items() if "per-query" in k)
        assert per_query["speedup"] == pytest.approx(1.0, rel=0.1)
        assert per_query["verdict"] == "~"

    def test_summary(self, populated):
        summary = populated.summary
        assert summary["n_scenarios"] == 2
        assert summary["n_faster"] == 1
        assert summary["n_inconclusive"] == 1
        assert summary["geomean_speedup"] == pytest.approx(
            (2.0 * 1.0) ** 0.5, rel=0.1
        )
        assert summary["build_a"].get("git")

    def test_payload_is_json_serializable(self, populated):
        json.dumps(populated.to_payload())


class TestFormatOutput:
    ROWS = [
        {"scenario": "gauss/batch", "n_a": 3, "n_b": 3, "a_mean": 10.0,
         "b_mean": 20.0, "speedup": 2.0, "ci_lo": 1.8, "ci_hi": 2.2,
         "p_value": 0.03, "verdict": "faster"},
    ]

    def test_table(self):
        text = format_output(self.ROWS, fmt="table", title="demo")
        assert "== demo ==" in text
        assert "gauss/batch" in text and "faster" in text

    def test_csv_round_trips(self):
        text = format_output(self.ROWS, fmt="csv")
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["scenario"] == "gauss/batch"
        assert float(rows[0]["speedup"]) == 2.0

    def test_json_round_trips(self):
        payload = json.loads(format_output(self.ROWS, fmt="json"))
        assert payload[0]["verdict"] == "faster"

    def test_unknown_format_is_refused(self):
        with pytest.raises(ValueError, match="unknown format"):
            format_output(self.ROWS, fmt="yaml")


class TestHtml:
    def test_page_embeds_chart_table_and_unmatched(self, populated):
        page = render_html(populated)
        assert page.startswith("<!DOCTYPE html>")
        assert "<svg" in page  # the speedup bar chart
        assert "v1" in page and "v2" in page
        assert 'class="faster"' in page
        assert "only in" in page or "hbe" in page  # unmatched footnote

    def test_empty_comparison_renders(self, store):
        store.append_records("a", seed_records("a", "batch", 100.0))
        store.append_records("b", seed_records("b", "hbe", 100.0))
        page = render_html(ExperimentComparison(store, "a", "b"))
        assert "No matched scenarios" in page


class TestGeometricMean:
    def test_values(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0]) == pytest.approx(1.0)

    def test_nonpositive_gives_nan(self):
        import math
        assert math.isnan(geometric_mean([2.0, 0.0]))
        assert math.isnan(geometric_mean([]))
