"""Unit tests for the order-statistic drift monitor.

The monitor is a pure state machine over injected density windows and an
injected clock, so every branch — including the statistical
false-positive guarantee — is exercised without fitting a model or
sleeping.
"""

import numpy as np
import pytest

from repro.streaming import DriftMonitor

P = 0.1
DELTA = 0.05
WINDOW = 64


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_monitor(**overrides) -> DriftMonitor:
    kwargs = dict(p=P, delta=DELTA, window=WINDOW, hysteresis=2,
                  min_refit_interval=0.0, clock=FakeClock())
    kwargs.update(overrides)
    return DriftMonitor(**kwargs)


def stable_window(rng: np.random.Generator) -> np.ndarray:
    """Uniform(0,1) densities: the true p-quantile is exactly p."""
    return rng.uniform(size=WINDOW)


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(p=0.0), dict(p=1.0), dict(delta=0.0), dict(delta=1.0),
        dict(window=4), dict(hysteresis=0), dict(min_refit_interval=-1.0),
    ])
    def test_rejects_bad_parameters(self, bad):
        with pytest.raises(ValueError):
            make_monitor(**bad)


class TestDecisions:
    def test_window_filling(self):
        monitor = make_monitor()
        decision = monitor.observe(np.linspace(0, 1, WINDOW - 1), P)
        assert not decision.checked
        assert decision.reason == "window_filling"
        assert monitor.checks == 0

    def test_nonfinite_densities_do_not_count(self):
        monitor = make_monitor()
        densities = np.full(WINDOW, np.nan)
        densities[:10] = 0.5
        decision = monitor.observe(densities, P)
        assert decision.reason == "window_filling"
        assert decision.window == 10

    def test_stable_at_true_quantile(self):
        monitor = make_monitor()
        rng = np.random.default_rng(0)
        decision = monitor.observe(stable_window(rng), P)
        assert decision.checked and not decision.drifted
        assert decision.reason == "stable"
        assert decision.ci_lower <= P <= decision.ci_upper

    def test_drift_low_and_high_reasons(self):
        rng = np.random.default_rng(0)
        window = stable_window(rng)
        low = make_monitor().observe(window, -1.0)
        assert low.drifted and low.reason == "drift_low"
        high = make_monitor().observe(window, 2.0)
        assert high.drifted and high.reason == "drift_high"

    def test_tolerance_widens_acceptance(self):
        rng = np.random.default_rng(0)
        window = stable_window(rng)
        bare = make_monitor().observe(window, 2.0)
        assert bare.drifted
        widened = make_monitor().observe(window, 2.0, tolerance=3.0)
        assert not widened.drifted


class TestHysteresis:
    def test_fires_only_after_consecutive_violations(self):
        monitor = make_monitor(hysteresis=2)
        rng = np.random.default_rng(1)
        first = monitor.observe(stable_window(rng), 2.0)
        assert first.drifted and not first.fired
        assert first.consecutive == 1
        second = monitor.observe(stable_window(rng), 2.0)
        assert second.fired and second.consecutive == 2
        assert monitor.fires == 1

    def test_stable_check_resets_the_run(self):
        monitor = make_monitor(hysteresis=2)
        rng = np.random.default_rng(2)
        monitor.observe(stable_window(rng), 2.0)
        # Guaranteed-stable check (tolerance swallows the gap): run broken.
        monitor.observe(stable_window(rng), P, tolerance=10.0)
        third = monitor.observe(stable_window(rng), 2.0)
        assert third.drifted and not third.fired
        assert third.consecutive == 1

    def test_min_refit_interval_gates_fire(self):
        clock = FakeClock()
        monitor = make_monitor(hysteresis=1, min_refit_interval=10.0,
                               clock=clock)
        rng = np.random.default_rng(3)
        assert monitor.observe(stable_window(rng), 2.0).fired
        monitor.note_refit()
        clock.now = 5.0  # inside the interval
        held = monitor.observe(stable_window(rng), 2.0)
        assert held.drifted and not held.fired
        assert held.reason == "refit_interval"
        clock.now = 15.0  # past it
        assert monitor.observe(stable_window(rng), 2.0).fired

    def test_note_refit_resets_consecutive(self):
        monitor = make_monitor(hysteresis=3)
        rng = np.random.default_rng(4)
        monitor.observe(stable_window(rng), 2.0)
        monitor.observe(stable_window(rng), 2.0)
        monitor.note_refit()
        after = monitor.observe(stable_window(rng), 2.0)
        assert after.consecutive == 1 and not after.fired


class TestFalsePositiveRate:
    def test_iid_stream_never_fires(self):
        """Satellite guarantee: on an i.i.d. stream the per-check
        violation rate stays near delta and hysteresis suppresses every
        fire (fixed seeds make this fully deterministic)."""
        checks = violations = fires = 0
        for seed in range(200):
            rng = np.random.default_rng(seed)
            monitor = make_monitor(delta=0.01, hysteresis=2)
            for __ in range(6):
                decision = monitor.observe(stable_window(rng), P)
                checks += 1
                violations += int(decision.drifted)
                fires += int(decision.fired)
        assert fires == 0
        # Violation rate is one Binomial(checks, <=delta) draw; allow
        # generous sampling slack above the nominal level.
        assert violations / checks <= 0.01 + 3 * np.sqrt(0.01 / checks)
