"""Shared fixtures for the streaming-pipeline suite.

Everything is shrunk for speed: small training sets, tiny bootstrap,
small drift windows, sub-second check intervals. The soak test layers
its own timings on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TKDCConfig
from repro.streaming import StreamingPipeline, StreamSettings

#: Fast-fit config shared by every streaming test.
FAST_CONFIG = dict(p=0.1, epsilon=0.05, seed=0, refine_threshold=False,
                   bootstrap_s0=500)

#: Fast pipeline settings: tiny window, sub-second cadence.
FAST_SETTINGS = dict(
    drift_delta=0.05,
    monitor_window=64,
    hysteresis=2,
    check_interval=0.05,
    min_refit_interval=0.0,
    refit_deadline=60.0,
    refit_retries=1,
    refit_backoff=0.01,
    refit_sample_cap=4000,
    sketch_capacity=512,
    canary_queries=8,
)


@pytest.fixture
def stream_config() -> TKDCConfig:
    return TKDCConfig(**FAST_CONFIG)


@pytest.fixture
def base_data() -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.normal(size=(800, 2)) * 0.5


@pytest.fixture
def pipeline_factory(stream_config, base_data, tmp_path):
    """Build fast pipelines; every one is stopped at teardown."""
    built: list[StreamingPipeline] = []

    def factory(settings_overrides=None, **kwargs) -> StreamingPipeline:
        settings = dict(FAST_SETTINGS)
        settings.update(settings_overrides or {})
        kwargs.setdefault("artifact_dir", tmp_path / "artifacts")
        pipeline = StreamingPipeline.from_data(
            base_data, stream_config,
            settings=StreamSettings(**settings), **kwargs,
        )
        built.append(pipeline)
        return pipeline

    yield factory
    for pipeline in built:
        pipeline.stop(join=True)
