"""Unit tests for the bounded mergeable stream sketch."""

import numpy as np
import pytest

from repro.kernels.gaussian import GaussianKernel
from repro.streaming import StreamSketch


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestBounds:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            StreamSketch(capacity=1)

    def test_size_bounded_regardless_of_stream_length(self, rng):
        sketch = StreamSketch(capacity=128)
        for __ in range(40):
            sketch.append(rng.normal(size=(137, 3)))
        assert sketch.n_seen == 40 * 137
        assert sketch.size <= 128
        assert sketch.rounds > 0

    def test_weight_mass_conserved(self, rng):
        """Halving merges weights, never drops them."""
        sketch = StreamSketch(capacity=64)
        sketch.append(rng.normal(size=(1000, 2)))
        sample = sketch.training_sample(cap=10**9)
        assert sample.shape == (1000, 2)  # total weight == n_seen

    def test_dimension_mismatch_rejected(self, rng):
        sketch = StreamSketch(capacity=64)
        sketch.append(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="dimensionality"):
            sketch.append(rng.normal(size=(10, 3)))


class TestTrainingSample:
    def test_exact_reconstruction_under_capacity(self, rng):
        """No reduction ever ran: the sample IS the stream, exactly."""
        points = rng.normal(size=(300, 2))
        sketch = StreamSketch(capacity=1024)
        sketch.append(points[:100])
        sketch.append(points[100:])
        assert sketch.raw_displacement == 0.0
        sample = sketch.training_sample(cap=1024)
        np.testing.assert_array_equal(
            np.sort(sample, axis=0), np.sort(points, axis=0)
        )

    def test_bootstrap_beyond_cap(self, rng):
        sketch = StreamSketch(capacity=64)
        sketch.append(rng.normal(size=(500, 2)))
        sample = sketch.training_sample(cap=200, rng=rng)
        assert sample.shape == (200, 2)

    def test_empty_sketch_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            StreamSketch().training_sample(cap=10)

    def test_bad_cap_rejected(self, rng):
        sketch = StreamSketch()
        sketch.append(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError, match="cap"):
            sketch.training_sample(cap=0)

    def test_sample_is_a_copy(self, rng):
        sketch = StreamSketch(capacity=1024)
        sketch.append(rng.normal(size=(20, 2)))
        sample = sketch.training_sample(cap=1024)
        sample[:] = 0.0
        resample = sketch.training_sample(cap=1024)
        assert not np.allclose(resample, 0.0)


class TestMerge:
    def test_merge_combines_streams(self, rng):
        data = rng.normal(size=(600, 2))
        left = StreamSketch(capacity=128)
        right = StreamSketch(capacity=128)
        left.append(data[:300])
        right.append(data[300:])
        left.merge(right)
        assert left.n_seen == 600
        assert left.size <= 128
        assert left.training_sample(cap=100, rng=rng).shape == (100, 2)

    def test_merge_empty_is_noop(self, rng):
        sketch = StreamSketch()
        sketch.append(rng.normal(size=(10, 2)))
        before = sketch.snapshot()
        sketch.merge(StreamSketch())
        assert sketch.snapshot() == before

    def test_merge_accumulates_displacement(self, rng):
        left = StreamSketch(capacity=32)
        right = StreamSketch(capacity=32)
        left.append(rng.normal(size=(200, 2)))
        right.append(rng.normal(size=(200, 2)))
        combined_floor = left.raw_displacement + right.raw_displacement
        assert combined_floor > 0.0
        left.merge(right)
        assert left.raw_displacement >= combined_floor


class TestCertificate:
    def test_eta_zero_before_any_reduction(self, rng):
        sketch = StreamSketch(capacity=1024)
        sketch.append(rng.normal(size=(100, 2)))
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        assert sketch.eta_for(kernel) == 0.0

    def test_eta_positive_after_reduction(self, rng):
        sketch = StreamSketch(capacity=32)
        sketch.append(rng.normal(size=(500, 2)))
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        eta = sketch.eta_for(kernel)
        assert np.isfinite(eta) and eta > 0.0

    def test_eta_scales_inversely_with_bandwidth(self, rng):
        """Smaller min bandwidth -> larger scaled displacement bound."""
        sketch = StreamSketch(capacity=32)
        sketch.append(rng.normal(size=(500, 2)))
        wide = GaussianKernel(np.array([2.0, 2.0]))
        narrow = GaussianKernel(np.array([0.5, 2.0]))
        assert sketch.eta_for(narrow) > sketch.eta_for(wide)

    def test_eta_bounds_actual_kde_error(self, rng):
        """The certificate dominates the measured sup error on a probe set."""
        points = rng.normal(size=(600, 2))
        sketch = StreamSketch(capacity=64)
        sketch.append(points)
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        probes = rng.normal(size=(50, 2))

        def kde(train, query):
            diffs = kernel.scale(train) - kernel.scale(query)
            sq = np.einsum("ij,ij->i", diffs, diffs)
            return float(np.sum(kernel.value(sq))) / points.shape[0]

        sample = sketch.training_sample(cap=10**9)
        worst = max(
            abs(kde(points, probe) - kde(sample, probe)) for probe in probes
        )
        assert worst <= sketch.eta_for(kernel) + 1e-12
