"""Crash-recovery tests: WAL replay rebuilds the exact pipeline state.

Crashes are simulated with ``WriteAheadLog.abandon()`` — the handle and
flock are dropped without the final snapshot, exactly the footprint of
a SIGKILL. The soak test covers the real-subprocess version.
"""

import numpy as np
import pytest

from repro.io.models import save_model
from repro.streaming import (
    StreamingPipeline,
    StreamSettings,
    WalError,
    WalLockedError,
)
from repro.streaming.wal import RECORD_REFIT_TRIGGER, RECORD_SWAP_COMMIT

from .conftest import FAST_SETTINGS


@pytest.fixture
def wal_dir(tmp_path):
    return tmp_path / "wal"


@pytest.fixture
def recovered_pipelines():
    built = []
    yield built
    for pipeline in built:
        pipeline.stop(join=True)


def _recover(built, *args, **kwargs):
    pipeline = StreamingPipeline.recover(*args, **kwargs)
    built.append(pipeline)
    return pipeline


def _settings(**overrides) -> StreamSettings:
    return StreamSettings(**{**FAST_SETTINGS, **overrides})


class TestRecoverAfterCrash:
    def test_conservation_and_counters_survive(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        rng = np.random.default_rng(11)
        for seq in range(1, 6):
            out = pipeline.ingest_batch(
                rng.normal(size=(20, 2)) * 0.5, source="ep1", source_seq=seq
            )
            assert out == {"accepted": 20, "duplicate": False}
        # A duplicate delivery (router retry) is acknowledged as such.
        assert pipeline.ingest_batch(
            np.zeros((4, 2)), source="ep1", source_seq=3
        ) == {"accepted": 0, "duplicate": True}
        expected_total = pipeline.model.n_total
        assert expected_total == pipeline.initial_n + 100
        pipeline.wal.abandon()  # SIGKILL

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        assert recovered.model.n_total == expected_total
        assert recovered.ingested_total == 100
        # Refused batches write no WAL record, so the duplicate count
        # resets across a crash — only acknowledged state is durable.
        assert recovered.duplicates_skipped == 0
        assert recovered.initial_n == pipeline.initial_n
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting
        info = recovered.recovery
        assert info["recovered"] is True
        assert info["points_replayed"] == 100
        assert info["replayed_by_type"] == {"ingest": 5}
        assert info["recovered_torn_records"] == 0
        assert info["used_fallback_classifier"] is True
        # The watermark replays too: the retry is still a duplicate.
        assert recovered.ingest_batch(
            np.zeros((4, 2)), source="ep1", source_seq=5
        ) == {"accepted": 0, "duplicate": True}
        assert recovered.ingest_batch(
            rng.normal(size=(4, 2)), source="ep1", source_seq=6
        )["accepted"] == 4

    def test_sketch_and_window_rebuilt_exactly(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        rng = np.random.default_rng(12)
        pipeline.ingest(rng.normal(size=(60, 2)) * 0.5)
        before = pipeline.sketch.state()
        window_before = np.array(pipeline._window)
        pipeline.wal.abandon()

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        after = recovered.sketch.state()
        np.testing.assert_array_equal(before["points"], after["points"])
        np.testing.assert_array_equal(before["weights"], after["weights"])
        assert before["n_seen"] == after["n_seen"]
        assert before["raw_displacement"] == after["raw_displacement"]
        np.testing.assert_array_equal(
            window_before, np.array(recovered._window)
        )

    def test_clean_stop_then_recover_replays_nothing(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        pipeline.ingest(np.random.default_rng(0).normal(size=(30, 2)) * 0.5)
        expected_total = pipeline.model.n_total
        pipeline.stop(join=True)  # writes the shutdown snapshot

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        assert recovered.recovery["records_replayed"] == 0
        assert recovered.model.n_total == expected_total
        assert recovered.ingested_total == 30

    def test_second_owner_is_locked_out(self, pipeline_factory, wal_dir):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        with pytest.raises(WalLockedError):
            StreamingPipeline.recover(
                wal_dir, settings=pipeline.settings,
                fallback_classifier=pipeline.model.classifier,
            )

    def test_recover_without_fallback_or_snapshot_fails_loudly(
        self, tmp_path, wal_dir
    ):
        from repro.streaming.wal import WriteAheadLog

        WriteAheadLog(wal_dir).close()  # empty log, no snapshot
        with pytest.raises(WalError, match="fallback_classifier"):
            StreamingPipeline.recover(wal_dir, settings=_settings())


class TestOutOfOrderIngest:
    """Concurrent router forwards can reach the owner out of seq order;
    exact-duplicate detection must not mistake a late lower seq for a
    retry (the old high-water-mark dedup silently dropped it)."""

    def test_late_lower_seq_is_applied_not_dropped(
        self, pipeline_factory, wal_dir
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        rng = np.random.default_rng(31)
        batch = lambda: rng.normal(size=(10, 2)) * 0.5  # noqa: E731
        # seq 2's forward wins the race to the worker...
        assert pipeline.ingest_batch(
            batch(), source="ep1", source_seq=2
        ) == {"accepted": 10, "duplicate": False}
        # ...and seq 1 arriving afterwards is NEW data, not a duplicate.
        assert pipeline.ingest_batch(
            batch(), source="ep1", source_seq=1
        ) == {"accepted": 10, "duplicate": False}
        assert pipeline.ingested_total == 20
        # Retries of either exact seq ARE duplicates.
        for seq in (1, 2):
            assert pipeline.ingest_batch(
                np.zeros((3, 2)), source="ep1", source_seq=seq
            ) == {"accepted": 0, "duplicate": True}
        # The watermark advanced contiguously and the window drained.
        assert pipeline._ingest_watermarks["ep1"] == 2
        assert "ep1" not in pipeline._ingest_pending_seqs
        assert pipeline.verify_accounting()["ok"]

    def test_reorder_window_survives_crash(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        rng = np.random.default_rng(32)
        # seqs 1 and 3 applied; seq 2 still in flight at crash time.
        for seq in (1, 3):
            pipeline.ingest_batch(
                rng.normal(size=(10, 2)) * 0.5, source="ep1", source_seq=seq
            )
        pipeline.wal.abandon()  # SIGKILL

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        assert recovered.ingested_total == 20
        # The retry of applied seq 3 is still a duplicate after replay...
        assert recovered.ingest_batch(
            np.zeros((2, 2)), source="ep1", source_seq=3
        ) == {"accepted": 0, "duplicate": True}
        # ...while the delayed seq 2 lands as new data.
        assert recovered.ingest_batch(
            rng.normal(size=(10, 2)) * 0.5, source="ep1", source_seq=2
        ) == {"accepted": 10, "duplicate": False}
        assert recovered._ingest_watermarks["ep1"] == 3
        assert recovered.verify_accounting()["ok"]

    def test_overflowed_gap_is_collapsed(self, pipeline_factory, wal_dir):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        pipeline.REORDER_WINDOW = 4  # shadow the class default
        rng = np.random.default_rng(33)
        # seq 1 was refused upstream and never arrives; its gap must
        # not pin the pending window open forever.
        for seq in range(2, 8):
            pipeline.ingest_batch(
                rng.normal(size=(2, 2)) * 0.5, source="ep1", source_seq=seq
            )
        assert len(pipeline._ingest_pending_seqs.get("ep1", ())) <= 4
        assert pipeline._ingest_watermarks["ep1"] >= 2

    def test_nonpositive_seq_is_refused(self, pipeline_factory, wal_dir):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        with pytest.raises(ValueError, match="source_seq"):
            pipeline.ingest_batch(
                np.zeros((2, 2)), source="ep1", source_seq=0
            )


class TestSwapReplay:
    def _crash_with_markers(self, pipeline, artifact, n_indexed):
        """Append trigger+commit markers as a mid-swap crash would leave
        them (after the in-memory adopt, before the compacting
        snapshot), then kill the process."""
        generation = pipeline._refit_generation + 1
        pipeline.wal.append_marker(RECORD_REFIT_TRIGGER, {
            "generation": generation,
            "n_snapshot": int(n_indexed),
            "buffered_at_snapshot": 0,
        })
        pipeline.wal.append_marker(RECORD_SWAP_COMMIT, {
            "generation": generation,
            "model_generation": int(pipeline.model.generation) + 1,
            "n_indexed": int(n_indexed),
            "buffered_at_snapshot": 0,
            "artifact": str(artifact),
            "threshold": 1.0,
            "eta": 0.0,
            "eta_applied": 0.0,
        })
        pipeline.wal.abandon()

    def test_committed_swap_is_replayed(
        self, pipeline_factory, wal_dir, tmp_path, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        pipeline.ingest(np.random.default_rng(1).normal(size=(100, 2)) * 0.5)
        artifact = save_model(tmp_path / "swapped.tkdc", fallback)
        # The committed model represents all but 40 buffered points.
        n_indexed = pipeline.model.n_total - 40
        expected_generation = pipeline.model.generation + 1
        self._crash_with_markers(pipeline, artifact, n_indexed)

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        assert recovered.swaps == 1
        assert recovered.refits_triggered == 1
        assert recovered.refits_succeeded == 1
        assert recovered.refits_failed == 0
        assert recovered.model.n_indexed == n_indexed
        assert recovered.model.n_buffered == 40
        assert recovered.model.n_total == recovered.initial_n + 100
        assert recovered.model.generation == expected_generation
        assert recovered._classifier_path == str(artifact)
        assert recovered.recovery["skipped_swaps"] == 0
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting

    def test_missing_artifact_fails_soft(
        self, pipeline_factory, wal_dir, tmp_path, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        pipeline.ingest(np.random.default_rng(2).normal(size=(50, 2)) * 0.5)
        expected_total = pipeline.model.n_total
        self._crash_with_markers(
            pipeline, tmp_path / "deleted.tkdc", expected_total - 10
        )

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        # The swap is skipped, its points stay in the exact buffer, and
        # conservation still holds — no acknowledged point is lost.
        assert recovered.swaps == 0
        assert recovered.rollbacks == 1
        assert recovered.recovery["skipped_swaps"] == 1
        assert recovered.model.n_total == expected_total
        assert recovered.model.n_buffered == 50
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting

    def test_unresolved_trigger_counts_as_failed_refit(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        pipeline.ingest(np.random.default_rng(3).normal(size=(20, 2)) * 0.5)
        pipeline.wal.append_marker(RECORD_REFIT_TRIGGER, {
            "generation": 1, "n_snapshot": 0, "buffered_at_snapshot": 0,
        })
        pipeline.wal.abandon()  # died mid-refit

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        assert recovered.refits_triggered == 1
        assert recovered.refits_failed == 1
        assert recovered.refits_succeeded == 0
        assert recovered.recovery["unresolved_refits"] == 1
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting


class TestRealRefitRoundTrip:
    def test_crash_after_real_swap_recovers_without_fallback(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        """After a genuine refit+swap the artifact path is in the WAL
        snapshot, so recovery needs no fallback model — and the swapped
        artifact carries the sketch's displacement certificate."""
        pipeline = pipeline_factory(wal_dir=wal_dir)
        rng = np.random.default_rng(21)
        # Shift the distribution so the refit trains on real drift.
        pipeline.ingest(rng.normal(size=(400, 2)) * 0.5 + 2.0)
        outcome = pipeline.refit_and_swap()
        assert outcome is not None and outcome.ok
        assert outcome.eta_applied >= 0.0
        expected_total = pipeline.model.n_total
        expected_generation = pipeline.model.generation
        expected_eta = pipeline.model.classifier.stream_eta_applied
        pipeline.wal.abandon()

        recovered = _recover(
            recovered_pipelines, wal_dir, settings=pipeline.settings,
        )
        assert recovered.recovery["used_fallback_classifier"] is False
        assert recovered.model.n_total == expected_total
        assert recovered.model.generation == expected_generation
        assert recovered.swaps == 1
        assert recovered.model.classifier.stream_eta_applied == expected_eta
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting

    def test_torn_tail_is_recovered_and_reported(
        self, pipeline_factory, wal_dir, recovered_pipelines
    ):
        pipeline = pipeline_factory(wal_dir=wal_dir)
        fallback = pipeline.model.classifier
        pipeline.ingest(np.random.default_rng(5).normal(size=(30, 2)) * 0.5)
        acknowledged_total = pipeline.model.n_total
        pipeline.wal.abandon()
        # Tear the tail: an append died partway through its write.
        segment = sorted(wal_dir.glob("wal-*.seg"))[-1]
        with open(segment, "ab") as handle:
            handle.write(b"\x99\x00\x00\x00")  # half an envelope

        recovered = _recover(
            recovered_pipelines, wal_dir,
            settings=pipeline.settings, fallback_classifier=fallback,
        )
        assert recovered.recovery["recovered_torn_records"] == 1
        assert recovered.model.n_total == acknowledged_total
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting
