"""Unit + property tests for the checksummed write-ahead log.

The property test exercises the torn-tail contract exhaustively: for
EVERY byte offset inside the final record, truncating there and
reopening must (a) recover every earlier record intact, (b) count
exactly one torn record, and (c) leave the log appendable. Damage
anywhere before the physical tail must raise instead.
"""

import shutil

import numpy as np
import pytest

from repro.streaming.wal import (
    RECORD_INGEST,
    RECORD_REFIT_TRIGGER,
    RECORD_SNAPSHOT,
    RECORD_SWAP_COMMIT,
    SEGMENT_MAGIC,
    WalCorruptionError,
    WalError,
    WalLockedError,
    WriteAheadLog,
)


def _points(rows: int, dim: int = 2, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, dim))


class TestRoundTrip:
    def test_records_survive_close_and_reopen(self, tmp_path):
        batch = _points(5)
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert wal.empty
            assert wal.append_ingest(batch, {"source": "s", "seq": 3}) == 1
            assert wal.append_marker(
                RECORD_REFIT_TRIGGER, {"generation": 1}
            ) == 2
            assert wal.append_marker(
                RECORD_SWAP_COMMIT, {"generation": 1, "artifact": "x"}
            ) == 3
            assert not wal.empty
        with WriteAheadLog(tmp_path / "wal") as wal:
            records = list(wal.replay())
            assert [r.seq for r in records] == [1, 2, 3]
            assert [r.type for r in records] == [
                RECORD_INGEST, RECORD_REFIT_TRIGGER, RECORD_SWAP_COMMIT,
            ]
            points, meta = records[0].ingest_payload()
            np.testing.assert_array_equal(points, batch)
            assert meta == {"source": "s", "seq": 3}
            assert records[1].marker_payload() == {"generation": 1}
            assert wal.next_seq == 4
            assert wal.recovered_torn_records == 0

    def test_payload_codecs_reject_wrong_types(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_ingest(_points(2))
            record = next(iter(wal.replay()))
        with pytest.raises(WalError, match="not a marker"):
            record.marker_payload()
        with pytest.raises(WalError, match="not snapshot"):
            record.snapshot_payload()

    def test_stats_shape(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_ingest(_points(2))
            stats = wal.stats()
        assert stats["appends"] == 1
        assert stats["segments"] == 1
        assert stats["fsync_policy"] == "always"
        assert stats["size_bytes"] > len(SEGMENT_MAGIC)


class TestValidation:
    @pytest.mark.parametrize("bad", [
        dict(fsync_policy="sometimes"),
        dict(fsync_interval=-1.0),
        dict(segment_bytes=100),
    ])
    def test_constructor_rejects_bad_knobs(self, tmp_path, bad):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "wal", **bad)

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            wal.append_ingest(_points(1))

    def test_marker_type_checked(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            with pytest.raises(ValueError, match="not a marker"):
                wal.append_marker(RECORD_INGEST, {})


class TestLocking:
    def test_second_writer_is_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        try:
            with pytest.raises(WalLockedError):
                WriteAheadLog(tmp_path / "wal")
        finally:
            wal.close()
        # The lock dies with the holder: reopening now succeeds.
        WriteAheadLog(tmp_path / "wal").close()

    def test_abandon_releases_the_lock(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append_ingest(_points(3))
        wal.abandon()  # simulated SIGKILL
        with WriteAheadLog(tmp_path / "wal") as successor:
            assert len(list(successor.replay())) == 1


class TestRotationAndFsync:
    def test_rotation_bounds_segments_and_preserves_order(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", segment_bytes=1024) as wal:
            for i in range(12):
                wal.append_ingest(_points(20, seed=i), {"i": i})
            assert wal.rotations > 0
            assert wal.stats()["segments"] == wal.rotations + 1
        with WriteAheadLog(tmp_path / "wal", segment_bytes=1024) as wal:
            records = list(wal.replay())
            assert [r.seq for r in records] == list(range(1, 13))
            assert [r.ingest_payload()[1]["i"] for r in records] == list(range(12))

    def test_fsync_policy_always_syncs_every_append(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", fsync_policy="always") as wal:
            for i in range(5):
                wal.append_ingest(_points(2, seed=i))
            assert wal.fsyncs == 5

    def test_fsync_policy_off_never_syncs_on_append(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", fsync_policy="off") as wal:
            for i in range(5):
                wal.append_ingest(_points(2, seed=i))
            assert wal.fsyncs == 0
            wal.sync()
            assert wal.fsyncs == 1

    def test_fsync_policy_interval_batches(self, tmp_path):
        fake = [0.0]
        with WriteAheadLog(
            tmp_path / "wal", fsync_policy="interval", fsync_interval=1.0,
            clock=lambda: fake[0],
        ) as wal:
            wal.append_ingest(_points(1))  # -inf -> now: syncs
            wal.append_ingest(_points(1))  # same instant: skipped
            assert wal.fsyncs == 1
            fake[0] = 2.0
            wal.append_ingest(_points(1))
            assert wal.fsyncs == 2


class TestSnapshotCompaction:
    def test_snapshot_truncates_history(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", segment_bytes=1024) as wal:
            for i in range(8):
                wal.append_ingest(_points(20, seed=i))
            assert wal.stats()["segments"] > 1
            wal.write_snapshot({"counter": 41})
            wal.append_ingest(_points(3, seed=99), {"post": True})
            assert wal.stats()["segments"] == 1
        with WriteAheadLog(tmp_path / "wal") as wal:
            records = list(wal.replay())
        assert [r.type for r in records] == [RECORD_SNAPSHOT, RECORD_INGEST]
        assert records[0].snapshot_payload() == {"counter": 41}
        assert records[1].ingest_payload()[1] == {"post": True}

    def test_replay_starts_at_newest_snapshot(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_ingest(_points(2))
            wal.write_snapshot({"gen": 1})
            wal.write_snapshot({"gen": 2})
            records = list(wal.replay())
        assert len(records) == 1
        assert records[0].snapshot_payload() == {"gen": 2}


def _build_reference_log(directory):
    """Three ingest records, then one final marker; returns the byte
    range [start, end) of the final record in the last segment."""
    with WriteAheadLog(directory) as wal:
        for i in range(3):
            wal.append_ingest(_points(4, seed=i), {"i": i})
        path = directory / sorted(p.name for p in directory.glob("wal-*.seg"))[-1]
        start = path.stat().st_size
        wal.append_marker(RECORD_REFIT_TRIGGER, {"generation": 9})
        end = path.stat().st_size
    return path, start, end


class TestTornTailProperty:
    def test_every_truncation_offset_of_the_final_record(self, tmp_path):
        """Crash-at-any-byte: the unacknowledged tail is dropped, every
        acknowledged record survives, and the log stays appendable."""
        reference = tmp_path / "ref"
        segment, start, end = _build_reference_log(reference)
        assert end - start > 8  # envelope + payload: a real sweep
        for cut in range(start, end):
            workdir = tmp_path / f"cut-{cut}"
            shutil.copytree(reference, workdir)
            target = workdir / segment.name
            with open(target, "r+b") as handle:
                handle.truncate(cut)
            with WriteAheadLog(workdir) as wal:
                expected_torn = 0 if cut == start else 1
                assert wal.recovered_torn_records == expected_torn, cut
                records = list(wal.replay())
                assert [r.seq for r in records] == [1, 2, 3], cut
                for i, record in enumerate(records):
                    points, meta = record.ingest_payload()
                    np.testing.assert_array_equal(points, _points(4, seed=i))
                    assert meta == {"i": i}
                # The torn seq was never acknowledged; it is reused.
                assert wal.next_seq == 4, cut
                assert wal.append_ingest(_points(1), {"fresh": True}) == 4
            shutil.rmtree(workdir)

    def test_final_record_crc_damage_is_a_torn_tail(self, tmp_path):
        segment, start, end = _build_reference_log(tmp_path / "wal")
        with open(segment, "r+b") as handle:
            handle.seek(end - 1)
            byte = handle.read(1)
            handle.seek(end - 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with WriteAheadLog(tmp_path / "wal") as wal:
            assert wal.recovered_torn_records == 1
            assert [r.seq for r in wal.replay()] == [1, 2, 3]


class TestCorruptionFailsLoudly:
    def test_mid_log_bitflip_raises(self, tmp_path):
        segment, start, __ = _build_reference_log(tmp_path / "wal")
        # Damage the FIRST record's payload: a complete record whose CRC
        # fails before the physical tail is unaccountable loss.
        offset = len(SEGMENT_MAGIC) + 8 + 4
        with open(segment, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError, match="CRC32 mismatch"):
            WriteAheadLog(tmp_path / "wal")

    def test_missing_middle_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", segment_bytes=1024) as wal:
            for i in range(12):
                wal.append_ingest(_points(20, seed=i))
            assert wal.stats()["segments"] >= 3
        segments = sorted((tmp_path / "wal").glob("wal-*.seg"))
        segments[1].unlink()
        with pytest.raises(WalCorruptionError, match="sequence gap"):
            WriteAheadLog(tmp_path / "wal", segment_bytes=1024)

    def test_truncated_non_final_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal", segment_bytes=1024) as wal:
            for i in range(12):
                wal.append_ingest(_points(20, seed=i))
            assert wal.stats()["segments"] >= 2
        segments = sorted((tmp_path / "wal").glob("wal-*.seg"))
        with open(segments[0], "r+b") as handle:
            handle.truncate(segments[0].stat().st_size - 3)
        with pytest.raises(WalCorruptionError, match="non-final segment"):
            WriteAheadLog(tmp_path / "wal", segment_bytes=1024)

    def test_bad_magic_raises(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append_ingest(_points(2))
        segment = next((tmp_path / "wal").glob("wal-*.seg"))
        data = segment.read_bytes()
        segment.write_bytes(b"NOTAWAL!" + data[8:])
        with pytest.raises(WalCorruptionError, match="magic"):
            WriteAheadLog(tmp_path / "wal")
