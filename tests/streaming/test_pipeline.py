"""Unit tests for the streaming pipeline's wiring and accounting."""

import json

import numpy as np
import pytest

from repro import Label, TKDCClassifier
from repro.serve.reload import prepare_classifier
from repro.streaming import LocalReloader, StreamingPipeline, StreamSettings

from .conftest import FAST_SETTINGS


class TestSettings:
    @pytest.mark.parametrize("bad", [
        dict(drift_delta=0.0), dict(drift_delta=1.0),
        dict(monitor_window=4), dict(hysteresis=0),
        dict(check_interval=0.0), dict(min_refit_interval=-1.0),
        dict(refit_deadline=0.0), dict(refit_retries=-1),
        dict(refit_backoff=-0.1), dict(refit_sample_cap=1),
        dict(sketch_capacity=1), dict(canary_queries=0),
        dict(swap_grace=0.0),
    ])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            StreamSettings(**{**FAST_SETTINGS, **bad})

    def test_staleness_bound_formula(self):
        settings = StreamSettings(
            hysteresis=2, check_interval=0.5, refit_deadline=10.0,
            refit_retries=2, refit_backoff=0.1, swap_grace=1.0,
        )
        # detection 3*0.5 + refit 3*10 + backoffs (0.1 + 0.2) + swap 1.0
        assert settings.staleness_bound == pytest.approx(32.8)


class TestIngestAndServe:
    def test_ingest_updates_every_ledger(self, pipeline_factory):
        pipeline = pipeline_factory()
        rng = np.random.default_rng(1)
        assert pipeline.ingest(rng.normal(size=(40, 2)) * 0.5) == 40
        assert pipeline.ingest(np.empty((0, 2))) == 0
        assert pipeline.ingested_total == 40
        assert pipeline.model.n_total == pipeline.initial_n + 40
        assert pipeline.model.n_buffered == 40
        accounting = pipeline.verify_accounting()
        assert accounting["ok"], accounting
        assert accounting["sketch_ingested"] == 40

    def test_ingest_rejects_wrong_dimension(self, pipeline_factory):
        pipeline = pipeline_factory()
        with pytest.raises(ValueError, match="dimensionality"):
            pipeline.ingest(np.zeros((3, 5)))
        assert pipeline.ingested_total == 0

    def test_ingested_points_affect_answers(self, pipeline_factory):
        pipeline = pipeline_factory()
        spot = np.array([[6.0, 6.0]])
        assert pipeline.classify(spot)[0] is Label.LOW
        rng = np.random.default_rng(2)
        pipeline.ingest(spot + rng.normal(scale=0.05, size=(300, 2)))
        assert pipeline.classify(spot)[0] is Label.HIGH
        assert pipeline.predict(spot)[0] == 1

    def test_serving_view_is_consistent_snapshot(self, pipeline_factory):
        """The daemon classifies through a lock-free snapshot: later
        ingests must not leak into a captured view, and the buffer rows
        must be a copy (an in-place adopt slide cannot corrupt them)."""
        pipeline = pipeline_factory()
        rng = np.random.default_rng(4)
        pipeline.ingest(rng.normal(size=(10, 2)) * 0.5)
        view = pipeline.serving_view()
        assert view.n_buffered == 10
        assert view._buffer_array is not pipeline.model._buffer_array
        pipeline.ingest(rng.normal(size=(25, 2)) * 0.5)
        assert view.n_buffered == 10
        assert pipeline.model.n_buffered == 35
        labels = view.classify(rng.normal(size=(5, 2)) * 0.5)
        assert labels.dtype == object

    def test_auto_refit_is_disabled(self, pipeline_factory):
        pipeline = pipeline_factory()
        assert pipeline.model.auto_refit is False
        rng = np.random.default_rng(3)
        pipeline.ingest(rng.normal(size=(500, 2)) * 0.5)  # > refit_fraction
        assert pipeline.model.refits == 0


class TestDriftChecks:
    def test_window_filling_before_enough_points(self, pipeline_factory):
        pipeline = pipeline_factory()
        decision = pipeline.check_drift_once()
        assert not decision.checked
        assert decision.reason == "window_filling"

    def test_stable_on_iid_stream(self, pipeline_factory, base_data):
        pipeline = pipeline_factory()
        rng = np.random.default_rng(4)
        pipeline.ingest(rng.normal(size=(64, 2)) * 0.5)
        decision = pipeline.check_drift_once()
        assert decision.checked and not decision.drifted
        assert pipeline.refits_triggered == 0
        assert pipeline.staleness_seconds() == 0.0

    def test_drift_fires_and_swaps(self, pipeline_factory):
        pipeline = pipeline_factory()
        rng = np.random.default_rng(5)
        shifted = rng.normal(size=(200, 2)) * 0.5 + np.array([5.0, 5.0])
        pipeline.ingest(shifted)
        fired = False
        for __ in range(4):
            decision = pipeline.check_drift_once()
            assert decision.drifted
            fired = fired or decision.fired
            if fired:
                break
        assert fired
        assert pipeline.swaps == 1
        assert pipeline.model.generation == 1
        # Swap resolved the drift: staleness is back to zero.
        assert pipeline.staleness_seconds() == 0.0
        accounting = pipeline.verify_accounting()
        assert accounting["ok"], accounting

    def test_swap_preserves_population_accounting(self, pipeline_factory):
        pipeline = pipeline_factory()
        rng = np.random.default_rng(6)
        pipeline.ingest(rng.normal(size=(150, 2)) * 0.5)
        pipeline.refit_and_swap()
        assert pipeline.model.n_total == pipeline.initial_n + 150
        pipeline.ingest(rng.normal(size=(25, 2)) * 0.5)
        assert pipeline.model.n_total == pipeline.initial_n + 175
        accounting = pipeline.verify_accounting()
        assert accounting["ok"], accounting


class TestLifecycle:
    def test_background_loop_starts_and_stops(self, pipeline_factory):
        pipeline = pipeline_factory()
        pipeline.start()
        pipeline.start()  # idempotent
        thread = pipeline._thread
        assert thread is not None and thread.is_alive()
        pipeline.stop(join=True)
        assert not thread.is_alive()
        assert pipeline.monitor_errors == 0

    def test_status_is_json_ready(self, pipeline_factory):
        pipeline = pipeline_factory()
        rng = np.random.default_rng(7)
        pipeline.ingest(rng.normal(size=(64, 2)) * 0.5)
        pipeline.check_drift_once()
        status = json.loads(json.dumps(pipeline.status()))
        for key in ("generation", "n_total", "threshold", "ingested_total",
                    "staleness_seconds", "staleness_bound_seconds",
                    "sketch", "accounting", "last_decision"):
            assert key in status
        assert status["accounting"]["ok"]
        assert status["window_fill"] == 64


class TestFromClassifier:
    def test_wraps_a_loaded_model(self, stream_config, base_data, tmp_path):
        classifier = TKDCClassifier(stream_config).fit(base_data)
        classifier = prepare_classifier(classifier)
        pipeline = StreamingPipeline.from_classifier(
            classifier,
            settings=StreamSettings(**FAST_SETTINGS),
            artifact_dir=tmp_path,
        )
        assert pipeline.initial_n == base_data.shape[0]
        assert pipeline.sketch.n_seen == 0  # raw data unavailable
        rng = np.random.default_rng(8)
        pipeline.ingest(rng.normal(size=(30, 2)) * 0.5)
        assert pipeline.model.n_total == base_data.shape[0] + 30
        assert pipeline.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH
        accounting = pipeline.verify_accounting()
        assert accounting["ok"], accounting


class TestLocalReloader:
    def test_missing_artifact_fails_at_load(self, tmp_path):
        result = LocalReloader().reload(tmp_path / "nope.tkdc")
        assert not result.ok and result.stage == "load"
        assert LocalReloader().classifier is None

    def test_good_artifact_swaps(self, stream_config, base_data, tmp_path):
        from repro.io.models import save_model

        classifier = TKDCClassifier(stream_config).fit(base_data)
        path = save_model(tmp_path / "model", classifier)
        reloader = LocalReloader(canary_queries=8)
        result = reloader.reload(path)
        assert result.ok and result.stage == "swapped"
        assert reloader.classifier is not None
        assert result.threshold == pytest.approx(classifier.threshold.value)


class TestAdaptiveWindow:
    def _pipeline(self, pipeline_factory, adaptive=True):
        fake = [100.0]
        pipeline = pipeline_factory(
            settings_overrides={
                "adaptive_window": adaptive, "monitor_window_min": 8,
            },
            clock=lambda: fake[0],
        )
        return pipeline, fake

    def test_window_tracks_ingest_cadence(self, pipeline_factory):
        pipeline, fake = self._pipeline(pipeline_factory)
        rng = np.random.default_rng(31)
        # No cadence yet: the full configured window applies.
        pipeline.check_drift_once()
        assert pipeline.status()["monitor_window_effective"] == 64
        # A slow trickle (10 points/gap) shrinks the effective window to
        # the fresh points actually arriving, so the next check does not
        # re-test 54 stale rows.
        pipeline.ingest(rng.normal(size=(10, 2)) * 0.5)
        fake[0] += 1.0
        decision = pipeline.check_drift_once()
        status = pipeline.status()
        assert status["monitor_window_effective"] == 10
        assert status["check_gap_ewma_seconds"] == pytest.approx(1.0)
        assert decision.checked and decision.window == 10
        # A burst pulls the EWMA (and the window) back up, clamped at
        # the configured maximum.
        pipeline.ingest(rng.normal(size=(500, 2)) * 0.5)
        fake[0] += 1.0
        pipeline.check_drift_once()
        assert pipeline.status()["monitor_window_effective"] == 64

    def test_floor_clamps_tiny_cadence(self, pipeline_factory):
        pipeline, fake = self._pipeline(pipeline_factory)
        rng = np.random.default_rng(32)
        pipeline.check_drift_once()
        pipeline.ingest(rng.normal(size=(2, 2)) * 0.5)
        fake[0] += 1.0
        pipeline.check_drift_once()
        assert pipeline.status()["monitor_window_effective"] == 8

    def test_fixed_window_by_default(self, pipeline_factory):
        pipeline, fake = self._pipeline(pipeline_factory, adaptive=False)
        rng = np.random.default_rng(33)
        pipeline.check_drift_once()
        pipeline.ingest(rng.normal(size=(10, 2)) * 0.5)
        fake[0] += 1.0
        pipeline.check_drift_once()
        assert pipeline.status()["monitor_window_effective"] == 64

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            StreamSettings(**{**FAST_SETTINGS, "monitor_window_min": 4})
        with pytest.raises(ValueError):
            StreamSettings(**{**FAST_SETTINGS, "monitor_window_min": 128})
        with pytest.raises(ValueError):
            StreamSettings(**{**FAST_SETTINGS, "fsync_policy": "maybe"})
        with pytest.raises(ValueError):
            StreamSettings(**{**FAST_SETTINGS, "wal_compact_bytes": 1024,
                              "wal_segment_bytes": 4096})
