"""Soak: injected drift + refit crash + corrupted artifact, live serving.

The tentpole scenario from the issue. A :class:`DriftPlan` scripts the
whole run:

- the stream's distribution shifts mid-stream (a new mode appears far
  from the training data);
- refit generation 1 produces a **corrupted artifact** — the verified
  reload path must refuse it and roll back, with the old model serving
  on;
- refit generation 2's first attempt **crashes its subprocess** — the
  supervised retry clears the transient fault and the verified swap
  lands.

Throughout, a concurrent client thread classifies nonstop; the pipeline
must drop zero requests, converge to the post-drift threshold within the
declared staleness bound, and keep its conservation accounting exact.
"""

import threading
import time

import numpy as np
import pytest

from repro import Label
from repro.robustness.faults import DriftPlan

#: Stream script: 200 in-distribution points, then the shifted regime.
SHIFT_AFTER = 200
NEW_MODE = np.array([5.0, 5.0])
STREAM_LEN = 640
BATCH = 40

PLAN = DriftPlan(
    shift_after=SHIFT_AFTER,
    mean_shift=tuple(NEW_MODE),
    corrupt_artifacts=(1,),   # generation 1: artifact refused -> rollback
    refit_crash=(2,),         # generation 2: transient crash -> retry wins
    fail_attempts=1,
)

SOAK_SETTINGS = dict(
    check_interval=0.05,
    min_refit_interval=0.2,
    hysteresis=2,
)


class ClassifyClient(threading.Thread):
    """Hammers classify() until stopped; any exception is a drop."""

    def __init__(self, pipeline) -> None:
        super().__init__(daemon=True)
        self.pipeline = pipeline
        self.stop_event = threading.Event()
        self.requests = 0
        self.errors: list[BaseException] = []
        rng = np.random.default_rng(99)
        self.queries = np.concatenate([
            rng.normal(size=(4, 2)) * 0.5,
            rng.normal(size=(4, 2)) * 0.5 + NEW_MODE,
        ])

    def run(self) -> None:
        while not self.stop_event.is_set():
            try:
                labels = self.pipeline.classify(self.queries)
                assert labels.shape == (8,)
                self.requests += 1
            except BaseException as exc:  # noqa: BLE001 - the assertion
                self.errors.append(exc)
                return


def test_drift_soak_with_faults(pipeline_factory):
    pipeline = pipeline_factory(settings_overrides=SOAK_SETTINGS, plan=PLAN)
    bound = pipeline.settings.staleness_bound

    probe_new_mode = NEW_MODE[None, :]
    assert pipeline.classify(probe_new_mode)[0] is Label.LOW

    client = ClassifyClient(pipeline)
    client.start()
    pipeline.start()
    max_staleness = 0.0
    try:
        rng = np.random.default_rng(1234)
        for position in range(0, STREAM_LEN, BATCH):
            batch = rng.normal(size=(BATCH, 2)) * 0.5
            pipeline.ingest(PLAN.apply_shift(batch, position))
            max_staleness = max(max_staleness, pipeline.staleness_seconds())
            time.sleep(0.02)

        # The scripted run: rollback (gen 1) then a successful swap
        # (gen 2, after its transient crash). Wait out the declared
        # staleness bound at most.
        deadline = time.monotonic() + bound
        while time.monotonic() < deadline:
            max_staleness = max(max_staleness, pipeline.staleness_seconds())
            if pipeline.swaps >= 1:
                break
            time.sleep(0.05)
    finally:
        pipeline.stop(join=True)
        client.stop_event.set()
        client.join(timeout=10.0)

    # --- zero dropped requests, nonstop service -----------------------
    assert client.errors == []
    assert client.requests > 0

    # --- the scripted failures actually happened, and were survived ---
    assert pipeline.rollbacks >= 1, "corrupted artifact was never refused"
    assert pipeline.swaps >= 1, "no refit ever swapped in"
    swap_outcome = pipeline._last_refit
    assert swap_outcome is not None and swap_outcome.ok
    assert swap_outcome.crashes >= 1, "the transient crash never fired"
    assert swap_outcome.retries >= 1
    assert pipeline.monitor_errors == 0

    # --- served labels track the post-drift threshold -----------------
    assert pipeline.classify(probe_new_mode)[0] is Label.HIGH
    assert pipeline.classify(np.array([[12.0, 12.0]]))[0] is Label.LOW
    assert pipeline.model.generation >= 1

    # --- staleness never exceeded the declared bound. (It need not be
    # exactly zero at the end: once the stream is pure new-regime, a
    # post-swap check may legitimately re-detect drift of the
    # mixture-trained threshold and start the next refit cycle.)
    assert max_staleness <= bound
    assert pipeline.staleness_seconds() <= bound

    # --- conservation accounting survived every fault -----------------
    accounting = pipeline.verify_accounting()
    assert accounting["ok"], accounting
    assert accounting["ingested_total"] == STREAM_LEN
    assert accounting["model_total"] == pipeline.initial_n + STREAM_LEN
    status = pipeline.status()
    assert status["accounting"]["ok"]
    assert status["last_swap"]["ok"]


def test_soak_artifacts_on_disk(pipeline_factory, tmp_path):
    """Every refit generation leaves its artifact where status says."""
    pipeline = pipeline_factory(plan=PLAN)
    rng = np.random.default_rng(77)
    pipeline.ingest(rng.normal(size=(128, 2)) * 0.5 + NEW_MODE)
    first = pipeline.refit_and_swap()   # gen 1: corrupted -> rollback
    second = pipeline.refit_and_swap()  # gen 2: crash, retry -> swap
    assert first.ok and pipeline.rollbacks == 1
    assert second.ok and pipeline.swaps == 1
    artifacts = sorted(p.name for p in pipeline.artifact_dir.iterdir())
    assert artifacts == ["model-gen-0001.tkdc", "model-gen-0002.tkdc"]


# ---------------------------------------------------------------------------
# Crash-recovery soak: SIGKILL mid-ingest, zero acknowledged-point loss
# ---------------------------------------------------------------------------

CHILD_SCRIPT = r"""
import sys
from pathlib import Path

import numpy as np

from repro.io.models import load_model
from repro.serve.reload import prepare_classifier
from repro.streaming import StreamingPipeline, StreamSettings

model_path, wal_dir = sys.argv[1], sys.argv[2]
settings = StreamSettings(
    fsync_policy="always", check_interval=0.05, min_refit_interval=0.0,
)
classifier = prepare_classifier(load_model(model_path))
if any(Path(wal_dir).glob("wal-*.seg")):
    pipeline = StreamingPipeline.recover(
        wal_dir, settings=settings, fallback_classifier=classifier,
    )
else:
    pipeline = StreamingPipeline.from_classifier(
        classifier, settings=settings, wal_dir=wal_dir,
    )
seq = pipeline._ingest_watermarks.get("soak", 0)
print(f"READY n_total={pipeline.model.n_total} seq={seq}", flush=True)
rng = np.random.default_rng(1000 + seq)
while True:
    seq += 1
    batch = rng.normal(size=(16, 2)) * 0.5
    out = pipeline.ingest_batch(batch, source="soak", source_seq=seq)
    # The ACK is printed only after ingest_batch returns — i.e. after
    # the WAL fsync under fsync_policy="always". Printing IS the
    # client-visible acknowledgement the parent holds us to.
    print(f"ACK {seq} {out['accepted']}", flush=True)
"""

KILL_AFTER_ACKS = (3, 7, 2)  # three phases, killed at different depths
SOAK_BATCH_ROWS = 16


def _run_child_until_kill(script_path, model_path, wal_dir, ack_target):
    """Start one ingest child, SIGKILL it after ``ack_target`` ACKs.

    Returns the list of acknowledged sequence numbers. The kill lands
    immediately after the Nth ACK line, i.e. while the next append is
    very likely mid-flight — the torn-tail case recovery must absorb.
    """
    import os
    import signal
    import subprocess
    import sys
    from pathlib import Path

    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [
        str(Path(repro.__file__).resolve().parents[1]),
        env.get("PYTHONPATH", ""),
    ]))
    process = subprocess.Popen(
        [sys.executable, str(script_path), str(model_path), str(wal_dir)],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    acked = []
    try:
        ready = process.stdout.readline().strip()
        assert ready.startswith("READY"), f"child not ready: {ready!r}"
        while len(acked) < ack_target:
            line = process.stdout.readline().strip()
            assert line.startswith("ACK"), f"unexpected child line: {line!r}"
            __, seq, rows = line.split()
            assert int(rows) == SOAK_BATCH_ROWS
            acked.append(int(seq))
        os.kill(process.pid, signal.SIGKILL)
    finally:
        if process.poll() is None:
            process.kill()
        process.wait()
        process.stdout.close()
    return acked


def test_kill9_soak_zero_acknowledged_loss(stream_config, base_data, tmp_path):
    """SIGKILL an ingesting process at arbitrary points; every point it
    acknowledged must survive recovery, across repeated takeovers."""
    from repro import TKDCClassifier
    from repro.io.models import load_model, save_model
    from repro.serve.reload import prepare_classifier
    from repro.streaming import StreamingPipeline, StreamSettings

    classifier = TKDCClassifier(stream_config).fit(base_data)
    model_path = save_model(tmp_path / "soak-model.tkdc", classifier)
    script_path = tmp_path / "ingest_child.py"
    script_path.write_text(CHILD_SCRIPT)
    wal_dir = tmp_path / "wal"

    all_acked: list[int] = []
    phases: list[list[int]] = []
    for ack_target in KILL_AFTER_ACKS:
        acked = _run_child_until_kill(
            script_path, model_path, wal_dir, ack_target
        )
        phases.append(acked)
        all_acked.extend(acked)
    # Within a phase the ACK stream is gapless; across a kill the
    # successor may resume ONE past the last ACK — a batch that became
    # durable between its fsync and its ACK print. It must never repeat
    # a sequence (double-ingest) and never skip more than that one.
    for acked in phases:
        assert acked == list(range(acked[0], acked[0] + len(acked)))
    for previous, current in zip(phases, phases[1:]):
        assert current[0] - previous[-1] in (1, 2)

    # Final takeover happens in-process so we can inspect everything.
    recovered = StreamingPipeline.recover(
        wal_dir,
        settings=StreamSettings(fsync_policy="always"),
        fallback_classifier=prepare_classifier(load_model(model_path)),
    )
    try:
        acked_points = SOAK_BATCH_ROWS * len(all_acked)
        # ZERO acknowledged-point loss: everything acked is in n_total.
        assert recovered.ingested_total >= acked_points
        # At most one un-acked batch per kill can have reached the WAL
        # (appended + fsynced, killed before the ACK printed). Those are
        # durable-but-unacknowledged: replaying them is correct, losing
        # acked ones is not.
        assert recovered.ingested_total <= acked_points + (
            SOAK_BATCH_ROWS * len(KILL_AFTER_ACKS)
        )
        assert recovered._ingest_watermarks["soak"] >= max(all_acked)
        assert recovered.model.n_total == (
            recovered.initial_n + recovered.ingested_total
        )
        accounting = recovered.verify_accounting()
        assert accounting["ok"], accounting
        # Serving works immediately on the recovered state.
        labels = recovered.classify(np.zeros((1, 2)))
        assert labels.shape == (1,)
    finally:
        recovered.stop(join=True)
