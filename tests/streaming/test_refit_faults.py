"""Crash isolation: a failed refit never touches the serving model.

The satellite property: whatever fault a refit enacts — subprocess
crash, raised poison, corrupted artifact — and at whatever point it
fires, the serving classifier is bit-identical before and after the
attempt (compared as pickle bytes) and the failure is fully accounted.
"""

import pickle

import numpy as np
import pytest

from repro.io.models import load_model
from repro.robustness.faults import DriftPlan
from repro.robustness.supervisor import SupervisionPolicy
from repro.streaming.refit import run_refit

POLICY = SupervisionPolicy(timeout=60.0, max_retries=1, backoff=0.01)


@pytest.fixture
def snapshot():
    return np.random.default_rng(5).normal(size=(400, 2))


class TestRunRefit:
    def test_success_produces_loadable_artifact(
        self, snapshot, stream_config, tmp_path
    ):
        outcome = run_refit(
            snapshot, stream_config, tmp_path / "m.tkdc", generation=1,
            policy=POLICY,
        )
        assert outcome.ok
        assert outcome.crashes == 0 and outcome.retries == 0
        loaded = load_model(outcome.model_path)
        assert loaded.threshold.value == pytest.approx(outcome.threshold)

    def test_tiny_snapshot_refused(self, stream_config, tmp_path):
        outcome = run_refit(
            np.zeros((1, 2)), stream_config, tmp_path / "m.tkdc", generation=1,
            policy=POLICY,
        )
        assert not outcome.ok
        assert "too small" in outcome.error

    def test_transient_crash_clears_on_retry(
        self, snapshot, stream_config, tmp_path
    ):
        plan = DriftPlan(refit_crash=(1,), fail_attempts=1)
        outcome = run_refit(
            snapshot, stream_config, tmp_path / "m.tkdc", generation=1,
            policy=POLICY, plan=plan,
        )
        assert outcome.ok
        assert outcome.crashes >= 1 and outcome.retries >= 1
        assert load_model(outcome.model_path) is not None

    def test_transient_raise_clears_on_retry(
        self, snapshot, stream_config, tmp_path
    ):
        plan = DriftPlan(refit_raise=(1,), fail_attempts=1)
        outcome = run_refit(
            snapshot, stream_config, tmp_path / "m.tkdc", generation=1,
            policy=POLICY, plan=plan,
        )
        assert outcome.ok
        assert outcome.errors >= 1

    @pytest.mark.parametrize("fault", ["refit_crash", "refit_raise"])
    def test_permanent_fault_refused_in_process(
        self, fault, snapshot, stream_config, tmp_path
    ):
        """The serial fallback must refuse permanently-faulted work: an
        os._exit enacted in-process would kill the serving process."""
        plan = DriftPlan(**{fault: (1,)}, fail_attempts=10**6)
        outcome = run_refit(
            snapshot, stream_config, tmp_path / "m.tkdc", generation=1,
            policy=POLICY, plan=plan,
        )
        assert not outcome.ok
        assert outcome.serial_refusals == 1
        assert "refused" in outcome.error
        assert not (tmp_path / "m.tkdc").exists()

    def test_unplanned_generation_unaffected(
        self, snapshot, stream_config, tmp_path
    ):
        plan = DriftPlan(refit_crash=(3,), fail_attempts=10**6)
        outcome = run_refit(
            snapshot, stream_config, tmp_path / "m.tkdc", generation=1,
            policy=POLICY, plan=plan,
        )
        assert outcome.ok


def served_bytes(pipeline) -> bytes:
    return pickle.dumps(pipeline.model.classifier)


class TestServingModelIsolation:
    """The property, end to end through the pipeline."""

    @pytest.mark.parametrize("fault_kwargs", [
        dict(refit_crash=(1,), fail_attempts=10**6),
        dict(refit_raise=(1,), fail_attempts=10**6),
        dict(corrupt_artifacts=(1,)),
    ], ids=["crash", "raise", "corrupt-artifact"])
    def test_failed_refit_leaves_model_bit_identical(
        self, fault_kwargs, pipeline_factory
    ):
        pipeline = pipeline_factory(plan=DriftPlan(**fault_kwargs))
        rng = np.random.default_rng(11)
        pipeline.ingest(rng.normal(size=(64, 2)) * 0.5)
        before = served_bytes(pipeline)
        generation_before = pipeline.model.generation

        outcome = pipeline.refit_and_swap()

        assert served_bytes(pipeline) == before
        assert pipeline.model.generation == generation_before
        assert pipeline.swaps == 0
        accounting = pipeline.verify_accounting()
        assert accounting["ok"], accounting
        if "corrupt_artifacts" in fault_kwargs:
            # The refit produced an artifact; the verified reload path
            # refused it at the integrity check and rolled back.
            assert outcome.ok
            assert pipeline.rollbacks == 1
            assert pipeline._last_swap is not None
            assert not pipeline._last_swap.ok
            assert pipeline._last_swap.stage == "load"
        else:
            assert not outcome.ok
            assert pipeline.refits_failed == 1

    def test_successful_refit_swaps(self, pipeline_factory):
        pipeline = pipeline_factory()
        before = served_bytes(pipeline)
        outcome = pipeline.refit_and_swap()
        assert outcome.ok
        assert pipeline.swaps == 1
        assert served_bytes(pipeline) != before
        assert pipeline.model.generation == 1
        accounting = pipeline.verify_accounting()
        assert accounting["ok"], accounting
