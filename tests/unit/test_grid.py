"""Unit tests for the hypergrid inlier cache."""

import numpy as np
import pytest

from repro.core.grid import GridCache
from repro.kernels.gaussian import GaussianKernel
from tests.conftest import exact_density


@pytest.fixture
def grid(small_gauss, unit_kernel_2d):
    return GridCache(small_gauss, unit_kernel_2d)


class TestConstruction:
    def test_rejects_bad_cell_width(self, small_gauss, unit_kernel_2d):
        with pytest.raises(ValueError, match="positive"):
            GridCache(small_gauss, unit_kernel_2d, cell_width=0.0)

    def test_cell_count_totals(self, grid, small_gauss):
        total = sum(grid._counts.values())
        assert total == small_gauss.shape[0]

    def test_n_cells_positive(self, grid):
        assert grid.n_cells > 0


class TestCellCount:
    def test_every_training_point_counts_itself(self, grid, small_gauss):
        for point in small_gauss[:50]:
            assert grid.cell_count(point) >= 1

    def test_empty_cell(self, grid):
        assert grid.cell_count(np.array([100.0, 100.0])) == 0

    def test_count_matches_brute_force(self, grid, small_gauss, rng):
        for __ in range(10):
            q = rng.normal(size=2)
            cell = np.floor(q)
            inside = np.all(np.floor(small_gauss) == cell, axis=1)
            assert grid.cell_count(q) == int(np.count_nonzero(inside))


class TestDensityLowerBound:
    def test_is_a_true_lower_bound(self, grid, small_gauss, unit_kernel_2d, rng):
        for __ in range(20):
            q = rng.normal(size=2)
            bound = grid.density_lower_bound(q)
            truth = exact_density(small_gauss, unit_kernel_2d, q)
            assert bound <= truth + 1e-12

    def test_zero_for_empty_cell(self, grid):
        assert grid.density_lower_bound(np.array([100.0, 100.0])) == 0.0


class TestIsCertainInlier:
    def test_dense_center_is_inlier_for_tiny_threshold(self, grid):
        # The center of a 400-point standard normal has plenty of
        # same-cell neighbours; a tiny threshold must be cleared.
        assert grid.is_certain_inlier(np.zeros(2), t_upper=1e-6, epsilon=0.01)

    def test_empty_region_is_never_inlier(self, grid):
        assert not grid.is_certain_inlier(np.array([50.0, 50.0]), 1e-12, 0.01)

    def test_inlier_classification_is_sound(self, grid, small_gauss, unit_kernel_2d, rng):
        """Grid-certified inliers must actually have density above t."""
        t = 0.001
        for __ in range(50):
            q = rng.normal(size=2)
            if grid.is_certain_inlier(q, t, 0.01):
                assert exact_density(small_gauss, unit_kernel_2d, q) > t


class TestCellWidth:
    def test_wider_cells_weaker_bound(self, small_gauss, unit_kernel_2d):
        fine = GridCache(small_gauss, unit_kernel_2d, cell_width=0.5)
        coarse = GridCache(small_gauss, unit_kernel_2d, cell_width=4.0)
        # A wider cell catches more points but at a much smaller minimum
        # kernel value; both must remain valid lower bounds.
        q = np.zeros(2)
        assert fine.density_lower_bound(q) >= 0
        assert coarse.density_lower_bound(q) >= 0
        assert fine.n_cells >= coarse.n_cells

    def test_cell_width_property(self, small_gauss, unit_kernel_2d):
        grid = GridCache(small_gauss, unit_kernel_2d, cell_width=2.0)
        assert grid.cell_width == 2.0
