"""Unit tests for level-set extraction and rendering."""

import numpy as np
import pytest

from repro.analysis.contours import (
    classification_mask,
    density_grid,
    marching_squares,
    render_ascii,
)


class TestDensityGrid:
    def test_shape_and_values(self):
        xs, ys, values = density_grid(
            lambda pts: pts[:, 0] + pts[:, 1], (0.0, 1.0), (0.0, 2.0), nx=5, ny=9
        )
        assert xs.shape == (5,)
        assert ys.shape == (9,)
        assert values.shape == (5, 9)
        assert values[0, 0] == pytest.approx(0.0)
        assert values[-1, -1] == pytest.approx(3.0)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="2x2"):
            density_grid(lambda pts: pts[:, 0], (0, 1), (0, 1), nx=1, ny=5)


class TestClassificationMask:
    def test_mask_matches_rule(self):
        def classify(points):
            return (points[:, 0] > 0.5).astype(int)

        __, __, mask = classification_mask(classify, (0.0, 1.0), (0.0, 1.0), 11, 3)
        assert mask.shape == (11, 3)
        assert not mask[0].any()
        assert mask[-1].all()


class TestMarchingSquares:
    def test_circle_iso_line(self):
        xs = np.linspace(-2, 2, 41)
        ys = np.linspace(-2, 2, 41)
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        values = -(gx**2 + gy**2)  # level set -1 is the unit circle
        segments = marching_squares(xs, ys, values, level=-1.0)
        assert segments
        for (x0, y0), (x1, y1) in segments:
            for x, y in ((x0, y0), (x1, y1)):
                assert np.hypot(x, y) == pytest.approx(1.0, abs=0.06)

    def test_no_crossing_no_segments(self):
        xs = ys = np.linspace(0, 1, 5)
        values = np.ones((5, 5))
        assert marching_squares(xs, ys, values, level=0.0) == []
        assert marching_squares(xs, ys, values, level=2.0) == []

    def test_vertical_boundary(self):
        xs = np.linspace(0, 1, 11)
        ys = np.linspace(0, 1, 11)
        gx, __ = np.meshgrid(xs, ys, indexing="ij")
        segments = marching_squares(xs, ys, gx, level=0.5)
        for (x0, __), (x1, __) in segments:
            assert x0 == pytest.approx(0.5, abs=0.05)
            assert x1 == pytest.approx(0.5, abs=0.05)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            marching_squares(np.arange(3), np.arange(4), np.zeros((3, 3)), 0.0)

    def test_saddle_produces_two_segments(self):
        xs = ys = np.array([0.0, 1.0])
        values = np.array([[1.0, -1.0], [-1.0, 1.0]])  # corners alternate
        segments = marching_squares(xs, ys, values, level=0.0)
        assert len(segments) == 2


class TestRenderAscii:
    def test_characters(self):
        mask = np.array([[True, False], [False, True]])
        art = render_ascii(mask)
        lines = art.splitlines()
        assert len(lines) == 2
        # y axis points up: top line is j=1 -> (mask[0,1], mask[1,1]).
        assert lines[0] == ".#"
        assert lines[1] == "#."

    def test_custom_chars(self):
        mask = np.array([[True]])
        assert render_ascii(mask, high_char="X", low_char=" ") == "X"
