"""CLI tests for the observability commands: explain and metrics-dump."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A fitted model on disk plus train/query CSVs, shared module-wide."""
    root = tmp_path_factory.mktemp("cli_obs")
    rng = np.random.default_rng(3)
    train_csv = root / "train.csv"
    np.savetxt(train_csv, rng.normal(size=(600, 2)), delimiter=",")
    queries_csv = root / "queries.csv"
    queries = np.concatenate([
        rng.normal(size=(15, 2)),
        rng.uniform(4.0, 6.0, size=(5, 2)),  # clear outliers
    ])
    np.savetxt(queries_csv, queries, delimiter=",")
    model = root / "model.tkdc"
    assert main(["fit", str(train_csv), "--model", str(model),
                 "--p", "0.05", "--seed", "3"]) == 0
    return model, queries_csv, queries.shape[0]


class TestExplain:
    def test_renders_rules_and_band(self, workload, capsys):
        model, queries_csv, __ = workload
        assert main(["explain", str(queries_csv), "--model", str(model),
                     "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert "threshold band:" in out
        assert "stopped by:" in out
        assert "query #0" in out
        assert "query #19" in out  # --limit 0 renders every query

    def test_limit_elides_tail(self, workload, capsys):
        model, queries_csv, n_queries = workload
        assert main(["explain", str(queries_csv), "--model", str(model),
                     "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "query #0" in out
        assert "query #2" not in out
        assert f"{n_queries - 2} more trace(s)" in out

    @pytest.mark.parametrize("engine", ["batch", "per-query"])
    def test_engine_flag(self, workload, capsys, engine):
        model, queries_csv, __ = workload
        assert main(["explain", str(queries_csv), "--model", str(model),
                     "--engine", engine, "--limit", "1"]) == 0
        assert f"[{engine}]" in capsys.readouterr().out

    def test_jsonl_writes_one_trace_per_query(self, workload, tmp_path, capsys):
        model, queries_csv, n_queries = workload
        out_path = tmp_path / "traces.jsonl"
        assert main(["explain", str(queries_csv), "--model", str(model),
                     "--jsonl", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert f"wrote {n_queries} traces to {out_path}" in captured.err
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == n_queries
        records = [json.loads(line) for line in lines]
        assert sorted(r["query_index"] for r in records) == list(range(n_queries))
        assert all(r["rule"] for r in records)

    def test_missing_model_flag_exits_2(self, workload):
        __, queries_csv, __ = workload
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", str(queries_csv)])
        assert excinfo.value.code == 2


class TestMetricsDump:
    def test_bare_dump_prints_registered_families(self, capsys):
        assert main(["metrics-dump"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE tkdc_queries_total counter" in out

    def test_dump_after_workload_carries_counts(self, workload, capsys):
        from repro.obs.registry import REGISTRY

        model, queries_csv, n_queries = workload
        REGISTRY.reset()
        assert main(["metrics-dump", "--model", str(model),
                     "--queries", str(queries_csv)]) == 0
        out = capsys.readouterr().out
        totals = [
            float(line.rpartition(" ")[2])
            for line in out.splitlines()
            if line.startswith("tkdc_queries_total{")
        ]
        assert sum(totals) == n_queries

    def test_model_without_queries_is_usage_error(self, workload, capsys):
        model, __, __ = workload
        assert main(["metrics-dump", "--model", str(model)]) == 2
        assert "go together" in capsys.readouterr().err

    def test_queries_without_model_is_usage_error(self, workload):
        __, queries_csv, __ = workload
        assert main(["metrics-dump", "--queries", str(queries_csv)]) == 2
