"""Unit tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.svg import bar_chart_svg, line_chart_svg, save_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart_svg({"tkdc": ([1, 2, 3], [10, 20, 30])}, title="t")
        root = parse(svg)
        assert root.tag.endswith("svg")

    def test_series_and_legend_present(self):
        svg = line_chart_svg({"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        polylines = root.findall(f"{ns}polyline")
        assert len(polylines) == 2
        texts = [t.text for t in root.findall(f"{ns}text")]
        assert "a" in texts and "b" in texts

    def test_log_axes(self):
        svg = line_chart_svg({"s": ([10, 100, 1000], [1, 10, 100])},
                             logx=True, logy=True)
        assert "100" in svg

    def test_markers_match_points(self):
        svg = line_chart_svg({"s": ([1, 2, 3, 4], [1, 2, 3, 4])})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f"{ns}circle")) == 4

    def test_escapes_labels(self):
        svg = line_chart_svg({"a<b": ([1], [1])}, title='x & "y"')
        parse(svg)  # would raise on bad escaping
        assert "a&lt;b" in svg

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart_svg({})
        with pytest.raises(ValueError):
            line_chart_svg({"s": ([], [])})

    def test_rejects_log_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            line_chart_svg({"s": ([0, 1], [1, 2])}, logx=True)

    def test_constant_series(self):
        parse(line_chart_svg({"s": ([1, 2], [5, 5])}))


class TestBarChart:
    def test_valid_xml_with_bars(self):
        svg = bar_chart_svg(["baseline", "+threshold"], [10.0, 5000.0], title="f12")
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f"{ns}rect")
        assert len(rects) == 3  # background + 2 bars

    def test_logscale_compression(self):
        linear = bar_chart_svg(["a", "b"], [1.0, 1000.0])
        logged = bar_chart_svg(["a", "b"], [1.0, 1000.0], logscale=True)

        def widths(svg):
            root = parse(svg)
            ns = "{http://www.w3.org/2000/svg}"
            return [float(r.get("width")) for r in root.findall(f"{ns}rect")][1:]

        lin_w, log_w = widths(linear), widths(logged)
        assert log_w[1] / log_w[0] < lin_w[1] / lin_w[0]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bar_chart_svg([], [])
        with pytest.raises(ValueError):
            bar_chart_svg(["a"], [-1.0])


class TestSaveSvg:
    def test_saves_with_suffix(self, tmp_path):
        svg = bar_chart_svg(["a"], [1.0])
        path = save_svg(tmp_path / "chart.png", svg)
        assert path.suffix == ".svg"
        assert path.read_text() == svg
