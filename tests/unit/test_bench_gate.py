"""The bench regression gate: passes on a faithful baseline, fails on a
doctored one.

The smoke measurements themselves are monkeypatched to canned rows —
these tests exercise the *comparison* logic (tolerances, hard label
check, missing-baseline handling, exit codes), not the benchmark
workloads, so they run in milliseconds.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import gate


def canned_smoke_rows(labels_match: bool = True) -> list[dict]:
    rows = []
    for engine, qps, kernels in (("per-query", 8000.0, 12.5), ("batch", 36000.0, 12.5)):
        rows.append({
            "section": "smoke",
            "dataset": "gauss", "n": gate.SMOKE_N, "dim": 2,
            "n_queries": gate.SMOKE_QUERIES, "engine": engine, "n_jobs": 1,
            "seconds": gate.SMOKE_QUERIES / qps,
            "queries_per_s": qps,
            "kernels_per_query": kernels,
            "labels_match_per_query": labels_match,
            "speedup_vs_per_query": qps / 8000.0,
        })
    return rows


def canned_coreset_row(agreement: float = 1.0) -> dict:
    return {
        "dataset": "gauss", "n": 5000, "n_queries": 200,
        "method": "uniform", "fraction": 0.05, "certified": True,
        "label_agreement": agreement, "agreement_outside_band": agreement,
    }


def canned_hbe_report(
    dims=(8, 32, 64),
    agreement: float = 1.0,
    speedup: float = 6.0,
    low_dim_speedup: float = 1.2,
) -> dict:
    """A committed BENCH_hbe.json shape: parity everywhere, wins at high d."""
    return {
        "benchmark": "hbe",
        "rows": [{
            "dataset": "gauss", "n": 50_000, "dim": dim,
            "n_queries": 500,
            "speedup_vs_batch": speedup if dim >= 32 else low_dim_speedup,
            "label_agreement": agreement,
            "agreement_outside_band": agreement,
        } for dim in dims],
    }


def canned_serving_report(
    cpu_count: int = 8,
    scaling_ratio: float = 3.1,
    balanced: bool = True,
    include_scaling: bool = True,
) -> dict:
    report: dict = {
        "benchmark": "serving",
        "accounting": {
            "submitted": 400,
            "terminal": 400 if balanced else 399,
            "balanced": balanced,
        },
    }
    if include_scaling:
        report["fleet_scaling"] = {
            "cpu_count": cpu_count,
            "max_workers": 4,
            "scaling_ratio": scaling_ratio,
            "points": [],
        }
    return report


def canned_robustness_report(
    converged: bool = True,
    accounting_ok: bool = True,
    detect_to_swap: float | None = 0.4,
    bound: float = 605.0,
    label_lag: int | None = 64,
    include_streaming: bool = True,
    include_durability: bool = True,
    acknowledged_loss: int = 0,
    recovery_seconds: float = 0.02,
    conservation_ok: bool = True,
) -> dict:
    report: dict = {"benchmark": "robustness", "rows": []}
    if include_streaming:
        report["rows"].append({
            "section": "streaming",
            "dataset": "gauss", "n_initial": 10_000,
            "label_lag_points": label_lag,
            "refit_seconds": 0.35,
            "detect_to_swap_seconds": detect_to_swap,
            "staleness_bound_seconds": bound,
            "swaps": 1,
            "converged": converged,
            "accounting_ok": accounting_ok,
        })
    if include_durability:
        report["rows"].append({
            "section": "durability", "variant": "wal_append",
            "fsync_policy": "always", "appends": 200,
            "append_p50_ms": 0.08, "append_p99_ms": 0.4,
        })
        report["rows"].append({
            "section": "durability", "variant": "recovery",
            "acknowledged_batches": 256, "acknowledged_points": 16_384,
            "wal_bytes": 340_000,
            "recovery_seconds": recovery_seconds,
            "acknowledged_loss": acknowledged_loss,
            "conservation_ok": conservation_ok,
        })
    return report


def write_baseline(
    directory,
    smoke_rows,
    coreset_agreement: float = 1.0,
    serving: dict | None = None,
    hbe: dict | None = None,
    robustness: dict | None = None,
) -> None:
    (directory / "BENCH_batch_traversal.json").write_text(json.dumps({
        "benchmark": "batch_traversal", "rows": smoke_rows,
    }))
    (directory / "BENCH_coreset.json").write_text(json.dumps({
        "benchmark": "coreset",
        "rows": [{
            "method": "uniform", "certified": True,
            "agreement_outside_band": coreset_agreement,
        }],
    }))
    (directory / "BENCH_serving.json").write_text(json.dumps(
        serving if serving is not None else canned_serving_report()
    ))
    (directory / "BENCH_hbe.json").write_text(json.dumps(
        hbe if hbe is not None else canned_hbe_report()
    ))
    (directory / "BENCH_robustness.json").write_text(json.dumps(
        robustness if robustness is not None else canned_robustness_report()
    ))


@pytest.fixture
def canned_measurements(monkeypatch):
    """Pin the gate's fresh measurements to deterministic canned rows."""
    monkeypatch.setattr(gate, "traversal_smoke_rows",
                        lambda seed=0: canned_smoke_rows())
    monkeypatch.setattr(gate, "coreset_smoke_row",
                        lambda seed=0: canned_coreset_row())


class TestGatePasses:
    def test_identical_baseline_passes(self, tmp_path, canned_measurements):
        write_baseline(tmp_path, canned_smoke_rows())
        checks = gate.run_gate(baseline_dir=tmp_path)
        assert checks and all(check.ok for check in checks)

    def test_small_drift_within_tolerance(self, tmp_path, canned_measurements):
        rows = canned_smoke_rows()
        for row in rows:
            row["kernels_per_query"] *= 1.01  # 1% < the 2% tolerance
        write_baseline(tmp_path, rows)
        assert all(check.ok for check in gate.run_gate(baseline_dir=tmp_path))

    def test_main_exit_zero(self, tmp_path, canned_measurements, capsys):
        write_baseline(tmp_path, canned_smoke_rows())
        assert gate.main(["--baseline-dir", str(tmp_path)]) == 0
        assert "all" in capsys.readouterr().out


class TestGateFails:
    def test_doctored_kernels_baseline_fails(self, tmp_path, canned_measurements):
        rows = canned_smoke_rows()
        for row in rows:
            row["kernels_per_query"] *= 0.80  # measured is now 25% worse
        write_baseline(tmp_path, rows)
        checks = gate.run_gate(baseline_dir=tmp_path)
        failed = [c.name for c in checks if not c.ok]
        assert "kernels_per_query[per-query]" in failed
        assert "kernels_per_query[batch]" in failed

    def test_doctored_speedup_baseline_fails(self, tmp_path, canned_measurements):
        rows = canned_smoke_rows()
        batch = next(r for r in rows if r["engine"] == "batch")
        batch["speedup_vs_per_query"] *= 4.0  # fresh run looks 4x slower
        write_baseline(tmp_path, rows)
        checks = gate.run_gate(baseline_dir=tmp_path)
        assert any(not c.ok and c.name == "batch_speedup" for c in checks)

    def test_label_mismatch_is_a_hard_failure(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "traversal_smoke_rows",
                            lambda seed=0: canned_smoke_rows(labels_match=False))
        monkeypatch.setattr(gate, "coreset_smoke_row",
                            lambda seed=0: canned_coreset_row())
        write_baseline(tmp_path, canned_smoke_rows())
        checks = gate.run_gate(baseline_dir=tmp_path)
        assert any(not c.ok and c.name.startswith("labels_match") for c in checks)

    def test_agreement_regression_fails(self, tmp_path, canned_measurements):
        monkeypatch_agreement = 0.90  # baseline says 1.0; slack is 0.02
        write_baseline(tmp_path, canned_smoke_rows())
        gate_checks = gate.run_gate(baseline_dir=tmp_path)
        assert all(c.ok for c in gate_checks)  # sanity: canned row agrees

        import repro.bench.gate as g
        original = g.coreset_smoke_row
        try:
            g.coreset_smoke_row = lambda seed=0: canned_coreset_row(
                agreement=monkeypatch_agreement
            )
            checks = gate.run_gate(baseline_dir=tmp_path)
        finally:
            g.coreset_smoke_row = original
        assert any(
            not c.ok and c.name == "coreset_agreement_outside_band"
            for c in checks
        )

    def test_missing_baseline_fails(self, tmp_path, canned_measurements):
        checks = gate.run_gate(baseline_dir=tmp_path)
        assert any(not c.ok for c in checks)

    def test_baseline_without_smoke_section_fails(
        self, tmp_path, canned_measurements
    ):
        (tmp_path / "BENCH_batch_traversal.json").write_text(json.dumps({
            "benchmark": "batch_traversal",
            "rows": [{"dataset": "gauss", "engine": "batch"}],  # no smoke
        }))
        checks = gate.run_gate(baseline_dir=tmp_path, skip_coreset=True)
        assert any("smoke" in c.detail for c in checks if not c.ok)

    def test_main_exit_nonzero(self, tmp_path, canned_measurements, capsys):
        rows = canned_smoke_rows()
        for row in rows:
            row["kernels_per_query"] *= 0.5
        write_baseline(tmp_path, rows)
        assert gate.main(["--baseline-dir", str(tmp_path)]) == 1
        assert "FAILED" in capsys.readouterr().err


class TestServingChecks:
    """The committed BENCH_serving.json validation (no fresh measurement)."""

    def _serving_checks(self, tmp_path, serving: dict) -> dict:
        write_baseline(tmp_path, canned_smoke_rows(), serving=serving)
        checks = gate.run_gate(baseline_dir=tmp_path)
        return {c.name: c for c in checks}

    def test_healthy_report_passes(self, tmp_path, canned_measurements):
        checks = self._serving_checks(tmp_path, canned_serving_report())
        assert checks["serving_accounting_balanced"].ok
        assert checks["fleet_throughput_scaling"].ok

    def test_flat_scaling_on_big_machine_fails(
        self, tmp_path, canned_measurements
    ):
        checks = self._serving_checks(
            tmp_path, canned_serving_report(cpu_count=8, scaling_ratio=1.0)
        )
        check = checks["fleet_throughput_scaling"]
        assert not check.ok
        assert check.reference == pytest.approx(2.5)

    def test_single_core_only_needs_no_collapse(
        self, tmp_path, canned_measurements
    ):
        checks = self._serving_checks(
            tmp_path, canned_serving_report(cpu_count=1, scaling_ratio=0.9)
        )
        check = checks["fleet_throughput_scaling"]
        assert check.ok
        assert check.reference == pytest.approx(0.8)

    def test_single_core_collapse_still_fails(
        self, tmp_path, canned_measurements
    ):
        checks = self._serving_checks(
            tmp_path, canned_serving_report(cpu_count=1, scaling_ratio=0.5)
        )
        assert not checks["fleet_throughput_scaling"].ok

    def test_two_core_floor_is_intermediate(
        self, tmp_path, canned_measurements
    ):
        passing = self._serving_checks(
            tmp_path, canned_serving_report(cpu_count=2, scaling_ratio=1.4)
        )
        assert passing["fleet_throughput_scaling"].ok
        failing = self._serving_checks(
            tmp_path, canned_serving_report(cpu_count=2, scaling_ratio=1.2)
        )
        assert not failing["fleet_throughput_scaling"].ok

    def test_unbalanced_accounting_fails(self, tmp_path, canned_measurements):
        checks = self._serving_checks(
            tmp_path, canned_serving_report(balanced=False)
        )
        assert not checks["serving_accounting_balanced"].ok

    def test_missing_scaling_section_fails(
        self, tmp_path, canned_measurements
    ):
        checks = self._serving_checks(
            tmp_path, canned_serving_report(include_scaling=False)
        )
        failed = checks["baseline[serving.fleet_scaling]"]
        assert not failed.ok and "bench-serving" in failed.detail

    def test_missing_serving_baseline_fails(
        self, tmp_path, canned_measurements
    ):
        write_baseline(tmp_path, canned_smoke_rows())
        (tmp_path / "BENCH_serving.json").unlink()
        checks = {c.name: c for c in gate.run_gate(baseline_dir=tmp_path)}
        assert not checks["baseline[serving]"].ok

    def test_fleet_scaling_floor_flag(self, tmp_path, canned_measurements):
        write_baseline(
            tmp_path, canned_smoke_rows(),
            serving=canned_serving_report(cpu_count=8, scaling_ratio=1.5),
        )
        assert gate.main(["--baseline-dir", str(tmp_path)]) == 1
        assert gate.main([
            "--baseline-dir", str(tmp_path), "--fleet-scaling-floor", "1.2",
        ]) == 0


class TestHbeChecks:
    """The committed BENCH_hbe.json validation (no fresh measurement)."""

    def _hbe_checks(self, tmp_path, hbe: dict) -> dict:
        write_baseline(tmp_path, canned_smoke_rows(), hbe=hbe)
        return {c.name: c for c in gate.run_gate(baseline_dir=tmp_path)}

    def test_healthy_report_passes(self, tmp_path, canned_measurements):
        checks = self._hbe_checks(tmp_path, canned_hbe_report())
        assert checks["hbe_agreement_outside_band"].ok
        assert checks["hbe_speedup_vs_batch"].ok

    def test_low_dim_rows_exempt_from_speedup_floor(
        self, tmp_path, canned_measurements
    ):
        # d=8 at 1.2x is the documented crossover regime; only d >= 32
        # rows owe the 5x.
        checks = self._hbe_checks(
            tmp_path, canned_hbe_report(low_dim_speedup=0.9)
        )
        assert checks["hbe_speedup_vs_batch"].ok

    def test_doctored_agreement_is_a_hard_failure(
        self, tmp_path, canned_measurements
    ):
        checks = self._hbe_checks(tmp_path, canned_hbe_report(agreement=0.995))
        assert not checks["hbe_agreement_outside_band"].ok

    def test_doctored_speedup_fails(self, tmp_path, canned_measurements):
        checks = self._hbe_checks(tmp_path, canned_hbe_report(speedup=3.0))
        check = checks["hbe_speedup_vs_batch"]
        assert not check.ok
        assert check.reference == pytest.approx(5.0)

    def test_missing_hbe_baseline_fails(self, tmp_path, canned_measurements):
        write_baseline(tmp_path, canned_smoke_rows())
        (tmp_path / "BENCH_hbe.json").unlink()
        checks = {c.name: c for c in gate.run_gate(baseline_dir=tmp_path)}
        assert not checks["baseline[hbe]"].ok

    def test_empty_rows_fail(self, tmp_path, canned_measurements):
        checks = self._hbe_checks(
            tmp_path, {"benchmark": "hbe", "rows": []}
        )
        failed = checks["baseline[hbe.rows]"]
        assert not failed.ok and "bench-hbe" in failed.detail

    def test_no_high_dim_rows_fail(self, tmp_path, canned_measurements):
        checks = self._hbe_checks(tmp_path, canned_hbe_report(dims=(8, 16)))
        assert not checks["baseline[hbe.d>=32]"].ok

    def test_speedup_floor_flag(self, tmp_path, canned_measurements):
        write_baseline(
            tmp_path, canned_smoke_rows(),
            hbe=canned_hbe_report(speedup=4.0),
        )
        assert gate.main(["--baseline-dir", str(tmp_path)]) == 1
        assert gate.main([
            "--baseline-dir", str(tmp_path), "--hbe-speedup-floor", "3.5",
        ]) == 0


class TestRobustnessChecks:
    """The committed BENCH_robustness.json streaming validation."""

    def _robustness_checks(self, tmp_path, robustness: dict) -> dict:
        write_baseline(tmp_path, canned_smoke_rows(), robustness=robustness)
        return {c.name: c for c in gate.run_gate(baseline_dir=tmp_path)}

    def test_healthy_report_passes(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(tmp_path, canned_robustness_report())
        assert checks["streaming_drift_converged"].ok
        assert checks["streaming_staleness_within_bound"].ok
        assert checks["streaming_label_lag"].ok

    def test_unconverged_episode_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(converged=False)
        )
        assert not checks["streaming_drift_converged"].ok

    def test_broken_accounting_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(accounting_ok=False)
        )
        assert not checks["streaming_drift_converged"].ok

    def test_staleness_over_bound_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path,
            canned_robustness_report(detect_to_swap=700.0, bound=605.0),
        )
        assert not checks["streaming_staleness_within_bound"].ok

    def test_missing_staleness_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(detect_to_swap=None)
        )
        assert not checks["streaming_staleness_within_bound"].ok

    def test_excessive_label_lag_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(label_lag=5000)
        )
        assert not checks["streaming_label_lag"].ok

    def test_missing_streaming_row_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(include_streaming=False)
        )
        failed = checks["baseline[robustness.streaming]"]
        assert not failed.ok and "bench-robustness" in failed.detail

    def test_missing_robustness_baseline_fails(
        self, tmp_path, canned_measurements
    ):
        write_baseline(tmp_path, canned_smoke_rows())
        (tmp_path / "BENCH_robustness.json").unlink()
        checks = {c.name: c for c in gate.run_gate(baseline_dir=tmp_path)}
        assert not checks["baseline[robustness]"].ok

    def test_healthy_durability_rows_pass(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(tmp_path, canned_robustness_report())
        assert checks["durability_zero_acknowledged_loss"].ok
        assert checks["durability_recovery_time"].ok

    def test_any_acknowledged_loss_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(acknowledged_loss=1)
        )
        check = checks["durability_zero_acknowledged_loss"]
        assert not check.ok
        assert check.measured == 1.0

    def test_broken_conservation_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(conservation_ok=False)
        )
        assert not checks["durability_zero_acknowledged_loss"].ok

    def test_slow_recovery_fails(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(recovery_seconds=12.0)
        )
        assert not checks["durability_recovery_time"].ok

    def test_missing_durability_rows_fail(self, tmp_path, canned_measurements):
        checks = self._robustness_checks(
            tmp_path, canned_robustness_report(include_durability=False)
        )
        failed = checks["baseline[robustness.durability]"]
        assert not failed.ok and "bench-robustness" in failed.detail

    def test_recovery_ceiling_flag(self, tmp_path, canned_measurements):
        write_baseline(
            tmp_path, canned_smoke_rows(),
            robustness=canned_robustness_report(recovery_seconds=12.0),
        )
        assert gate.main(["--baseline-dir", str(tmp_path)]) == 1
        assert gate.main([
            "--baseline-dir", str(tmp_path),
            "--recovery-seconds-ceiling", "20.0",
        ]) == 0

    def test_label_lag_ceiling_flag(self, tmp_path, canned_measurements):
        write_baseline(
            tmp_path, canned_smoke_rows(),
            robustness=canned_robustness_report(label_lag=3000),
        )
        assert gate.main(["--baseline-dir", str(tmp_path)]) == 1
        assert gate.main([
            "--baseline-dir", str(tmp_path),
            "--streaming-label-lag-ceiling", "4000",
        ]) == 0


class TestTolerancesFlag:
    def test_custom_tolerance_loosens_gate(self, tmp_path, canned_measurements):
        rows = canned_smoke_rows()
        for row in rows:
            row["kernels_per_query"] *= 1.10  # 10% off: fails at 2%
        write_baseline(tmp_path, rows)
        assert gate.main([
            "--baseline-dir", str(tmp_path), "--kernels-rel-tol", "0.25",
        ]) == 0
