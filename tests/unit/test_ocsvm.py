"""Unit tests for the from-scratch One-Class SVM."""

import numpy as np
import pytest

from repro.outliers.ocsvm import OneClassSVM, rbf_gamma_scale


@pytest.fixture(scope="module")
def cluster():
    rng = np.random.default_rng(3)
    return rng.normal(size=(600, 2))


class TestFit:
    def test_nu_bounds_training_outlier_fraction(self, cluster):
        for nu in (0.02, 0.1, 0.3):
            model = OneClassSVM(nu=nu).fit(cluster)
            outlier_fraction = float(np.mean(model.training_labels()))
            # The nu-property: outlier fraction is upper-bounded by nu
            # (up to solver tolerance) and approaches it from below.
            assert outlier_fraction <= nu + 0.02
            assert outlier_fraction >= nu - 0.07

    def test_nu_lower_bounds_support_fraction(self, cluster):
        model = OneClassSVM(nu=0.2).fit(cluster)
        assert model.n_support >= 0.2 * cluster.shape[0] - 2

    def test_alpha_constraints_satisfied(self, cluster):
        model = OneClassSVM(nu=0.1).fit(cluster)
        alphas = model._support_alphas  # noqa: SLF001
        upper = 1.0 / (0.1 * cluster.shape[0])
        assert np.all(alphas > 0)
        assert np.all(alphas <= upper + 1e-10)
        assert float(np.sum(alphas)) == pytest.approx(1.0, abs=1e-9)

    def test_converges(self, cluster):
        model = OneClassSVM(nu=0.1).fit(cluster)
        assert model.iterations_ < model.max_iter

    def test_rho_positive_for_rbf(self, cluster):
        # With an RBF kernel all K values are in (0, 1]; the expansion
        # at support vectors is positive, so rho > 0.
        model = OneClassSVM(nu=0.1).fit(cluster)
        assert model.rho > 0


class TestDecision:
    def test_center_in_far_out(self, cluster):
        model = OneClassSVM(nu=0.05).fit(cluster)
        decisions = model.decision_function(np.array([[0.0, 0.0], [8.0, 8.0]]))
        assert decisions[0] > 0
        assert decisions[1] < 0

    def test_predict_matches_decision_sign(self, cluster, rng):
        model = OneClassSVM(nu=0.05).fit(cluster)
        queries = rng.normal(size=(50, 2)) * 2
        decisions = model.decision_function(queries)
        np.testing.assert_array_equal(model.predict(queries), (decisions < 0).astype(int))

    def test_detects_planted_outliers(self, cluster, rng):
        outliers = rng.uniform(5, 8, size=(10, 2))
        model = OneClassSVM(nu=0.05).fit(cluster)
        assert np.all(model.predict(outliers) == 1)

    def test_decision_decays_outside_support(self, cluster):
        """Scores are near-flat inside the support (a boundary method)
        and decrease monotonically once outside it."""
        model = OneClassSVM(nu=0.1).fit(cluster)
        inside = model.decision_function(np.array([[0.0, 0.0], [1.0, 0.0]]))
        assert np.all(inside > 0)
        radii = np.array([2.5, 3.5, 5.0, 8.0])
        outside = model.decision_function(
            np.column_stack([radii, np.zeros_like(radii)])
        )
        assert np.all(outside < 0)
        assert list(outside) == sorted(outside, reverse=True)


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            OneClassSVM(nu=0.0)
        with pytest.raises(ValueError):
            OneClassSVM(nu=1.5)
        with pytest.raises(ValueError):
            OneClassSVM(gamma=-1.0)
        with pytest.raises(ValueError):
            OneClassSVM(tol=0.0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            OneClassSVM().decision_function(np.zeros((1, 2)))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="at least 2"):
            OneClassSVM().fit(np.zeros((1, 2)))

    def test_gamma_scale_heuristic(self, cluster):
        gamma = rbf_gamma_scale(cluster)
        assert gamma == pytest.approx(1.0 / (2 * np.var(cluster)))

    def test_gamma_scale_degenerate(self):
        assert rbf_gamma_scale(np.ones((5, 3))) == pytest.approx(1.0 / 3.0)
