"""Unit tests for the TKDCClassifier (Algorithm 1)."""

import numpy as np
import pytest

from repro import Label, NotFittedError, TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.quantile.order_stats import quantile_of_sorted


@pytest.fixture
def fitted(medium_gauss):
    return TKDCClassifier(TKDCConfig(p=0.01, seed=0)).fit(medium_gauss)


class TestFitValidation:
    def test_rejects_tiny_dataset(self):
        with pytest.raises(ValueError, match="at least 2"):
            TKDCClassifier().fit(np.array([[1.0, 2.0]]))

    def test_not_fitted_errors(self):
        clf = TKDCClassifier()
        assert not clf.is_fitted
        with pytest.raises(NotFittedError):
            __ = clf.threshold
        with pytest.raises(NotFittedError):
            clf.classify(np.zeros((1, 2)))

    def test_fit_returns_self(self, medium_gauss):
        clf = TKDCClassifier(TKDCConfig(seed=0))
        assert clf.fit(medium_gauss) is clf

    def test_query_dimension_mismatch(self, fitted):
        with pytest.raises(ValueError, match="dimensionality"):
            fitted.classify(np.zeros((1, 3)))


class TestThresholdQuality:
    def test_threshold_close_to_exact(self, medium_gauss, fitted):
        naive = NaiveKDE().fit(medium_gauss)
        densities = naive.density(medium_gauss) - naive.kernel.max_value / len(medium_gauss)
        exact = quantile_of_sorted(np.sort(densities), 0.01)
        assert fitted.threshold.value == pytest.approx(exact, rel=0.05)

    def test_threshold_within_bracket(self, fitted):
        t = fitted.threshold
        assert t.lower <= t.value <= t.upper

    def test_training_low_fraction_matches_p(self, medium_gauss):
        for p in (0.01, 0.1, 0.25):
            clf = TKDCClassifier(TKDCConfig(p=p, seed=0)).fit(medium_gauss)
            low_fraction = float(np.mean(np.asarray(clf.training_labels_) == Label.LOW))
            assert low_fraction == pytest.approx(p, abs=0.02)


class TestClassification:
    def test_center_is_high(self, fitted):
        assert fitted.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH

    def test_far_point_is_low(self, fitted):
        assert fitted.classify(np.array([[8.0, 8.0]]))[0] is Label.LOW

    def test_predict_matches_classify(self, fitted, rng):
        queries = rng.normal(size=(20, 2)) * 2
        labels = fitted.classify(queries)
        ints = fitted.predict(queries)
        np.testing.assert_array_equal(ints, [int(label) for label in labels])

    def test_single_query_as_1d(self, fitted):
        # A single d-vector is promoted to a (1, d) matrix.
        labels = fitted.classify(np.array([0.0, 0.0]))
        assert labels.shape == (1,)

    def test_agreement_with_exact_classification(self, medium_gauss, fitted, rng):
        queries = rng.normal(size=(200, 2)) * 1.5
        naive = NaiveKDE().fit(medium_gauss)
        exact = naive.density(queries)
        t = fitted.threshold.value
        eps = fitted.config.epsilon
        predicted = fitted.predict(queries)
        for density, label in zip(exact, predicted):
            # The guarantee: points outside the eps-band must be correct.
            if density > t * (1 + eps):
                assert label == 1
            elif density < t * (1 - eps):
                assert label == 0


class TestDensityEstimates:
    def test_estimate_density_accuracy(self, medium_gauss, fitted, rng):
        queries = rng.normal(size=(50, 2))
        naive = NaiveKDE().fit(medium_gauss)
        exact = naive.density(queries)
        estimates = fitted.estimate_density(queries)
        t = fitted.threshold.value
        np.testing.assert_allclose(estimates, exact, atol=fitted.config.epsilon * t)

    def test_decision_bounds_bracket_exact(self, medium_gauss, fitted, rng):
        queries = rng.normal(size=(30, 2)) * 2
        naive = NaiveKDE().fit(medium_gauss)
        exact = naive.density(queries)
        for bounds, density in zip(fitted.decision_bounds(queries), exact):
            assert bounds.lower <= density + 1e-12
            assert bounds.upper >= density - 1e-12


class TestConfigurationVariants:
    def test_no_refine_threshold(self, medium_gauss):
        clf = TKDCClassifier(
            TKDCConfig(seed=0, refine_threshold=False, bootstrap_s0=1000)
        ).fit(medium_gauss)
        assert clf.training_scores_ is None
        assert clf.is_fitted
        assert clf.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH

    def test_grid_disabled_same_labels(self, medium_gauss):
        with_grid = TKDCClassifier(TKDCConfig(seed=0)).fit(medium_gauss)
        without_grid = TKDCClassifier(TKDCConfig(seed=0, use_grid=False)).fit(medium_gauss)
        agreement = np.mean(
            np.asarray(with_grid.training_labels_)
            == np.asarray(without_grid.training_labels_)
        )
        assert agreement > 0.99

    def test_grid_disabled_above_max_dim(self, rng):
        data = rng.normal(size=(500, 6))
        clf = TKDCClassifier(TKDCConfig(seed=0)).fit(data)
        assert clf._grid is None  # noqa: SLF001 - verifying internal policy

    def test_median_split_works(self, medium_gauss):
        clf = TKDCClassifier(TKDCConfig(seed=0, split_rule="median")).fit(medium_gauss)
        assert clf.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH

    def test_epanechnikov_kernel(self, medium_gauss):
        clf = TKDCClassifier(TKDCConfig(seed=0, kernel="epanechnikov")).fit(medium_gauss)
        assert clf.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH
        assert clf.classify(np.array([[9.0, 9.0]]))[0] is Label.LOW

    def test_unnormalized_densities(self, medium_gauss):
        clf = TKDCClassifier(
            TKDCConfig(seed=0, normalize_densities=False)
        ).fit(medium_gauss)
        assert clf.kernel.max_value == 1.0
        assert clf.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH


class TestStatsExposure:
    def test_stats_accumulate(self, fitted, rng):
        before = fitted.stats.queries
        fitted.classify(rng.normal(size=(10, 2)))
        assert fitted.stats.queries >= before  # grid hits bypass traversal

    def test_pruning_dominates_on_training_pass(self, fitted):
        # The headline claim: most training points are classified with
        # far fewer kernel evaluations than n.
        assert fitted.stats.kernels_per_query < 0.25 * 2000


class TestEngineSelection:
    def test_engines_agree_on_labels(self, fitted, rng):
        queries = rng.normal(size=(80, 2)) * 2
        np.testing.assert_array_equal(
            fitted.predict(queries, engine="batch"),
            fitted.predict(queries, engine="per-query"),
        )

    def test_per_query_engine_config(self, medium_gauss, rng):
        batch = TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(medium_gauss)
        per_query = TKDCClassifier(
            TKDCConfig(p=0.05, seed=0, engine="per-query")
        ).fit(medium_gauss)
        assert batch.threshold.value == per_query.threshold.value
        queries = rng.normal(size=(50, 2)) * 2
        np.testing.assert_array_equal(
            batch.predict(queries), per_query.predict(queries)
        )

    def test_unknown_engine_rejected(self, fitted):
        with pytest.raises(ValueError, match="engine"):
            fitted.classify(np.zeros((1, 2)), engine="quantum")

    def test_bad_n_jobs_rejected(self, fitted):
        with pytest.raises(ValueError, match="n_jobs"):
            fitted.classify(np.zeros((1, 2)), n_jobs=0)

    def test_multiprocess_classify_matches_serial(self, fitted, rng):
        queries = rng.normal(size=(64, 2)) * 2
        serial = fitted.predict(queries)
        parallel = fitted.predict(queries, n_jobs=2)
        np.testing.assert_array_equal(serial, parallel)

    def test_multiprocess_merges_stats(self, medium_gauss, rng):
        clf = TKDCClassifier(TKDCConfig(p=0.05, seed=0, use_grid=False)).fit(
            medium_gauss
        )
        queries = rng.normal(size=(32, 2)) * 2
        before = clf.stats.queries
        clf.predict(queries, n_jobs=2)
        assert clf.stats.queries == before + 32

    def test_predict_is_vectorized_int64(self, fitted, rng):
        labels = fitted.predict(rng.normal(size=(10, 2)))
        assert labels.dtype == np.int64
        assert set(np.unique(labels)) <= {0, 1}
