"""Unit tests for the threshold and tolerance pruning rules."""

import pytest

from repro.core.pruning import PruneOutcome, check_rules, threshold_rule, tolerance_rule


class TestThresholdRule:
    def test_fires_high(self):
        assert (
            threshold_rule(2.0, 3.0, t_lower=1.0, t_upper=1.5, epsilon=0.01)
            is PruneOutcome.THRESHOLD_HIGH
        )

    def test_fires_low(self):
        assert (
            threshold_rule(0.1, 0.5, t_lower=1.0, t_upper=1.5, epsilon=0.01)
            is PruneOutcome.THRESHOLD_LOW
        )

    def test_no_fire_when_straddling(self):
        assert threshold_rule(0.5, 2.0, 1.0, 1.5, 0.01) is None

    def test_epsilon_margin_high(self):
        # f_lower must exceed t_upper * (1 + eps), not just t_upper.
        assert threshold_rule(1.54, 2.0, 1.0, 1.5, 0.1) is None
        assert threshold_rule(1.66, 2.0, 1.0, 1.5, 0.1) is PruneOutcome.THRESHOLD_HIGH

    def test_epsilon_margin_low(self):
        assert threshold_rule(0.1, 0.95, 1.0, 1.5, 0.1) is None
        assert threshold_rule(0.1, 0.85, 1.0, 1.5, 0.1) is PruneOutcome.THRESHOLD_LOW


class TestToleranceRule:
    def test_fires_when_narrow(self):
        assert tolerance_rule(1.0, 1.005, tolerance_width=0.01) is PruneOutcome.TOLERANCE

    def test_no_fire_when_wide(self):
        assert tolerance_rule(1.0, 1.5, tolerance_width=0.01) is None

    def test_zero_width_target_never_fires_on_open_interval(self):
        assert tolerance_rule(1.0, 1.0001, tolerance_width=0.0) is None


class TestCheckRules:
    def test_threshold_takes_precedence(self):
        # Both rules would fire; threshold is checked first.
        outcome = check_rules(2.0, 2.001, 1.0, 1.5, epsilon=0.01)
        assert outcome is PruneOutcome.THRESHOLD_HIGH

    def test_tolerance_fallback(self):
        outcome = check_rules(1.2, 1.2001, 1.0, 1.5, epsilon=0.01)
        assert outcome is PruneOutcome.TOLERANCE

    def test_disabled_threshold_rule(self):
        outcome = check_rules(2.0, 3.0, 1.0, 1.5, 0.01, use_threshold_rule=False)
        assert outcome is None

    def test_disabled_tolerance_rule(self):
        outcome = check_rules(1.2, 1.2001, 1.0, 1.5, 0.01, use_tolerance_rule=False)
        assert outcome is None

    def test_both_disabled(self):
        assert check_rules(5.0, 5.0, 1.0, 1.5, 0.01, False, False) is None

    def test_tolerance_reference_override(self):
        # Width 0.05: fires against reference 10 (target 0.1), not
        # against t_lower=1 (target 0.01).
        assert check_rules(
            1.2, 1.25, 1.0, 1.5, 0.01, use_threshold_rule=False
        ) is None
        assert check_rules(
            1.2, 1.25, 1.0, 1.5, 0.01, use_threshold_rule=False, tolerance_reference=10.0
        ) is PruneOutcome.TOLERANCE
