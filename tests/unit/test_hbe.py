"""The hashing-based estimator: LSH primitives, decision loop, auto selection.

One high-dimensional classifier is fitted once per module (d=16 with a
non-degenerate bandwidth, the engine's home regime); the primitive-level
tests below it are pure numpy and run in microseconds.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Label, TKDCClassifier, TKDCConfig
from repro.datasets.registry import load
from repro.estimators.hbe import HbeIndex
from repro.estimators.lsh import (
    LshTables,
    collision_probability,
    erf,
    normal_upper_quantile,
    tune_hash_depth,
)
from repro.estimators.select import select_engine
from repro.kernels.gaussian import GaussianKernel


@pytest.fixture(scope="module")
def hd_data() -> np.ndarray:
    return load("gauss", n=2000, d=16, seed=0)


@pytest.fixture(scope="module")
def hd_clf(hd_data: np.ndarray) -> TKDCClassifier:
    config = TKDCConfig(
        p=0.05, seed=0, refine_threshold=False, bootstrap_s0=300,
        engine="hbe", bandwidth_scale=2.0,
    )
    return TKDCClassifier(config).fit(hd_data)


class TestErf:
    def test_matches_math_erf(self):
        xs = np.linspace(-4.0, 4.0, 401)
        exact = np.array([math.erf(x) for x in xs])
        assert np.max(np.abs(erf(xs) - exact)) < 5e-7

    def test_odd_symmetry_and_zero(self):
        xs = np.array([0.5, 1.0, 2.5])
        np.testing.assert_allclose(erf(-xs), -erf(xs))
        assert erf(np.array([0.0]))[0] == 0.0


class TestNormalUpperQuantile:
    def test_known_quantiles(self):
        assert normal_upper_quantile(0.025) == pytest.approx(1.959964, abs=1e-5)
        assert normal_upper_quantile(0.005) == pytest.approx(2.575829, abs=1e-5)

    def test_median_is_zero(self):
        assert normal_upper_quantile(0.5) == 0.0

    def test_validates_delta(self):
        for bad in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError, match="delta"):
                normal_upper_quantile(bad)


class TestCollisionProbability:
    def test_zero_distance_is_certain(self):
        assert collision_probability(np.array([0.0]), 3.0, 4)[0] == 1.0

    def test_monotone_decreasing(self):
        dists = np.linspace(0.0, 20.0, 200)
        p = collision_probability(dists, 3.0, 4)
        assert np.all(np.diff(p) <= 1e-15)

    def test_depth_is_a_power(self):
        dists = np.array([0.5, 1.0, 3.0])
        p1 = collision_probability(dists, 3.0, 1)
        p4 = collision_probability(dists, 3.0, 4)
        np.testing.assert_allclose(p4, p1**4, rtol=1e-12)

    def test_floored_positive_far_out(self):
        p = collision_probability(np.array([1e9]), 3.0, 16)
        assert np.all(p > 0.0)


class TestLshTables:
    def test_build_is_deterministic_in_seed(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(300, 8))
        queries = rng.normal(size=(50, 8))
        a = LshTables(points, None, tables=8, width=3.0, seed=7)
        b = LshTables(points, None, tables=8, width=3.0, seed=7)
        assert a.depth == b.depth
        for t in range(8):
            fa, ra, ma = a.lookup(t, queries)
            fb, rb, mb = b.lookup(t, queries)
            np.testing.assert_array_equal(fa, fb)
            np.testing.assert_array_equal(ra, rb)
            np.testing.assert_array_equal(ma, mb)

    def test_bucket_mass_conserved(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(200, 4))
        weights = rng.uniform(0.5, 2.0, size=200)
        tables = LshTables(points, weights, tables=4, width=2.0, seed=0)
        for table in tables._tables:
            assert table.bucket_mass.sum() == pytest.approx(weights.sum())
            # Every representative is a real training index.
            assert np.all((0 <= table.representative)
                          & (table.representative < 200))

    def test_training_point_finds_its_own_bucket(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(100, 4))
        tables = LshTables(points, None, tables=4, width=3.0, seed=1)
        found, __, mass = tables.lookup(0, points)
        assert found.all()
        assert np.all(mass >= 1.0)

    def test_validation(self):
        good = np.zeros((5, 2))
        with pytest.raises(ValueError, match="non-empty"):
            LshTables(np.zeros((0, 2)), None, tables=4, width=1.0)
        with pytest.raises(ValueError, match="tables"):
            LshTables(good, None, tables=0, width=1.0)
        with pytest.raises(ValueError, match="width"):
            LshTables(good, None, tables=4, width=0.0)
        with pytest.raises(ValueError, match="align"):
            LshTables(good, np.ones(3), tables=4, width=1.0)
        with pytest.raises(ValueError, match="finite"):
            LshTables(good, np.full(5, -1.0), tables=4, width=1.0)

    def test_tune_hash_depth_in_range(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(500, 16))
        depth = tune_hash_depth(
            points, np.ones(500), 3.0, np.random.default_rng(0)
        )
        assert 1 <= depth <= 16


class TestHbeEstimate:
    def test_importance_correction_is_unbiased(self):
        """Single-point dataset: E[Z] = K(c) exactly, check the mean."""
        kernel = GaussianKernel(np.ones(2))
        index = HbeIndex(
            np.zeros((1, 2)), None, kernel, tables=512, width=3.0,
            depth=2, seed=0,
        )
        query = np.array([[1.0, 0.5]])
        sq = float((query * query).sum())
        expected = float(np.asarray(kernel.value(np.array([sq])))[0])
        estimate = index.estimate(query)[0]
        # 512 tables; the only variance is the collide-or-miss Bernoulli.
        assert estimate == pytest.approx(expected, rel=0.15)

    def test_validation(self):
        kernel = GaussianKernel(np.ones(2))
        points = np.zeros((4, 2))
        with pytest.raises(ValueError, match="delta"):
            HbeIndex(points, None, kernel, delta=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            HbeIndex(points, None, kernel, min_samples=0)
        with pytest.raises(ValueError, match="batch_tables"):
            HbeIndex(points, None, kernel, batch_tables=0)
        with pytest.raises(ValueError, match="sample_cost"):
            HbeIndex(points, None, kernel, sample_cost=0)
        with pytest.raises(ValueError, match="margin"):
            HbeIndex(points, None, kernel, margin=0.5)


class TestDecideBlock:
    def test_empty_block(self, hd_clf):
        index = hd_clf._ensure_hbe()
        decision = index.decide_block(
            np.zeros((0, 16)), hd_clf.threshold.value, 0.01
        )
        assert decision.decided.shape == (0,)
        assert decision.samples_total == 0
        assert decision.fallback_rows.size == 0

    def test_outcomes_partition_the_block(self, hd_clf, hd_data):
        index = hd_clf._ensure_hbe()
        scaled = hd_clf.kernel.scale(hd_data[:100])
        decision = index.decide_block(
            scaled, hd_clf.threshold.value, hd_clf.config.epsilon,
            eta=hd_clf.eta_applied,
        )
        assert not np.any(decision.decided & decision.exhausted)
        fallback = np.zeros(100, dtype=bool)
        fallback[decision.fallback_rows] = True
        assert not np.any(fallback & decision.decided)
        assert np.all(
            decision.decided | decision.exhausted | fallback
        )
        # Unbudgeted: nothing can be exhausted, and something decides in
        # the engine's home regime.
        assert not decision.exhausted.any()
        assert decision.decided.any()
        assert np.all(decision.ci_lo <= decision.ci_hi)
        assert np.all(decision.samples <= index.n_tables)

    def test_zero_budget_exhausts_everything(self, hd_clf, hd_data):
        index = hd_clf._ensure_hbe()
        scaled = hd_clf.kernel.scale(hd_data[:10])
        decision = index.decide_block(
            scaled, hd_clf.threshold.value, hd_clf.config.epsilon, budget=0
        )
        assert decision.samples_total == 0
        assert decision.exhausted.all()
        assert decision.fallback_rows.size == 0

    def test_rebuild_is_deterministic(self, hd_clf, hd_data):
        scaled = hd_clf.kernel.scale(hd_data[:64])
        threshold = hd_clf.threshold.value
        first = hd_clf._ensure_hbe().decide_block(scaled, threshold, 0.01)
        hd_clf._hbe = None  # what the fleet skeleton does
        second = hd_clf._ensure_hbe().decide_block(scaled, threshold, 0.01)
        np.testing.assert_array_equal(first.decided, second.decided)
        np.testing.assert_array_equal(first.high, second.high)
        np.testing.assert_array_equal(first.samples, second.samples)
        np.testing.assert_allclose(first.mean, second.mean)

    def test_decided_labels_match_exact_density(self, hd_clf, hd_data):
        """CI-decided labels agree with the densities they certify."""
        from repro.coresets.validate import exact_density

        rng = np.random.default_rng(2)
        box = rng.uniform(
            hd_data.min(axis=0), hd_data.max(axis=0), size=(50, 16)
        )
        queries = np.concatenate([hd_data[:50], box])
        scaled = hd_clf.kernel.scale(queries)
        threshold = hd_clf.threshold.value
        index = hd_clf._ensure_hbe()
        decision = index.decide_block(
            scaled, threshold, hd_clf.config.epsilon, eta=hd_clf.eta_applied
        )
        f = exact_density(
            hd_clf.kernel.scale(hd_data), hd_clf.kernel, scaled
        )
        rows = np.flatnonzero(decision.decided)
        assert rows.size > 0
        for row in rows:
            if decision.high[row]:
                assert f[row] > threshold * (1.0 - hd_clf.config.epsilon)
            else:
                assert f[row] < threshold * (1.0 + hd_clf.config.epsilon)


class TestVisibilityGuard:
    def test_visibility_distance_matches_miss_probability(self, hd_clf):
        index = hd_clf._ensure_hbe()
        for m in (8, index.n_tables):
            c_vis = index.visibility_distance(m)
            assert c_vis > 0.0
            p = collision_probability(
                np.array([c_vis]), index.tables.width, index.tables.depth
            )[0]
            # Miss probability (1 - p)^m = delta at the horizon.
            assert (1.0 - p) ** m == pytest.approx(index.delta, rel=1e-6)

    def test_horizon_widens_with_tables_consulted(self, hd_clf):
        index = hd_clf._ensure_hbe()
        distances = [index.visibility_distance(m) for m in (8, 16, 32, 64)]
        assert distances == sorted(distances)
        bounds = [index.low_visibility_bound(m) for m in (8, 16, 32, 64)]
        assert bounds == sorted(bounds, reverse=True)

    def test_bound_positive_and_cached(self, hd_clf):
        index = hd_clf._ensure_hbe()
        bound = index.low_visibility_bound()
        assert bound > 0.0
        assert bound == index.low_visibility_bound(index.n_tables)
        assert index.low_visibility_bound() is index.low_visibility_bound()

    def test_home_regime_certifies_low(self, hd_clf):
        assert hd_clf.hbe_low_certifiable()

    def test_degenerate_bandwidth_blocks_low(self, hd_data):
        """Scott's rule at d=16 is a spike field: the guard must refuse."""
        clf = TKDCClassifier(TKDCConfig(
            p=0.05, seed=0, refine_threshold=False, bootstrap_s0=300,
            engine="hbe",  # bandwidth_scale=1.0: raw Scott
        )).fit(hd_data)
        assert not clf.hbe_low_certifiable()
        index = clf._ensure_hbe()
        scaled = clf.kernel.scale(hd_data[:50])
        decision = index.decide_block(
            scaled, clf.threshold.value, clf.config.epsilon,
            eta=clf.eta_applied,
        )
        # LOW decisions are suppressed wholesale; HIGHs may still fire.
        assert not np.any(decision.decided & ~decision.high)


class TestAutoSelection:
    def test_low_dim_keeps_batch(self):
        rng = np.random.default_rng(0)
        clf = TKDCClassifier(TKDCConfig(p=0.05, seed=0, engine="auto")).fit(
            rng.normal(size=(400, 2))
        )
        assert clf.auto_selection() == ("batch", "low_dim")
        assert clf._resolve_engine(None) == "batch"

    def test_high_dim_picks_hbe(self, hd_data):
        clf = TKDCClassifier(TKDCConfig(
            p=0.05, seed=0, refine_threshold=False, bootstrap_s0=300,
            engine="auto", bandwidth_scale=2.0,
        )).fit(hd_data)
        assert clf.auto_selection() == ("hbe", "high_dim")
        assert clf._resolve_engine(None) == "hbe"

    def test_degenerate_bandwidth_demotes_to_batch(self, hd_data):
        clf = TKDCClassifier(TKDCConfig(
            p=0.05, seed=0, refine_threshold=False, bootstrap_s0=300,
            engine="auto",  # raw Scott at d=16: guard refuses LOWs
        )).fit(hd_data)
        assert clf.auto_selection() == ("batch", "degenerate_bandwidth")
        assert clf._resolve_engine(None) == "batch"

    def test_configured_engine_is_never_overridden(self, hd_clf):
        assert hd_clf.auto_selection() == ("hbe", "configured")

    def test_selection_function_rules(self):
        auto = TKDCConfig(engine="auto")
        assert select_engine(2, "gaussian", TKDCConfig(engine="batch")) == (
            "batch", "configured",
        )
        assert select_engine(2, "epanechnikov", auto) == (
            "batch", "kernel_unsupported",
        )
        assert select_engine(auto.hbe_auto_dim, "gaussian", auto) == (
            "hbe", "high_dim",
        )
        assert select_engine(2, "gaussian", auto) == ("batch", "low_dim")
        # The serving calibrator's measured-expansion upgrade rule.
        assert select_engine(
            2, "gaussian", auto,
            expansions_per_query=0.5 * 1000, n=1000,
        ) == ("hbe", "expansion_rate")
        assert select_engine(
            2, "gaussian", auto,
            expansions_per_query=0.01 * 1000, n=1000,
        ) == ("batch", "low_dim")


class TestBudgetExhaustion:
    """An hbe query that runs out of anytime budget must surface as
    degraded/UNCERTAIN through classify_detailed — the same contract the
    tree engines honour, never a silent best-effort label."""

    def test_exhausted_queries_degrade_to_uncertain(self, hd_data):
        config = TKDCConfig(
            p=0.05, seed=0, refine_threshold=False, bootstrap_s0=300,
            engine="hbe", bandwidth_scale=2.0,
            # Affords 4 samples: below min_samples, so no query ripens,
            # and below the cost of any fallback traversal.
            max_node_expansions=4,
        )
        clf = TKDCClassifier(config).fit(hd_data)
        result = clf.classify_detailed(hd_data[:20])
        assert result.degraded.all()
        assert np.all(result.lower == 0.0)
        assert np.all(np.isinf(result.upper))
        resolved = result.resolved_labels()
        assert np.all(resolved == Label.UNCERTAIN)
        assert clf.stats.extras.get("hbe_exhausted", 0.0) >= 20.0

    def test_unbudgeted_run_is_never_degraded(self, hd_clf, hd_data):
        result = hd_clf.classify_detailed(hd_data[:20])
        assert not result.degraded.any()
        assert not np.any(result.resolved_labels() == Label.UNCERTAIN)


class TestMetricsReporting:
    def test_hbe_families_populated(self, hd_clf, hd_data):
        from repro.obs.registry import REGISTRY, render_prometheus

        REGISTRY.reset()
        hd_clf.classify(hd_data[:40])
        from repro.obs.metrics import record_engine_selected

        record_engine_selected(*hd_clf.auto_selection())
        text = render_prometheus(REGISTRY)
        assert (
            'tkdc_engine_selected_total{engine="hbe",reason="configured"}'
            in text
        )
        assert "# TYPE tkdc_hbe_samples histogram" in text
        assert 'tkdc_hbe_samples_count{outcome="decided"}' in text
        # Straddle queries were counted as undecided-by-cause.
        assert "tkdc_hbe_undecided_total" in text


class TestConfigValidation:
    @pytest.mark.parametrize("knob,value", [
        ("hbe_tables", 0),
        ("hbe_hash_depth", 0),
        ("hbe_bucket_width", 0.0),
        ("hbe_delta", 1.5),
        ("hbe_min_samples", 0),
        ("hbe_batch_tables", 0),
        ("hbe_sample_cost", 0),
        ("hbe_margin", 0.5),
        ("hbe_auto_dim", 0),
        ("hbe_auto_expansion_fraction", 0.0),
    ])
    def test_bad_hbe_knob_raises(self, knob, value):
        with pytest.raises(ValueError, match=knob.replace("_", "[_ ]")):
            TKDCConfig(**{knob: value})

    def test_engine_choices(self):
        with pytest.raises(ValueError, match="engine"):
            TKDCConfig(engine="bogus")
        for engine in ("batch", "per-query", "hbe", "auto"):
            assert TKDCConfig(engine=engine).engine == engine
