"""Unit tests for split-conformal density inference."""

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.analysis.conformal import DensityConformal


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(2)
    train = rng.normal(size=(1500, 2))
    calibration = rng.normal(size=(400, 2))
    clf = TKDCClassifier(TKDCConfig(seed=2)).fit(train)
    return clf, calibration, rng


class TestValidation:
    def test_requires_fitted(self, setup):
        __, calibration, __ = setup
        with pytest.raises(ValueError, match="fitted"):
            DensityConformal(TKDCClassifier(), calibration)

    def test_requires_enough_calibration(self, setup):
        clf, calibration, __ = setup
        with pytest.raises(ValueError, match="at least 10"):
            DensityConformal(clf, calibration[:5])

    def test_rejects_bad_alpha(self, setup):
        clf, calibration, __ = setup
        conformal = DensityConformal(clf, calibration)
        with pytest.raises(ValueError):
            conformal.is_typical(np.zeros((1, 2)), alpha=0.0)
        with pytest.raises(ValueError):
            conformal.prediction_region_threshold(alpha=1.0)


class TestPValues:
    def test_range(self, setup):
        clf, calibration, rng = setup
        conformal = DensityConformal(clf, calibration)
        p = conformal.p_values(rng.normal(size=(50, 2)) * 2)
        n = conformal.n_calibration
        assert np.all(p >= 1.0 / (n + 1) - 1e-12)
        assert np.all(p <= 1.0)

    def test_center_typical_far_point_not(self, setup):
        clf, calibration, __ = setup
        conformal = DensityConformal(clf, calibration)
        p = conformal.p_values(np.array([[0.0, 0.0], [7.0, 7.0]]))
        assert p[0] > 0.2
        assert p[1] <= 1.0 / (conformal.n_calibration + 1) + 1e-12

    def test_monotone_in_density(self, setup):
        clf, calibration, __ = setup
        conformal = DensityConformal(clf, calibration)
        radii = np.array([0.0, 1.0, 2.0, 3.0, 5.0])
        p = conformal.p_values(np.column_stack([radii, np.zeros_like(radii)]))
        assert list(p) == sorted(p, reverse=True)


class TestGuarantee:
    def test_false_rejection_rate_bounded(self, setup):
        """Fresh draws from the training distribution are rejected at
        rate <= alpha (up to Monte Carlo noise)."""
        clf, calibration, __ = setup
        rng = np.random.default_rng(99)
        conformal = DensityConformal(clf, calibration)
        fresh = rng.normal(size=(1200, 2))
        alpha = 0.1
        rejected = ~conformal.is_typical(fresh, alpha=alpha)
        assert float(np.mean(rejected)) < alpha + 0.04

    def test_power_against_outliers(self, setup):
        clf, calibration, rng = setup
        conformal = DensityConformal(clf, calibration)
        outliers = rng.uniform(5, 8, size=(100, 2))
        assert float(np.mean(conformal.is_typical(outliers, alpha=0.05))) < 0.05

    def test_prediction_region_coverage(self, setup):
        clf, calibration, __ = setup
        rng = np.random.default_rng(123)
        conformal = DensityConformal(clf, calibration)
        threshold = conformal.prediction_region_threshold(alpha=0.1)
        fresh = rng.normal(size=(1500, 2))
        densities = clf.estimate_density(fresh)
        coverage = float(np.mean(densities >= threshold))
        assert coverage >= 0.86  # target 0.90, Monte Carlo + estimate slack
