"""Unit tests for the radial-cutoff KDE baseline."""

import numpy as np
import pytest

from repro.baselines.rkde import RadialKDE, radius_for_guarantee
from repro.baselines.simple import NaiveKDE
from repro.kernels.gaussian import GaussianKernel


class TestRadiusForGuarantee:
    def test_truncation_error_bounded(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        queries = rng.normal(size=(40, 2)) * 2
        truth = exact.density(queries)
        threshold = float(np.quantile(truth, 0.1))
        epsilon = 0.01
        est = RadialKDE(epsilon=epsilon, threshold_hint=threshold).fit(small_gauss)
        got = est.density(queries)
        assert np.max(np.abs(got - truth)) <= epsilon * threshold + 1e-15

    def test_radius_monotone_in_epsilon(self):
        kernel = GaussianKernel(np.ones(2))
        tight = radius_for_guarantee(kernel, 0.001, 0.01)
        loose = radius_for_guarantee(kernel, 0.1, 0.01)
        assert tight > loose

    def test_rejects_bad_inputs(self):
        kernel = GaussianKernel(np.ones(2))
        with pytest.raises(ValueError):
            radius_for_guarantee(kernel, 0.0, 1.0)
        with pytest.raises(ValueError):
            radius_for_guarantee(kernel, 0.1, 0.0)


class TestExplicitRadius:
    def test_huge_radius_is_exact(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        est = RadialKDE(radius_in_bandwidths=100.0).fit(small_gauss)
        queries = rng.normal(size=(20, 2))
        np.testing.assert_allclose(est.density(queries), exact.density(queries))

    def test_zero_radius_counts_coincident_only(self, small_gauss):
        est = RadialKDE(radius_in_bandwidths=0.0).fit(small_gauss)
        # At an off-data location nothing is within radius zero.
        assert est.density(np.array([[37.0, 41.0]]))[0] == 0.0

    def test_density_monotone_in_radius(self, small_gauss):
        q = np.zeros((1, 2))
        densities = [
            RadialKDE(radius_in_bandwidths=r).fit(small_gauss).density(q)[0]
            for r in (0.5, 1.0, 2.0, 4.0)
        ]
        assert densities == sorted(densities)

    def test_underestimates_exact(self, small_gauss, rng):
        # Truncation can only remove mass.
        exact = NaiveKDE().fit(small_gauss)
        est = RadialKDE(radius_in_bandwidths=1.0).fit(small_gauss)
        queries = rng.normal(size=(20, 2))
        assert np.all(est.density(queries) <= exact.density(queries) + 1e-15)

    def test_radius_property(self, small_gauss):
        est = RadialKDE(radius_in_bandwidths=2.5).fit(small_gauss)
        assert est.radius == 2.5


class TestValidation:
    def test_needs_radius_or_hint(self):
        with pytest.raises(ValueError, match="radius_in_bandwidths or"):
            RadialKDE()

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            RadialKDE(radius_in_bandwidths=-1.0)

    def test_requires_fit(self):
        est = RadialKDE(radius_in_bandwidths=1.0)
        with pytest.raises(RuntimeError, match="not fitted"):
            est.density(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="not fitted"):
            __ = est.radius

    def test_kernel_evaluations_counted(self, small_gauss):
        est = RadialKDE(radius_in_bandwidths=1.0).fit(small_gauss)
        est.density(np.zeros((1, 2)))
        assert est.kernel_evaluations > 0
        assert est.kernel_evaluations < small_gauss.shape[0]
