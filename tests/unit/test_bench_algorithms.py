"""Unit tests for the benchmark algorithm drivers."""

import numpy as np
import pytest

from repro.bench.algorithms import (
    AMORTIZED_ALGORITHMS,
    pilot_threshold,
    run_amortized,
    train_for_queries,
)
from repro.baselines.simple import NaiveKDE
from repro.quantile.order_stats import quantile_of_sorted


@pytest.fixture(scope="module")
def workload():
    return np.random.default_rng(3).normal(size=(1200, 2))


class TestPilotThreshold:
    def test_close_to_full_quantile(self, workload):
        naive = NaiveKDE().fit(workload)
        densities = naive.density(workload) - naive.kernel.max_value / len(workload)
        exact = quantile_of_sorted(np.sort(densities), 0.1)
        pilot = pilot_threshold(workload, 0.1, pilot_size=600, seed=0)
        assert pilot == pytest.approx(exact, rel=0.3)

    def test_pilot_larger_than_n_uses_all(self, workload):
        value = pilot_threshold(workload, 0.1, pilot_size=10_000, seed=0)
        assert np.isfinite(value)


class TestRunAmortized:
    @pytest.mark.parametrize("name", AMORTIZED_ALGORITHMS)
    def test_runs_and_labels_everything(self, workload, name):
        run = run_amortized(name, workload, p=0.05, seed=0)
        assert run.items_classified == workload.shape[0]
        assert run.labels.shape == (workload.shape[0],)
        assert set(np.unique(run.labels)).issubset({0, 1})
        assert run.total_seconds > 0
        assert run.amortized_throughput > 0

    def test_low_fraction_matches_p(self, workload):
        for name in ("tkdc", "simple"):
            run = run_amortized(name, workload, p=0.1, seed=0)
            low = float(np.mean(run.labels == 0))
            assert low == pytest.approx(0.1, abs=0.02)

    def test_unknown_algorithm(self, workload):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_amortized("magic", workload)

    def test_kernels_per_item(self, workload):
        run = run_amortized("simple", workload, seed=0)
        # Naive KDE evaluates every pair (plus the pilot has none here).
        assert run.kernels_per_item == pytest.approx(workload.shape[0], rel=0.01)


class TestTrainForQueries:
    @pytest.mark.parametrize("name", ["tkdc", "simple", "sklearn", "rkde", "nocut", "ks"])
    def test_classify_fresh_queries(self, workload, name, rng):
        trained = train_for_queries(name, workload, p=0.05, seed=0)
        queries = rng.normal(size=(40, 2))
        run = trained.classify(queries)
        assert run.items_classified == 40
        assert run.classify_seconds >= 0.0
        assert run.labels.shape == (40,)

    def test_center_and_outlier_agree_across_algorithms(self, workload):
        queries = np.array([[0.0, 0.0], [7.0, 7.0]])
        for name in ("tkdc", "simple", "rkde"):
            trained = train_for_queries(name, workload, p=0.05, seed=0)
            labels = trained.classify(queries).labels
            assert labels[0] == 1, name
            assert labels[1] == 0, name

    def test_kernel_evaluations_delta(self, workload, rng):
        trained = train_for_queries("simple", workload, p=0.05, seed=0)
        run = trained.classify(rng.normal(size=(5, 2)))
        assert run.kernel_evaluations == 5 * workload.shape[0]
