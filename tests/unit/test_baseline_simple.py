"""Unit tests for the naive exact KDE baseline."""

import numpy as np
import pytest

from repro.baselines.simple import NaiveKDE
from tests.conftest import exact_density


class TestDensity:
    def test_matches_manual_sum(self, small_gauss, rng):
        est = NaiveKDE().fit(small_gauss)
        queries = rng.normal(size=(10, 2))
        scaled_points = est.kernel.scale(small_gauss)
        scaled_queries = est.kernel.scale(queries)
        got = est.density(queries)
        for i in range(10):
            assert got[i] == pytest.approx(
                exact_density(scaled_points, est.kernel, scaled_queries[i])
            )

    def test_integrates_to_one_monte_carlo(self, small_gauss, rng):
        est = NaiveKDE().fit(small_gauss)
        box = 12.0
        samples = rng.uniform(-box / 2, box / 2, size=(40_000, 2))
        estimate = float(np.mean(est.density(samples))) * box * box
        assert estimate == pytest.approx(1.0, abs=0.05)

    def test_density_positive(self, small_gauss, rng):
        est = NaiveKDE().fit(small_gauss)
        assert np.all(est.density(rng.normal(size=(20, 2)) * 5) >= 0)

    def test_chunking_consistency(self, rng):
        # Force multiple chunks by exceeding the pair block cap.
        data = rng.normal(size=(500, 2))
        est = NaiveKDE().fit(data)
        queries = rng.normal(size=(50, 2))
        all_at_once = est.density(queries)
        one_by_one = np.array([est.density(q[None, :])[0] for q in queries])
        np.testing.assert_allclose(all_at_once, one_by_one)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            NaiveKDE().density(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="not fitted"):
            __ = NaiveKDE().kernel


class TestAccounting:
    def test_kernel_evaluation_count(self, small_gauss):
        est = NaiveKDE().fit(small_gauss)
        est.density(np.zeros((3, 2)))
        assert est.kernel_evaluations == 3 * small_gauss.shape[0]

    def test_bandwidth_scale_passthrough(self, small_gauss):
        wide = NaiveKDE(bandwidth_scale=2.0).fit(small_gauss)
        base = NaiveKDE().fit(small_gauss)
        np.testing.assert_allclose(wide.kernel.bandwidth, 2.0 * base.kernel.bandwidth)

    def test_epanechnikov_variant(self, small_gauss):
        est = NaiveKDE(kernel_name="epanechnikov").fit(small_gauss)
        assert est.density(np.zeros((1, 2)))[0] > 0

    def test_unnormalized_variant(self, small_gauss):
        est = NaiveKDE(normalize=False).fit(small_gauss)
        assert est.kernel.max_value == 1.0
