"""Unit tests for the ball-tree index and its traversal compatibility."""

import math

import numpy as np
import pytest

from repro.core.bounds import bound_density
from repro.core.stats import TraversalStats
from repro.index.balltree import BallTree
from tests.conftest import exact_density


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            BallTree(np.empty((0, 2)))

    def test_rejects_bad_leaf_size(self, small_gauss):
        with pytest.raises(ValueError, match="leaf_size"):
            BallTree(small_gauss, leaf_size=0)

    def test_counts_partition(self, small_gauss):
        tree = BallTree(small_gauss, leaf_size=8)
        assert sum(leaf.count for leaf in tree.leaves()) == tree.size

    def test_indices_are_permutation(self, small_gauss):
        tree = BallTree(small_gauss)
        assert sorted(tree.indices.tolist()) == list(range(small_gauss.shape[0]))

    def test_identical_points_stay_leaf(self):
        tree = BallTree(np.ones((50, 3)), leaf_size=4)
        assert tree.root.is_leaf
        assert tree.root.radius == 0.0


class TestBallInvariants:
    def test_every_point_inside_its_balls(self, small_gauss):
        tree = BallTree(small_gauss, leaf_size=8)
        for node in tree.iter_nodes():
            slab = tree.points[node.start : node.end]
            dists = np.sqrt(np.sum((slab - node.center) ** 2, axis=1))
            assert np.all(dists <= node.radius + 1e-12)

    def test_radius_is_tight(self, small_gauss):
        tree = BallTree(small_gauss, leaf_size=8)
        for node in tree.iter_nodes():
            slab = tree.points[node.start : node.end]
            dists = np.sqrt(np.sum((slab - node.center) ** 2, axis=1))
            assert node.radius == pytest.approx(float(dists.max()))

    def test_node_bounds_bracket_contributions(self, small_gauss, unit_kernel_2d, rng):
        tree = BallTree(small_gauss, leaf_size=8)
        inv_n = 1.0 / tree.size
        for __ in range(10):
            q = rng.normal(size=2) * 2
            for node in tree.iter_nodes():
                lower, upper = tree.node_bounds(node, q, unit_kernel_2d, inv_n)
                slab = tree.points[node.start : node.end]
                actual = unit_kernel_2d.sum_at(slab, q) * inv_n
                assert lower <= actual + 1e-12
                assert upper >= actual - 1e-12


class TestTraversalCompatibility:
    def test_bound_density_exact_on_exhaustion(self, small_gauss, unit_kernel_2d, rng):
        tree = BallTree(small_gauss, leaf_size=8)
        for __ in range(10):
            q = rng.normal(size=2) * 2
            result = bound_density(
                tree, unit_kernel_2d, q, 0.0, math.inf, 0.01, TraversalStats(),
                use_threshold_rule=False, use_tolerance_rule=False,
            )
            truth = exact_density(small_gauss, unit_kernel_2d, q)
            assert result.lower == pytest.approx(truth, rel=1e-9)
            assert result.upper == pytest.approx(truth, rel=1e-9)

    def test_bound_density_prunes_with_threshold(self, small_gauss, unit_kernel_2d):
        tree = BallTree(small_gauss, leaf_size=8)
        stats = TraversalStats()
        result = bound_density(
            tree, unit_kernel_2d, np.zeros(2), 0.001, 0.001, 0.01, stats
        )
        truth = exact_density(small_gauss, unit_kernel_2d, np.zeros(2))
        assert result.lower <= truth <= result.upper
        assert stats.kernel_evaluations < small_gauss.shape[0]

    def test_classification_agrees_with_kdtree(self, medium_gauss, unit_kernel_2d, rng):
        from repro.index.kdtree import KDTree

        kd = KDTree(medium_gauss, leaf_size=16)
        ball = BallTree(medium_gauss, leaf_size=16)
        threshold = 0.01
        queries = rng.normal(size=(100, 2)) * 2
        for q in queries:
            kd_result = bound_density(
                kd, unit_kernel_2d, q, threshold, threshold, 0.01, TraversalStats()
            )
            ball_result = bound_density(
                ball, unit_kernel_2d, q, threshold, threshold, 0.01, TraversalStats()
            )
            truth = exact_density(medium_gauss, unit_kernel_2d, q)
            if abs(truth - threshold) > 0.01 * threshold:
                assert (kd_result.midpoint > threshold) == (
                    ball_result.midpoint > threshold
                )
