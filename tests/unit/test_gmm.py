"""Unit tests for the parametric GMM baseline."""

import numpy as np
import pytest

from repro.baselines.gmm import GaussianMixtureKDE
from repro.baselines.simple import NaiveKDE


@pytest.fixture(scope="module")
def two_blobs():
    rng = np.random.default_rng(4)
    a = rng.normal(size=(600, 2)) * 0.4 + [-3.0, 0.0]
    b = rng.normal(size=(600, 2)) * 0.4 + [3.0, 0.0]
    return np.concatenate([a, b])


class TestFit:
    def test_recovers_two_modes(self, two_blobs):
        model = GaussianMixtureKDE(n_components=2, seed=0).fit(two_blobs)
        means = np.sort(model._means[:, 0])  # noqa: SLF001
        assert means[0] == pytest.approx(-3.0, abs=0.3)
        assert means[1] == pytest.approx(3.0, abs=0.3)

    def test_weights_sum_to_one(self, two_blobs):
        model = GaussianMixtureKDE(n_components=3, seed=0).fit(two_blobs)
        assert float(np.sum(model._weights)) == pytest.approx(1.0)  # noqa: SLF001

    def test_loglik_improves_with_components(self, two_blobs):
        one = GaussianMixtureKDE(n_components=1, seed=0).fit(two_blobs)
        two = GaussianMixtureKDE(n_components=2, seed=0).fit(two_blobs)
        assert two.log_likelihood_ > one.log_likelihood_

    def test_validation(self, two_blobs):
        with pytest.raises(ValueError):
            GaussianMixtureKDE(n_components=0)
        with pytest.raises(ValueError, match="at least"):
            GaussianMixtureKDE(n_components=10).fit(two_blobs[:5])
        with pytest.raises(RuntimeError, match="not fitted"):
            GaussianMixtureKDE().density(np.zeros((1, 2)))


class TestDensity:
    def test_integrates_to_one_monte_carlo(self, two_blobs, rng):
        model = GaussianMixtureKDE(n_components=2, seed=0).fit(two_blobs)
        box_lo, box_hi = np.array([-6.0, -3.0]), np.array([6.0, 3.0])
        samples = rng.uniform(box_lo, box_hi, size=(200_000, 2))
        volume = float(np.prod(box_hi - box_lo))
        estimate = float(np.mean(model.density(samples))) * volume
        assert estimate == pytest.approx(1.0, abs=0.05)

    def test_matches_analytic_truth_when_well_specified(self, two_blobs):
        """When the parametric form is right, GMM recovers the *true*
        density (unlike KDE, whose smoothing bias flattens peaks)."""
        gmm = GaussianMixtureKDE(n_components=2, seed=0).fit(two_blobs)
        # True mode density of a 0.5-weighted isotropic N(mu, 0.4^2 I).
        truth = 0.5 / (2.0 * np.pi * 0.4**2)
        modes = np.array([[-3.0, 0.0], [3.0, 0.0]])
        np.testing.assert_allclose(gmm.density(modes), truth, rtol=0.15)

    def test_misspecified_components_blur_structure(self, rng):
        """The paper's claim: a k-component model cannot capture > k
        modes — the gaps between modes and the modes themselves become
        indistinguishable, exactly what breaks density classification."""
        centers = np.array([[-6.0, 0.0], [-2.0, 0.0], [2.0, 0.0], [6.0, 0.0],
                            [0.0, 4.0], [0.0, -4.0]])
        gaps = np.array([[-4.0, 0.0], [0.0, 0.0], [4.0, 0.0], [0.0, 2.0]])
        assignment = rng.integers(0, 6, size=3000)
        data = centers[assignment] + rng.normal(size=(3000, 2)) * 0.3
        gmm = GaussianMixtureKDE(n_components=2, seed=0, n_restarts=2).fit(data)
        kde = NaiveKDE().fit(data)
        gmm_contrast = float(gmm.density(gaps).mean() / gmm.density(centers).mean())
        kde_contrast = float(kde.density(gaps).mean() / kde.density(centers).mean())
        # KDE keeps gaps far sparser than modes; the 2-component GMM
        # cannot (it even rates gaps *denser* here).
        assert kde_contrast < 0.4
        assert gmm_contrast > 2 * kde_contrast

    def test_kernel_evaluations_counted(self, two_blobs):
        model = GaussianMixtureKDE(n_components=2, seed=0).fit(two_blobs)
        before = model.kernel_evaluations
        model.density(np.zeros((10, 2)))
        assert model.kernel_evaluations == before + 20
