"""Unit tests for k-nearest-neighbour search."""

import numpy as np
import pytest

from repro.index.kdtree import KDTree
from repro.index.knn import k_nearest, k_nearest_all


def brute_force_knn(data, query, k, exclude=None):
    sq = np.sum((data - query) ** 2, axis=1)
    order = np.argsort(sq, kind="stable")
    if exclude is not None:
        order = order[order != exclude]
    return order[:k], sq[order[:k]]


class TestKNearest:
    def test_matches_brute_force(self, small_gauss, rng):
        tree = KDTree(small_gauss, leaf_size=8)
        for __ in range(20):
            q = rng.normal(size=2) * 2
            k = int(rng.integers(1, 10))
            __, expected_sq = brute_force_knn(small_gauss, q, k)
            idx, sq = k_nearest(tree, q, k)
            np.testing.assert_allclose(np.sort(sq), np.sort(expected_sq))
            # Distances of returned indices match.
            actual = np.sum((small_gauss[idx] - q) ** 2, axis=1)
            np.testing.assert_allclose(actual, sq)

    def test_sorted_ascending(self, small_gauss):
        tree = KDTree(small_gauss)
        __, sq = k_nearest(tree, np.zeros(2), 15)
        assert np.all(np.diff(sq) >= 0)

    def test_exclude_self(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=4)
        idx, sq = k_nearest(tree, small_gauss[7], 3, exclude_index=7)
        assert 7 not in idx
        # Without exclusion the nearest neighbour is the point itself.
        idx_with, sq_with = k_nearest(tree, small_gauss[7], 1)
        assert idx_with[0] == 7
        assert sq_with[0] == 0.0

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(20, 3))
        tree = KDTree(data, leaf_size=4)
        idx, __ = k_nearest(tree, np.zeros(3), 20)
        assert sorted(idx.tolist()) == list(range(20))

    def test_rejects_bad_k(self, small_gauss):
        tree = KDTree(small_gauss)
        with pytest.raises(ValueError):
            k_nearest(tree, np.zeros(2), 0)
        with pytest.raises(ValueError):
            k_nearest(tree, np.zeros(2), small_gauss.shape[0] + 1)

    def test_duplicates_handled(self):
        data = np.repeat(np.array([[0.0, 0.0], [5.0, 5.0]]), 10, axis=0)
        tree = KDTree(data, leaf_size=4)
        idx, sq = k_nearest(tree, np.array([0.0, 0.0]), 10)
        assert np.all(sq == 0.0)
        assert len(set(idx.tolist())) == 10  # distinct duplicate points


class TestKNearestAll:
    def test_matches_per_point_queries(self, rng):
        data = rng.normal(size=(60, 2))
        tree = KDTree(data, leaf_size=8)
        all_idx, all_sq = k_nearest_all(tree, 4)
        for i in range(60):
            __, expected_sq = brute_force_knn(data, data[i], 4, exclude=i)
            np.testing.assert_allclose(all_sq[i], expected_sq)

    def test_self_not_among_neighbours(self, rng):
        data = rng.normal(size=(40, 2))
        tree = KDTree(data)
        all_idx, __ = k_nearest_all(tree, 5)
        for i in range(40):
            assert i not in all_idx[i]

    def test_include_self(self, rng):
        data = rng.normal(size=(30, 2))
        tree = KDTree(data)
        all_idx, all_sq = k_nearest_all(tree, 1, self_exclude=False)
        # Each point's nearest neighbour (self included) is itself.
        np.testing.assert_array_equal(all_idx[:, 0], np.arange(30))
        np.testing.assert_allclose(all_sq[:, 0], 0.0)
