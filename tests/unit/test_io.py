"""Unit tests for the persistence helpers."""

import json

import numpy as np
import pytest

from repro.io.datasets import (
    cached_dataset,
    export_csv,
    import_csv,
    load_dataset,
    save_dataset,
)
from repro.io.results import load_results, results_summary


class TestNpzRoundTrip:
    def test_data_round_trip(self, tmp_path, rng):
        data = rng.normal(size=(50, 3))
        path = save_dataset(tmp_path / "points", data)
        loaded, metadata = load_dataset(path)
        np.testing.assert_allclose(loaded, data)
        assert metadata == {}

    def test_metadata_round_trip(self, tmp_path):
        data = np.zeros((2, 2))
        path = save_dataset(tmp_path / "points", data, metadata={"seed": 7, "name": "x"})
        __, metadata = load_dataset(path)
        assert metadata == {"seed": 7, "name": "x"}

    def test_suffix_enforced(self, tmp_path):
        path = save_dataset(tmp_path / "points.bin", np.zeros((1, 1)))
        assert path.suffix == ".npz"

    def test_load_without_suffix(self, tmp_path):
        save_dataset(tmp_path / "points", np.ones((2, 2)))
        loaded, __ = load_dataset(tmp_path / "points")
        assert loaded.shape == (2, 2)

    def test_rejects_foreign_npz(self, tmp_path):
        foreign = tmp_path / "other.npz"
        np.savez(foreign, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro dataset"):
            load_dataset(foreign)


class TestCsv:
    def test_round_trip(self, tmp_path, rng):
        data = rng.normal(size=(20, 4))
        path = export_csv(tmp_path / "points.csv", data)
        np.testing.assert_allclose(import_csv(path), data)

    def test_header_round_trip(self, tmp_path):
        data = np.arange(6.0).reshape(2, 3)
        path = export_csv(tmp_path / "points.csv", data, column_names=["a", "b", "c"])
        assert path.read_text().splitlines()[0] == "a,b,c"
        np.testing.assert_allclose(import_csv(path, has_header=True), data)

    def test_rejects_wrong_header_length(self, tmp_path):
        with pytest.raises(ValueError, match="column names"):
            export_csv(tmp_path / "x.csv", np.zeros((2, 3)), column_names=["only"])


class TestCachedDataset:
    def test_generates_once(self, tmp_path):
        calls = []

        def generate():
            calls.append(1)
            return np.full((4, 2), 3.0)

        first = cached_dataset("demo", generate, tmp_path)
        second = cached_dataset("demo", generate, tmp_path)
        assert len(calls) == 1
        np.testing.assert_allclose(first, second)


class TestResults:
    def test_load_results(self, tmp_path):
        rows = [{"algo": "tkdc", "qps": 10.0}, {"algo": "simple", "qps": 1.0}]
        (tmp_path / "exp.json").write_text(json.dumps(rows))
        assert load_results("exp", tmp_path) == rows

    def test_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results("nope", tmp_path)

    def test_summary_means(self):
        rows = [
            {"algo": "a", "v": 1.0},
            {"algo": "a", "v": 3.0},
            {"algo": "b", "v": 10.0},
        ]
        assert results_summary(rows, "algo", "v") == {"a": 2.0, "b": 10.0}

    def test_summary_skips_nan_and_missing(self):
        rows = [
            {"algo": "a", "v": float("nan")},
            {"algo": "a"},
            {"algo": "a", "v": 4.0},
        ]
        assert results_summary(rows, "algo", "v") == {"a": 4.0}
