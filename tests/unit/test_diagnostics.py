"""Unit tests for per-query diagnostics."""

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.analysis.diagnostics import QueryProfile, WorkloadProfile, profile_queries


@pytest.fixture(scope="module")
def fitted():
    data = np.random.default_rng(1).normal(size=(2000, 2))
    return data, TKDCClassifier(TKDCConfig(p=0.05, seed=1)).fit(data)


class TestProfileQueries:
    def test_profiles_every_query(self, fitted, rng):
        __, clf = fitted
        queries = rng.normal(size=(40, 2)) * 2
        profile = profile_queries(clf, queries)
        assert profile.n_queries == 40

    def test_far_point_is_cheap_and_far(self, fitted):
        __, clf = fitted
        profile = profile_queries(clf, np.array([[50.0, 50.0]]))
        only = profile.profiles[0]
        assert only.kernel_evaluations == 0
        assert not only.is_near
        assert only.outcome == "threshold_low"

    def test_near_threshold_point_is_near(self, fitted, rng):
        data, clf = fitted
        # Points ~2 sigma out sit near the 5% threshold.
        ring = rng.normal(size=(100, 2))
        ring = 2.0 * ring / np.linalg.norm(ring, axis=1, keepdims=True)
        profile = profile_queries(clf, ring)
        assert profile.near_fraction > 0.2

    def test_grid_hits_recorded(self, fitted):
        __, clf = fitted
        profile = profile_queries(clf, np.zeros((5, 2)))
        assert profile.outcome_counts.get("grid", 0) + profile.outcome_counts.get(
            "threshold_high", 0
        ) == 5

    def test_does_not_mutate_classifier_stats(self, fitted, rng):
        __, clf = fitted
        before = clf.stats.queries
        profile_queries(clf, rng.normal(size=(10, 2)))
        assert clf.stats.queries == before

    def test_requires_fitted(self):
        with pytest.raises(ValueError, match="fitted"):
            profile_queries(TKDCClassifier(), np.zeros((1, 2)))


class TestWorkloadProfile:
    def test_percentiles_and_summary(self):
        profiles = tuple(
            QueryProfile(k, 1, "tolerance") for k in (0, 0, 10, 100)
        )
        workload = WorkloadProfile(profiles)
        assert workload.near_fraction == 0.5
        pct = workload.kernel_percentiles((50.0, 100.0))
        assert pct[100.0] == 100.0
        text = workload.summary()
        assert "near fraction" in text
        assert "tolerance=4" in text

    def test_empty_profile(self):
        workload = WorkloadProfile(())
        assert workload.near_fraction == 0.0
        assert workload.kernel_percentiles() == {50.0: 0.0, 90.0: 0.0, 99.0: 0.0,
                                                 100.0: 0.0}
