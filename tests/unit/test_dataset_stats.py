"""Unit tests for dataset summary statistics."""

import numpy as np
import pytest

from repro.datasets.stats import (
    DatasetSummary,
    duplicate_fraction,
    intrinsic_dimension,
    summarize,
    tail_weight,
)


class TestIntrinsicDimension:
    def test_isotropic_gaussian(self, rng):
        data = rng.normal(size=(3000, 5))
        assert intrinsic_dimension(data) == pytest.approx(5.0, abs=0.3)

    def test_low_rank_embedding(self, rng):
        latent = rng.normal(size=(2000, 2))
        mixing = rng.normal(size=(2, 20))
        data = latent @ mixing + rng.normal(scale=1e-4, size=(2000, 20))
        assert intrinsic_dimension(data) < 3.0

    def test_degenerate_constant(self):
        assert intrinsic_dimension(np.ones((50, 3))) == 0.0

    def test_mnist_simulator_low_intrinsic(self):
        from repro.datasets.generators import make_mnist

        data = make_mnist(400, seed=0)
        assert intrinsic_dimension(data) < 60  # 784 ambient dims


class TestTailWeight:
    def test_gaussian_reference(self, rng):
        data = rng.normal(size=(20_000, 2))
        assert 2.0 < tail_weight(data) < 4.5

    def test_heavy_tails_much_larger(self, rng):
        gaussian = rng.normal(size=(20_000, 2))
        heavy = rng.standard_t(2.0, size=(20_000, 2))
        assert tail_weight(heavy) > 3 * tail_weight(gaussian)

    def test_all_identical(self):
        assert tail_weight(np.ones((100, 2))) == 1.0


class TestDuplicateFraction:
    def test_no_duplicates(self, rng):
        assert duplicate_fraction(rng.normal(size=(100, 2))) == 0.0

    def test_half_duplicates(self, rng):
        base = rng.normal(size=(50, 2))
        data = np.concatenate([base, base])
        assert duplicate_fraction(data) == pytest.approx(0.5)


class TestSummarize:
    def test_full_summary(self, rng):
        data = rng.normal(size=(500, 3))
        summary = summarize(data)
        assert isinstance(summary, DatasetSummary)
        assert summary.n == 500
        assert summary.dim == 3
        assert summary.mean_std == pytest.approx(1.0, abs=0.15)
        row = summary.as_row()
        assert set(row) == {"n", "d", "mean_std", "intrinsic_d", "tail_weight",
                            "dup_frac"}

    def test_rejects_dirty_data(self):
        with pytest.raises(ValueError, match="non-finite"):
            summarize(np.array([[1.0, float("nan")]]))
