"""Unit tests for range queries and radial kernel sums."""

import numpy as np
import pytest

from repro.index.kdtree import KDTree
from repro.index.traversal import points_within_radius, sum_kernel_within_radius
from repro.kernels.gaussian import GaussianKernel


@pytest.fixture
def tree(small_gauss):
    return KDTree(small_gauss, leaf_size=8)


class TestPointsWithinRadius:
    def test_matches_brute_force(self, tree, small_gauss, rng):
        for __ in range(10):
            q = rng.normal(size=2)
            radius = float(rng.uniform(0.1, 2.0))
            sq = np.sum((small_gauss - q) ** 2, axis=1)
            expected = set(np.flatnonzero(sq <= radius * radius).tolist())
            got = set(points_within_radius(tree, q, radius).tolist())
            assert got == expected

    def test_zero_radius(self, tree, small_gauss):
        # Radius 0 centred exactly on a data point returns that point.
        hits = points_within_radius(tree, small_gauss[0], 0.0)
        assert 0 in hits.tolist()

    def test_empty_result(self, tree):
        hits = points_within_radius(tree, np.array([100.0, 100.0]), 1.0)
        assert hits.shape == (0,)

    def test_full_coverage(self, tree, small_gauss):
        hits = points_within_radius(tree, np.zeros(2), 1000.0)
        assert hits.shape[0] == small_gauss.shape[0]

    def test_rejects_negative_radius(self, tree):
        with pytest.raises(ValueError, match="non-negative"):
            points_within_radius(tree, np.zeros(2), -1.0)


class TestSumKernelWithinRadius:
    def test_matches_brute_force(self, tree, small_gauss, unit_kernel_2d, rng):
        for __ in range(10):
            q = rng.normal(size=2)
            radius = float(rng.uniform(0.5, 3.0))
            sq = np.sum((small_gauss - q) ** 2, axis=1)
            inside = sq <= radius * radius
            expected = float(np.sum(unit_kernel_2d.value(sq[inside])))
            total, evals = sum_kernel_within_radius(tree, unit_kernel_2d, q, radius)
            assert total == pytest.approx(expected)
            assert evals == int(np.count_nonzero(inside))

    def test_large_radius_equals_full_sum(self, tree, small_gauss, unit_kernel_2d):
        q = np.array([0.5, -0.5])
        total, evals = sum_kernel_within_radius(tree, unit_kernel_2d, q, 1000.0)
        assert total == pytest.approx(unit_kernel_2d.sum_at(small_gauss, q))
        assert evals == small_gauss.shape[0]

    def test_empty_region(self, tree, unit_kernel_2d):
        total, evals = sum_kernel_within_radius(
            tree, unit_kernel_2d, np.array([50.0, 50.0]), 1.0
        )
        assert total == 0.0
        assert evals == 0

    def test_rejects_negative_radius(self, tree, unit_kernel_2d):
        with pytest.raises(ValueError):
            sum_kernel_within_radius(tree, unit_kernel_2d, np.zeros(2), -0.5)


class TestGaussianKernelFixtureConsistency:
    def test_monotone_in_radius(self, tree, unit_kernel_2d):
        q = np.zeros(2)
        totals = [
            sum_kernel_within_radius(tree, unit_kernel_2d, q, r)[0]
            for r in (0.5, 1.0, 2.0, 4.0)
        ]
        assert totals == sorted(totals)
