"""Execute the runnable examples embedded in docstrings.

Docstring examples are part of the public documentation; this runner
keeps them honest.
"""

import doctest

import pytest

import repro.analysis.conformal
import repro.bench.charts
import repro.bench.harness
import repro.core.bands
import repro.core.classifier
import repro.core.incremental
import repro.io.datasets
import repro.kernels.crossval

MODULES = [
    repro.core.classifier,
    repro.core.bands,
    repro.core.incremental,
    repro.analysis.conformal,
    repro.kernels.crossval,
    repro.io.datasets,
    repro.bench.charts,
    repro.bench.harness,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the module is expected to carry examples
