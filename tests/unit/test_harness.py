"""Unit tests for the benchmark timing/fitting helpers."""

import numpy as np
import pytest

from repro.bench.harness import Timer, fit_loglog_slope, human_rate, measure, throughput


class TestTimer:
    def test_records_elapsed(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed > 0.0

    def test_measure_returns_result(self):
        result, elapsed = measure(lambda: 42)
        assert result == 42
        assert elapsed >= 0.0


class TestThroughput:
    def test_basic(self):
        assert throughput(100, 2.0) == 50.0

    def test_zero_duration_guard(self):
        assert throughput(100, 0.0) > 0

    def test_rejects_negative_items(self):
        with pytest.raises(ValueError):
            throughput(-1, 1.0)


class TestLogLogSlope:
    def test_power_law_recovered(self):
        xs = np.array([1e3, 1e4, 1e5, 1e6])
        ys = 7.0 * xs**-0.5
        assert fit_loglog_slope(xs, ys) == pytest.approx(-0.5)

    def test_linear_scaling(self):
        xs = np.array([10.0, 100.0, 1000.0])
        assert fit_loglog_slope(xs, 3.0 * xs) == pytest.approx(1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            fit_loglog_slope(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_loglog_slope(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            fit_loglog_slope(np.array([1.0, 2.0]), np.array([0.0, 1.0]))


class TestHumanRate:
    def test_formats(self):
        assert human_rate(55_200) == "55.2k"
        assert human_rate(6_360_000) == "6.36M"
        assert human_rate(12.6) == "12.6"
