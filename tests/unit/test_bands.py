"""Unit tests for the multi-threshold band classifier."""

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.core.bands import BandClassifier, band_of


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(3000, 2))
    return data, TKDCClassifier(TKDCConfig(seed=0)).fit(data)


class TestBandOf:
    def test_below_all(self):
        assert band_of(0.5, [1.0, 2.0, 3.0]) == 0

    def test_between(self):
        assert band_of(1.5, [1.0, 2.0, 3.0]) == 1
        assert band_of(2.5, [1.0, 2.0, 3.0]) == 2

    def test_above_all(self):
        assert band_of(9.0, [1.0, 2.0, 3.0]) == 3

    def test_strictness_at_threshold(self):
        assert band_of(1.0, [1.0]) == 0


class TestValidation:
    def test_requires_fitted(self):
        with pytest.raises(ValueError, match="fitted"):
            BandClassifier(TKDCClassifier(), (0.5,))

    def test_requires_training_scores(self, fitted):
        data, __ = fitted
        clf = TKDCClassifier(
            TKDCConfig(seed=0, refine_threshold=False, bootstrap_s0=500)
        ).fit(data)
        with pytest.raises(ValueError, match="refine_threshold"):
            BandClassifier(clf, (0.5,))

    def test_rejects_empty_quantiles(self, fitted):
        __, clf = fitted
        with pytest.raises(ValueError, match="at least one"):
            BandClassifier(clf, ())

    def test_rejects_unsorted(self, fitted):
        __, clf = fitted
        with pytest.raises(ValueError, match="ascending"):
            BandClassifier(clf, (0.9, 0.1))

    def test_rejects_out_of_range(self, fitted):
        __, clf = fitted
        with pytest.raises(ValueError, match="in \\(0, 1\\)"):
            BandClassifier(clf, (0.0, 0.5))


class TestClassifyBands:
    def test_band_count(self, fitted):
        __, clf = fitted
        bands = BandClassifier(clf, (0.1, 0.5, 0.9))
        assert bands.n_bands == 4

    def test_matches_exact_bands_outside_eps(self, fitted, rng):
        data, clf = fitted
        bands = BandClassifier(clf, (0.1, 0.5, 0.9))
        queries = rng.normal(size=(200, 2)) * 1.5
        got = bands.classify_bands(queries)
        naive = NaiveKDE().fit(data)
        exact = naive.density(queries)
        eps = clf.config.epsilon
        for density, band in zip(exact, got):
            # Only thresholds the density is eps-close to may be crossed.
            near_some = np.any(
                np.abs(density - bands.thresholds) <= eps * bands.thresholds
            )
            if not near_some:
                assert band == band_of(density, bands.thresholds)

    def test_radial_monotonicity(self, fitted):
        """Bands decrease moving outward from a unimodal center."""
        __, clf = fitted
        bands = BandClassifier(clf, (0.2, 0.5, 0.8))
        radii = np.array([0.0, 1.0, 2.0, 3.5])
        queries = np.column_stack([radii, np.zeros_like(radii)])
        got = bands.classify_bands(queries)
        assert list(got) == sorted(got, reverse=True)
        assert got[0] == 3  # center is the densest band
        assert got[-1] == 0  # far out is the sparsest

    def test_single_threshold_agrees_with_classify(self, fitted, rng):
        data, clf = fitted
        bands = BandClassifier(clf, (clf.config.p,))
        queries = rng.normal(size=(100, 2)) * 2
        got = bands.classify_bands(queries)
        labels = clf.predict(queries)
        # Band 1 == HIGH; allow eps-band ties only.
        naive = NaiveKDE().fit(data)
        exact = naive.density(queries)
        eps = clf.config.epsilon
        t = bands.thresholds[0]
        for density, band, label in zip(exact, got, labels):
            if abs(density - t) > 2 * eps * t:
                assert band == label

    def test_training_bands_fractions(self, fitted):
        __, clf = fitted
        bands = BandClassifier(clf, (0.25, 0.75))
        training = bands.training_bands()
        fractions = [float(np.mean(training == b)) for b in range(3)]
        assert fractions[0] == pytest.approx(0.25, abs=0.02)
        assert fractions[1] == pytest.approx(0.50, abs=0.02)
        assert fractions[2] == pytest.approx(0.25, abs=0.02)

    def test_cheaper_than_per_threshold_runs(self, fitted, rng):
        """One band traversal beats k separate threshold traversals."""
        from repro.core.stats import TraversalStats
        from repro.core.bands import bound_band
        from repro.core.bounds import bound_density

        data, clf = fitted
        bands = BandClassifier(clf, (0.1, 0.5, 0.9))
        queries = clf.kernel.scale(rng.normal(size=(50, 2)))
        band_stats = TraversalStats()
        for q in queries:
            bound_band(clf.tree, clf.kernel, q, bands.thresholds, 0.01, band_stats)
        separate_stats = TraversalStats()
        for q in queries:
            for t in bands.thresholds:
                bound_density(clf.tree, clf.kernel, q, t, t, 0.01, separate_stats)
        assert band_stats.kernel_evaluations < separate_stats.kernel_evaluations
