"""Unit tests for the synthetic building blocks and dataset simulators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    make_galaxy_like,
    make_gauss,
    make_hep,
    make_home,
    make_iris_like,
    make_mnist,
    make_shuttle,
    make_sift,
    make_tmy3,
)
from repro.datasets.registry import DATASETS, DatasetSpec, load
from repro.datasets.synthetic import (
    GaussianMixture,
    MixtureComponent,
    filament_points,
    heavy_tail_noise,
    spread_counts,
)


class TestSpreadCounts:
    def test_sums_exactly(self):
        for total in (0, 1, 7, 100, 12345):
            counts = spread_counts(total, [0.5, 0.3, 0.2])
            assert sum(counts) == total

    def test_proportions_respected(self):
        counts = spread_counts(1000, [0.9, 0.1])
        assert counts == [900, 100]

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            spread_counts(10, [])
        with pytest.raises(ValueError):
            spread_counts(10, [0.0, 0.0])
        with pytest.raises(ValueError):
            spread_counts(-1, [1.0])


class TestMixture:
    def test_component_validation(self):
        with pytest.raises(ValueError, match="weight"):
            MixtureComponent(0.0, np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="scales"):
            MixtureComponent(1.0, np.zeros(2), np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="shape"):
            MixtureComponent(1.0, np.zeros(2), np.ones(3))

    def test_mixture_dimension_check(self):
        with pytest.raises(ValueError, match="dimensionality"):
            GaussianMixture([
                MixtureComponent(1.0, np.zeros(2), np.ones(2)),
                MixtureComponent(1.0, np.zeros(3), np.ones(3)),
            ])

    def test_empty_mixture_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            GaussianMixture([])

    def test_sampling_shape_and_location(self, rng):
        mixture = GaussianMixture([
            MixtureComponent(1.0, np.array([10.0, 0.0]), np.array([0.1, 0.1])),
        ])
        sample = mixture.sample(200, rng)
        assert sample.shape == (200, 2)
        assert np.allclose(sample.mean(axis=0), [10.0, 0.0], atol=0.1)

    def test_component_weights_respected(self, rng):
        mixture = GaussianMixture([
            MixtureComponent(0.9, np.array([-10.0]), np.array([0.1])),
            MixtureComponent(0.1, np.array([10.0]), np.array([0.1])),
        ])
        sample = mixture.sample(5000, rng)
        left_fraction = float(np.mean(sample < 0))
        assert left_fraction == pytest.approx(0.9, abs=0.03)


class TestHelpers:
    def test_filament_points_stay_near_segment(self, rng):
        pts = filament_points(np.zeros(2), np.array([10.0, 0.0]), 200, 0.01, rng)
        assert pts.shape == (200, 2)
        assert np.all(pts[:, 0] > -1.0) and np.all(pts[:, 0] < 11.0)
        assert np.all(np.abs(pts[:, 1]) < 0.2)

    def test_heavy_tail_noise_shape(self, rng):
        noise = heavy_tail_noise(100, 3, scale=2.0, dof=3.0, rng=rng)
        assert noise.shape == (100, 3)

    def test_heavy_tail_rejects_bad_dof(self, rng):
        with pytest.raises(ValueError):
            heavy_tail_noise(10, 2, 1.0, 0.0, rng)


class TestGenerators:
    @pytest.mark.parametrize("maker,expected_dim", [
        (make_gauss, 2), (make_tmy3, 8), (make_home, 10), (make_hep, 27),
        (make_sift, 128), (make_shuttle, 9),
    ])
    def test_shapes(self, maker, expected_dim):
        data = maker(300, seed=0)
        assert data.shape == (300, expected_dim)
        assert np.all(np.isfinite(data))

    def test_mnist_shape(self):
        data = make_mnist(100, seed=0)
        assert data.shape == (100, 784)
        assert np.all(data >= 0)  # pixel-like intensities

    def test_sift_non_negative(self):
        assert np.all(make_sift(200, seed=0) >= 0)

    def test_deterministic_given_seed(self):
        np.testing.assert_array_equal(make_shuttle(100, seed=5), make_shuttle(100, seed=5))

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_gauss(100, seed=0), make_gauss(100, seed=1))

    def test_shuttle_informative_columns_multimodal(self):
        """Columns 3 and 5 carry the multi-cluster structure."""
        data = make_shuttle(5000, seed=0)
        informative = data[:, [3, 5]]
        # Spread across multiple centers: std much larger than any single
        # cluster scale.
        assert np.all(np.std(informative, axis=0) > 10.0)

    def test_iris_like_bimodal(self):
        data = make_iris_like(600, seed=0)
        assert data.shape == (600, 2)
        # Two modes along sepal length (y axis here).
        assert np.std(data[:, 1]) > 0.5

    def test_galaxy_like(self):
        data = make_galaxy_like(1000, seed=0)
        assert data.shape == (1000, 2)

    def test_tmy3_dimension_override(self):
        assert make_tmy3(100, d=4, seed=0).shape == (100, 4)

    def test_gauss_is_standard_normal(self):
        data = make_gauss(20_000, d=3, seed=0)
        assert np.allclose(data.mean(axis=0), 0.0, atol=0.05)
        assert np.allclose(data.std(axis=0), 1.0, atol=0.05)


class TestRegistry:
    def test_table3_contents(self):
        assert set(DATASETS) == {"gauss", "tmy3", "home", "hep", "sift", "mnist", "shuttle"}
        assert DATASETS["hep"].paper_n == 10_500_000
        assert DATASETS["mnist"].dim == 784

    def test_load_explicit_n(self):
        data = load("gauss", n=123)
        assert data.shape == (123, 2)

    def test_load_scale_clamps(self):
        # shuttle: 43_500 * 0.0001 ~ 4 -> clamped to min_n.
        data = load("shuttle", scale=0.0001, min_n=500)
        assert data.shape[0] == 500
        # gauss: 100M * 0.5 -> clamped to max_n.
        data = load("gauss", scale=0.5, max_n=1000)
        assert data.shape[0] == 1000

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("nope")

    def test_spec_generate_with_dim(self):
        spec = DATASETS["tmy3"]
        assert spec.generate(50, d=4).shape == (50, 4)
