"""Unit tests for the Gaussian kernel."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.kernels.gaussian import GaussianKernel


class TestConstruction:
    def test_norm_constant_1d_unit_bandwidth(self):
        kernel = GaussianKernel(np.array([1.0]))
        assert kernel.norm_constant == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_norm_constant_2d_unit_bandwidth(self):
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        assert kernel.norm_constant == pytest.approx(1.0 / (2 * math.pi))

    def test_norm_constant_scales_with_bandwidth(self):
        narrow = GaussianKernel(np.array([0.5, 0.5]))
        wide = GaussianKernel(np.array([2.0, 2.0]))
        assert narrow.norm_constant == pytest.approx(16.0 * wide.norm_constant)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError, match="strictly positive"):
            GaussianKernel(np.array([1.0, 0.0]))
        with pytest.raises(ValueError, match="strictly positive"):
            GaussianKernel(np.array([-1.0]))

    def test_rejects_matrix_bandwidth(self):
        with pytest.raises(ValueError, match="1-d vector"):
            GaussianKernel(np.eye(2))

    def test_dim_matches_bandwidth(self):
        kernel = GaussianKernel(np.array([1.0, 2.0, 3.0]))
        assert kernel.dim == 3

    def test_unnormalized_constant_is_one(self):
        kernel = GaussianKernel(np.array([0.3, 0.7]), normalize=False)
        assert kernel.norm_constant == 1.0
        assert kernel.max_value == 1.0


class TestValues:
    def test_max_value_at_zero_distance(self):
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        assert kernel.value(0.0) == pytest.approx(kernel.max_value)

    def test_profile_is_one_at_zero(self):
        kernel = GaussianKernel(np.array([2.0]))
        assert kernel.profile(np.array(0.0)) == pytest.approx(1.0)

    def test_monotone_decreasing_in_sq_distance(self):
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        sq = np.linspace(0.0, 50.0, 100)
        values = kernel.value(sq)
        assert np.all(np.diff(values) <= 0)

    def test_matches_paper_equation_2(self):
        """K_H(x) = (2pi)^(-d/2) |H|^(-1/2) exp(-x^T H^-1 x / 2)."""
        h = np.array([0.5, 1.5])
        kernel = GaussianKernel(h)
        x = np.array([0.3, -0.8])
        det_h = float(np.prod(h**2))
        expected = (
            (2 * math.pi) ** -1.0 * det_h**-0.5
            * math.exp(-0.5 * float(np.sum(x**2 / h**2)))
        )
        sq_scaled = float(np.sum((x / h) ** 2))
        assert kernel.value(sq_scaled) == pytest.approx(expected)

    def test_integrates_to_one_1d(self):
        kernel = GaussianKernel(np.array([0.7]))
        total, __ = integrate.quad(lambda x: kernel.value((x / 0.7) ** 2), -10, 10)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_integrates_to_one_2d(self):
        h = np.array([0.8, 1.2])
        kernel = GaussianKernel(h)

        def integrand(y: float, x: float) -> float:
            sq = (x / h[0]) ** 2 + (y / h[1]) ** 2
            return float(kernel.value(sq))

        total, __ = integrate.dblquad(integrand, -6, 6, -8, 8)
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_infinite_support(self):
        kernel = GaussianKernel(np.array([1.0]))
        assert kernel.support_sq_radius == math.inf
        assert kernel.value(1e4) >= 0.0


class TestInverseProfile:
    def test_roundtrip(self):
        kernel = GaussianKernel(np.array([1.0]))
        for value in (1.0, 0.5, 0.01, 1e-9):
            sq = kernel.inverse_profile(value)
            assert kernel.profile(np.array(sq)) == pytest.approx(value)

    def test_rejects_out_of_range(self):
        kernel = GaussianKernel(np.array([1.0]))
        with pytest.raises(ValueError):
            kernel.inverse_profile(0.0)
        with pytest.raises(ValueError):
            kernel.inverse_profile(1.5)

    def test_cutoff_radius_guarantee(self):
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        radius = kernel.cutoff_radius(1e-6)
        assert kernel.value(radius**2) == pytest.approx(1e-6, rel=1e-9)

    def test_cutoff_radius_zero_when_above_max(self):
        kernel = GaussianKernel(np.array([1.0]))
        assert kernel.cutoff_radius(kernel.max_value * 2) == 0.0

    def test_cutoff_radius_rejects_non_positive(self):
        kernel = GaussianKernel(np.array([1.0]))
        with pytest.raises(ValueError):
            kernel.cutoff_radius(0.0)


class TestScaling:
    def test_scale_divides_by_bandwidth(self):
        kernel = GaussianKernel(np.array([2.0, 4.0]))
        points = np.array([[2.0, 4.0], [4.0, 8.0]])
        np.testing.assert_allclose(kernel.scale(points), [[1.0, 1.0], [2.0, 2.0]])

    def test_sum_at_matches_manual(self, rng):
        kernel = GaussianKernel(np.array([1.0, 1.0]))
        points = rng.normal(size=(50, 2))
        query = np.array([0.1, -0.2])
        manual = sum(
            float(kernel.value(float(np.sum((p - query) ** 2)))) for p in points
        )
        assert kernel.sum_at(points, query) == pytest.approx(manual)
