"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "fig16" in out
        assert "table3" in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out
        assert "#" in out  # the rendered HIGH region


class TestRun:
    def test_run_table3(self, capsys):
        assert main(["run", "table3"]) == 0
        out = capsys.readouterr().out
        assert "shuttle" in out

    def test_run_with_overrides(self, capsys):
        assert main(["run", "table2", "--n", "800", "--p", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "tkdc" in out

    def test_run_save(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "table3", "--save"]) == 0
        assert (tmp_path / "results" / "table3.json").exists()

    def test_run_sweep_renders_chart(self, capsys):
        assert main(["run", "fig15", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        # The terminal chart footer carries the series legend.
        assert "queries/s vs quantile p" in out
        assert "* tkdc" in out

    def test_run_bar_chart_for_factor_analysis(self, capsys):
        assert main(["run", "fig12", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "throughput by optimization variant" in out
        assert "#" in out

    def test_diagnose_command(self, tmp_path, capsys, rng):
        import numpy as np

        train_csv = tmp_path / "train.csv"
        np.savetxt(train_csv, rng.normal(size=(600, 2)), delimiter=",")
        queries_csv = tmp_path / "q.csv"
        np.savetxt(queries_csv, rng.normal(size=(20, 2)) * 2, delimiter=",")
        model = tmp_path / "m.tkdc"
        main(["fit", str(train_csv), "--model", str(model)])
        capsys.readouterr()
        assert main(["diagnose", str(queries_csv), "--model", str(model)]) == 0
        out = capsys.readouterr().out
        assert "near fraction" in out
        assert "stop reasons" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
