"""Unit tests for the polynomial (uniform/biweight/triweight) kernels."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.kernels.epanechnikov import EpanechnikovKernel
from repro.kernels.polynomial import (
    BiweightKernel,
    PolynomialKernel,
    TriweightKernel,
    UniformKernel,
)

ALL_POLYNOMIAL = [UniformKernel, BiweightKernel, TriweightKernel]


class TestNormalization:
    @pytest.mark.parametrize("cls", ALL_POLYNOMIAL)
    def test_integrates_to_one_1d(self, cls):
        h = 0.8
        kernel = cls(np.array([h]))
        total, __ = integrate.quad(lambda x: kernel.value((x / h) ** 2), -h, h)
        assert total == pytest.approx(1.0, abs=1e-8)

    @pytest.mark.parametrize("cls", ALL_POLYNOMIAL)
    def test_integrates_to_one_2d_monte_carlo(self, cls, rng):
        h = np.array([1.0, 1.5])
        kernel = cls(h)
        samples = rng.uniform([-1.0, -1.5], [1.0, 1.5], size=(400_000, 2))
        values = kernel.value((samples[:, 0] / h[0]) ** 2 + (samples[:, 1] / h[1]) ** 2)
        estimate = float(values.mean()) * 2.0 * 3.0
        assert estimate == pytest.approx(1.0, abs=0.02)

    def test_uniform_1d_constant(self):
        # 1-d uniform kernel at unit bandwidth is 1/2 over [-1, 1].
        kernel = UniformKernel(np.array([1.0]))
        assert kernel.max_value == pytest.approx(0.5)
        assert kernel.value(0.5) == pytest.approx(0.5)

    def test_biweight_1d_peak(self):
        # 1-d biweight peak: 15/16 at unit bandwidth.
        kernel = BiweightKernel(np.array([1.0]))
        assert kernel.max_value == pytest.approx(15.0 / 16.0)

    def test_triweight_1d_peak(self):
        # 1-d triweight peak: 35/32 at unit bandwidth.
        kernel = TriweightKernel(np.array([1.0]))
        assert kernel.max_value == pytest.approx(35.0 / 32.0)

    def test_degree_one_matches_epanechnikov(self):
        class DegreeOne(PolynomialKernel):
            degree = 1

        h = np.array([0.7, 1.3])
        poly = DegreeOne(h)
        epan = EpanechnikovKernel(h)
        assert poly.norm_constant == pytest.approx(epan.norm_constant)
        sq = np.linspace(0, 1.5, 20)
        np.testing.assert_allclose(poly.value(sq), epan.value(sq))


class TestSupport:
    @pytest.mark.parametrize("cls", ALL_POLYNOMIAL)
    def test_zero_outside_unit_ball(self, cls):
        kernel = cls(np.array([1.0, 1.0]))
        assert kernel.support_sq_radius == 1.0
        assert kernel.value(1.0) == 0.0
        assert kernel.value_scalar(1.2) == 0.0

    @pytest.mark.parametrize("cls", ALL_POLYNOMIAL)
    def test_monotone_non_increasing(self, cls):
        kernel = cls(np.array([1.0, 1.0]))
        sq = np.linspace(0.0, 1.5, 100)
        values = kernel.value(sq)
        assert np.all(np.diff(values) <= 1e-15)

    @pytest.mark.parametrize("cls", ALL_POLYNOMIAL)
    def test_scalar_matches_array(self, cls):
        kernel = cls(np.array([0.5, 2.0]))
        for s in (0.0, 0.3, 0.99, 1.0, 5.0):
            assert kernel.value_scalar(s) == pytest.approx(float(kernel.value(s)))


class TestInverseProfile:
    @pytest.mark.parametrize("cls", [BiweightKernel, TriweightKernel])
    def test_roundtrip(self, cls):
        kernel = cls(np.array([1.0]))
        for value in (1.0, 0.5, 0.01):
            sq = kernel.inverse_profile(value)
            assert float(kernel.profile(np.array(sq))) == pytest.approx(value)

    def test_uniform_inverse(self):
        kernel = UniformKernel(np.array([1.0]))
        assert kernel.inverse_profile(1.0) == 0.0
        assert kernel.inverse_profile(0.5) == 1.0

    @pytest.mark.parametrize("cls", ALL_POLYNOMIAL)
    def test_rejects_out_of_range(self, cls):
        with pytest.raises(ValueError):
            cls(np.array([1.0])).inverse_profile(0.0)


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["uniform", "biweight", "triweight"])
    def test_tkdc_with_polynomial_kernel(self, name, medium_gauss):
        from repro import Label, TKDCClassifier, TKDCConfig

        clf = TKDCClassifier(TKDCConfig(p=0.05, kernel=name, seed=0)).fit(medium_gauss)
        assert clf.classify(np.array([[0.0, 0.0]]))[0] is Label.HIGH
        assert clf.classify(np.array([[9.0, 9.0]]))[0] is Label.LOW
        low_fraction = float(np.mean(np.asarray(clf.training_labels_) == Label.LOW))
        assert low_fraction == pytest.approx(0.05, abs=0.02)
