"""Unit tests for the terminal chart renderers."""

import pytest

from repro.bench.charts import MARKERS, ascii_bar_chart, ascii_chart


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"tkdc": ([1, 2, 3], [10, 20, 30])})
        assert "*" in chart
        assert "tkdc" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart({
            "a": ([1, 2], [1, 2]),
            "b": ([1, 2], [2, 1]),
        })
        assert MARKERS[0] in chart
        assert MARKERS[1] in chart

    def test_log_axes_label_actual_values(self):
        chart = ascii_chart({"s": ([10, 1000], [1, 100])}, logx=True, logy=True)
        assert "10" in chart
        assert "1e+03" in chart or "1000" in chart

    def test_title_rendered(self):
        chart = ascii_chart({"s": ([1], [1])}, title="my title")
        assert chart.splitlines()[0] == "my title"

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart({"s": ([1, 2, 3], [5, 5, 5])})
        assert "5" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ascii_chart({})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="mismatched"):
            ascii_chart({"s": ([1, 2], [1])})

    def test_rejects_non_positive_on_log_axis(self):
        with pytest.raises(ValueError, match="positive"):
            ascii_chart({"s": ([0, 1], [1, 2])}, logx=True)

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError, match="at least"):
            ascii_chart({"s": ([1], [1])}, width=4, height=2)

    def test_extreme_points_at_corners(self):
        chart = ascii_chart({"s": ([0, 10], [0, 10])}, width=20, height=10)
        lines = [line for line in chart.splitlines() if "|" in line]
        # Max point top-right, min point bottom-left of the plot area.
        assert lines[0].rstrip().endswith("*")
        assert lines[-1].split("|")[1][0] == "*"


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart(["small", "large"], [1.0, 10.0])
        lines = chart.splitlines()
        assert lines[0].count("#") < lines[1].count("#")

    def test_values_displayed(self):
        chart = ascii_bar_chart(["a"], [42.5])
        assert "42.5" in chart

    def test_logscale_compresses(self):
        linear = ascii_bar_chart(["a", "b"], [1.0, 1000.0])
        logarithmic = ascii_bar_chart(["a", "b"], [1.0, 1000.0], logscale=True)
        ratio_linear = linear.splitlines()[1].count("#") / max(
            linear.splitlines()[0].count("#"), 1
        )
        ratio_log = logarithmic.splitlines()[1].count("#") / max(
            logarithmic.splitlines()[0].count("#"), 1
        )
        assert ratio_log < ratio_linear

    def test_zero_value_empty_bar(self):
        chart = ascii_bar_chart(["zero", "one"], [0.0, 1.0])
        assert chart.splitlines()[0].count("#") == 0

    def test_unit_suffix(self):
        chart = ascii_bar_chart(["a"], [5.0], unit=" pts/s")
        assert "pts/s" in chart

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError, match="equal length"):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ascii_bar_chart([], [])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ascii_bar_chart(["a"], [-1.0])
