"""Unit tests for the Algorithm 3 threshold bootstrap."""

import numpy as np
import pytest

from repro.baselines.simple import NaiveKDE
from repro.core.config import TKDCConfig
from repro.core.stats import TraversalStats
from repro.core.threshold import ThresholdBootstrapResult, bootstrap_threshold_bounds
from repro.kernels.factory import kernel_for_data
from repro.quantile.order_stats import quantile_of_sorted


def _exact_threshold(data: np.ndarray, p: float) -> float:
    naive = NaiveKDE().fit(data)
    densities = naive.density(data) - naive.kernel.max_value / data.shape[0]
    return quantile_of_sorted(np.sort(densities), p)


def _run_bootstrap(data: np.ndarray, config: TKDCConfig) -> ThresholdBootstrapResult:
    return bootstrap_threshold_bounds(
        data,
        make_kernel=lambda subset: kernel_for_data(subset, config.kernel,
                                                   config.bandwidth_scale),
        config=config,
        stats=TraversalStats(),
        rng=np.random.default_rng(config.seed),
    )


class TestBootstrapBounds:
    def test_brackets_exact_threshold_gauss(self, medium_gauss):
        config = TKDCConfig(p=0.01, bootstrap_s0=2000, seed=0)
        result = _run_bootstrap(medium_gauss, config)
        exact = _exact_threshold(medium_gauss, 0.01)
        assert result.lower <= exact * 1.05
        assert result.upper >= exact * 0.95

    def test_bounds_ordered(self, medium_gauss):
        result = _run_bootstrap(medium_gauss, TKDCConfig(bootstrap_s0=1000, seed=3))
        assert 0.0 <= result.lower <= result.upper

    def test_brackets_for_moderate_quantile(self, medium_gauss):
        config = TKDCConfig(p=0.25, bootstrap_s0=2000, seed=1)
        result = _run_bootstrap(medium_gauss, config)
        exact = _exact_threshold(medium_gauss, 0.25)
        assert result.lower <= exact * 1.05
        assert result.upper >= exact * 0.95

    def test_small_dataset_single_iteration(self, rng):
        data = rng.normal(size=(150, 2))  # below r0=200: full data at once
        config = TKDCConfig(seed=0)
        result = _run_bootstrap(data, config)
        assert result.iterations >= 1
        assert result.upper >= result.lower

    def test_growth_iterations_logarithmic(self, medium_gauss):
        config = TKDCConfig(bootstrap_s0=500, seed=0)
        result = _run_bootstrap(medium_gauss, config)
        # r grows 200 -> 800 -> 2000 (= n): about 3 growth rounds plus
        # any backoffs, far below the safety cap.
        assert result.iterations <= 10

    def test_deterministic_given_seed(self, medium_gauss):
        config = TKDCConfig(bootstrap_s0=1000, seed=7)
        first = _run_bootstrap(medium_gauss, config)
        second = _run_bootstrap(medium_gauss, config)
        assert first.lower == second.lower
        assert first.upper == second.upper

    def test_bimodal_data(self, bimodal_2d):
        config = TKDCConfig(p=0.05, bootstrap_s0=1000, seed=0)
        result = _run_bootstrap(bimodal_2d, config)
        exact = _exact_threshold(bimodal_2d, 0.05)
        assert result.lower <= exact * 1.05
        assert result.upper >= exact * 0.95


class TestBootstrapEdgeCases:
    """Quantiles near 0/1, tiny datasets, and degenerate (duplicate) data."""

    def test_quantile_near_zero(self, medium_gauss):
        config = TKDCConfig(p=0.001, bootstrap_s0=2000, seed=0)
        result = _run_bootstrap(medium_gauss, config)
        exact = _exact_threshold(medium_gauss, 0.001)
        assert result.lower <= exact * 1.05
        assert result.upper >= exact * 0.95

    def test_quantile_near_one(self, medium_gauss):
        config = TKDCConfig(p=0.999, bootstrap_s0=2000, seed=0)
        result = _run_bootstrap(medium_gauss, config)
        exact = _exact_threshold(medium_gauss, 0.999)
        assert result.lower <= exact * 1.05
        assert result.upper >= exact * 0.95

    def test_tiny_dataset(self, rng):
        # n < 10: r0 and s0 both clamp to n, the order-statistic CI
        # clamps to the sample, and the single full-data round must
        # still bracket the exact corrected threshold.
        data = rng.normal(size=(6, 2))
        config = TKDCConfig(p=0.3, seed=0)
        result = _run_bootstrap(data, config)
        exact = _exact_threshold(data, 0.3)
        assert result.lower <= exact <= result.upper

    def test_all_duplicate_points(self):
        # Degenerate data: every density is identical, so any valid
        # bracket must contain that single value (the bandwidth rule's
        # zero-variance floor keeps the kernel finite).
        data = np.full((40, 2), 3.25)
        config = TKDCConfig(p=0.1, seed=0)
        result = _run_bootstrap(data, config)
        exact = _exact_threshold(data, 0.1)
        assert np.isfinite(exact)
        assert result.lower <= exact <= result.upper


class TestFiniteSupportKernels:
    def test_zero_quantile_density_converges(self, rng):
        """Regression: with a finite-support kernel the p-quantile can be
        exactly zero (isolated points with empty neighbourhoods), which
        must not send the backoff loop into an unreachable-zero spiral."""
        # A tight cluster plus far-flung isolated points whose
        # Epanechnikov neighbourhoods are empty.
        cluster = rng.normal(size=(900, 2)) * 0.1
        isolated = rng.uniform(50, 200, size=(100, 2)) * rng.choice(
            [-1, 1], size=(100, 2)
        )
        data = np.concatenate([cluster, isolated])
        config = TKDCConfig(p=0.05, kernel="epanechnikov", seed=0, bootstrap_s0=500)
        result = _run_bootstrap(data, config)
        assert result.lower == 0.0
        assert result.upper >= 0.0

    def test_epanechnikov_moderate_quantile(self, medium_gauss):
        config = TKDCConfig(p=0.3, kernel="epanechnikov", seed=0, bootstrap_s0=1000)
        result = _run_bootstrap(medium_gauss, config)
        assert 0.0 <= result.lower <= result.upper


class TestFullTreeReuse:
    def test_prebuilt_tree_used_for_final_round(self, medium_gauss):
        from repro.index.kdtree import KDTree

        config = TKDCConfig(bootstrap_s0=1000, seed=0)
        kernel = kernel_for_data(medium_gauss)
        tree = KDTree(kernel.scale(medium_gauss), leaf_size=config.leaf_size)
        result = bootstrap_threshold_bounds(
            medium_gauss,
            make_kernel=lambda subset: kernel_for_data(subset),
            config=config,
            stats=TraversalStats(),
            rng=np.random.default_rng(0),
            full_tree=tree,
            full_kernel=kernel,
        )
        exact = _exact_threshold(medium_gauss, 0.01)
        assert result.lower <= exact * 1.05
        assert result.upper >= exact * 0.95
