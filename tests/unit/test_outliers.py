"""Unit tests for the kNN-distance and LOF outlier detectors."""

import numpy as np
import pytest

from repro.outliers import KNNDistanceDetector, LocalOutlierFactor


@pytest.fixture(scope="module")
def planted():
    """A dense cluster plus a handful of clear planted outliers."""
    rng = np.random.default_rng(5)
    inliers = rng.normal(size=(800, 2)) * 0.5
    outliers = rng.uniform(4.0, 6.0, size=(8, 2)) * rng.choice([-1, 1], size=(8, 2))
    data = np.concatenate([inliers, outliers])
    truth = np.concatenate([np.zeros(800), np.ones(8)]).astype(int)
    return data, truth


class TestKNNDistance:
    def test_detects_planted_outliers(self, planted):
        data, truth = planted
        detector = KNNDistanceDetector(k=5, contamination=0.01).fit(data)
        labels = detector.training_labels()
        assert np.all(labels[truth == 1] == 1)

    def test_score_ordering(self, planted):
        data, __ = planted
        detector = KNNDistanceDetector(k=5).fit(data)
        center = detector.score(np.array([[0.0, 0.0]]))[0]
        far = detector.score(np.array([[10.0, 10.0]]))[0]
        assert far > center

    def test_contamination_controls_flag_rate(self, planted):
        data, __ = planted
        detector = KNNDistanceDetector(k=5, contamination=0.05).fit(data)
        flagged = float(np.mean(detector.training_labels()))
        assert flagged == pytest.approx(0.05, abs=0.01)

    def test_predict_queries(self, planted):
        data, __ = planted
        detector = KNNDistanceDetector(k=5).fit(data)
        labels = detector.predict(np.array([[0.0, 0.0], [12.0, -12.0]]))
        assert labels.tolist() == [0, 1]

    def test_validation(self, planted):
        data, __ = planted
        with pytest.raises(ValueError):
            KNNDistanceDetector(k=0)
        with pytest.raises(ValueError):
            KNNDistanceDetector(contamination=1.0)
        with pytest.raises(ValueError, match="more than k"):
            KNNDistanceDetector(k=10).fit(data[:5])
        with pytest.raises(RuntimeError, match="not fitted"):
            KNNDistanceDetector().score(np.zeros((1, 2)))


class TestLOF:
    def test_detects_planted_outliers(self, planted):
        data, truth = planted
        detector = LocalOutlierFactor(k=10, contamination=0.01).fit(data)
        labels = detector.training_labels()
        assert np.all(labels[truth == 1] == 1)

    def test_inlier_scores_near_one(self, planted):
        data, truth = planted
        detector = LocalOutlierFactor(k=10).fit(data)
        inlier_scores = detector.training_scores_[truth == 0]
        assert np.median(inlier_scores) == pytest.approx(1.0, abs=0.1)

    def test_adapts_to_mixed_densities(self, rng):
        """LOF's selling point: a sparse-cluster member is not an outlier
        just because a dense cluster exists elsewhere."""
        dense = rng.normal(size=(500, 2)) * 0.1
        sparse = rng.normal(size=(500, 2)) * 2.0 + [20.0, 0.0]
        data = np.concatenate([dense, sparse])
        detector = LocalOutlierFactor(k=10, contamination=0.02).fit(data)
        labels = detector.training_labels()
        sparse_flag_rate = float(np.mean(labels[500:]))
        # The sparse cluster is not disproportionately flagged.
        assert sparse_flag_rate < 0.10

    def test_query_scoring(self, planted):
        data, __ = planted
        detector = LocalOutlierFactor(k=10).fit(data)
        scores = detector.score(np.array([[0.0, 0.0], [15.0, 15.0]]))
        assert scores[1] > scores[0]
        assert scores[0] == pytest.approx(1.0, abs=0.3)

    def test_duplicate_points_finite_scores(self):
        data = np.concatenate([
            np.repeat([[0.0, 0.0]], 30, axis=0),
            np.random.default_rng(0).normal(size=(30, 2)) + 5.0,
        ])
        detector = LocalOutlierFactor(k=5, contamination=0.05).fit(data)
        assert np.all(np.isfinite(detector.training_scores_))

    def test_validation(self, planted):
        data, __ = planted
        with pytest.raises(ValueError):
            LocalOutlierFactor(k=0)
        with pytest.raises(RuntimeError, match="not fitted"):
            LocalOutlierFactor().predict(np.zeros((1, 2)))
