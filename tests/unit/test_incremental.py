"""Unit tests for the incremental classifier."""

import numpy as np
import pytest

from repro import Label, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.core.incremental import IncrementalTKDC


@pytest.fixture
def model(medium_gauss):
    return IncrementalTKDC(TKDCConfig(p=0.05, seed=0)).fit(medium_gauss)


class TestLifecycle:
    def test_requires_fit(self):
        model = IncrementalTKDC()
        with pytest.raises(RuntimeError, match="not fitted"):
            model.insert(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="not fitted"):
            __ = model.classifier

    def test_rejects_bad_refit_fraction(self):
        with pytest.raises(ValueError, match="positive"):
            IncrementalTKDC(refit_fraction=0.0)

    def test_counts(self, model, rng):
        assert model.n_indexed == 2000
        assert model.n_buffered == 0
        model.insert(rng.normal(size=(50, 2)))
        assert model.n_buffered == 50
        assert model.n_total == 2050

    def test_dimension_mismatch(self, model):
        with pytest.raises(ValueError, match="dimensionality"):
            model.insert(np.zeros((1, 3)))

    def test_refit_triggers(self, medium_gauss, rng):
        model = IncrementalTKDC(TKDCConfig(p=0.05, seed=0), refit_fraction=0.1)
        model.fit(medium_gauss)
        model.insert(rng.normal(size=(250, 2)))  # > 10% of 2000
        assert model.refits == 1
        assert model.n_buffered == 0
        assert model.n_indexed == 2250


class TestClassification:
    def test_matches_batch_when_buffer_empty(self, model, medium_gauss, rng):
        queries = rng.normal(size=(50, 2)) * 2
        incremental = model.predict(queries)
        batch = model.classifier.predict(queries)
        np.testing.assert_array_equal(incremental, batch)

    def test_buffer_contributions_counted(self, model, rng):
        # A previously empty region becomes dense after inserts; the
        # combined density must flip the classification without a refit.
        spot = np.array([8.0, 8.0])
        assert model.classify(spot[None, :])[0] is Label.LOW
        cluster = spot + rng.normal(scale=0.05, size=(400, 2))
        model.insert(cluster)
        assert model.n_buffered == 400  # no refit yet (<= 25% of 2000)
        assert model.classify(spot[None, :])[0] is Label.HIGH

    def test_combined_density_guarantee(self, medium_gauss, rng):
        """Labels match exact combined-density classification."""
        model = IncrementalTKDC(TKDCConfig(p=0.05, seed=0), refit_fraction=0.5)
        model.fit(medium_gauss)
        extra = rng.normal(size=(300, 2)) * 0.5
        model.insert(extra)
        assert model.n_buffered == 300

        combined = np.concatenate([medium_gauss, extra])
        # Exact densities under the *model's* (stale-bandwidth) kernel.
        kernel = model.classifier.kernel
        scaled_all = kernel.scale(combined)
        queries = rng.normal(size=(80, 2)) * 1.5
        scaled_queries = kernel.scale(queries)
        t = model.classifier.threshold.value
        eps = model.config.epsilon
        labels = model.predict(queries)
        for i in range(queries.shape[0]):
            diffs = scaled_all - scaled_queries[i]
            sq = np.einsum("ij,ij->i", diffs, diffs)
            density = float(np.sum(kernel.value(sq))) / combined.shape[0]
            if density > t * (1 + eps):
                assert labels[i] == 1, i
            elif density < t * (1 - eps):
                assert labels[i] == 0, i

    def test_stats_exposed(self, model, rng):
        before = model.stats.queries
        model.classify(rng.normal(size=(5, 2)))
        assert model.stats.queries >= before


class TestRobustnessContract:
    """Regression: classify used to bypass the robustness layer entirely
    (no query validation, no guards, no budget, never UNCERTAIN)."""

    def test_query_policy_raise_rejects_nan(self, model):
        with pytest.raises(ValueError, match="query_policy='flag'"):
            model.classify(np.array([[np.nan, 0.0], [0.0, 0.0]]))

    def test_query_policy_flag_marks_uncertain(self, model, rng):
        model.config = model.config.with_updates(query_policy="flag")
        model.classifier.config = model.config
        try:
            queries = rng.normal(size=(6, 2))
            queries[2] = [np.inf, 0.0]
            labels = model.classify(queries)
            assert labels[2] is Label.UNCERTAIN
            assert all(
                label in (Label.HIGH, Label.LOW)
                for i, label in enumerate(labels) if i != 2
            )
            assert model.predict(queries)[2] == 2
        finally:
            model.config = model.config.with_updates(query_policy="raise")
            model.classifier.config = model.config

    def test_budget_degraded_straddle_surfaces_uncertain(self, medium_gauss, rng):
        """With a starvation budget, straddling queries come back
        UNCERTAIN instead of a silently best-effort HIGH/LOW."""
        model = IncrementalTKDC(
            TKDCConfig(p=0.05, seed=0, max_node_expansions=1,
                       use_grid=False, leaf_size=4)
        ).fit(medium_gauss)
        model.insert(rng.normal(size=(50, 2)))
        labels = model.classify(rng.normal(size=(64, 2)))
        assert any(label is Label.UNCERTAIN for label in labels)

    def test_fault_plan_fires_through_incremental(self, medium_gauss):
        """Injected traversal faults reach the incremental path's
        bound_density calls (the guards repair them; stats record it)."""
        from repro.robustness.faults import FaultPlan
        from repro.robustness.guards import REPAIRS_KEY

        config = TKDCConfig(
            p=0.05, seed=0, guard_policy="repair",
            fault_plan=FaultPlan(corrupt_bound_nodes=(0, 1, 2)),
        )
        model = IncrementalTKDC(config).fit(medium_gauss)
        repaired_before = model.stats.extras.get(REPAIRS_KEY, 0.0)
        model.classify(np.zeros((4, 2)))
        assert model.stats.extras.get(REPAIRS_KEY, 0.0) > repaired_before


class TestClassifyDetailed:
    def test_resolved_labels_match_classify(self, model, rng):
        model.insert(rng.normal(size=(60, 2)))
        queries = rng.normal(size=(40, 2)) * 1.5
        detailed = model.classify_detailed(queries)
        np.testing.assert_array_equal(
            detailed.resolved_labels(), model.classify(queries)
        )

    def test_combined_bounds_bracket_exact_density(
        self, model, medium_gauss, rng
    ):
        """The reported bounds are on the *combined* density: they must
        bracket the exact brute-force density over indexed + buffered
        points under the model's kernel."""
        extra = rng.normal(size=(200, 2)) * 0.5
        model.insert(extra)
        queries = rng.normal(size=(30, 2))
        detailed = model.classify_detailed(queries)
        combined = np.concatenate([medium_gauss, extra])
        kernel = model.classifier.kernel
        scaled_all = kernel.scale(combined)
        scaled_queries = kernel.scale(queries)
        for i in range(queries.shape[0]):
            diffs = scaled_all - scaled_queries[i]
            sq = np.einsum("ij,ij->i", diffs, diffs)
            density = float(np.sum(kernel.value(sq))) / combined.shape[0]
            assert detailed.lower[i] <= density + 1e-12, i
            assert density <= detailed.upper[i] + 1e-12, i


class TestTypeContract:
    def test_classify_returns_label_object_array(self, model, rng):
        queries = rng.normal(size=(10, 2))
        labels = model.classify(queries)
        assert labels.dtype == object
        assert all(isinstance(label, Label) for label in labels)
        batch = model.classifier.classify(queries)
        assert batch.dtype == labels.dtype

    def test_predict_returns_int64(self, model, rng):
        predictions = model.predict(rng.normal(size=(10, 2)))
        assert predictions.dtype == np.int64
        assert set(np.unique(predictions)) <= {0, 1, 2}


class TestBuffer:
    def test_buffer_preallocates_and_grows_geometrically(self, model, rng):
        model.insert(rng.normal(size=(10, 2)))
        array = model._buffer_array
        assert array.shape[0] >= 256  # preallocated, not 10 rows
        # Inserts under capacity reuse the same allocation.
        model.insert(rng.normal(size=(100, 2)))
        assert model._buffer_array is array
        # Outgrowing it reallocates to at least double.
        model.insert(rng.normal(size=(array.shape[0], 2)))
        assert model._buffer_array is not array
        assert model._buffer_array.shape[0] >= 2 * array.shape[0]

    def test_buffer_view_is_live_rows_only(self, model, rng):
        points = rng.normal(size=(7, 2))
        model.insert(points)
        np.testing.assert_array_equal(model.buffer_view, points)
        assert model.buffer_view.base is model._buffer_array  # zero-copy


class TestAdopt:
    def test_adopt_swaps_model_and_rebases_counts(self, model, medium_gauss, rng):
        from repro.core.classifier import TKDCClassifier

        model.insert(rng.normal(size=(30, 2)))
        replacement = TKDCClassifier(TKDCConfig(p=0.05, seed=1)).fit(
            medium_gauss[:1500]
        )
        model.adopt(replacement, n_indexed=2010, keep_last=20)
        assert model.classifier is replacement
        assert model.n_indexed == 2010
        assert model.n_buffered == 20
        assert model.n_total == 2030
        assert model.generation == 1

    def test_adopt_keeps_the_most_recent_rows(self, model, rng):
        early = rng.normal(size=(20, 2))
        late = rng.normal(size=(5, 2))
        model.insert(early)
        model.insert(late)
        model.adopt(model.classifier, n_indexed=2020, keep_last=5)
        np.testing.assert_array_equal(model.buffer_view, late)

    def test_adopt_validates(self, model):
        from repro.core.classifier import TKDCClassifier

        with pytest.raises(ValueError, match="fitted"):
            model.adopt(TKDCClassifier(), n_indexed=10)
        with pytest.raises(ValueError, match="n_indexed"):
            model.adopt(model.classifier, n_indexed=0)
        with pytest.raises(ValueError, match="keep_last"):
            model.adopt(model.classifier, n_indexed=10, keep_last=1)

    def test_auto_refit_disabled_after_adopt(self, medium_gauss, rng):
        model = IncrementalTKDC(
            TKDCConfig(p=0.05, seed=0), refit_fraction=0.01
        ).fit(medium_gauss)
        model.adopt(model.classifier, n_indexed=2000)
        model.insert(rng.normal(size=(100, 2)))  # way past refit_fraction
        assert model.refits == 0  # raw data gone; external refits only
