"""Unit tests for the incremental classifier."""

import numpy as np
import pytest

from repro import Label, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.core.incremental import IncrementalTKDC


@pytest.fixture
def model(medium_gauss):
    return IncrementalTKDC(TKDCConfig(p=0.05, seed=0)).fit(medium_gauss)


class TestLifecycle:
    def test_requires_fit(self):
        model = IncrementalTKDC()
        with pytest.raises(RuntimeError, match="not fitted"):
            model.insert(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="not fitted"):
            __ = model.classifier

    def test_rejects_bad_refit_fraction(self):
        with pytest.raises(ValueError, match="positive"):
            IncrementalTKDC(refit_fraction=0.0)

    def test_counts(self, model, rng):
        assert model.n_indexed == 2000
        assert model.n_buffered == 0
        model.insert(rng.normal(size=(50, 2)))
        assert model.n_buffered == 50
        assert model.n_total == 2050

    def test_dimension_mismatch(self, model):
        with pytest.raises(ValueError, match="dimensionality"):
            model.insert(np.zeros((1, 3)))

    def test_refit_triggers(self, medium_gauss, rng):
        model = IncrementalTKDC(TKDCConfig(p=0.05, seed=0), refit_fraction=0.1)
        model.fit(medium_gauss)
        model.insert(rng.normal(size=(250, 2)))  # > 10% of 2000
        assert model.refits == 1
        assert model.n_buffered == 0
        assert model.n_indexed == 2250


class TestClassification:
    def test_matches_batch_when_buffer_empty(self, model, medium_gauss, rng):
        queries = rng.normal(size=(50, 2)) * 2
        incremental = model.predict(queries)
        batch = model.classifier.predict(queries)
        np.testing.assert_array_equal(incremental, batch)

    def test_buffer_contributions_counted(self, model, rng):
        # A previously empty region becomes dense after inserts; the
        # combined density must flip the classification without a refit.
        spot = np.array([8.0, 8.0])
        assert model.classify(spot[None, :])[0] is Label.LOW
        cluster = spot + rng.normal(scale=0.05, size=(400, 2))
        model.insert(cluster)
        assert model.n_buffered == 400  # no refit yet (<= 25% of 2000)
        assert model.classify(spot[None, :])[0] is Label.HIGH

    def test_combined_density_guarantee(self, medium_gauss, rng):
        """Labels match exact combined-density classification."""
        model = IncrementalTKDC(TKDCConfig(p=0.05, seed=0), refit_fraction=0.5)
        model.fit(medium_gauss)
        extra = rng.normal(size=(300, 2)) * 0.5
        model.insert(extra)
        assert model.n_buffered == 300

        combined = np.concatenate([medium_gauss, extra])
        # Exact densities under the *model's* (stale-bandwidth) kernel.
        kernel = model.classifier.kernel
        scaled_all = kernel.scale(combined)
        queries = rng.normal(size=(80, 2)) * 1.5
        scaled_queries = kernel.scale(queries)
        t = model.classifier.threshold.value
        eps = model.config.epsilon
        labels = model.predict(queries)
        for i in range(queries.shape[0]):
            diffs = scaled_all - scaled_queries[i]
            sq = np.einsum("ij,ij->i", diffs, diffs)
            density = float(np.sum(kernel.value(sq))) / combined.shape[0]
            if density > t * (1 + eps):
                assert labels[i] == 1, i
            elif density < t * (1 - eps):
                assert labels[i] == 0, i

    def test_stats_exposed(self, model, rng):
        before = model.stats.queries
        model.classify(rng.normal(size=(5, 2)))
        assert model.stats.queries >= before
