"""Unit tests for the tolerance-only tree KDE (nocut/sklearn emulation)."""

import numpy as np
import pytest

from repro.baselines.nocut import TreeKDE
from repro.baselines.simple import NaiveKDE


class TestAccuracy:
    def test_within_rtol_of_exact(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        approx = TreeKDE(rtol=0.01).fit(small_gauss)
        queries = rng.normal(size=(30, 2)) * 1.5
        truth = exact.density(queries)
        got = approx.density(queries)
        np.testing.assert_allclose(got, truth, rtol=0.011)

    def test_tighter_rtol_more_accurate(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        queries = rng.normal(size=(20, 2))
        truth = exact.density(queries)
        loose = TreeKDE(rtol=0.2).fit(small_gauss).density(queries)
        tight = TreeKDE(rtol=0.001).fit(small_gauss).density(queries)
        assert np.max(np.abs(tight - truth) / truth) <= np.max(
            np.abs(loose - truth) / truth
        ) + 1e-12

    def test_atol_stopping(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        approx = TreeKDE(rtol=0.0, atol=1e-4).fit(small_gauss)
        queries = rng.normal(size=(10, 2))
        np.testing.assert_allclose(
            approx.density(queries), exact.density(queries), atol=1e-4
        )


class TestEfficiency:
    def test_fewer_kernel_evaluations_than_naive(self, medium_gauss, rng):
        approx = TreeKDE(rtol=0.1).fit(medium_gauss)
        queries = rng.normal(size=(10, 2))
        approx.density(queries)
        assert approx.kernel_evaluations < 10 * medium_gauss.shape[0]

    def test_looser_tolerance_fewer_evaluations(self, medium_gauss, rng):
        queries = rng.normal(size=(10, 2))
        loose = TreeKDE(rtol=0.2).fit(medium_gauss)
        tight = TreeKDE(rtol=0.001).fit(medium_gauss)
        loose.density(queries)
        tight.density(queries)
        assert loose.kernel_evaluations <= tight.kernel_evaluations


class TestValidation:
    def test_rejects_negative_tolerances(self):
        with pytest.raises(ValueError):
            TreeKDE(rtol=-0.1)
        with pytest.raises(ValueError):
            TreeKDE(rtol=0.1, atol=-1.0)

    def test_rejects_both_zero(self):
        with pytest.raises(ValueError, match="at least one"):
            TreeKDE(rtol=0.0, atol=0.0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            TreeKDE().density(np.zeros((1, 2)))

    def test_median_split_variant(self, small_gauss, rng):
        est = TreeKDE(rtol=0.01, split_rule="median").fit(small_gauss)
        exact = NaiveKDE().fit(small_gauss)
        queries = rng.normal(size=(10, 2))
        np.testing.assert_allclose(
            est.density(queries), exact.density(queries), rtol=0.011
        )
