"""Unit tests for the from-scratch classification metrics."""

import numpy as np
import pytest

from repro.analysis.accuracy import (
    ConfusionCounts,
    confusion_counts,
    f1_score,
    precision_recall,
)


class TestConfusionCounts:
    def test_basic(self):
        truth = np.array([1, 1, 0, 0, 1])
        pred = np.array([1, 0, 0, 1, 1])
        counts = confusion_counts(truth, pred)
        assert counts.true_positive == 2
        assert counts.false_negative == 1
        assert counts.false_positive == 1
        assert counts.true_negative == 1
        assert counts.total == 5

    def test_accuracy(self):
        counts = ConfusionCounts(2, 1, 1, 1)
        assert counts.accuracy == pytest.approx(0.6)

    def test_empty_accuracy(self):
        assert ConfusionCounts(0, 0, 0, 0).accuracy == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            confusion_counts(np.zeros(3), np.zeros(4))

    def test_custom_positive_label(self):
        truth = np.array(["a", "b", "a"])
        pred = np.array(["a", "a", "b"])
        counts = confusion_counts(truth, pred, positive="a")
        assert counts.true_positive == 1
        assert counts.false_positive == 1
        assert counts.false_negative == 1


class TestPrecisionRecall:
    def test_perfect(self):
        truth = np.array([1, 0, 1])
        precision, recall = precision_recall(truth, truth)
        assert precision == 1.0
        assert recall == 1.0

    def test_no_predictions_positive(self):
        precision, recall = precision_recall(np.array([1, 1]), np.array([0, 0]))
        assert precision == 0.0
        assert recall == 0.0

    def test_known_values(self):
        truth = np.array([1, 1, 1, 0, 0])
        pred = np.array([1, 1, 0, 1, 0])
        precision, recall = precision_recall(truth, pred)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)


class TestF1:
    def test_perfect(self):
        truth = np.array([1, 0, 1, 0])
        assert f1_score(truth, truth) == 1.0

    def test_all_wrong(self):
        truth = np.array([1, 0])
        pred = np.array([0, 1])
        assert f1_score(truth, pred) == 0.0

    def test_harmonic_mean(self):
        truth = np.array([1, 1, 1, 0, 0])
        pred = np.array([1, 1, 0, 1, 0])
        p = r = 2 / 3
        assert f1_score(truth, pred) == pytest.approx(2 * p * r / (p + r))

    def test_undefined_is_zero(self):
        assert f1_score(np.array([0, 0]), np.array([0, 0])) == 0.0
