"""Unit tests for cross-validated bandwidth selection."""

import numpy as np
import pytest

from repro.kernels.crossval import (
    BandwidthSelection,
    loo_log_likelihood,
    select_bandwidth_scale,
)
from repro.kernels.bandwidth import scotts_rule


class TestLooLogLikelihood:
    def test_finite_for_normal_data(self, medium_gauss):
        score = loo_log_likelihood(medium_gauss, scale=1.0, sample_size=200)
        assert np.isfinite(score)

    def test_extreme_scales_score_worse(self, medium_gauss):
        good = loo_log_likelihood(medium_gauss, 1.0, sample_size=300)
        too_narrow = loo_log_likelihood(medium_gauss, 0.02, sample_size=300)
        too_wide = loo_log_likelihood(medium_gauss, 50.0, sample_size=300)
        assert good > too_narrow
        assert good > too_wide

    def test_deterministic_given_seed(self, medium_gauss):
        a = loo_log_likelihood(medium_gauss, 1.0, sample_size=100, seed=4)
        b = loo_log_likelihood(medium_gauss, 1.0, sample_size=100, seed=4)
        assert a == b

    def test_rejects_tiny_datasets(self):
        with pytest.raises(ValueError, match="at least 3"):
            loo_log_likelihood(np.zeros((2, 2)), 1.0)

    def test_isolated_points_floored_not_inf(self, rng):
        # Epanechnikov: isolated points have zero LOO density.
        data = np.concatenate([
            rng.normal(size=(200, 2)) * 0.1,
            np.array([[100.0, 100.0]]),
        ])
        score = loo_log_likelihood(data, 1.0, kernel_name="epanechnikov",
                                   sample_size=201)
        assert np.isfinite(score)


class TestSelectBandwidthScale:
    def test_picks_moderate_scale_for_gaussian(self, medium_gauss):
        selection = select_bandwidth_scale(
            medium_gauss, candidates=(0.05, 0.5, 1.0, 2.0, 20.0), sample_size=300
        )
        # Scott's rule is near-optimal for Gaussian data; the extremes
        # must not win.
        assert selection.scale in (0.5, 1.0, 2.0)

    def test_returns_all_scores(self, medium_gauss):
        selection = select_bandwidth_scale(
            medium_gauss, candidates=(0.5, 1.0), sample_size=100
        )
        assert set(selection.scores) == {0.5, 1.0}
        assert isinstance(selection, BandwidthSelection)

    def test_bandwidth_matches_scotts_rule(self, medium_gauss):
        selection = select_bandwidth_scale(
            medium_gauss, candidates=(1.0,), sample_size=100
        )
        np.testing.assert_allclose(
            selection.bandwidth, scotts_rule(medium_gauss, scale=1.0)
        )

    def test_rejects_bad_candidates(self, medium_gauss):
        with pytest.raises(ValueError, match="at least one"):
            select_bandwidth_scale(medium_gauss, candidates=())
        with pytest.raises(ValueError, match="positive"):
            select_bandwidth_scale(medium_gauss, candidates=(1.0, -2.0))

    def test_selected_scale_improves_clustered_data(self, rng):
        """On tightly clustered multimodal data, plain Scott's rule
        oversmooths; CV should pick a smaller factor."""
        centers = rng.uniform(-20, 20, size=(12, 2))
        data = (centers[rng.integers(0, 12, size=1500)]
                + rng.normal(size=(1500, 2)) * 0.05)
        selection = select_bandwidth_scale(
            data, candidates=(0.05, 0.25, 1.0, 4.0), sample_size=300
        )
        assert selection.scale < 1.0
