"""Unit tests for order-statistic quantile confidence intervals."""

import numpy as np
import pytest

from repro.quantile.order_stats import (
    binomial_order_ci,
    normal_order_ci,
    order_statistic_coverage,
    quantile_index,
    quantile_of_sorted,
)


class TestQuantileIndex:
    def test_basic(self):
        assert quantile_index(100, 0.01) == 0  # 1st order statistic
        assert quantile_index(100, 0.5) == 49
        assert quantile_index(100, 1.0) == 99

    def test_zero_quantile(self):
        assert quantile_index(100, 0.0) == 0

    def test_rounds_up(self):
        # ceil(10 * 0.25) = 3rd smallest -> index 2.
        assert quantile_index(10, 0.25) == 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            quantile_index(0, 0.5)
        with pytest.raises(ValueError):
            quantile_index(10, 1.5)

    def test_quantile_of_sorted(self):
        values = np.arange(1.0, 11.0)
        assert quantile_of_sorted(values, 0.1) == 1.0
        assert quantile_of_sorted(values, 0.95) == 10.0


class TestNormalOrderCI:
    def test_matches_paper_worked_example(self):
        """Section 3.5: s=20000, delta=0.01, p=0.01 -> ranks ~[164, 236].

        The paper rounds ``200 -/+ 36.25`` to the nearest rank; we round
        conservatively outward (floor/ceil) to preserve the coverage
        guarantee, landing one rank wider on each side.
        """
        lower, upper = normal_order_ci(20_000, 0.01, 0.01)
        assert lower in (163, 164)
        assert upper in (236, 237)

    def test_brackets_expected_rank(self):
        lower, upper = normal_order_ci(1_000, 0.1, 0.05)
        assert lower <= 100 <= upper

    def test_wider_for_smaller_delta(self):
        loose = normal_order_ci(5_000, 0.05, 0.1)
        tight = normal_order_ci(5_000, 0.05, 0.001)
        assert tight[0] <= loose[0]
        assert tight[1] >= loose[1]

    def test_clamped_to_valid_ranks(self):
        lower, upper = normal_order_ci(20, 0.01, 0.01)
        assert 1 <= lower <= upper <= 20

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            normal_order_ci(0, 0.5, 0.01)
        with pytest.raises(ValueError):
            normal_order_ci(100, 0.0, 0.01)
        with pytest.raises(ValueError):
            normal_order_ci(100, 0.5, 1.0)


class TestBinomialOrderCI:
    def test_coverage_at_least_target(self):
        for s, p, delta in [(100, 0.1, 0.05), (1000, 0.01, 0.01), (50, 0.3, 0.1)]:
            lower, upper = binomial_order_ci(s, p, delta)
            coverage = order_statistic_coverage(s, p, lower, upper)
            assert coverage >= 1.0 - delta - 1e-9

    def test_close_to_normal_for_large_samples(self):
        exact = binomial_order_ci(50_000, 0.01, 0.01)
        approx = normal_order_ci(50_000, 0.01, 0.01)
        assert abs(exact[0] - approx[0]) <= 5
        assert abs(exact[1] - approx[1]) <= 5


class TestCoverage:
    def test_full_range_has_high_coverage(self):
        assert order_statistic_coverage(100, 0.5, 1, 100) > 0.999

    def test_empty_interval_low_coverage(self):
        assert order_statistic_coverage(100, 0.5, 50, 50) < 0.2

    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            order_statistic_coverage(10, 0.5, 0, 5)
        with pytest.raises(ValueError):
            order_statistic_coverage(10, 0.5, 7, 3)

    def test_monte_carlo_coverage(self, rng):
        """Empirical check of Equation 10 on simulated subsamples."""
        population = rng.normal(size=5_000)
        p, delta, s = 0.1, 0.05, 400
        true_quantile = np.sort(population)[int(5_000 * p) - 1]
        lower, upper = binomial_order_ci(s, p, delta)
        hits = 0
        trials = 300
        for __ in range(trials):
            sample = np.sort(rng.choice(population, size=s, replace=False))
            if sample[lower - 1] <= true_quantile <= sample[upper - 1]:
                hits += 1
        # Allow generous slack: 300 trials of a >= 95% event.
        assert hits / trials >= 0.88
