"""Unit tests for the Appendix A theory helpers."""

import numpy as np
import pytest

from repro.analysis.theory import (
    ScalingFit,
    fit_cost_scaling,
    fit_near_scaling,
    near_fraction,
    predicted_cost_exponent,
    predicted_near_exponent,
)


class TestPredictedExponents:
    def test_cost_exponents(self):
        assert predicted_cost_exponent(1) == 0.0
        assert predicted_cost_exponent(2) == 0.5
        assert predicted_cost_exponent(27) == pytest.approx(26 / 27)

    def test_near_exponents(self):
        assert predicted_near_exponent(2) == -0.5
        assert predicted_near_exponent(10) == -0.1

    def test_reject_bad_dim(self):
        with pytest.raises(ValueError):
            predicted_cost_exponent(0)
        with pytest.raises(ValueError):
            predicted_near_exponent(0)


class TestNearFraction:
    def test_counts_band_membership(self):
        densities = np.array([0.5, 1.0, 1.5, 2.0])
        assert near_fraction(densities, threshold=1.0, resolution=0.5) == 0.75

    def test_zero_resolution(self):
        densities = np.array([0.5, 1.0, 1.5])
        assert near_fraction(densities, 1.0, 0.0) == pytest.approx(1 / 3)

    def test_rejects_negative_resolution(self):
        with pytest.raises(ValueError):
            near_fraction(np.array([1.0]), 1.0, -0.1)


class TestScalingFits:
    def test_cost_fit_recovers_power_law(self):
        sizes = np.array([1e3, 1e4, 1e5])
        costs = 3.0 * sizes**0.5
        fit = fit_cost_scaling(sizes, costs, dim=2)
        assert fit.fitted_exponent == pytest.approx(0.5)
        assert fit.satisfied

    def test_cost_fit_flags_violation(self):
        sizes = np.array([1e3, 1e4, 1e5])
        costs = sizes**0.95  # worse than the d=2 bound
        fit = fit_cost_scaling(sizes, costs, dim=2)
        assert not fit.satisfied

    def test_near_fit(self):
        sizes = np.array([1e3, 1e4, 1e5])
        fractions = 0.5 * sizes**-0.5
        fit = fit_near_scaling(sizes, fractions, dim=2)
        assert fit.fitted_exponent == pytest.approx(-0.5)
        assert fit.satisfied

    def test_dataclass_frozen(self):
        fit = ScalingFit(0.1, 0.5)
        with pytest.raises(Exception):
            fit.fitted_exponent = 0.2  # type: ignore[misc]
