"""Unit tests for the from-scratch PCA."""

import numpy as np
import pytest

from repro.datasets.pca import PCA


class TestFit:
    def test_recovers_dominant_direction(self, rng):
        # Data varying almost entirely along one axis.
        data = np.column_stack([
            rng.normal(scale=10.0, size=500),
            rng.normal(scale=0.1, size=500),
        ])
        pca = PCA(1).fit(data)
        direction = np.abs(pca.components[0])
        assert direction[0] > 0.99

    def test_explained_variance_ordering(self, rng):
        data = rng.normal(size=(300, 5)) * np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        pca = PCA(5).fit(data)
        variances = pca.explained_variance
        assert np.all(np.diff(variances) <= 1e-9)

    def test_explained_variance_matches_cov(self, rng):
        data = rng.normal(size=(1000, 3)) * np.array([3.0, 2.0, 1.0])
        pca = PCA(3).fit(data)
        total = float(np.sum(pca.explained_variance))
        assert total == pytest.approx(float(np.trace(np.cov(data.T))), rel=1e-9)

    def test_components_orthonormal(self, rng):
        data = rng.normal(size=(200, 6))
        pca = PCA(4).fit(data)
        gram = pca.components @ pca.components.T
        np.testing.assert_allclose(gram, np.eye(4), atol=1e-10)


class TestTransform:
    def test_shapes(self, rng):
        data = rng.normal(size=(100, 10))
        pca = PCA(3).fit(data)
        assert pca.transform(data).shape == (100, 3)

    def test_projection_centered(self, rng):
        data = rng.normal(size=(500, 4)) + 10.0
        projected = PCA(2).fit_transform(data)
        np.testing.assert_allclose(projected.mean(axis=0), 0.0, atol=1e-9)

    def test_full_rank_roundtrip(self, rng):
        data = rng.normal(size=(50, 4))
        pca = PCA(4).fit(data)
        recovered = pca.inverse_transform(pca.transform(data))
        np.testing.assert_allclose(recovered, data, atol=1e-9)

    def test_lossy_roundtrip_reduces_error_with_components(self, rng):
        data = rng.normal(size=(200, 8)) * np.arange(1, 9)[::-1]
        err = []
        for k in (2, 6):
            pca = PCA(k).fit(data)
            recovered = pca.inverse_transform(pca.transform(data))
            err.append(float(np.mean((recovered - data) ** 2)))
        assert err[1] < err[0]


class TestValidation:
    def test_rejects_bad_component_count(self):
        with pytest.raises(ValueError):
            PCA(0)

    def test_rejects_too_many_components(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            PCA(10).fit(rng.normal(size=(5, 3)))

    def test_requires_fit(self, rng):
        with pytest.raises(RuntimeError, match="not fitted"):
            PCA(2).transform(rng.normal(size=(5, 3)))
