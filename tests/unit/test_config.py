"""Unit tests for TKDCConfig validation."""

import dataclasses

import pytest

from repro.core.config import TKDCConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = TKDCConfig()
        assert config.p == 0.01
        assert config.epsilon == 0.01
        assert config.delta == 0.01
        assert config.bandwidth_scale == 1.0
        assert config.bootstrap_r0 == 200
        assert config.bootstrap_s0 == 20_000
        assert config.h_backoff == 4.0
        assert config.h_buffer == 1.5
        assert config.h_growth == 4.0
        assert config.grid_max_dim == 4
        assert config.split_rule == "trimmed_midpoint"

    def test_frozen(self):
        config = TKDCConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.p = 0.5  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("p", 0.0), ("p", 1.0), ("p", -0.1),
        ("epsilon", 0.0), ("epsilon", -1.0),
        ("delta", 0.0), ("delta", 1.0),
        ("bandwidth_scale", 0.0),
        ("kernel", "triangular"),
        ("leaf_size", 0),
        ("bootstrap_r0", 1),
        ("bootstrap_s0", 0),
        ("h_backoff", 1.0),
        ("h_buffer", 0.9),
        ("h_growth", 1.0),
    ])
    def test_rejects_invalid(self, field, value):
        with pytest.raises(ValueError):
            TKDCConfig(**{field: value})

    def test_accepts_valid_overrides(self):
        config = TKDCConfig(p=0.5, epsilon=0.1, kernel="epanechnikov", leaf_size=64)
        assert config.p == 0.5
        assert config.kernel == "epanechnikov"


class TestWithUpdates:
    def test_returns_modified_copy(self):
        base = TKDCConfig()
        changed = base.with_updates(p=0.2, use_grid=False)
        assert changed.p == 0.2
        assert not changed.use_grid
        assert base.p == 0.01  # original untouched

    def test_validates_updates(self):
        with pytest.raises(ValueError):
            TKDCConfig().with_updates(p=2.0)
