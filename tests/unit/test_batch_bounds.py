"""Unit tests for the batch (multi-query) traversal engine.

The contract: :func:`repro.core.batch_bounds.bound_densities` is the
per-query engine run over a block — same labels, same prune outcomes,
same work counters — with only vectorized arithmetic in between.
"""

import numpy as np
import pytest

from repro.core.batch_bounds import bound_densities
from repro.core.bounds import bound_density
from repro.core.pruning import PruneOutcome
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.factory import kernel_for_data
from tests.conftest import exact_density


@pytest.fixture
def workload(rng):
    data = rng.normal(size=(1500, 2))
    kernel = kernel_for_data(data)
    scaled = kernel.scale(data)
    tree = KDTree(scaled, leaf_size=16)
    queries = kernel.scale(rng.normal(size=(120, 2)) * 2.5)
    return tree, kernel, scaled, queries


def reference_results(tree, kernel, queries, t, eps, **kwargs):
    stats = TraversalStats()
    results = [
        bound_density(tree, kernel, q, t, t, eps, stats, **kwargs) for q in queries
    ]
    return results, stats


class TestEngineParity:
    def test_outcomes_and_stats_match_reference(self, workload):
        tree, kernel, __, queries = workload
        t, eps = 0.01, 0.01
        ref, ref_stats = reference_results(tree, kernel, queries, t, eps)
        stats = TraversalStats()
        batch = bound_densities(tree.flatten(), kernel, queries, t, t, eps, stats)
        assert batch.outcomes() == [r.outcome for r in ref]
        assert stats.snapshot() == ref_stats.snapshot()

    def test_labels_match_reference(self, workload):
        tree, kernel, __, queries = workload
        t, eps = 0.01, 0.01
        ref, __ = reference_results(tree, kernel, queries, t, eps)
        batch = bound_densities(
            tree.flatten(), kernel, queries, t, t, eps, TraversalStats()
        )
        np.testing.assert_array_equal(
            batch.midpoint > t, np.array([r.midpoint > t for r in ref])
        )

    def test_threshold_shift_parity(self, workload):
        tree, kernel, __, queries = workload
        t, eps, shift = 0.008, 0.01, 1e-4
        ref, ref_stats = reference_results(
            tree, kernel, queries, t, eps, threshold_shift=shift
        )
        stats = TraversalStats()
        batch = bound_densities(
            tree.flatten(), kernel, queries, t, t, eps, stats, threshold_shift=shift
        )
        assert batch.outcomes() == [r.outcome for r in ref]
        assert stats.snapshot() == ref_stats.snapshot()

    def test_tolerance_reference_parity(self, workload):
        tree, kernel, __, queries = workload
        t, eps = 0.008, 0.05
        ref, ref_stats = reference_results(
            tree, kernel, queries, t, eps, tolerance_reference=0.02
        )
        stats = TraversalStats()
        batch = bound_densities(
            tree.flatten(), kernel, queries, t, t, eps, stats,
            tolerance_reference=0.02,
        )
        assert batch.outcomes() == [r.outcome for r in ref]
        assert stats.snapshot() == ref_stats.snapshot()

    def test_block_size_invariance(self, workload):
        tree, kernel, __, queries = workload
        flat = tree.flatten()
        t, eps = 0.01, 0.01
        stats_small, stats_big = TraversalStats(), TraversalStats()
        small = bound_densities(
            flat, kernel, queries, t, t, eps, stats_small, block_size=7
        )
        big = bound_densities(
            flat, kernel, queries, t, t, eps, stats_big, block_size=10_000
        )
        np.testing.assert_array_equal(small.lower, big.lower)
        np.testing.assert_array_equal(small.upper, big.upper)
        np.testing.assert_array_equal(small.outcome_codes, big.outcome_codes)
        assert stats_small.snapshot() == stats_big.snapshot()


class TestGuarantee:
    def test_bounds_bracket_exact_density(self, workload):
        tree, kernel, scaled, queries = workload
        batch = bound_densities(
            tree.flatten(), kernel, queries, 0.01, 0.01, 0.01, TraversalStats()
        )
        slack = 1e-12
        for i, query in enumerate(queries):
            exact = exact_density(scaled, kernel, query)
            assert batch.lower[i] <= exact * (1 + slack) + slack
            assert batch.upper[i] >= exact * (1 - slack) - slack

    def test_exhaustion_collapses_to_exact(self, rng):
        data = rng.normal(size=(60, 2))
        kernel = kernel_for_data(data)
        scaled = kernel.scale(data)
        tree = KDTree(scaled, leaf_size=4)
        queries = scaled[:10]
        batch = bound_densities(
            tree.flatten(), kernel, queries, 1e-9, 1e-9, 1e-12,
            TraversalStats(), use_threshold_rule=False,
        )
        assert all(outcome is None for outcome in batch.outcomes())
        for i, query in enumerate(queries):
            exact = exact_density(scaled, kernel, query)
            assert batch.midpoint[i] == pytest.approx(exact, rel=1e-9)

    def test_tolerance_only_intervals_are_tight(self, workload):
        tree, kernel, __, queries = workload
        t, eps = 0.01, 0.05
        batch = bound_densities(
            tree.flatten(), kernel, queries, t, t, eps,
            TraversalStats(), use_threshold_rule=False,
        )
        tolerance_ok = batch.upper - batch.lower < eps * t
        exhausted = batch.outcome_codes == 0
        assert np.all(tolerance_ok | exhausted)


class TestValidationAndEdges:
    def test_rejects_inverted_thresholds(self, workload):
        tree, kernel, __, queries = workload
        with pytest.raises(ValueError, match="exceeds"):
            bound_densities(
                tree.flatten(), kernel, queries, 1.0, 0.5, 0.01, TraversalStats()
            )

    def test_rejects_bad_block_size(self, workload):
        tree, kernel, __, queries = workload
        with pytest.raises(ValueError, match="block_size"):
            bound_densities(
                tree.flatten(), kernel, queries, 0.01, 0.01, 0.01,
                TraversalStats(), block_size=0,
            )

    def test_empty_queries(self, workload):
        tree, kernel, __, __ = workload
        batch = bound_densities(
            tree.flatten(), kernel, np.empty((0, 2)), 0.01, 0.01, 0.01,
            TraversalStats(),
        )
        assert batch.lower.shape == (0,)
        assert batch.outcomes() == []

    def test_single_query_single_point_tree(self):
        data = np.array([[0.0, 0.0]])
        kernel = kernel_for_data(np.concatenate([data, [[1.0, 1.0]]]))
        tree = KDTree(kernel.scale(data))
        stats = TraversalStats()
        batch = bound_densities(
            tree.flatten(), kernel, kernel.scale(data), 1e-12, 1e-12, 0.01, stats
        )
        assert stats.queries == 1
        assert batch.outcomes()[0] is PruneOutcome.THRESHOLD_HIGH

    def test_finite_support_kernel_parity(self, rng):
        data = rng.normal(size=(800, 2))
        kernel = kernel_for_data(data, name="epanechnikov")
        scaled = kernel.scale(data)
        tree = KDTree(scaled, leaf_size=8)
        queries = kernel.scale(rng.normal(size=(60, 2)) * 3)
        t, eps = 0.005, 0.01
        ref, ref_stats = reference_results(tree, kernel, queries, t, eps)
        stats = TraversalStats()
        batch = bound_densities(tree.flatten(), kernel, queries, t, t, eps, stats)
        assert batch.outcomes() == [r.outcome for r in ref]
        assert stats.snapshot() == ref_stats.snapshot()
