"""Unit tests for benchmark-harness helper functions."""

import numpy as np
import pytest

from repro.bench.experiments import FIG7_PANELS, _panel_data
from repro.cli import _render_chart, _sweep_series


class TestPanelData:
    def test_native_dimension(self):
        data = _panel_data("gauss", 2, False, 500, seed=0)
        assert data.shape == (500, 2)

    def test_column_subset(self):
        data = _panel_data("tmy3", 4, False, 400, seed=0)
        assert data.shape == (400, 4)

    def test_pca_projection(self):
        data = _panel_data("mnist", 16, True, 300, seed=0)
        assert data.shape == (300, 16)
        # PCA output is centered.
        np.testing.assert_allclose(data.mean(axis=0), 0.0, atol=1e-9)

    def test_panel_roster_matches_paper(self):
        assert len(FIG7_PANELS) == 8
        assert ("hep", 27, False) in FIG7_PANELS
        assert ("mnist", 256, True) in FIG7_PANELS


class TestSweepSeries:
    def test_groups_by_algorithm(self):
        rows = [
            {"algorithm": "tkdc", "n": 100, "qps": 10.0},
            {"algorithm": "tkdc", "n": 200, "qps": 9.0},
            {"algorithm": "simple", "n": 100, "qps": 5.0},
        ]
        series = _sweep_series(rows, "n", "qps")
        assert series["tkdc"] == ([100.0, 200.0], [10.0, 9.0])
        assert series["simple"] == ([100.0], [5.0])

    def test_skips_slope_rows_and_filtered(self):
        rows = [
            {"algorithm": "tkdc", "n": 100, "qps": 10.0},
            {"algorithm": "tkdc:loglog_slope", "n": 0, "qps": -0.5},
            {"algorithm": "tkdc", "n": 0, "qps": 1.0},
        ]
        series = _sweep_series(rows, "n", "qps", skip=lambda row: row["n"] == 0)
        assert series["tkdc"] == ([100.0], [10.0])


class TestRenderChart:
    def test_sweep_chart(self):
        rows = [
            {"algorithm": "tkdc", "n": 1000, "queries_per_s": 100.0,
             "kernels_per_query": 5.0},
            {"algorithm": "tkdc", "n": 2000, "queries_per_s": 90.0,
             "kernels_per_query": 5.0},
        ]
        chart = _render_chart("fig9", rows)
        assert chart is not None
        assert "tkdc" in chart

    def test_bar_chart(self):
        rows = [
            {"variant": "baseline", "points_per_s": 10.0},
            {"variant": "+threshold", "points_per_s": 5000.0},
        ]
        chart = _render_chart("fig12", rows)
        assert chart is not None
        assert "baseline" in chart

    def test_unknown_experiment_has_no_chart(self):
        assert _render_chart("table3", [{"name": "gauss"}]) is None
