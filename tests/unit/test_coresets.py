"""Unit tests for the coreset constructions and their certificates."""

import math

import numpy as np
import pytest

from repro.core.bounds import bound_density
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.core.stats import TraversalStats
from repro.coresets import (
    CORESET_METHODS,
    Coreset,
    build_coreset,
    empirical_eta,
    exact_density,
    hoeffding_eta,
    merge_reduce_coreset,
    uniform_coreset,
)
from repro.index.kdtree import KDTree
from repro.kernels.factory import kernel_for_data


@pytest.fixture
def cloud(rng):
    return rng.normal(size=(800, 2))


@pytest.fixture
def cloud_kernel(cloud):
    return kernel_for_data(cloud)


class TestHoeffdingEta:
    def test_formula(self):
        eta = hoeffding_eta(kernel_max=0.5, k=100, n=1000, delta=0.05)
        expected = 0.5 * math.sqrt((1 - 99 / 1000) * math.log(40) / 200)
        assert eta == pytest.approx(expected)

    def test_shrinks_with_k(self):
        etas = [hoeffding_eta(1.0, k, 10_000, 0.05) for k in (10, 100, 1000)]
        assert etas[0] > etas[1] > etas[2]

    def test_full_sample_is_exact(self):
        assert hoeffding_eta(1.0, 1000, 1000, 0.05) == 0.0

    def test_delta_validated(self):
        with pytest.raises(ValueError, match="delta"):
            hoeffding_eta(1.0, 10, 100, 0.0)


class TestUniformCoreset:
    def test_basic_shape(self, cloud, cloud_kernel, rng):
        cs = uniform_coreset(cloud_kernel.scale(cloud), cloud_kernel, 80, rng=rng)
        assert cs.method == "uniform"
        assert cs.k == 80
        assert cs.weights is None
        assert not cs.deterministic
        assert cs.delta == 0.05
        assert cs.eta == hoeffding_eta(cloud_kernel.max_value, 80, 800, 0.05)

    def test_identity_when_k_exceeds_n(self, cloud, cloud_kernel, rng):
        cs = uniform_coreset(cloud_kernel.scale(cloud), cloud_kernel, 800, rng=rng)
        assert cs.k == 800
        assert cs.eta == 0.0
        assert cs.deterministic

    def test_points_drawn_from_data(self, cloud, cloud_kernel, rng):
        scaled = cloud_kernel.scale(cloud)
        cs = uniform_coreset(scaled, cloud_kernel, 50, rng=rng)
        # every coreset point must be an actual (scaled) training point
        dists = np.abs(cs.points[:, None, :] - scaled[None, :, :]).sum(axis=2)
        assert np.all(dists.min(axis=1) == 0.0)


class TestMergeReduceCoreset:
    def test_halves_to_target(self, cloud, cloud_kernel):
        cs = merge_reduce_coreset(cloud_kernel.scale(cloud), cloud_kernel, 100)
        assert cs.method == "merge-reduce"
        assert cs.k <= 100
        assert cs.deterministic
        assert cs.rounds >= 1

    def test_weights_conserve_mass(self, cloud, cloud_kernel):
        cs = merge_reduce_coreset(cloud_kernel.scale(cloud), cloud_kernel, 100)
        assert cs.weights is not None
        assert np.all(cs.weights >= 1.0)
        assert float(cs.weights.sum()) == pytest.approx(800.0)

    def test_certificate_dominates_measured_error(self, cloud, cloud_kernel, rng):
        """The deterministic eta must upper-bound the actual sup error."""
        scaled = cloud_kernel.scale(cloud)
        cs = merge_reduce_coreset(scaled, cloud_kernel, 200)
        measured = empirical_eta(scaled, cs, cloud_kernel, rng=rng)
        assert 0.0 < measured <= cs.eta

    def test_duplicate_points_are_free(self, cloud_kernel):
        points = np.tile(np.array([[1.0, 2.0]]), (64, 1))
        cs = merge_reduce_coreset(points, cloud_kernel, 1)
        assert cs.k == 1
        assert cs.eta == 0.0
        assert float(cs.weights.sum()) == pytest.approx(64.0)

    def test_non_lipschitz_kernel_uncertified(self, rng):
        data = rng.normal(size=(256, 2))
        kernel = kernel_for_data(data, name="uniform")
        cs = merge_reduce_coreset(kernel.scale(data), kernel, 32)
        assert math.isinf(cs.eta)
        assert not cs.certifiable


class TestBuildCoreset:
    def test_dispatch(self, cloud, cloud_kernel, rng):
        for method in CORESET_METHODS:
            cs = build_coreset(
                cloud_kernel.scale(cloud), cloud_kernel, method, 64, rng=rng
            )
            assert isinstance(cs, Coreset)
            assert cs.method == method
            assert cs.compression == pytest.approx(cs.k / 800)

    def test_unknown_method_rejected(self, cloud, cloud_kernel):
        with pytest.raises(ValueError, match="unknown coreset method"):
            build_coreset(cloud, cloud_kernel, "grid", 64)

    def test_bad_k_rejected(self, cloud, cloud_kernel):
        with pytest.raises(ValueError, match="coreset size"):
            build_coreset(cloud, cloud_kernel, "uniform", 0)


class TestWeightedTree:
    def test_weighted_density_matches_brute_force(self, rng):
        """An exhaustive traversal of a weighted tree is the weighted KDE."""
        data = rng.normal(size=(300, 2))
        kernel = kernel_for_data(data)
        scaled = kernel.scale(data)
        cs = merge_reduce_coreset(scaled, kernel, 60)
        tree = KDTree(cs.points, leaf_size=8, weights=cs.weights)
        queries = scaled[:10]
        expected = exact_density(cs.points, kernel, queries, weights=cs.weights)
        for query, want in zip(queries, expected):
            result = bound_density(
                tree, kernel, query, 0.0, 0.0, 1e-9, TraversalStats(),
                use_threshold_rule=False, use_tolerance_rule=False,
            )
            assert result.midpoint == pytest.approx(want, rel=1e-9)

    def test_node_weight_prefix_sums(self, rng):
        points = rng.normal(size=(100, 3))
        weights = rng.uniform(0.5, 4.0, size=100)
        tree = KDTree(points, leaf_size=8, weights=weights)
        assert tree.total_weight == pytest.approx(float(weights.sum()))
        flat = tree.flatten()
        assert flat.total_weight == pytest.approx(float(weights.sum()))
        assert flat.node_weight[0] == pytest.approx(float(weights.sum()))

    def test_weight_validation(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            KDTree(points, weights=np.ones(9))
        with pytest.raises(ValueError):
            KDTree(points, weights=np.zeros(10))


class TestClassifierIntegration:
    def test_fit_and_classify_with_each_method(self, rng):
        data = rng.normal(size=(3000, 2))
        queries = np.array([[0.0, 0.0], [8.0, 8.0]])
        for method in CORESET_METHODS:
            clf = TKDCClassifier(
                TKDCConfig(p=0.05, coreset=method, coreset_fraction=0.1, seed=0)
            ).fit(data)
            assert clf.coreset_ is not None
            assert clf.coreset_.k <= 300
            assert clf.tree.size == clf.coreset_.k
            labels = clf.classify(queries)
            assert labels[0].name == "HIGH"
            assert labels[1].name == "LOW"

    def test_coreset_size_overrides_fraction(self, rng):
        data = rng.normal(size=(1000, 2))
        clf = TKDCClassifier(
            TKDCConfig(coreset="uniform", coreset_fraction=0.5,
                       coreset_size=70, seed=0)
        ).fit(data)
        assert clf.coreset_.k == 70

    def test_eta_surface(self, rng):
        data = rng.normal(size=(1000, 2))
        clf = TKDCClassifier(
            TKDCConfig(p=0.05, coreset="uniform", coreset_fraction=0.1, seed=0)
        ).fit(data)
        assert clf.eta > 0.0
        assert clf.eta_applied in (0.0, clf.eta)
        uncompressed = TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(data)
        assert uncompressed.eta == 0.0
        assert uncompressed.certified

    def test_classify_batch_falls_back_under_compression(self, rng):
        data = rng.normal(size=(2000, 2))
        clf = TKDCClassifier(
            TKDCConfig(p=0.05, coreset="merge-reduce", coreset_fraction=0.1,
                       seed=0)
        ).fit(data)
        queries = rng.normal(size=(50, 2)) * 2.0
        assert np.array_equal(clf.classify_batch(queries), clf.classify(queries))

    def test_estimate_density_tracks_full_kde(self, rng):
        data = rng.normal(size=(3000, 2))
        clf = TKDCClassifier(
            TKDCConfig(p=0.05, coreset="uniform", coreset_fraction=0.2, seed=0)
        ).fit(data)
        queries = data[:20]
        kernel = clf.kernel
        full = exact_density(kernel.scale(data), kernel, kernel.scale(queries))
        approx = clf.estimate_density(queries)
        # best-effort compression: close to the full KDE, not exact
        assert np.all(np.abs(approx - full) < 5 * clf.coreset_.eta)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="coreset method"):
            TKDCConfig(coreset="nope")
        with pytest.raises(ValueError, match="coreset_fraction"):
            TKDCConfig(coreset_fraction=0.0)
        with pytest.raises(ValueError, match="coreset_size"):
            TKDCConfig(coreset_size=0)
        with pytest.raises(ValueError, match="coreset_delta"):
            TKDCConfig(coreset_delta=1.0)
