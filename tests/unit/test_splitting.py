"""Unit tests for k-d tree split rules."""

import numpy as np
import pytest

from repro.index.splitting import (
    SPLIT_RULES,
    cycle_axis,
    median_split,
    trimmed_midpoint_split,
    widest_axis,
)


class TestMedianSplit:
    def test_odd_count(self):
        assert median_split(np.array([3.0, 1.0, 2.0])) == 2.0

    def test_even_count_interpolates(self):
        assert median_split(np.array([1.0, 2.0, 3.0, 4.0])) == pytest.approx(2.5)


class TestTrimmedMidpointSplit:
    def test_symmetric_data_gives_center(self):
        coords = np.linspace(-1.0, 1.0, 101)
        assert trimmed_midpoint_split(coords) == pytest.approx(0.0, abs=1e-12)

    def test_ignores_extreme_outliers(self):
        # One huge outlier should barely move the split (unlike a plain
        # midpoint of min/max, which would land near 500).
        coords = np.concatenate([np.linspace(0.0, 1.0, 99), [1000.0]])
        assert trimmed_midpoint_split(coords) < 2.0

    def test_matches_paper_definition(self, rng):
        coords = rng.normal(size=500)
        p10, p90 = np.percentile(coords, [10, 90])
        assert trimmed_midpoint_split(coords) == pytest.approx(0.5 * (p10 + p90))


class TestAxisPolicies:
    def test_cycle_axis_wraps(self):
        assert [cycle_axis(depth, 3) for depth in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_widest_axis(self):
        lo = np.array([0.0, 0.0, 0.0])
        hi = np.array([1.0, 5.0, 2.0])
        assert widest_axis(lo, hi) == 1


class TestRegistry:
    def test_contains_both_rules(self):
        assert set(SPLIT_RULES) == {"median", "trimmed_midpoint"}

    def test_rules_return_floats(self, rng):
        coords = rng.normal(size=50)
        for rule in SPLIT_RULES.values():
            assert isinstance(rule(coords), float)
