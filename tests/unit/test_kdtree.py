"""Unit tests for the k-d tree index."""

import numpy as np
import pytest

from repro.index.kdtree import KDTree


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            KDTree(np.empty((0, 2)))

    def test_rejects_bad_leaf_size(self, small_gauss):
        with pytest.raises(ValueError, match="leaf_size"):
            KDTree(small_gauss, leaf_size=0)

    def test_rejects_unknown_split_rule(self, small_gauss):
        with pytest.raises(ValueError, match="split_rule"):
            KDTree(small_gauss, split_rule="nope")

    def test_rejects_unknown_axis_rule(self, small_gauss):
        with pytest.raises(ValueError, match="axis_rule"):
            KDTree(small_gauss, axis_rule="nope")

    def test_single_point(self):
        tree = KDTree(np.array([[1.0, 2.0]]))
        assert tree.root.is_leaf
        assert tree.root.count == 1

    def test_input_not_modified(self, small_gauss):
        original = small_gauss.copy()
        KDTree(small_gauss)
        np.testing.assert_array_equal(small_gauss, original)

    def test_1d_input_promoted(self):
        tree = KDTree(np.array([[1.0], [2.0], [3.0]]))
        assert tree.dim == 1
        assert tree.size == 3


class TestInvariants:
    @pytest.mark.parametrize("split_rule", ["median", "trimmed_midpoint"])
    @pytest.mark.parametrize("leaf_size", [1, 4, 32])
    def test_counts_sum_to_total(self, small_gauss, split_rule, leaf_size):
        tree = KDTree(small_gauss, leaf_size=leaf_size, split_rule=split_rule)
        assert sum(leaf.count for leaf in tree.leaves()) == tree.size

    def test_children_partition_parent(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=8)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                left, right = node.children()
                assert left.start == node.start
                assert left.end == right.start
                assert right.end == node.end
                assert left.count + right.count == node.count
                assert left.count > 0 and right.count > 0

    def test_bounding_boxes_are_tight(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=8)
        for node in tree.iter_nodes():
            slab = tree.points[node.start : node.end]
            np.testing.assert_allclose(node.lo, slab.min(axis=0))
            np.testing.assert_allclose(node.hi, slab.max(axis=0))

    def test_split_respected(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=8)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                left, right = node.children()
                axis, value = node.split_dim, node.split_value
                assert np.all(tree.points[left.start : left.end, axis] < value)
                assert np.all(tree.points[right.start : right.end, axis] >= value)

    def test_leaf_sizes_respected(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=16)
        for leaf in tree.leaves():
            assert leaf.count <= 16

    def test_permutation_preserves_points(self, small_gauss):
        tree = KDTree(small_gauss)
        reordered = small_gauss[tree.indices]
        np.testing.assert_allclose(tree.points, reordered)

    def test_indices_are_a_permutation(self, small_gauss):
        tree = KDTree(small_gauss)
        assert sorted(tree.indices.tolist()) == list(range(small_gauss.shape[0]))


class TestPartition:
    """The O(m) two-block partition must behave exactly like the stable
    argsort it replaced: same boundary index, same permutation."""

    @pytest.mark.parametrize("value_quantile", [0.1, 0.5, 0.9])
    def test_boundary_matches_stable_argsort(self, rng, value_quantile):
        points = rng.normal(size=(257, 3))
        value = float(np.quantile(points[:, 1], value_quantile))
        tree = KDTree(points, leaf_size=points.shape[0])  # build = no splits
        reference_points = tree.points.copy()
        reference_indices = tree.indices.copy()

        mid = tree._partition(0, points.shape[0], axis=1, value=value)

        goes_left = reference_points[:, 1] < value
        order = np.argsort(~goes_left, kind="stable")
        expected_boundary = int(np.count_nonzero(goes_left))
        assert mid == expected_boundary
        np.testing.assert_array_equal(tree.points, reference_points[order])
        np.testing.assert_array_equal(tree.indices, reference_indices[order])
        assert np.all(tree.points[:mid, 1] < value)
        assert np.all(tree.points[mid:, 1] >= value)

    def test_partition_with_duplicates(self, rng):
        points = np.repeat(rng.normal(size=(10, 2)), 20, axis=0)
        tree = KDTree(points, leaf_size=points.shape[0])
        snapshot = tree.points.copy()
        value = float(np.median(snapshot[:, 0]))
        mid = tree._partition(0, 200, axis=0, value=value)
        assert mid == int(np.count_nonzero(snapshot[:, 0] < value))
        # Stability: each block preserves the original relative order.
        np.testing.assert_array_equal(
            tree.points[:mid], snapshot[snapshot[:, 0] < value]
        )
        np.testing.assert_array_equal(
            tree.points[mid:], snapshot[snapshot[:, 0] >= value]
        )


class TestDegenerateData:
    def test_all_identical_points(self):
        data = np.ones((100, 3))
        tree = KDTree(data, leaf_size=4)
        assert tree.root.is_leaf  # cannot split identical points
        assert tree.root.count == 100

    def test_one_constant_dimension(self, rng):
        data = rng.normal(size=(200, 3))
        data[:, 1] = 7.0
        tree = KDTree(data, leaf_size=8)
        assert sum(leaf.count for leaf in tree.leaves()) == 200
        for leaf in tree.leaves():
            assert leaf.count <= 8

    def test_heavy_duplicates(self, rng):
        data = np.repeat(rng.normal(size=(5, 2)), 50, axis=0)
        tree = KDTree(data, leaf_size=8)
        assert sum(leaf.count for leaf in tree.leaves()) == 250

    def test_extreme_skew(self, rng):
        # 99 points at ~0 and one at 1e9 still builds a valid tree.
        data = np.concatenate([rng.normal(size=(99, 2)) * 1e-6, [[1e9, 1e9]]])
        tree = KDTree(data, leaf_size=4)
        assert sum(leaf.count for leaf in tree.leaves()) == 100

    def test_collinear_points(self):
        data = np.column_stack([np.linspace(0, 1, 100), np.zeros(100)])
        tree = KDTree(data, leaf_size=4)
        for leaf in tree.leaves():
            assert leaf.count <= 4


class TestAccessors:
    def test_leaf_points_slice(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=8)
        leaf = next(tree.leaves())
        assert tree.leaf_points(leaf).shape == (leaf.count, 2)

    def test_leaf_indices_map_back(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=8)
        for leaf in tree.leaves():
            np.testing.assert_allclose(
                tree.leaf_points(leaf), small_gauss[tree.leaf_indices(leaf)]
            )

    def test_depth_positive_for_multilevel(self, small_gauss):
        tree = KDTree(small_gauss, leaf_size=8)
        assert tree.depth() >= 1

    def test_iter_nodes_contains_root(self, small_gauss):
        tree = KDTree(small_gauss)
        assert next(tree.iter_nodes()) is tree.root

    def test_children_of_leaf_raises(self):
        tree = KDTree(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError, match="no children"):
            tree.root.children()
