"""Unit tests for the Algorithm 2 density-bounding traversal."""

import math

import numpy as np
import pytest

from repro.core.bounds import PRIORITY_ORDERS, bound_density
from repro.core.pruning import PruneOutcome
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.gaussian import GaussianKernel
from tests.conftest import exact_density


@pytest.fixture
def setup(small_gauss, unit_kernel_2d):
    tree = KDTree(small_gauss, leaf_size=8)
    return tree, unit_kernel_2d, small_gauss


class TestExhaustiveTraversal:
    def test_collapses_to_exact_density(self, setup, rng):
        tree, kernel, data = setup
        for __ in range(10):
            q = rng.normal(size=2) * 2
            result = bound_density(
                tree, kernel, q, 0.0, math.inf, 0.01, TraversalStats(),
                use_threshold_rule=False, use_tolerance_rule=False,
            )
            truth = exact_density(data, kernel, q)
            assert result.lower == pytest.approx(truth, rel=1e-9)
            assert result.upper == pytest.approx(truth, rel=1e-9)
            assert result.outcome is None

    def test_counts_every_kernel_evaluation(self, setup):
        tree, kernel, data = setup
        stats = TraversalStats()
        bound_density(tree, kernel, np.zeros(2), 0.0, math.inf, 0.01, stats,
                      use_threshold_rule=False, use_tolerance_rule=False)
        assert stats.kernel_evaluations == data.shape[0]
        assert stats.exhausted == 1
        assert stats.queries == 1


class TestBoundValidity:
    def test_interval_contains_exact_density(self, setup, rng):
        tree, kernel, data = setup
        for __ in range(20):
            q = rng.normal(size=2) * 3
            t = float(rng.uniform(1e-4, 0.1))
            result = bound_density(tree, kernel, q, t, t, 0.01, TraversalStats())
            truth = exact_density(data, kernel, q)
            assert result.lower <= truth * (1 + 1e-9) + 1e-15
            assert result.upper >= truth * (1 - 1e-9) - 1e-15

    def test_threshold_high_certifies_density(self, setup):
        tree, kernel, data = setup
        q = np.zeros(2)  # dense center
        t = 0.01
        result = bound_density(tree, kernel, q, t, t, 0.01, TraversalStats())
        if result.outcome is PruneOutcome.THRESHOLD_HIGH:
            assert exact_density(data, kernel, q) > t

    def test_threshold_low_certifies_density(self, setup):
        tree, kernel, data = setup
        q = np.array([10.0, 10.0])  # far outlier
        t = 0.01
        result = bound_density(tree, kernel, q, t, t, 0.01, TraversalStats())
        assert result.outcome is PruneOutcome.THRESHOLD_LOW
        assert exact_density(data, kernel, q) < t

    def test_tolerance_interval_width(self, setup, rng):
        tree, kernel, data = setup
        # With threshold rule disabled the traversal must narrow the
        # interval to eps * t_lower.
        eps, t = 0.05, 0.01
        for __ in range(5):
            q = rng.normal(size=2)
            result = bound_density(
                tree, kernel, q, t, t, eps, TraversalStats(), use_threshold_rule=False
            )
            assert result.upper - result.lower < eps * t


class TestPruningEfficiency:
    def test_threshold_rule_saves_kernel_evaluations(self, setup):
        tree, kernel, data = setup
        t = 0.01
        with_rule = TraversalStats()
        without_rule = TraversalStats()
        q = np.zeros(2)
        bound_density(tree, kernel, q, t, t, 0.01, with_rule)
        bound_density(tree, kernel, q, t, t, 0.01, without_rule,
                      use_threshold_rule=False)
        assert with_rule.kernel_evaluations <= without_rule.kernel_evaluations

    def test_far_point_prunes_immediately(self, setup):
        tree, kernel, __ = setup
        stats = TraversalStats()
        bound_density(tree, kernel, np.array([100.0, 100.0]), 0.01, 0.01, 0.01, stats)
        assert stats.kernel_evaluations == 0
        assert stats.threshold_prunes_low == 1


class TestPriorityOrders:
    @pytest.mark.parametrize("priority", PRIORITY_ORDERS)
    def test_all_orders_give_valid_bounds(self, setup, priority, rng):
        tree, kernel, data = setup
        q = rng.normal(size=2)
        t = 0.01
        result = bound_density(
            tree, kernel, q, t, t, 0.01, TraversalStats(), priority=priority
        )
        truth = exact_density(data, kernel, q)
        assert result.lower <= truth + 1e-12
        assert result.upper >= truth - 1e-12

    def test_rejects_unknown_priority(self, setup):
        tree, kernel, __ = setup
        with pytest.raises(ValueError, match="priority"):
            bound_density(tree, kernel, np.zeros(2), 0.0, 1.0, 0.01,
                          TraversalStats(), priority="random")


class TestValidation:
    def test_rejects_inverted_thresholds(self, setup):
        tree, kernel, __ = setup
        with pytest.raises(ValueError, match="exceeds"):
            bound_density(tree, kernel, np.zeros(2), 1.0, 0.5, 0.01, TraversalStats())

    def test_midpoint_property(self, setup):
        tree, kernel, __ = setup
        result = bound_density(tree, kernel, np.zeros(2), 0.01, 0.01, 0.01,
                               TraversalStats())
        assert result.midpoint == pytest.approx(0.5 * (result.lower + result.upper))


class TestStatsAccounting:
    def test_outcomes_recorded(self, setup, rng):
        tree, kernel, __ = setup
        stats = TraversalStats()
        queries = rng.normal(size=(50, 2)) * 2
        for q in queries:
            bound_density(tree, kernel, q, 0.01, 0.01, 0.01, stats)
        total_outcomes = stats.prunes + stats.exhausted
        assert stats.queries == 50
        assert total_outcomes == 50
