"""Unit tests for bounding-box distance computations."""

import numpy as np
import pytest

from repro.index.boxes import (
    max_sq_dist,
    max_sq_dists,
    min_sq_dist,
    min_sq_dists,
    tight_box,
)


class TestMinSqDist:
    def test_zero_inside_box(self):
        lo, hi = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        assert min_sq_dist(np.array([1.0, 1.0]), lo, hi) == 0.0

    def test_zero_on_boundary(self):
        lo, hi = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        assert min_sq_dist(np.array([0.0, 1.0]), lo, hi) == 0.0
        assert min_sq_dist(np.array([2.0, 2.0]), lo, hi) == 0.0

    def test_outside_one_axis(self):
        lo, hi = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        assert min_sq_dist(np.array([3.0, 1.0]), lo, hi) == pytest.approx(1.0)

    def test_outside_corner(self):
        lo, hi = np.array([0.0, 0.0]), np.array([1.0, 1.0])
        assert min_sq_dist(np.array([2.0, 3.0]), lo, hi) == pytest.approx(1.0 + 4.0)

    def test_below_box(self):
        lo, hi = np.array([0.0]), np.array([1.0])
        assert min_sq_dist(np.array([-2.0]), lo, hi) == pytest.approx(4.0)


class TestMaxSqDist:
    def test_inside_box_reaches_far_corner(self):
        lo, hi = np.array([0.0, 0.0]), np.array([4.0, 2.0])
        # From (1, 1): farthest corner is (4, 2)? No: per-axis max(|1-0|,|1-4|)=3, max(|1-0|,|1-2|)=1.
        assert max_sq_dist(np.array([1.0, 1.0]), lo, hi) == pytest.approx(9.0 + 1.0)

    def test_point_box(self):
        lo = hi = np.array([1.0, 2.0])
        assert max_sq_dist(np.array([0.0, 0.0]), lo, hi) == pytest.approx(1.0 + 4.0)

    def test_max_at_least_min(self, rng):
        for __ in range(50):
            pts = rng.normal(size=(5, 3))
            lo, hi = pts.min(axis=0), pts.max(axis=0)
            q = rng.normal(size=3) * 2
            assert max_sq_dist(q, lo, hi) >= min_sq_dist(q, lo, hi)


class TestBruteForceAgreement:
    """Distance bounds must bracket every point actually in the box."""

    def test_bounds_bracket_contained_points(self, rng):
        for __ in range(20):
            pts = rng.normal(size=(40, 3))
            lo, hi = pts.min(axis=0), pts.max(axis=0)
            q = rng.normal(size=3) * 3
            sq = np.sum((pts - q) ** 2, axis=1)
            assert min_sq_dist(q, lo, hi) <= sq.min() + 1e-12
            assert max_sq_dist(q, lo, hi) >= sq.max() - 1e-12

    def test_min_dist_attained_by_some_box_point(self, rng):
        # The min distance is achieved by the clamped projection.
        for __ in range(20):
            lo = rng.normal(size=2)
            hi = lo + np.abs(rng.normal(size=2)) + 0.1
            q = rng.normal(size=2) * 3
            projection = np.clip(q, lo, hi)
            assert min_sq_dist(q, lo, hi) == pytest.approx(float(np.sum((projection - q) ** 2)))


class TestVectorizedVariants:
    def test_min_sq_dists_matches_scalar(self, rng):
        lo, hi = np.array([-1.0, 0.0]), np.array([1.0, 2.0])
        queries = rng.normal(size=(30, 2)) * 3
        batch = min_sq_dists(queries, lo, hi)
        for i, q in enumerate(queries):
            assert batch[i] == pytest.approx(min_sq_dist(q, lo, hi))

    def test_max_sq_dists_matches_scalar(self, rng):
        lo, hi = np.array([-1.0, 0.0]), np.array([1.0, 2.0])
        queries = rng.normal(size=(30, 2)) * 3
        batch = max_sq_dists(queries, lo, hi)
        for i, q in enumerate(queries):
            assert batch[i] == pytest.approx(max_sq_dist(q, lo, hi))


class TestTightBox:
    def test_tight_box(self, rng):
        pts = rng.normal(size=(20, 4))
        lo, hi = tight_box(pts)
        np.testing.assert_allclose(lo, pts.min(axis=0))
        np.testing.assert_allclose(hi, pts.max(axis=0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            tight_box(np.empty((0, 2)))
