"""Unit tests for the linear-binning + FFT KDE baseline (ks emulation)."""

import numpy as np
import pytest

from repro.baselines.binned import DEFAULT_GRID_SIZES, BinnedKDE
from repro.baselines.simple import NaiveKDE


class TestAccuracy:
    def test_close_to_exact_in_bulk_2d(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        binned = BinnedKDE().fit(small_gauss)
        queries = rng.normal(size=(100, 2)) * 0.8  # bulk of the distribution
        truth = exact.density(queries)
        got = binned.density(queries)
        assert np.median(np.abs(got - truth) / truth) < 0.02

    def test_1d_accuracy(self, rng):
        data = rng.normal(size=(1000, 1))
        exact = NaiveKDE().fit(data)
        binned = BinnedKDE().fit(data)
        queries = rng.normal(size=(50, 1)) * 0.8
        np.testing.assert_allclose(
            binned.density(queries), exact.density(queries), rtol=0.05
        )

    def test_finer_grid_more_accurate(self, small_gauss, rng):
        exact = NaiveKDE().fit(small_gauss)
        queries = rng.normal(size=(60, 2)) * 0.8
        truth = exact.density(queries)
        coarse = BinnedKDE(grid_size=21).fit(small_gauss).density(queries)
        fine = BinnedKDE(grid_size=201).fit(small_gauss).density(queries)
        assert np.median(np.abs(fine - truth)) <= np.median(np.abs(coarse - truth))

    def test_4d_runs_with_coarse_default(self, rng):
        data = rng.normal(size=(800, 4))
        binned = BinnedKDE().fit(data)
        densities = binned.density(data[:20])
        assert np.all(densities >= 0)

    def test_densities_non_negative(self, small_gauss, rng):
        binned = BinnedKDE().fit(small_gauss)
        queries = rng.uniform(-6, 6, size=(200, 2))
        assert np.all(binned.density(queries) >= 0)

    def test_out_of_grid_is_zero(self, small_gauss):
        binned = BinnedKDE().fit(small_gauss)
        assert binned.density(np.array([[100.0, 100.0]]))[0] == 0.0


class TestMassConservation:
    def test_binned_grid_total_mass(self, small_gauss):
        binned = BinnedKDE().fit(small_gauss)
        # Total linear-binned count mass equals n before convolution; the
        # convolved density grid integrates to ~1 over the padded box.
        grid = binned._density_grid
        # Cells live in bandwidth-scaled space; densities are per unit of
        # original-space volume, so the integral needs the Jacobian
        # prod(h).
        cell_volume = float(np.prod(binned._cell)) * float(np.prod(binned.kernel.bandwidth))
        assert float(grid.sum()) * cell_volume == pytest.approx(1.0, abs=0.02)


class TestValidation:
    def test_rejects_high_dimensions(self, rng):
        with pytest.raises(ValueError, match="d <= 4"):
            BinnedKDE().fit(rng.normal(size=(100, 5)))

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="grid_size"):
            BinnedKDE(grid_size=1)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            BinnedKDE().density(np.zeros((1, 2)))

    def test_default_grid_sizes_table(self):
        assert DEFAULT_GRID_SIZES == {1: 401, 2: 151, 3: 51, 4: 21}

    def test_kernel_evaluations_tracks_stencil(self, small_gauss):
        binned = BinnedKDE().fit(small_gauss)
        assert binned.kernel_evaluations > 0
