"""Unit tests for dual-tree batch classification."""

import numpy as np
import pytest

from repro import Label, TKDCClassifier, TKDCConfig
from repro.baselines.simple import NaiveKDE
from repro.core.dualtree import _bound_block, dual_tree_classify
from repro.core.stats import TraversalStats
from repro.index.boxes import box_max_sq_dist, box_min_sq_dist
from repro.index.kdtree import KDTree
from repro.kernels.gaussian import GaussianKernel


class TestBoxBoxDistances:
    def test_overlapping_boxes_zero_min(self):
        lo_a, hi_a = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        lo_b, hi_b = np.array([1.0, 1.0]), np.array([3.0, 3.0])
        assert box_min_sq_dist(lo_a, hi_a, lo_b, hi_b) == 0.0

    def test_disjoint_boxes(self):
        lo_a, hi_a = np.array([0.0]), np.array([1.0])
        lo_b, hi_b = np.array([3.0]), np.array([4.0])
        assert box_min_sq_dist(lo_a, hi_a, lo_b, hi_b) == pytest.approx(4.0)
        assert box_max_sq_dist(lo_a, hi_a, lo_b, hi_b) == pytest.approx(16.0)

    def test_symmetry(self, rng):
        for __ in range(20):
            a = rng.normal(size=(5, 3))
            b = rng.normal(size=(5, 3)) + rng.normal(size=3) * 3
            lo_a, hi_a = a.min(axis=0), a.max(axis=0)
            lo_b, hi_b = b.min(axis=0), b.max(axis=0)
            assert box_min_sq_dist(lo_a, hi_a, lo_b, hi_b) == pytest.approx(
                box_min_sq_dist(lo_b, hi_b, lo_a, hi_a)
            )
            assert box_max_sq_dist(lo_a, hi_a, lo_b, hi_b) == pytest.approx(
                box_max_sq_dist(lo_b, hi_b, lo_a, hi_a)
            )

    def test_brackets_all_point_pairs(self, rng):
        for __ in range(20):
            a = rng.normal(size=(8, 2))
            b = rng.normal(size=(8, 2)) + 2.0
            lo_a, hi_a = a.min(axis=0), a.max(axis=0)
            lo_b, hi_b = b.min(axis=0), b.max(axis=0)
            pair_sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
            assert box_min_sq_dist(lo_a, hi_a, lo_b, hi_b) <= pair_sq.min() + 1e-12
            assert box_max_sq_dist(lo_a, hi_a, lo_b, hi_b) >= pair_sq.max() - 1e-12

    def test_degenerate_box_matches_point_distance(self, rng):
        from repro.index.boxes import max_sq_dist, min_sq_dist

        q = rng.normal(size=3)
        lo, hi = np.array([-1.0, 0.0, 1.0]), np.array([0.5, 2.0, 3.0])
        assert box_min_sq_dist(q, q, lo, hi) == pytest.approx(min_sq_dist(q, lo, hi))
        assert box_max_sq_dist(q, q, lo, hi) == pytest.approx(max_sq_dist(q, lo, hi))


class TestBoundBlock:
    def test_degenerate_block_matches_exact_side(self, small_gauss, unit_kernel_2d):
        tree = KDTree(small_gauss, leaf_size=8)
        naive_density = (
            lambda q: float(unit_kernel_2d.sum_at(small_gauss, q)) / small_gauss.shape[0]
        )
        threshold = 0.01
        for q in (np.zeros(2), np.array([5.0, 5.0]), np.array([1.5, -1.0])):
            qtree = KDTree(q[None, :], leaf_size=1)
            outcome = _bound_block(
                tree, unit_kernel_2d, qtree.root, threshold, 0.01,
                TraversalStats(), 10**9,
            )
            exact = naive_density(q)
            if outcome.label is Label.HIGH:
                assert exact > threshold
            elif outcome.label is Label.LOW:
                assert exact < threshold


class TestDualTreeClassify:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(3000, 2))
        return data, TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(data)

    def test_agrees_with_single_query_outside_band(self, fitted, rng):
        data, clf = fitted
        queries = rng.normal(size=(300, 2)) * 2
        dual = clf.classify_batch(queries)
        naive = NaiveKDE().fit(data)
        exact = naive.density(queries)
        t = clf.threshold.value
        eps = clf.config.epsilon
        for density, label in zip(exact, dual):
            if density > t * (1 + eps):
                assert label is Label.HIGH
            elif density < t * (1 - eps):
                assert label is Label.LOW

    def test_grid_batch(self, fitted):
        __, clf = fitted
        xs = np.linspace(-4, 4, 30)
        grid_x, grid_y = np.meshgrid(xs, xs, indexing="ij")
        queries = np.column_stack([grid_x.ravel(), grid_y.ravel()])
        labels = clf.classify_batch(queries)
        # Center HIGH, far corner LOW.
        center = np.argmin(np.sum(queries**2, axis=1))
        corner = np.argmax(np.sum(queries**2, axis=1))
        assert labels[center] is Label.HIGH
        assert labels[corner] is Label.LOW

    def test_block_hits_recorded(self, fitted):
        __, clf = fitted
        before = clf.stats.extras.get("dual_block_hits", 0.0)
        xs = np.linspace(-6, 6, 40)
        grid_x, grid_y = np.meshgrid(xs, xs, indexing="ij")
        queries = np.column_stack([grid_x.ravel(), grid_y.ravel()])
        clf.classify_batch(queries)
        assert clf.stats.extras.get("dual_block_hits", 0.0) > before

    def test_empty_batch(self, fitted):
        __, clf = fitted
        labels = clf.classify_batch(np.empty((0, 2)))
        assert labels.shape == (0,)

    def test_single_query_batch(self, fitted):
        __, clf = fitted
        labels = clf.classify_batch(np.array([[0.0, 0.0]]))
        assert labels[0] is Label.HIGH

    def test_direct_function_call(self, fitted):
        data, clf = fitted
        scaled = clf.kernel.scale(data[:64])
        stats = TraversalStats()
        labels = dual_tree_classify(
            clf.tree, clf.kernel, scaled, clf.threshold.value, 0.01, stats
        )
        assert labels.shape == (64,)
        assert all(label in (Label.HIGH, Label.LOW) for label in labels)

    def test_requires_fit(self):
        clf = TKDCClassifier()
        with pytest.raises(Exception):
            clf.classify_batch(np.zeros((1, 2)))
