"""Unit tests for the Epanechnikov kernel."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.kernels.epanechnikov import EpanechnikovKernel, _unit_ball_volume


class TestUnitBallVolume:
    def test_known_volumes(self):
        assert _unit_ball_volume(1) == pytest.approx(2.0)
        assert _unit_ball_volume(2) == pytest.approx(math.pi)
        assert _unit_ball_volume(3) == pytest.approx(4.0 / 3.0 * math.pi)


class TestValues:
    def test_finite_support(self):
        kernel = EpanechnikovKernel(np.array([1.0, 1.0]))
        assert kernel.support_sq_radius == 1.0
        assert kernel.value(1.0) == 0.0
        assert kernel.value(2.0) == 0.0
        assert kernel.value(0.99) > 0.0

    def test_profile_linear_in_sq_distance(self):
        kernel = EpanechnikovKernel(np.array([1.0]))
        np.testing.assert_allclose(
            kernel.profile(np.array([0.0, 0.25, 0.5, 1.0])), [1.0, 0.75, 0.5, 0.0]
        )

    def test_monotone_decreasing(self):
        kernel = EpanechnikovKernel(np.array([1.0, 1.0, 1.0]))
        sq = np.linspace(0.0, 2.0, 50)
        values = kernel.value(sq)
        assert np.all(np.diff(values) <= 0)

    def test_integrates_to_one_1d(self):
        h = 0.5
        kernel = EpanechnikovKernel(np.array([h]))
        total, __ = integrate.quad(lambda x: kernel.value((x / h) ** 2), -h, h)
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_integrates_to_one_2d(self):
        h = np.array([1.0, 2.0])
        kernel = EpanechnikovKernel(h)

        def integrand(y: float, x: float) -> float:
            return float(kernel.value((x / h[0]) ** 2 + (y / h[1]) ** 2))

        # Support is x in [-1, 1], y in [-2, 2] for h = (1, 2); dblquad's
        # outer variable is x, inner is y.
        total, __ = integrate.dblquad(integrand, -1.5, 1.5, -2.5, 2.5)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_max_value_known_formula_1d(self):
        # 1-d Epanechnikov peak is 3/4 at unit bandwidth.
        kernel = EpanechnikovKernel(np.array([1.0]))
        assert kernel.max_value == pytest.approx(0.75)


class TestInverseProfile:
    def test_roundtrip(self):
        kernel = EpanechnikovKernel(np.array([1.0]))
        for value in (1.0, 0.5, 0.123):
            sq = kernel.inverse_profile(value)
            assert kernel.profile(np.array(sq)) == pytest.approx(value)

    def test_rejects_out_of_range(self):
        kernel = EpanechnikovKernel(np.array([1.0]))
        with pytest.raises(ValueError):
            kernel.inverse_profile(0.0)

    def test_cutoff_radius_within_support(self):
        kernel = EpanechnikovKernel(np.array([1.0, 1.0]))
        radius = kernel.cutoff_radius(kernel.max_value * 0.1)
        assert 0.0 < radius <= 1.0
