"""Unit tests for the estimator protocol and classification adapter."""

import numpy as np
import pytest

from repro.baselines import NaiveKDE, TreeKDE
from repro.baselines.base import (
    DensityEstimator,
    classify_by_density,
    quantile_threshold_of,
)
from repro.core.result import Label


class TestProtocol:
    def test_estimators_satisfy_protocol(self):
        assert isinstance(NaiveKDE(), DensityEstimator)
        assert isinstance(TreeKDE(), DensityEstimator)


class TestQuantileThreshold:
    def test_matches_manual_quantile(self, small_gauss):
        est = NaiveKDE().fit(small_gauss)
        f0 = est.kernel.max_value / small_gauss.shape[0]
        t = quantile_threshold_of(est, small_gauss, 0.1, self_contribution=f0)
        densities = np.sort(est.density(small_gauss) - f0)
        assert t == densities[int(np.ceil(0.1 * len(densities))) - 1]

    def test_threshold_increases_with_p(self, small_gauss):
        est = NaiveKDE().fit(small_gauss)
        t_small = quantile_threshold_of(est, small_gauss, 0.01)
        t_large = quantile_threshold_of(est, small_gauss, 0.5)
        assert t_small < t_large


class TestClassifyByDensity:
    def test_labels_split_at_threshold(self, small_gauss):
        est = NaiveKDE().fit(small_gauss)
        t = quantile_threshold_of(est, small_gauss, 0.1)
        queries = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = classify_by_density(est, queries, t)
        assert labels[0] == Label.HIGH
        assert labels[1] == Label.LOW

    def test_classified_fraction_matches_quantile(self, small_gauss):
        est = NaiveKDE().fit(small_gauss)
        f0 = est.kernel.max_value / small_gauss.shape[0]
        t = quantile_threshold_of(est, small_gauss, 0.2, self_contribution=f0)
        # Classifying raw densities of the training set against t: the
        # self-contribution shifts all values up by the same constant.
        densities = est.density(small_gauss) - f0
        low = float(np.mean(densities <= t))
        assert low == pytest.approx(0.2, abs=0.01)
