"""Unit tests for the flat structure-of-arrays tree view."""

import numpy as np
import pytest

from repro.index.boxes import box_kernel_bounds
from repro.index.flat import NO_CHILD, FlatTree, flatten_kdtree, pair_box_bounds
from repro.index.kdtree import KDTree
from repro.kernels.gaussian import GaussianKernel


@pytest.fixture
def tree(small_gauss) -> KDTree:
    return KDTree(small_gauss, leaf_size=8)


@pytest.fixture
def flat(tree) -> FlatTree:
    return tree.flatten()


class TestFlattening:
    def test_one_entry_per_node(self, tree, flat):
        assert flat.n_nodes == sum(1 for __ in tree.iter_nodes())

    def test_root_is_node_zero(self, tree, flat):
        np.testing.assert_array_equal(flat.lo[0], tree.root.lo)
        np.testing.assert_array_equal(flat.hi[0], tree.root.hi)
        assert flat.count[0] == tree.size

    def test_arrays_mirror_nodes(self, tree, flat):
        for node_id, node in enumerate(tree.iter_nodes()):
            np.testing.assert_array_equal(flat.lo[node_id], node.lo)
            np.testing.assert_array_equal(flat.hi[node_id], node.hi)
            assert flat.count[node_id] == node.count
            assert flat.start[node_id] == node.start
            assert flat.end[node_id] == node.end
            assert (flat.left[node_id] == NO_CHILD) == node.is_leaf

    def test_children_consistent(self, flat):
        for node_id in range(flat.n_nodes):
            if flat.left[node_id] == NO_CHILD:
                assert flat.right[node_id] == NO_CHILD
                continue
            left, right = flat.left[node_id], flat.right[node_id]
            # Pre-order ids: children always come after their parent.
            assert left > node_id and right > node_id
            assert flat.count[left] + flat.count[right] == flat.count[node_id]
            assert flat.start[left] == flat.start[node_id]
            assert flat.end[left] == flat.start[right]
            assert flat.end[right] == flat.end[node_id]

    def test_points_shared_not_copied(self, tree, flat):
        assert flat.points is tree.points

    def test_flatten_is_cached(self, tree):
        assert tree.flatten() is tree.flatten()

    def test_leaf_points_match(self, tree, flat):
        leaf_ids = np.flatnonzero(flat.is_leaf)
        leaves = [n for n in tree.iter_nodes() if n.is_leaf]
        assert len(leaf_ids) == len(leaves)
        total = sum(flat.count[i] for i in leaf_ids)
        assert total == tree.size

    def test_single_point_tree(self):
        flat = flatten_kdtree(KDTree(np.array([[1.0, 2.0]])))
        assert flat.n_nodes == 1
        assert flat.is_leaf.all()
        assert flat.size == 1


class TestPairBoxBounds:
    def test_matches_scalar_bounds(self, tree, flat, rng):
        kernel = GaussianKernel(np.ones(2))
        inv_n = 1.0 / tree.size
        queries = rng.normal(size=(64, 2)) * 2
        node_ids = rng.integers(0, flat.n_nodes, size=64)
        lower, upper = pair_box_bounds(flat, node_ids, queries, kernel, inv_n)
        nodes = list(tree.iter_nodes())
        for i in range(64):
            node = nodes[node_ids[i]]
            ref_lower, ref_upper = box_kernel_bounds(
                node.lo, node.hi, node.count, queries[i], kernel, inv_n
            )
            assert lower[i] == pytest.approx(ref_lower, rel=1e-12, abs=1e-300)
            assert upper[i] == pytest.approx(ref_upper, rel=1e-12, abs=1e-300)

    def test_bounds_ordered(self, flat, rng):
        kernel = GaussianKernel(np.ones(2))
        queries = rng.normal(size=(32, 2))
        node_ids = rng.integers(0, flat.n_nodes, size=32)
        lower, upper = pair_box_bounds(flat, node_ids, queries, kernel, 1.0 / flat.size)
        assert np.all(lower <= upper)
