"""Unit tests for model persistence and the fit/classify CLI."""

import pickle

import numpy as np
import pytest

import repro
import repro.io.models as models_module
from repro import TKDCClassifier, TKDCConfig
from repro.cli import main
from repro.io.models import (
    ModelIntegrityError,
    load_model,
    resolve_model_path,
    save_model,
)


@pytest.fixture(scope="module")
def fitted():
    data = np.random.default_rng(0).normal(size=(1000, 2))
    return data, TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(data)


class TestSaveLoad:
    def test_round_trip_preserves_labels(self, fitted, tmp_path, rng):
        data, clf = fitted
        path = save_model(tmp_path / "model", clf)
        loaded = load_model(path)
        queries = rng.normal(size=(30, 2)) * 2
        np.testing.assert_array_equal(loaded.predict(queries), clf.predict(queries))
        assert loaded.threshold.value == clf.threshold.value

    def test_suffix_enforced(self, fitted, tmp_path):
        __, clf = fitted
        path = save_model(tmp_path / "model.bin", clf)
        assert path.suffix == ".tkdc"

    def test_load_without_suffix(self, fitted, tmp_path):
        __, clf = fitted
        save_model(tmp_path / "model", clf)
        assert load_model(tmp_path / "model").is_fitted

    def test_rejects_unfitted(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(tmp_path / "model", TKDCClassifier())

    def test_rejects_foreign_file(self, tmp_path):
        bogus = tmp_path / "bogus.tkdc"
        bogus.write_bytes(pickle.dumps({"not": "a model"}))
        with pytest.warns(UserWarning, match="integrity footer"):
            with pytest.raises(ValueError, match="not a repro"):
                load_model(bogus)

    def test_rejects_version_mismatch(self, fitted, tmp_path):
        __, clf = fitted
        stale = tmp_path / "stale.tkdc"
        stale.write_bytes(pickle.dumps({
            "magic": "repro-tkdc-model", "version": "0.0.1", "classifier": clf
        }))
        with pytest.warns(UserWarning, match="integrity footer"):
            with pytest.raises(ValueError, match="re-fit"):
                load_model(stale)


class TestIntegrityFooter:
    @pytest.fixture()
    def saved(self, fitted, tmp_path):
        __, clf = fitted
        return save_model(tmp_path / "model", clf)

    def test_footer_present_on_disk(self, saved):
        data = saved.read_bytes()
        assert b"tkdc-sha256:" in data[-44:]

    def test_flipped_payload_byte_rejected_by_checksum(self, saved):
        blob = bytearray(saved.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        saved.write_bytes(bytes(blob))
        with pytest.raises(ModelIntegrityError, match="sha256"):
            load_model(saved)

    def test_flipped_digest_byte_rejected(self, saved):
        blob = bytearray(saved.read_bytes())
        blob[-1] ^= 0x01
        saved.write_bytes(bytes(blob))
        with pytest.raises(ModelIntegrityError, match="sha256"):
            load_model(saved)

    def test_corrupt_file_never_reaches_the_unpickler(self, saved, monkeypatch):
        blob = bytearray(saved.read_bytes())
        blob[100] ^= 0xFF
        saved.write_bytes(bytes(blob))
        unpickles: list[int] = []
        real_loads = pickle.loads

        def spying_loads(data, **kwargs):
            unpickles.append(len(data))
            return real_loads(data, **kwargs)

        monkeypatch.setattr(models_module.pickle, "loads", spying_loads)
        with pytest.raises(ModelIntegrityError):
            load_model(saved)
        assert unpickles == []

    def test_truncated_legacy_stream_is_typed_error(self, saved):
        # Truncation removes the footer, so the file degrades to the
        # legacy path — and the incomplete pickle must still surface as
        # the typed integrity error, not a raw UnpicklingError.
        saved.write_bytes(saved.read_bytes()[:200])
        with pytest.warns(UserWarning, match="integrity footer"):
            with pytest.raises(ModelIntegrityError, match="not a complete"):
                load_model(saved)

    def test_legacy_footerless_file_loads_with_warning(self, fitted, tmp_path):
        __, clf = fitted
        legacy = tmp_path / "legacy.tkdc"
        legacy.write_bytes(pickle.dumps({
            "magic": "repro-tkdc-model",
            "version": repro.__version__,
            "classifier": clf,
        }))
        with pytest.warns(UserWarning, match="integrity footer"):
            loaded = load_model(legacy)
        assert loaded.is_fitted

    def test_saved_files_load_warning_free(self, saved, recwarn):
        load_model(saved)
        assert not [w for w in recwarn if "integrity" in str(w.message)]


class TestPathResolution:
    def test_exact_path_wins_over_tkdc_sibling(self, tmp_path):
        exact = tmp_path / "a.model"
        sibling = tmp_path / "a.tkdc"
        exact.write_bytes(b"exact")
        sibling.write_bytes(b"sibling")
        assert resolve_model_path(exact) == exact

    def test_falls_back_to_tkdc_suffix(self, tmp_path):
        sibling = tmp_path / "a.tkdc"
        sibling.write_bytes(b"sibling")
        assert resolve_model_path(tmp_path / "a") == sibling
        assert resolve_model_path(tmp_path / "a.model") == sibling

    def test_missing_error_names_both_candidates(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            resolve_model_path(tmp_path / "ghost.model")
        message = str(excinfo.value)
        assert str(tmp_path / "ghost.model") in message
        assert f"also tried {tmp_path / 'ghost.tkdc'}" in message

    def test_missing_tkdc_path_has_single_candidate(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            resolve_model_path(tmp_path / "ghost.tkdc")
        message = str(excinfo.value)
        assert str(tmp_path / "ghost.tkdc") in message
        assert "also tried" not in message

    def test_load_model_uses_resolution(self, fitted, tmp_path):
        __, clf = fitted
        save_model(tmp_path / "m", clf)  # lands at m.tkdc
        assert load_model(tmp_path / "m").is_fitted
        with pytest.raises(FileNotFoundError, match="also tried"):
            load_model(tmp_path / "elsewhere.bin")


class TestCliFitClassify:
    def test_end_to_end(self, tmp_path, capsys, rng):
        train_csv = tmp_path / "train.csv"
        np.savetxt(train_csv, rng.normal(size=(800, 2)), delimiter=",")
        queries_csv = tmp_path / "queries.csv"
        np.savetxt(queries_csv, np.array([[0.0, 0.0], [6.0, 6.0]]), delimiter=",")
        model_path = tmp_path / "model.tkdc"

        assert main(["fit", str(train_csv), "--model", str(model_path),
                     "--p", "0.05"]) == 0
        assert model_path.exists()
        capsys.readouterr()

        assert main(["classify", str(queries_csv), "--model", str(model_path)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["label", "1", "0"]

    def test_classify_with_densities_and_output(self, tmp_path, capsys, rng):
        train_csv = tmp_path / "train.csv"
        np.savetxt(train_csv, rng.normal(size=(600, 2)), delimiter=",")
        queries_csv = tmp_path / "queries.csv"
        np.savetxt(queries_csv, np.zeros((1, 2)), delimiter=",")
        model_path = tmp_path / "m.tkdc"
        output_csv = tmp_path / "labels.csv"

        main(["fit", str(train_csv), "--model", str(model_path)])
        assert main([
            "classify", str(queries_csv), "--model", str(model_path),
            "--densities", "--output", str(output_csv),
        ]) == 0
        lines = output_csv.read_text().strip().splitlines()
        assert lines[0] == "label,density"
        label, density = lines[1].split(",")
        assert label == "1"
        assert float(density) > 0
