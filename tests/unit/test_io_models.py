"""Unit tests for model persistence and the fit/classify CLI."""

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.cli import main
from repro.io.models import load_model, save_model


@pytest.fixture(scope="module")
def fitted():
    data = np.random.default_rng(0).normal(size=(1000, 2))
    return data, TKDCClassifier(TKDCConfig(p=0.05, seed=0)).fit(data)


class TestSaveLoad:
    def test_round_trip_preserves_labels(self, fitted, tmp_path, rng):
        data, clf = fitted
        path = save_model(tmp_path / "model", clf)
        loaded = load_model(path)
        queries = rng.normal(size=(30, 2)) * 2
        np.testing.assert_array_equal(loaded.predict(queries), clf.predict(queries))
        assert loaded.threshold.value == clf.threshold.value

    def test_suffix_enforced(self, fitted, tmp_path):
        __, clf = fitted
        path = save_model(tmp_path / "model.bin", clf)
        assert path.suffix == ".tkdc"

    def test_load_without_suffix(self, fitted, tmp_path):
        __, clf = fitted
        save_model(tmp_path / "model", clf)
        assert load_model(tmp_path / "model").is_fitted

    def test_rejects_unfitted(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(tmp_path / "model", TKDCClassifier())

    def test_rejects_foreign_file(self, tmp_path):
        import pickle

        bogus = tmp_path / "bogus.tkdc"
        bogus.write_bytes(pickle.dumps({"not": "a model"}))
        with pytest.raises(ValueError, match="not a repro"):
            load_model(bogus)

    def test_rejects_version_mismatch(self, fitted, tmp_path):
        import pickle

        __, clf = fitted
        stale = tmp_path / "stale.tkdc"
        stale.write_bytes(pickle.dumps({
            "magic": "repro-tkdc-model", "version": "0.0.1", "classifier": clf
        }))
        with pytest.raises(ValueError, match="re-fit"):
            load_model(stale)


class TestCliFitClassify:
    def test_end_to_end(self, tmp_path, capsys, rng):
        train_csv = tmp_path / "train.csv"
        np.savetxt(train_csv, rng.normal(size=(800, 2)), delimiter=",")
        queries_csv = tmp_path / "queries.csv"
        np.savetxt(queries_csv, np.array([[0.0, 0.0], [6.0, 6.0]]), delimiter=",")
        model_path = tmp_path / "model.tkdc"

        assert main(["fit", str(train_csv), "--model", str(model_path),
                     "--p", "0.05"]) == 0
        assert model_path.exists()
        capsys.readouterr()

        assert main(["classify", str(queries_csv), "--model", str(model_path)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["label", "1", "0"]

    def test_classify_with_densities_and_output(self, tmp_path, capsys, rng):
        train_csv = tmp_path / "train.csv"
        np.savetxt(train_csv, rng.normal(size=(600, 2)), delimiter=",")
        queries_csv = tmp_path / "queries.csv"
        np.savetxt(queries_csv, np.zeros((1, 2)), delimiter=",")
        model_path = tmp_path / "m.tkdc"
        output_csv = tmp_path / "labels.csv"

        main(["fit", str(train_csv), "--model", str(model_path)])
        assert main([
            "classify", str(queries_csv), "--model", str(model_path),
            "--densities", "--output", str(output_csv),
        ]) == 0
        lines = output_csv.read_text().strip().splitlines()
        assert lines[0] == "label,density"
        label, density = lines[1].split(",")
        assert label == "1"
        assert float(density) > 0
