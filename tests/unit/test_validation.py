"""Unit tests for input validation (failure injection)."""

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.baselines import BinnedKDE, NaiveKDE, RadialKDE, TreeKDE
from repro.validation import as_finite_matrix


class TestAsFiniteMatrix:
    def test_passes_clean_data(self, rng):
        data = rng.normal(size=(10, 3))
        out = as_finite_matrix(data)
        np.testing.assert_array_equal(out, data)

    def test_promotes_1d(self):
        out = as_finite_matrix([1.0, 2.0])
        assert out.shape == (1, 2)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_finite_matrix(np.array([[1.0, float("nan")]]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            as_finite_matrix(np.array([[1.0, float("inf")]]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            as_finite_matrix(np.empty((0, 2)))

    def test_names_the_argument(self):
        with pytest.raises(ValueError, match="my queries"):
            as_finite_matrix(np.array([[float("nan")]]), name="my queries")

    def test_counts_bad_values(self):
        with pytest.raises(ValueError, match="2 non-finite"):
            as_finite_matrix(np.array([[float("nan"), float("inf"), 0.0]]))


class TestClassifierRejectsDirtyData:
    def test_fit_rejects_nan(self, rng):
        data = rng.normal(size=(100, 2))
        data[3, 1] = float("nan")
        with pytest.raises(ValueError, match="training data"):
            TKDCClassifier().fit(data)

    def test_classify_rejects_nan_queries(self, medium_gauss):
        clf = TKDCClassifier(TKDCConfig(seed=0)).fit(medium_gauss)
        with pytest.raises(ValueError, match="queries"):
            clf.classify(np.array([[float("nan"), 0.0]]))

    def test_classify_rejects_inf_queries(self, medium_gauss):
        clf = TKDCClassifier(TKDCConfig(seed=0)).fit(medium_gauss)
        with pytest.raises(ValueError, match="queries"):
            clf.estimate_density(np.array([[float("inf"), 0.0]]))


class TestBaselinesRejectDirtyData:
    @pytest.mark.parametrize("make", [
        lambda: NaiveKDE(),
        lambda: TreeKDE(),
        lambda: RadialKDE(radius_in_bandwidths=1.0),
        lambda: BinnedKDE(),
    ])
    def test_fit_rejects_nan(self, make, rng):
        data = rng.normal(size=(50, 2))
        data[0, 0] = float("nan")
        with pytest.raises(ValueError, match="training data"):
            make().fit(data)
