"""Unit tests for TraversalStats and the result types."""

import pytest

from repro.core.result import DensityBounds, Label, ThresholdEstimate
from repro.core.stats import TraversalStats


class TestTraversalStats:
    def test_initial_state(self):
        stats = TraversalStats()
        assert stats.kernel_evaluations == 0
        assert stats.kernels_per_query == 0.0
        assert stats.prunes == 0

    def test_kernels_per_query(self):
        stats = TraversalStats(kernel_evaluations=100, queries=4)
        assert stats.kernels_per_query == 25.0

    def test_merge(self):
        a = TraversalStats(kernel_evaluations=10, queries=1, grid_hits=2)
        b = TraversalStats(kernel_evaluations=5, queries=2, tolerance_prunes=3)
        a.merge(b)
        assert a.kernel_evaluations == 15
        assert a.queries == 3
        assert a.grid_hits == 2
        assert a.tolerance_prunes == 3

    def test_merge_extras(self):
        a = TraversalStats(extras={"x": 1.0})
        b = TraversalStats(extras={"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.extras == {"x": 3.0, "y": 3.0}

    def test_reset(self):
        stats = TraversalStats(kernel_evaluations=10, queries=2, extras={"a": 1.0})
        stats.reset()
        assert stats.kernel_evaluations == 0
        assert stats.queries == 0
        assert stats.extras == {}

    def test_snapshot_roundtrip(self):
        stats = TraversalStats(kernel_evaluations=7, queries=2, threshold_prunes_high=1)
        snap = stats.snapshot()
        assert snap["kernel_evaluations"] == 7
        assert snap["kernels_per_query"] == 3.5
        assert snap["threshold_prunes_high"] == 1

    def test_prunes_totals(self):
        stats = TraversalStats(
            threshold_prunes_high=2, threshold_prunes_low=3, tolerance_prunes=4
        )
        assert stats.prunes == 9

    def test_to_dict_from_dict_is_lossless(self):
        stats = TraversalStats(
            kernel_evaluations=101,
            node_expansions=17,
            queries=8,
            grid_hits=2,
            threshold_prunes_high=3,
            threshold_prunes_low=1,
            tolerance_prunes=2,
            exhausted=0,
            extras={"pool_workers": 4.0, "chunk_reissues": 1.0},
        )
        clone = TraversalStats.from_dict(stats.to_dict())
        assert clone == stats
        # The payload itself is plain JSON-able data with nested extras.
        payload = stats.to_dict()
        assert payload["extras"] == {"pool_workers": 4.0, "chunk_reissues": 1.0}
        assert "kernels_per_query" not in payload  # derived, not stored

    def test_from_dict_folds_unknown_keys_into_extras(self):
        rebuilt = TraversalStats.from_dict({
            "kernel_evaluations": 5,
            "queries": 1,
            "future_counter": 9.0,
            "extras": {"existing": 2.0, "future_counter": 1.0},
        })
        assert rebuilt.kernel_evaluations == 5
        assert rebuilt.queries == 1
        # Unknown top-level keys accumulate onto matching extras entries.
        assert rebuilt.extras == {"existing": 2.0, "future_counter": 10.0}

    def test_round_trip_then_merge_matches_direct_merge(self):
        """The pooled-classify contract: shipping worker stats through
        to_dict/from_dict then merging must equal merging directly."""
        worker = TraversalStats(
            kernel_evaluations=40, queries=4, extras={"shipped": 1.0}
        )
        direct = TraversalStats(kernel_evaluations=10, queries=1)
        direct.merge(worker)
        via_wire = TraversalStats(kernel_evaluations=10, queries=1)
        via_wire.merge(TraversalStats.from_dict(worker.to_dict()))
        assert via_wire == direct


class TestLabel:
    def test_values(self):
        assert int(Label.LOW) == 0
        assert int(Label.HIGH) == 1

    def test_names(self):
        assert Label.HIGH.name == "HIGH"
        assert Label(0) is Label.LOW


class TestDensityBounds:
    def test_midpoint_and_width(self):
        bounds = DensityBounds(1.0, 3.0)
        assert bounds.midpoint == 2.0
        assert bounds.width == 2.0

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="exceeds"):
            DensityBounds(2.0, 1.0)

    def test_accepts_degenerate(self):
        bounds = DensityBounds(1.5, 1.5)
        assert bounds.width == 0.0


class TestThresholdEstimate:
    def test_valid(self):
        estimate = ThresholdEstimate(value=1.0, lower=0.5, upper=2.0, p=0.01)
        assert estimate.value == 1.0

    def test_rejects_value_outside_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            ThresholdEstimate(value=3.0, lower=0.5, upper=2.0, p=0.01)
