"""Unit tests for console tables and JSON result capture."""

import json

import numpy as np
import pytest

from repro.bench.reporting import ConsoleTable, format_value, save_results


class TestConsoleTable:
    def test_render_alignment(self):
        table = ConsoleTable(["algo", "qps"])
        table.add_row({"algo": "tkdc", "qps": 55200})
        table.add_row({"algo": "simple", "qps": 0.12})
        lines = table.render().splitlines()
        assert lines[0].startswith("algo")
        assert "tkdc" in lines[2]
        assert "simple" in lines[3]

    def test_missing_column_blank(self):
        table = ConsoleTable(["a", "b"])
        table.add_row({"a": 1})
        assert "1" in table.render()

    def test_rejects_no_columns(self):
        with pytest.raises(ValueError):
            ConsoleTable([])

    def test_empty_table_renders_header(self):
        table = ConsoleTable(["x"])
        assert table.render().splitlines()[0] == "x"


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.0) == "0"
        assert format_value(1234.5678) == "1235"
        assert format_value(1.0e-6) == "1e-06"
        assert format_value(2.5e7) == "2.5e+07"

    def test_non_floats(self):
        assert format_value("tkdc") == "tkdc"
        assert format_value(42) == "42"
        assert format_value(True) == "True"


class TestSaveResults:
    def test_round_trip(self, tmp_path):
        rows = [{"algo": "tkdc", "qps": np.float64(55.5), "n": np.int64(100)}]
        path = save_results("test_exp", rows, directory=tmp_path)
        loaded = json.loads(path.read_text())
        assert loaded == [{"algo": "tkdc", "qps": 55.5, "n": 100}]

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        path = save_results("exp", [], directory=target)
        assert path.exists()
