"""Unit tests for bandwidth selection rules."""

import numpy as np
import pytest

from repro.kernels.bandwidth import scotts_rule, silverman_rule


class TestScottsRule:
    def test_matches_equation_4(self, rng):
        data = rng.normal(size=(500, 3))
        h = scotts_rule(data)
        expected = 500 ** (-1.0 / 7.0) * np.std(data, axis=0)
        np.testing.assert_allclose(h, expected)

    def test_scale_factor_is_linear(self, rng):
        data = rng.normal(size=(100, 2))
        np.testing.assert_allclose(scotts_rule(data, scale=2.5), 2.5 * scotts_rule(data))

    def test_shrinks_with_n(self, rng):
        small = rng.normal(size=(100, 2))
        # Same distribution, more data -> smaller bandwidth.
        large = rng.normal(size=(10_000, 2))
        assert np.all(scotts_rule(large) < scotts_rule(small) * 1.1)

    def test_zero_variance_dimension_gets_floor(self, rng):
        data = rng.normal(size=(200, 3))
        data[:, 1] = 42.0  # constant column
        h = scotts_rule(data)
        assert np.all(h > 0)

    def test_all_zero_variance(self):
        data = np.ones((50, 2))
        h = scotts_rule(data)
        assert np.all(h > 0)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError, match="at least 2"):
            scotts_rule(np.ones((1, 2)))

    def test_rejects_non_positive_scale(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="positive"):
            scotts_rule(data, scale=0.0)

    def test_per_dimension_scaling(self, rng):
        data = rng.normal(size=(1000, 2)) * np.array([1.0, 10.0])
        h = scotts_rule(data)
        assert h[1] / h[0] == pytest.approx(10.0, rel=0.2)


class TestSilvermanRule:
    def test_positive(self, rng):
        data = rng.normal(size=(300, 4))
        assert np.all(silverman_rule(data) > 0)

    def test_known_factor_vs_scott(self, rng):
        data = rng.normal(size=(300, 2))
        d = 2
        factor = (4.0 / (d + 2.0)) ** (1.0 / (d + 4))
        np.testing.assert_allclose(silverman_rule(data), factor * scotts_rule(data))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            silverman_rule(np.zeros((1, 3)))

    def test_rejects_non_positive_scale(self, rng):
        with pytest.raises(ValueError):
            silverman_rule(rng.normal(size=(10, 2)), scale=-1.0)
