"""Fleet-wide /ingest: owner election, durable fan-in, SIGKILL takeover.

The router owns no pipeline itself — it elects one worker as the
ingest owner over a shared WAL directory and forwards every batch
there with an idempotency key. These tests drive the real thing:
worker subprocesses, a real WAL on disk, and a real ``kill -9`` of the
elected owner under an ingest stream.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serve import ServeClient, ServeConfig
from repro.serve.router import FleetServer, WorkerFleet
from repro.streaming import StreamSettings

from .test_fleet import FLEET_DEFAULTS

#: No background drift thread in the owner: endpoint behaviour only.
STREAM_SETTINGS = StreamSettings(
    monitor_window=32, monitor_window_min=8, check_interval=0.05,
    min_refit_interval=0.0, refit_sample_cap=2000, sketch_capacity=256,
    canary_queries=8, fsync_policy="always",
)

ROWS = 8


def _batch(seed: int) -> list[list[float]]:
    return (np.random.default_rng(seed).normal(size=(ROWS, 2)) * 0.5).tolist()


def _ingest_invariant(snapshot: dict) -> tuple[int, int]:
    return (
        snapshot["ingest_submitted"],
        snapshot["ingest_completed"] + snapshot["ingest_rejected"],
    )


@pytest.fixture
def streaming_fleet_factory(model_path, tmp_path):
    """Start streaming fleets; everything (and the WAL lock) torn down."""
    started: list[tuple[WorkerFleet, FleetServer, threading.Thread]] = []

    def factory(wal_dir=None, streaming=True, **overrides):
        settings = dict(FLEET_DEFAULTS)
        settings.update(overrides)
        fleet = WorkerFleet(
            model_path, ServeConfig(**settings),
            streaming=streaming,
            stream_settings=STREAM_SETTINGS if streaming else None,
            wal_dir=wal_dir if wal_dir is not None else tmp_path / "wal",
        )
        try:
            server = FleetServer(fleet)
        except BaseException:
            fleet.stop()
            raise
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        started.append((fleet, server, thread))
        client = ServeClient("127.0.0.1", server.port, timeout=90.0)
        assert client.wait_ready(30.0), "fleet never became ready"
        return fleet, client

    yield factory
    for fleet, server, thread in started:
        server.shutdown()
        server.server_close()
        fleet.stop()
        thread.join(timeout=5.0)


class TestFleetIngest:
    def test_round_trip_is_durable_and_accounted(self, streaming_fleet_factory):
        fleet, client = streaming_fleet_factory()
        first_total = None
        for i in range(4):
            status, body = client.ingest(_batch(i))
            assert status == 200, body
            assert body["ingested"] == ROWS
            assert body["durable"] is True
            assert body["duplicate"] is False
            assert "worker" in body
            if first_total is None:
                first_total = body["n_total"]
            else:
                assert body["n_total"] == first_total + ROWS * i
        __, snapshot = client.statz()
        submitted, terminal = _ingest_invariant(snapshot)
        assert submitted == terminal == 4
        assert snapshot["ingested_points"] == 4 * ROWS
        info = snapshot["fleet"]
        assert info["streaming"] is True
        assert info["ingest_owner"] is not None
        assert info["ingest_seq"] == 4
        # The WAL lives where we said, and the owner holds its lock.
        assert (fleet.wal_dir / "wal.lock").exists()

    def test_owner_worker_reports_durable_pipeline(
        self, streaming_fleet_factory
    ):
        fleet, client = streaming_fleet_factory()
        status, __ = client.ingest(_batch(0))
        assert status == 200
        __, snapshot = client.statz()
        owner = snapshot["fleet"]["ingest_owner"]
        worker = next(
            w for w in snapshot["workers"] if w["index"] == owner
        )
        streaming = worker["stats"]["streaming"]
        assert streaming["wal"]["fsync_policy"] == "always"
        assert streaming["accounting"]["ok"]

    def test_not_streaming_rejects(self, streaming_fleet_factory):
        __, client = streaming_fleet_factory(streaming=False)
        status, body = client.ingest(_batch(0))
        assert status == 409
        assert body["error"] == "no_streaming_pipeline"
        __, snapshot = client.statz()
        submitted, terminal = _ingest_invariant(snapshot)
        assert submitted == terminal == 1

    def test_router_refuses_adoption(self, streaming_fleet_factory):
        __, client = streaming_fleet_factory()
        status, body = client.request(
            "POST", "/admin/adopt-ingest", {"wal_dir": "/nope"}
        )
        assert status == 409
        assert body["error"] == "router_not_adoptable"

    def test_owner_sigkill_takeover_loses_nothing(
        self, streaming_fleet_factory
    ):
        """kill -9 the elected owner mid-stream: the next batch elects a
        successor that replays the WAL, and every acknowledged point is
        still in the served total."""
        fleet, client = streaming_fleet_factory()
        acked = 0
        base_total = None
        for i in range(5):
            status, body = client.ingest(_batch(i))
            assert status == 200, body
            acked += body["ingested"]
            if base_total is None:
                base_total = body["n_total"] - body["ingested"]

        with fleet._ingest_lock:
            owner = fleet._ingest_owner
        assert owner is not None
        os.kill(owner.pid, signal.SIGKILL)
        # No waiting for the heartbeat: the very next ingest must elect
        # a successor (the dead owner's flock died with it) and answer.
        status, body = client.ingest(_batch(99))
        assert status == 200, body
        acked += body["ingested"]
        assert body["n_total"] == base_total + acked, (
            "acknowledged points were lost across the owner takeover"
        )
        __, snapshot = client.statz()
        new_owner = snapshot["fleet"]["ingest_owner"]
        assert new_owner is not None
        assert new_owner != owner.index or (
            # Same index is only legal if the slot was respawned.
            snapshot["workers"][owner.index]["pid"] != owner.pid
        )
        submitted, terminal = _ingest_invariant(snapshot)
        assert submitted == terminal == 6
        assert snapshot["ingest_completed"] == 6

    def test_owner_survives_fleet_restart(
        self, streaming_fleet_factory, tmp_path
    ):
        """A whole-fleet bounce recovers the WAL: totals carry over."""
        wal_dir = tmp_path / "persistent-wal"
        fleet, client = streaming_fleet_factory(wal_dir=wal_dir)
        total = None
        for i in range(3):
            status, body = client.ingest(_batch(i))
            assert status == 200, body
            total = body["n_total"]
        # Graceful stop releases the flock; the WAL itself persists.
        fleet.stop()

        __, client2 = streaming_fleet_factory(wal_dir=wal_dir)
        status, body = client2.ingest(_batch(50))
        assert status == 200, body
        assert body["n_total"] == total + ROWS
