"""End-to-end daemon behaviour over real HTTP: endpoints, admission,
deadlines, and the watchdog."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serve.stats import TERMINAL_OUTCOMES


def terminal_total(statz: dict) -> int:
    return sum(statz[name] for name in TERMINAL_OUTCOMES)


class TestEndpoints:
    def test_healthz(self, server_factory):
        __, client = server_factory()
        status, payload = client.healthz()
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0

    def test_readyz(self, server_factory, model_path):
        __, client = server_factory()
        status, payload = client.readyz()
        assert status == 200
        assert payload["status"] == "ready"
        assert payload["model_path"] == str(model_path)

    def test_statz_shape(self, server_factory):
        __, client = server_factory()
        status, payload = client.statz()
        assert status == 200
        for name in ("submitted", "accepted", *TERMINAL_OUTCOMES):
            assert name in payload
        assert payload["breaker"] == "closed"
        assert payload["expansions_per_second"] > 0.0
        assert "traversal" in payload

    def test_unknown_paths_404(self, server_factory):
        __, client = server_factory()
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/also/nope", {})[0] == 404


class TestClassify:
    def test_roundtrip_matches_direct_classification(
        self, server_factory, fitted, train_data
    ):
        __, client = server_factory()
        queries = np.array([[-2.0, 0.0], [2.0, 0.0], [0.0, 8.0]])
        status, payload = client.classify(queries.tolist(), deadline_ms=10_000)
        assert status == 200
        direct = fitted.classify_detailed(queries)
        assert payload["labels"] == [int(v) for v in direct.resolved_labels()]
        assert payload["threshold"] == pytest.approx(float(direct.threshold))
        assert payload["mode"] == "full"
        assert payload["exact_fallbacks"] == 0
        assert not payload["degraded_any"]

    def test_default_deadline_used_when_absent(self, server_factory):
        __, client = server_factory()
        status, payload = client.classify([[0.0, 0.0]])
        assert status == 200
        assert payload["budget"] >= 32

    def test_tiny_deadline_gets_floor_budget_not_an_error(self, server_factory):
        server, client = server_factory(min_budget=32)
        status, payload = client.classify([[0.0, 0.0]], deadline_ms=1)
        # Either the floor-budget answer made it, or the 1ms deadline
        # expired before/while queued — every path is structured, none hang.
        assert status in (200, 429, 503)
        if status == 200:
            assert payload["budget"] == 32
        else:
            assert payload["error"] in ("overloaded", "deadline_exceeded")

    def test_deadline_clamped_to_max(self, server_factory):
        server, client = server_factory(default_deadline=0.5, max_deadline=0.5)
        status, payload = client.classify([[0.0, 0.0]], deadline_ms=3_600_000)
        assert status == 200
        # The hour-long request was clamped to max_deadline, so its budget
        # cannot exceed what 0.5s buys at the calibrated rate.
        assert payload["budget"] <= server.manager.budget_for(0.5)

    def test_nan_row_flagged_uncertain(self, server_factory):
        __, client = server_factory()
        status, payload = client.classify(
            [[0.0, 0.0], [float("nan"), 1.0]], deadline_ms=10_000
        )
        assert status == 200
        assert payload["uncertain"][1] is True
        assert payload["labels"][1] == 2  # Label.UNCERTAIN

    def test_bad_requests_are_400(self, server_factory):
        __, client = server_factory()
        cases = [
            {"points": "garbage"},
            {"points": [[1.0, "x"]]},
            {"points": [1.0, 2.0]},  # 1-D
            {"points": []},
            {"nothing": True},
            {"points": [[0.0, 0.0]], "deadline_ms": -5},
            {"points": [[0.0, 0.0]], "deadline_ms": "soon"},
        ]
        for body in cases:
            status, payload = client.request("POST", "/classify", body)
            assert status == 400, body
            assert payload["error"] == "bad_request"
        status, payload = client.request("POST", "/classify", None)
        assert status == 400

    def test_wrong_dimensionality_is_400_not_500(self, server_factory):
        __, client = server_factory()
        status, payload = client.classify([[1.0, 2.0, 3.0]], deadline_ms=5_000)
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_too_many_rows_413(self, server_factory):
        __, client = server_factory(max_rows=4)
        points = [[0.0, 0.0]] * 5
        status, payload = client.classify(points, deadline_ms=5_000)
        assert status == 413
        assert payload["error"] == "too_many_rows"
        assert payload["max_rows"] == 4

    def test_oversized_body_413_before_read(self, server_factory):
        __, client = server_factory(max_request_bytes=256)
        points = [[float(i), float(i)] for i in range(200)]
        status, payload = client.classify(points, deadline_ms=5_000)
        assert status == 413
        assert payload["error"] == "request_too_large"


class TestAdmission:
    def test_overload_sheds_with_429(self, server_factory):
        server, client = server_factory(max_concurrency=1, queue_depth=0)
        stall = threading.Event()
        entered = threading.Event()

        def hook(points) -> None:
            entered.set()
            stall.wait(5.0)

        server.manager.classify_hook = hook
        results: list[tuple[int, dict]] = []

        def occupy() -> None:
            results.append(client.classify([[0.0, 0.0]], deadline_ms=10_000))

        occupant = threading.Thread(target=occupy, daemon=True)
        occupant.start()
        assert entered.wait(5.0), "first request never started classifying"
        try:
            # Capacity is 1 (one slot, no queue): this must shed, fast.
            t0 = time.monotonic()
            status, payload = client.classify([[0.0, 0.0]], deadline_ms=10_000)
            shed_latency = time.monotonic() - t0
        finally:
            stall.set()
            occupant.join(timeout=10.0)
        assert status == 429
        assert payload["error"] == "overloaded"
        assert payload["retry_after"] > 0.0
        assert shed_latency < 1.0, "shedding must not wait for the slot"
        assert results and results[0][0] == 200
        server.manager.classify_hook = None
        statz = client.statz()[1]
        assert statz["shed"] == 1
        assert statz["completed"] == 1

    def test_watchdog_converts_wedged_handler_to_503(self, server_factory):
        server, client = server_factory(
            max_concurrency=1, queue_depth=0, watchdog_grace=0.3
        )
        release = threading.Event()
        server.manager.classify_hook = lambda points: release.wait(30.0)
        try:
            t0 = time.monotonic()
            status, payload = client.classify([[0.0, 0.0]], deadline_ms=400)
            elapsed = time.monotonic() - t0
        finally:
            release.set()
            server.manager.classify_hook = None
        assert status == 503
        assert payload["error"] == "watchdog_timeout"
        assert elapsed < 5.0
        statz = client.statz()[1]
        assert statz["timed_out"] == 1
        # The abandoned worker released its admission state.
        assert statz["admitted"] == 0

    def test_handler_crash_is_500_and_counted(self, server_factory):
        server, client = server_factory()

        def boom(points) -> None:
            raise RuntimeError("injected handler crash")

        server.manager.classify_hook = boom
        try:
            status, payload = client.classify([[0.0, 0.0]], deadline_ms=5_000)
        finally:
            server.manager.classify_hook = None
        assert status == 500
        assert payload["error"] == "internal"
        assert "injected handler crash" in payload["detail"]
        assert client.statz()[1]["errors"] == 1

    def test_accounting_invariant_across_mixed_outcomes(self, server_factory):
        server, client = server_factory(max_rows=4)
        client.classify([[0.0, 0.0]], deadline_ms=5_000)        # completed
        client.classify([[0.0, 0.0]] * 5, deadline_ms=5_000)    # rejected (rows)
        client.request("POST", "/classify", {"points": "x"})     # rejected (parse)
        statz = client.statz()[1]
        assert statz["submitted"] == 3
        assert terminal_total(statz) == statz["submitted"]
        assert statz["in_flight"] == 0


class TestDrain:
    def test_drain_refuses_then_shuts_down(self, server_factory):
        server, client = server_factory(drain_timeout=2.0)
        assert client.classify([[0.0, 0.0]], deadline_ms=5_000)[0] == 200
        status, payload = client.drain()
        assert status == 202
        assert payload["status"] == "draining"
        # A classify that races the listener teardown is either refused
        # with a structured 503 or fails at the socket — never answered.
        try:
            status, payload = client.classify([[0.0, 0.0]], deadline_ms=5_000)
        except OSError:
            pass  # listener already gone
        else:
            assert status == 503
            assert payload["error"] == "draining"
            assert server.stats.snapshot()["drained"] >= 1
        # serve_forever must exit on its own (shutdown() from the drain
        # thread); the fixture's later shutdown() is then a no-op.
        assert server._BaseServer__is_shut_down.wait(10.0), (
            "server did not shut down after drain"
        )

    def test_drain_waits_for_in_flight_request(self, server_factory):
        server, client = server_factory(drain_timeout=5.0)
        stall = threading.Event()
        entered = threading.Event()

        def hook(points) -> None:
            entered.set()
            stall.wait(3.0)

        server.manager.classify_hook = hook
        results: list[tuple[int, dict]] = []
        worker = threading.Thread(
            target=lambda: results.append(
                client.classify([[0.0, 0.0]], deadline_ms=10_000)
            ),
            daemon=True,
        )
        worker.start()
        assert entered.wait(5.0)
        server.initiate_drain()
        time.sleep(0.1)
        stall.set()
        worker.join(timeout=10.0)
        server.manager.classify_hook = None
        # The in-flight request completed despite the drain.
        assert results and results[0][0] == 200
