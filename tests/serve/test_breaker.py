"""Circuit breaker state machine, driven by a fake clock (no sleeps)."""

from __future__ import annotations

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    MODE_DEGRADED,
    MODE_FULL,
    MODE_PROBE,
    OPEN,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def make(clock: FakeClock, transitions: list | None = None, **overrides) -> CircuitBreaker:
    settings = dict(
        window=8, min_requests=4, threshold=0.5, cooldown=10.0, probes=2,
        clock=clock,
    )
    settings.update(overrides)
    if transitions is not None:
        settings["on_transition"] = lambda old, new: transitions.append((old, new))
    return CircuitBreaker(**settings)


def trip(breaker: CircuitBreaker, failures: int = 4) -> None:
    for __ in range(failures):
        assert breaker.admit() in (MODE_FULL, MODE_DEGRADED)
        breaker.record(True, MODE_FULL)


class TestClosed:
    def test_stays_closed_under_successes(self, clock):
        breaker = make(clock)
        for __ in range(50):
            assert breaker.admit() == MODE_FULL
            breaker.record(False, MODE_FULL)
        assert breaker.state == CLOSED

    def test_below_min_requests_never_opens(self, clock):
        breaker = make(clock, min_requests=4)
        for __ in range(3):
            breaker.record(True, MODE_FULL)
        assert breaker.state == CLOSED

    def test_opens_at_threshold(self, clock):
        transitions: list = []
        breaker = make(clock, transitions)
        trip(breaker)
        assert breaker.state == OPEN
        assert transitions == [(CLOSED, OPEN)]

    def test_mixed_outcomes_below_threshold_stay_closed(self, clock):
        breaker = make(clock, window=8, min_requests=4, threshold=0.5)
        for i in range(8):
            breaker.record(i % 4 == 0, MODE_FULL)  # 25% failures
        assert breaker.state == CLOSED

    def test_window_slides_old_failures_out(self, clock):
        breaker = make(clock, window=4, min_requests=4, threshold=0.75)
        breaker.record(True, MODE_FULL)  # one failure, below threshold
        for __ in range(8):
            breaker.record(False, MODE_FULL)
        # The lone failure slid out of the window without ever tripping.
        assert breaker.failure_rate() == 0.0
        assert breaker.state == CLOSED


class TestOpen:
    def test_open_serves_degraded(self, clock):
        breaker = make(clock)
        trip(breaker)
        assert breaker.admit() == MODE_DEGRADED

    def test_degraded_outcomes_do_not_feed_window(self, clock):
        breaker = make(clock)
        trip(breaker)
        rate = breaker.failure_rate()
        for __ in range(20):
            breaker.record(True, MODE_DEGRADED)
        assert breaker.failure_rate() == rate

    def test_half_open_after_cooldown(self, clock):
        breaker = make(clock, cooldown=10.0)
        trip(breaker)
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def test_limited_probes_then_degraded(self, clock):
        breaker = make(clock, probes=2)
        trip(breaker)
        clock.advance(10.1)
        assert breaker.admit() == MODE_PROBE
        assert breaker.admit() == MODE_PROBE
        assert breaker.admit() == MODE_DEGRADED  # probe slots exhausted

    def test_probe_successes_close_and_clear_window(self, clock):
        transitions: list = []
        breaker = make(clock, transitions, probes=2)
        trip(breaker)
        clock.advance(10.1)
        for __ in range(2):
            assert breaker.admit() == MODE_PROBE
            breaker.record(False, MODE_PROBE)
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0  # window cleared on close
        assert transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make(clock, cooldown=10.0)
        trip(breaker)
        clock.advance(10.1)
        assert breaker.admit() == MODE_PROBE
        breaker.record(True, MODE_PROBE)
        assert breaker.state == OPEN
        clock.advance(9.0)  # cooldown restarted: not yet half-open
        assert breaker.state == OPEN
        clock.advance(1.2)
        assert breaker.state == HALF_OPEN

    def test_released_probe_slot_reusable_after_failure_cycle(self, clock):
        breaker = make(clock, probes=1)
        trip(breaker)
        clock.advance(10.1)
        assert breaker.admit() == MODE_PROBE
        breaker.record(True, MODE_PROBE)  # reopen
        clock.advance(10.1)
        assert breaker.admit() == MODE_PROBE  # slot counter was reset


def test_min_requests_validation():
    with pytest.raises(ValueError, match="cannot exceed"):
        CircuitBreaker(window=4, min_requests=5)
