"""Shared fixtures for the serving-daemon suite.

One model is fitted and saved once per package (fitting is the slow
part); each test that needs a live server starts one on an ephemeral
port through ``server_factory``, with fast test-sized windows and
deadlines, and the factory guarantees shutdown at teardown — a leaked
listener would poison later tests.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.io.models import save_model
from repro.serve import ModelManager, ServeClient, ServeConfig, TKDCServer


@pytest.fixture(scope="package")
def train_data() -> np.ndarray:
    rng = np.random.default_rng(42)
    a = rng.normal(size=(700, 2)) * 0.5 + np.array([-2.0, 0.0])
    b = rng.normal(size=(700, 2)) * 0.5 + np.array([2.0, 0.0])
    return np.concatenate([a, b])


@pytest.fixture(scope="package")
def fitted(train_data: np.ndarray) -> TKDCClassifier:
    return TKDCClassifier(TKDCConfig(p=0.05, seed=9)).fit(train_data)


@pytest.fixture(scope="package")
def model_path(fitted: TKDCClassifier, tmp_path_factory) -> Path:
    return save_model(tmp_path_factory.mktemp("models") / "served", fitted)


#: Fast test defaults: tiny calibration/canary workloads, short breaker
#: windows, sub-second cooldowns. Individual tests override per-knob.
TEST_DEFAULTS = dict(
    port=0,
    max_concurrency=2,
    queue_depth=2,
    default_deadline=2.0,
    max_deadline=30.0,
    watchdog_grace=1.0,
    min_budget=32,
    open_budget=16,
    breaker_window=8,
    breaker_min_requests=4,
    breaker_threshold=0.5,
    breaker_cooldown=0.25,
    breaker_probes=2,
    drain_timeout=5.0,
    calibration_queries=32,
    canary_queries=8,
)


@pytest.fixture
def server_factory(model_path: Path):
    """Start configured daemon instances; everything stops at teardown."""
    started: list[tuple[TKDCServer, threading.Thread]] = []

    def factory(**overrides) -> tuple[TKDCServer, ServeClient]:
        settings = dict(TEST_DEFAULTS)
        settings.update(overrides)
        manager = ModelManager(model_path, ServeConfig(**settings))
        server = TKDCServer(manager)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        started.append((server, thread))
        client = ServeClient("127.0.0.1", server.port, timeout=30.0)
        assert client.wait_ready(10.0), "server never became ready"
        return server, client

    yield factory
    for server, thread in started:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
