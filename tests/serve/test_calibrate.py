"""Expansions-rate calibration and the deadline→budget mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import NotFittedError, TKDCClassifier
from repro.core.config import TKDCConfig
from repro.serve.calibrate import (
    FALLBACK_RATE,
    BudgetCalibration,
    calibrate,
    calibrate_for_serving,
    probe_queries,
)


class TestProbeQueries:
    def test_shape_and_determinism(self, fitted):
        a = probe_queries(fitted, 64, seed=5)
        b = probe_queries(fitted, 64, seed=5)
        assert a.shape == (64, 2)
        np.testing.assert_array_equal(a, b)
        assert np.all(np.isfinite(a))

    def test_different_seed_differs(self, fitted):
        a = probe_queries(fitted, 32, seed=1)
        b = probe_queries(fitted, 32, seed=2)
        assert not np.array_equal(a, b)

    def test_covers_dense_and_sparse_regions(self, fitted, train_data):
        probes = probe_queries(fitted, 128, seed=0)
        lo, hi = train_data.min(axis=0), train_data.max(axis=0)
        inside = np.all((probes >= lo) & (probes <= hi), axis=1)
        # Both kinds must be present for the rate to reflect real mix.
        assert 0 < int(inside.sum()) < probes.shape[0]

    def test_minimum_size(self, fitted):
        assert probe_queries(fitted, 1, seed=0).shape[0] == 1
        with pytest.raises(ValueError, match=">= 1"):
            probe_queries(fitted, 0)


class TestMeasureExpansionRate:
    def test_positive_rate_on_real_workload(self, fitted):
        queries = probe_queries(fitted, 64, seed=3)
        rate, observed = fitted.measure_expansion_rate(queries)
        assert rate > 0.0
        assert observed > 0

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            TKDCClassifier().measure_expansion_rate(np.zeros((1, 2)))

    def test_repeats_validated(self, fitted):
        with pytest.raises(ValueError, match="repeats"):
            fitted.measure_expansion_rate(np.zeros((1, 2)), repeats=0)


class TestBudgetMapping:
    def test_calibrate_measures(self, fitted):
        calibration = calibrate(fitted, 64, seed=0)
        assert calibration.measured
        assert calibration.expansions_per_second > 0.0
        assert calibration.expansions_observed > 0

    def test_budget_scales_with_deadline(self, fitted):
        calibration = calibrate(fitted, 64, seed=0)
        short = calibration.budget_for(0.01, safety=0.5, min_budget=8)
        long = calibration.budget_for(10.0, safety=0.5, min_budget=8)
        assert long > short

    def test_budget_floor(self):
        calibration = BudgetCalibration(1000.0, True, 8, 100)
        assert calibration.budget_for(0.0, safety=0.5, min_budget=64) == 64
        assert calibration.budget_for(-1.0, safety=0.5, min_budget=64) == 64

    def test_safety_discounts(self):
        calibration = BudgetCalibration(10_000.0, True, 8, 100)
        assert calibration.budget_for(1.0, safety=0.5, min_budget=1) == 5_000
        assert calibration.budget_for(1.0, safety=1.0, min_budget=1) == 10_000

    def test_degenerate_measurement_falls_back(self, fitted, monkeypatch):
        monkeypatch.setattr(
            type(fitted), "measure_expansion_rate",
            lambda self, q, engine="batch": (0.0, 0),
        )
        calibration = calibrate(fitted, 16, seed=0)
        assert not calibration.measured
        assert calibration.expansions_per_second == FALLBACK_RATE


class TestCalibrateForServing:
    """Engine-aware calibration: auto resolution, pinning, per-engine rates."""

    def test_configured_engine_is_pinned_and_rated(self, fitted):
        calibration = calibrate_for_serving(fitted, 64, seed=0)
        assert calibration.engine == "batch"
        assert calibration.engine_reason == "configured"
        assert calibration.measured
        assert dict(calibration.per_engine)["batch"] == (
            calibration.expansions_per_second
        )
        assert fitted.engine_selected_ == "batch"
        assert fitted.engine_reason_ == "configured"

    def test_auto_low_dim_stays_on_batch(self, train_data):
        clf = TKDCClassifier(
            TKDCConfig(p=0.05, seed=9, engine="auto")
        ).fit(train_data)
        calibration = calibrate_for_serving(clf, 64, seed=0)
        assert calibration.engine == "batch"
        assert calibration.engine_reason == "low_dim"
        assert clf.engine_selected_ == "batch"

    def test_expansion_rate_upgrade_to_hbe(self, train_data):
        """A workload whose traversals expand a large index fraction per
        query re-routes to hbe — here forced via a tiny fraction knob."""
        clf = TKDCClassifier(TKDCConfig(
            p=0.05, seed=9, engine="auto",
            hbe_auto_expansion_fraction=1e-9,
        )).fit(train_data)
        assert clf.auto_selection() == ("batch", "low_dim")  # fit-time view
        calibration = calibrate_for_serving(clf, 64, seed=0)
        assert calibration.engine == "hbe"
        assert calibration.engine_reason == "expansion_rate"
        # Both engines were rated; deadlines convert through the serving
        # engine's own rate.
        rates = dict(calibration.per_engine)
        assert set(rates) == {"batch", "hbe"}
        assert calibration.expansions_per_second == rates["hbe"]
        # The selection is pinned so every later auto resolution — and
        # every fleet worker inheriting this calibration — agrees.
        assert clf.auto_selection() == ("hbe", "expansion_rate")
        assert clf._resolve_engine(None) == "hbe"

    def test_upgrade_blocked_when_low_uncertifiable(
        self, train_data, monkeypatch
    ):
        clf = TKDCClassifier(TKDCConfig(
            p=0.05, seed=9, engine="auto",
            hbe_auto_expansion_fraction=1e-9,
        )).fit(train_data)
        monkeypatch.setattr(
            TKDCClassifier, "hbe_low_certifiable", lambda self: False
        )
        calibration = calibrate_for_serving(clf, 64, seed=0)
        assert calibration.engine == "batch"
        assert calibration.engine_reason == "low_dim"

    def test_explicit_hbe_engine_is_rated_as_hbe(self, train_data):
        clf = TKDCClassifier(
            TKDCConfig(p=0.05, seed=9, engine="hbe")
        ).fit(train_data)
        calibration = calibrate_for_serving(clf, 64, seed=0)
        assert calibration.engine == "hbe"
        assert calibration.engine_reason == "configured"
        assert "hbe" in dict(calibration.per_engine)
