"""Multi-process fleet tests: router, workers, supervision, reload.

These spawn real worker subprocesses (``repro serve-worker``) over a
real shared-memory plane — the same moving parts production uses, sized
down. The soak-style behaviours (worker killed under load, corrupt
reload under fire) assert the fleet's two contracts: no request is ever
dropped, and the accounting invariant holds at quiescence.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.io.models import load_model
from repro.serve import ServeClient, ServeConfig
from repro.serve.reload import prepare_classifier
from repro.serve.router import FleetServer, WorkerFleet
from repro.serve.stats import TERMINAL_OUTCOMES

#: Fast fleet settings: tiny heartbeats and calibration workloads.
FLEET_DEFAULTS = dict(
    port=0,
    workers=2,
    max_concurrency=2,
    queue_depth=2,
    default_deadline=2.0,
    max_deadline=30.0,
    watchdog_grace=1.0,
    min_budget=32,
    open_budget=16,
    breaker_window=8,
    breaker_min_requests=4,
    breaker_threshold=0.75,
    breaker_cooldown=0.25,
    breaker_probes=2,
    drain_timeout=5.0,
    calibration_queries=32,
    canary_queries=8,
    heartbeat_interval=0.2,
    heartbeat_misses=2,
    worker_startup_timeout=60.0,
)


def _assert_accounting_balanced(snapshot: dict) -> None:
    terminal = sum(snapshot[name] for name in TERMINAL_OUTCOMES)
    assert snapshot["submitted"] == terminal, (
        f"fleet lost requests: submitted={snapshot['submitted']} "
        f"terminal={terminal}"
    )


def _wait_quiescent(client: ServeClient, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        __, snapshot = client.statz()
        if snapshot["in_flight"] == 0:
            return snapshot
        time.sleep(0.05)
    raise AssertionError("fleet never went quiescent")


def _wait_workers_healthy(
    client: ServeClient, expected: int, timeout: float = 15.0
) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        __, snapshot = client.statz()
        if snapshot["fleet"]["workers_healthy"] == expected:
            return snapshot
        time.sleep(0.1)
    raise AssertionError(f"fleet never returned to {expected} healthy workers")


@pytest.fixture
def fleet_factory(model_path):
    """Start fleets on ephemeral ports; everything stops at teardown."""
    started: list[tuple[WorkerFleet, FleetServer, threading.Thread]] = []

    def factory(**overrides) -> tuple[WorkerFleet, ServeClient]:
        settings = dict(FLEET_DEFAULTS)
        settings.update(overrides)
        fleet = WorkerFleet(model_path, ServeConfig(**settings))
        try:
            server = FleetServer(fleet)
        except BaseException:
            fleet.stop()
            raise
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        started.append((fleet, server, thread))
        client = ServeClient("127.0.0.1", server.port, timeout=30.0)
        assert client.wait_ready(30.0), "fleet never became ready"
        return fleet, client

    yield factory
    for fleet, server, thread in started:
        server.shutdown()
        server.server_close()
        fleet.stop()
        thread.join(timeout=5.0)


class _Driver:
    """Background request load whose every outcome is captured.

    ``drops`` counts network-level failures — the thing the failover
    guarantee says must be zero even while a worker is being killed.
    """

    def __init__(self, client: ServeClient, threads: int = 3) -> None:
        self._client = client
        self._stop = threading.Event()
        self.statuses: list[int] = []
        self.drops: list[str] = []
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, daemon=True)
            for __ in range(threads)
        ]

    def _run(self) -> None:
        client = ServeClient(self._client.host, self._client.port, timeout=30.0)
        while not self._stop.is_set():
            try:
                status, __ = client.classify([[-2.0, 0.0]], deadline_ms=5000)
            except OSError as exc:
                with self._lock:
                    self.drops.append(repr(exc))
                continue
            with self._lock:
                self.statuses.append(status)

    def __enter__(self) -> "_Driver":
        for thread in self._threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10.0)


class TestFleetServing:
    def test_labels_match_single_process_classify(self, fleet_factory, model_path):
        __, client = fleet_factory()
        classifier = prepare_classifier(load_model(model_path))
        queries = np.array([[-2.0, 0.0], [2.0, 0.0], [0.0, 9.0], [-1.6, 0.3]])
        expected = [
            int(label)
            for label in classifier.classify_detailed(queries).resolved_labels()
        ]
        status, body = client.classify(queries, deadline_ms=10_000)
        assert status == 200
        assert body["labels"] == expected
        assert body["degraded_any"] is False
        assert "worker" in body

    def test_statz_exposes_fleet_state(self, fleet_factory):
        fleet, client = fleet_factory()
        client.classify([[0.0, 0.0]], deadline_ms=5000)
        snapshot = _wait_quiescent(client)
        _assert_accounting_balanced(snapshot)
        assert snapshot["fleet"]["workers"] == 2
        assert snapshot["fleet"]["workers_healthy"] == 2
        assert snapshot["fleet"]["generation"] == fleet.generation
        assert len(snapshot["workers"]) == 2
        for worker in snapshot["workers"]:
            assert worker["healthy"]
            assert worker["stats"]["submitted"] >= 0
        totals = snapshot["fleet"]["worker_totals"]
        # Router completions == worker completions at quiescence.
        assert totals["completed"] == snapshot["completed"]

    def test_metrics_exposes_fleet_families(self, fleet_factory):
        __, client = fleet_factory()
        client.classify([[0.0, 0.0]], deadline_ms=5000)
        status, text = client.metrics()
        assert status == 200
        assert 'tkdc_serve_events_total{event="completed"}' in text
        assert 'tkdc_fleet_worker_up{worker="0"} 1' in text
        assert "tkdc_fleet_worker_restarts_total" in text
        assert 'tkdc_fleet_worker_events_total{worker="1",event="completed"}' in text

    def test_bad_request_forwarded_and_accounted(self, fleet_factory):
        __, client = fleet_factory()
        status, body = client.request("POST", "/classify", {"points": "junk"})
        assert status == 400
        assert body["error"] == "bad_request"
        snapshot = _wait_quiescent(client)
        assert snapshot["rejected"] == 1
        _assert_accounting_balanced(snapshot)


class TestWorkerKill:
    def test_kill_under_load_respawns_with_zero_drops(self, fleet_factory):
        __, client = fleet_factory()
        with _Driver(client) as driver:
            time.sleep(0.6)
            __, snapshot = client.statz()
            victim = snapshot["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            time.sleep(2.5)
        assert driver.drops == [], "requests were dropped during the kill"
        bad = [s for s in driver.statuses if s not in (200, 429, 503)]
        assert bad == [], f"unexpected statuses: {bad}"
        assert driver.statuses.count(200) > 0
        snapshot = _wait_workers_healthy(client, 2)
        snapshot = _wait_quiescent(client)
        _assert_accounting_balanced(snapshot)
        pids = [worker["pid"] for worker in snapshot["workers"]]
        assert victim not in pids, "killed worker was not replaced"
        assert sum(w["restarts"] for w in snapshot["workers"]) >= 1

    def test_probe_classify_succeeds_after_respawn(self, fleet_factory):
        __, client = fleet_factory()
        __, snapshot = client.statz()
        os.kill(snapshot["workers"][1]["pid"], signal.SIGKILL)
        _wait_workers_healthy(client, 2)
        status, body = client.classify([[-2.0, 0.0]], deadline_ms=5000)
        assert status == 200
        assert body["labels"] == [1]


class TestFleetReload:
    def test_corrupt_model_under_fire_rolls_back_fleetwide(
        self, fleet_factory, model_path, tmp_path
    ):
        fleet, client = fleet_factory()
        generation = fleet.generation
        blob = bytearray(model_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # bit-flip mid-payload; sha footer stays
        corrupt = tmp_path / "corrupt.tkdc"
        corrupt.write_bytes(bytes(blob))
        with _Driver(client) as driver:
            time.sleep(0.3)
            status, body = client.reload(str(corrupt))
            time.sleep(0.3)
        assert status == 500
        assert body["ok"] is False
        assert body["stage"] == "load"
        assert "ModelIntegrityError" in body["error"]
        assert driver.drops == []
        # Nobody swapped: same generation, still serving correct labels.
        assert fleet.generation == generation
        status, body = client.classify([[-2.0, 0.0], [0.0, 9.0]], deadline_ms=5000)
        assert status == 200
        assert body["labels"] == [1, 0]
        snapshot = _wait_quiescent(client)
        assert snapshot["reloads_failed"] == 1
        _assert_accounting_balanced(snapshot)

    def test_good_reload_swaps_generation_and_unlinks_old(
        self, fleet_factory, model_path
    ):
        fleet, client = fleet_factory()
        old_generation = fleet.generation
        status, body = client.reload(str(model_path))
        assert status == 200, body
        assert body["ok"] is True and body["stage"] == "swapped"
        assert fleet.generation != old_generation
        if os.path.isdir("/dev/shm"):
            leftovers = [
                name for name in os.listdir("/dev/shm")
                if name.startswith(old_generation)
            ]
            assert leftovers == [], "old generation segments leaked"
        status, body = client.classify([[-2.0, 0.0], [0.0, 9.0]], deadline_ms=5000)
        assert status == 200
        assert body["labels"] == [1, 0]
        snapshot = _wait_quiescent(client)
        assert snapshot["reloads_ok"] == 1
        assert snapshot["fleet"]["generation"] != old_generation


class TestFleetDrain:
    def test_drain_refuses_new_work_and_accounts_it(self, fleet_factory):
        fleet, client = fleet_factory()
        client.classify([[0.0, 0.0]], deadline_ms=5000)
        status, body = client.drain()
        assert status == 202
        # A classify racing the listener teardown is either refused with
        # a structured 503 or fails at the socket — never answered.
        probe = ServeClient(client.host, client.port, timeout=2.0)
        try:
            status, body = probe.classify([[0.0, 0.0]], deadline_ms=5000)
        except OSError:
            pass  # listener already gone
        else:
            assert status == 503
            assert body["error"] == "draining"
            assert fleet.stats.snapshot()["drained"] >= 1
        _assert_accounting_balanced(fleet.stats.snapshot())

    def test_stop_unlinks_all_segments(self, fleet_factory):
        fleet, client = fleet_factory()
        generation = fleet.generation
        fleet.initiate_drain()
        time.sleep(0.3)
        fleet.stop()
        if os.path.isdir("/dev/shm"):
            leftovers = [
                name for name in os.listdir("/dev/shm")
                if name.startswith(generation)
            ]
            assert leftovers == []
        assert not fleet.runtime_dir.exists()
