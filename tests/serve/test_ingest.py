"""The daemon's /ingest endpoint and its accounting invariant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import StreamingPipeline, StreamSettings

#: Fast pipeline settings for endpoint tests (no background thread).
PIPE_SETTINGS = StreamSettings(
    monitor_window=32, check_interval=0.05, min_refit_interval=0.0,
    refit_sample_cap=2000, sketch_capacity=256, canary_queries=8,
)


def ingest_invariant(stats) -> tuple[int, int]:
    return (
        stats.ingest_submitted,
        stats.ingest_completed + stats.ingest_rejected,
    )


@pytest.fixture
def streaming_server(server_factory, tmp_path):
    server, client = server_factory()
    pipeline = StreamingPipeline.from_classifier(
        server.manager.classifier,
        settings=PIPE_SETTINGS,
        reloader=server.manager,
        artifact_dir=tmp_path,
    )
    server.attach_pipeline(pipeline, start=False)
    yield server, client, pipeline
    pipeline.stop(join=True)


class TestWithoutPipeline:
    def test_ingest_409_when_not_streaming(self, server_factory):
        server, client = server_factory()
        status, body = client.request(
            "POST", "/ingest", {"points": [[0.0, 0.0]]}
        )
        assert status == 409
        assert body["error"] == "no_streaming_pipeline"
        submitted, terminal = ingest_invariant(server.stats)
        assert submitted == terminal == 1
        assert server.stats.ingest_rejected == 1


class TestWithPipeline:
    def test_ingest_folds_points_in(self, streaming_server):
        server, client, pipeline = streaming_server
        points = np.random.default_rng(0).normal(size=(12, 2)).tolist()
        status, body = client.request("POST", "/ingest", {"points": points})
        assert status == 200
        assert body["ingested"] == 12
        assert body["n_total"] == pipeline.initial_n + 12
        assert body["generation"] == pipeline.model.generation
        assert pipeline.ingested_total == 12
        assert server.stats.ingested_points == 12
        submitted, terminal = ingest_invariant(server.stats)
        assert submitted == terminal == 1

    def test_bad_bodies_rejected_with_accounting(self, streaming_server):
        server, client, __ = streaming_server
        cases = [
            ("POST", "/ingest", None),                       # no JSON body
            ("POST", "/ingest", {"rows": [[0.0, 0.0]]}),     # wrong key
            ("POST", "/ingest", {"points": [[0.0, 0.0, 0.0]]}),  # bad dim
        ]
        for method, path, body in cases:
            status, __payload = client.request(method, path, body)
            assert status == 400
        submitted, terminal = ingest_invariant(server.stats)
        assert submitted == terminal == len(cases)
        assert server.stats.ingest_rejected == len(cases)
        assert server.stats.ingested_points == 0

    def test_served_classify_includes_ingested_points(self, streaming_server):
        """Regression: /classify used to clone the manager's batch
        classifier directly, so ingested points never reached served
        answers until a refit swapped the model."""
        __, client, pipeline = streaming_server
        spot = [0.0, 3.0]  # empty region of the two-mode training set
        status, before = client.request("POST", "/classify", {"points": [spot]})
        assert status == 200
        assert before["labels"] == [0]
        rng = np.random.default_rng(1)
        cluster = (
            np.asarray(spot) + rng.normal(scale=0.05, size=(220, 2))
        ).tolist()
        status, __body = client.request("POST", "/ingest", {"points": cluster})
        assert status == 200
        # No refit happened: the flip must come from the exact buffer.
        assert pipeline.model.n_buffered == 220
        status, after = client.request("POST", "/classify", {"points": [spot]})
        assert status == 200
        assert after["labels"] == [1]

    def test_statz_exposes_streaming_section(self, streaming_server):
        __, client, pipeline = streaming_server
        client.request("POST", "/ingest", {"points": [[0.0, 0.0]] * 5})
        status, snapshot = client.statz()
        assert status == 200
        streaming = snapshot["streaming"]
        assert streaming["ingested_total"] == 5
        assert streaming["accounting"]["ok"]
        assert streaming["n_total"] == pipeline.initial_n + 5

    def test_draining_refuses_ingest(self, streaming_server):
        # Drive the policy layer directly: a full drain also races the
        # listener shutdown, which is the daemon suite's concern.
        server, __, __pipeline = streaming_server
        server.draining.set()
        try:
            status, body = server.handle_ingest(b'{"points": [[0.0, 0.0]]}')
        finally:
            server.draining.clear()
        assert status == 503
        assert body["error"] == "draining"
        submitted, terminal = ingest_invariant(server.stats)
        assert submitted == terminal
        assert server.stats.ingest_rejected == 1
