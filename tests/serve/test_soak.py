"""Soak test: concurrent overload + injected faults, zero hangs.

The ISSUE's acceptance bar: under sustained overload with injected
stalls and crashes, every request terminates within its deadline plus
the watchdog grace with a structured response, nothing hangs, nothing
escapes as an unhandled exception, and the ``/statz`` counters account
for 100% of submitted requests.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.breaker import CLOSED
from repro.serve.stats import TERMINAL_OUTCOMES

#: First coordinate that marks a request for the injected stall.
STALL_MARKER = 777.0


def wait_settled(server, client, timeout: float = 15.0) -> dict:
    """Poll /statz until no requests are in flight; returns the snapshot."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        statz = client.statz()[1]
        if statz["in_flight"] == 0 and statz["admitted"] == 0:
            return statz
        time.sleep(0.05)
    pytest.fail("requests still in flight after the soak burst")


class TestSoak:
    def test_burst_with_faults_terminates_everything(
        self, server_factory, model_path, tmp_path
    ):
        server, client = server_factory(
            max_concurrency=2,
            queue_depth=2,
            watchdog_grace=0.4,
            max_rows=64,
            max_request_bytes=8192,
            breaker_cooldown=0.2,
        )
        stall_release = threading.Event()

        def hook(points) -> None:
            if points.shape[0] and points[0, 0] == STALL_MARKER:
                stall_release.wait(2.0)

        server.manager.classify_hook = hook

        # Build the mixed workload: mostly normal, plus oversized bodies,
        # NaN rows, absurd deadlines, and two stall-marked requests that
        # must be reaped by the watchdog.
        def normal(i: int):
            return [[-2.0 + 0.01 * i, 0.0]], 5_000

        def nan_row(i: int):
            return [[float("nan"), 0.0], [2.0, 0.0]], 5_000

        def oversized(i: int):
            return [[float(j), float(j)] for j in range(600)], 5_000

        def tiny_deadline(i: int):
            return [[0.0, 0.0]], 1

        def stall(i: int):
            return [[STALL_MARKER, 0.0]], 600

        kinds = [normal] * 6 + [nan_row, oversized, tiny_deadline] + [stall] * 2
        jobs = [kinds[i % len(kinds)] for i in range(60)]
        n_stalls = sum(1 for job in jobs if job is stall)
        assert n_stalls >= 2

        outcomes: list[tuple[int, dict]] = []
        failures: list[BaseException] = []
        lock = threading.Lock()

        def run(slice_of_jobs) -> None:
            for job_index, job in enumerate(slice_of_jobs):
                try:
                    points, deadline_ms = job(job_index)
                    status, payload = client.classify(points, deadline_ms=deadline_ms)
                    with lock:
                        outcomes.append((status, payload))
                except BaseException as exc:  # noqa: BLE001 - the test IS the net
                    with lock:
                        failures.append(exc)

        threads = [
            threading.Thread(target=run, args=(jobs[i::6],), daemon=True)
            for i in range(6)
        ]
        t0 = time.monotonic()
        for thread in threads:
            thread.start()
        # Concurrently with the burst: one corrupt reload (must roll
        # back) and one good reload (must swap), racing live traffic.
        corrupt = tmp_path / "corrupt.tkdc"
        blob = bytearray(model_path.read_bytes())
        blob[len(blob) // 3] ^= 0xAA
        corrupt.write_bytes(bytes(blob))
        reload_corrupt = client.reload(str(corrupt))
        reload_good = client.reload(str(model_path))
        for thread in threads:
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "a client thread hung"
        elapsed = time.monotonic() - t0
        stall_release.set()
        server.manager.classify_hook = None

        # -- no unhandled exceptions, every request answered --------------
        assert not failures, failures
        assert len(outcomes) == len(jobs)

        # -- every response is structured -----------------------------
        for status, payload in outcomes:
            assert status in (200, 400, 413, 429, 500, 503), (status, payload)
            assert isinstance(payload, dict) and payload, (status, payload)
            if status != 200:
                assert "error" in payload, (status, payload)

        # -- reloads under fire behaved -------------------------------
        assert reload_corrupt[0] == 500
        assert reload_corrupt[1]["stage"] == "load"
        assert reload_good[0] == 200
        assert reload_good[1]["stage"] == "swapped"

        # -- the watchdog reaped the stalls ----------------------------
        # Stall-marked requests that got an execution slot must end as
        # watchdog 503s; the rest were legitimately shed or expired while
        # queued (both structured). At least the first couple always find
        # free slots — normal requests are millisecond-scale.
        watchdog_503s = [
            payload for status, payload in outcomes
            if status == 503 and payload.get("error") == "watchdog_timeout"
        ]
        assert len(watchdog_503s) >= 2

        # -- accounting: terminals cover 100% of submissions -----------
        statz = wait_settled(server, client)
        terminal = sum(statz[name] for name in TERMINAL_OUTCOMES)
        assert terminal == statz["submitted"]
        # Our classify calls + the settling statz polls are all GETs/POSTs
        # we control: every classify submission came from this test.
        assert statz["submitted"] >= len(jobs)
        assert statz["completed"] >= 1
        assert statz["timed_out"] >= len(watchdog_503s)
        assert statz["rejected"] >= 1  # oversized bodies
        assert statz["reloads_ok"] == 1
        assert statz["reloads_failed"] == 1
        # Sanity: the burst actually overlapped (not serialized by accident).
        assert elapsed < 60.0


class TestBreakerRecovery:
    def test_breaker_opens_serves_degraded_then_recovers(self, server_factory):
        # Cooldown long enough that the open-state checks below cannot
        # accidentally slip into half-open between two HTTP roundtrips.
        server, client = server_factory(
            breaker_window=8,
            breaker_min_requests=4,
            breaker_threshold=0.5,
            breaker_cooldown=1.5,
            breaker_probes=2,
        )

        def boom(points) -> None:
            raise RuntimeError("injected classify failure")

        # 1. Inject hard failures until the breaker opens.
        server.manager.classify_hook = boom
        for __ in range(4):
            status, payload = client.classify([[0.0, 0.0]], deadline_ms=5_000)
            assert status == 500
        assert client.statz()[1]["breaker"] == "open"

        # 2. Clear the fault: open state still serves, but degraded
        #    (tiny budget, honest flags) — latency stays bounded.
        server.manager.classify_hook = None
        status, payload = client.classify([[0.0, 0.0]], deadline_ms=5_000)
        assert status == 200
        assert payload["mode"] == "degraded"
        assert payload["budget"] == server.serve_config.open_budget
        assert client.statz()[1]["breaker_served_degraded"] >= 1

        # 3. After the cooldown, probes run at full budget and close it.
        time.sleep(1.6)
        seen_modes = set()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status, payload = client.classify([[0.0, 0.0]], deadline_ms=5_000)
            assert status == 200
            seen_modes.add(payload["mode"])
            if client.statz()[1]["breaker"] == CLOSED:
                break
            time.sleep(0.05)
        else:
            pytest.fail("breaker never closed after recovery")
        assert "probe" in seen_modes

        # 4. Closed again: full-budget service, transitions on record.
        status, payload = client.classify([[0.0, 0.0]], deadline_ms=5_000)
        assert status == 200
        assert payload["mode"] == "full"
        statz = client.statz()[1]
        transitions = statz["breaker_transitions"]
        assert transitions.get("closed->open") == 1
        assert transitions.get("open->half_open") == 1
        assert transitions.get("half_open->closed") == 1
        # Errors were counted, and the accounting still balances.
        assert statz["errors"] == 4
        terminal = sum(statz[name] for name in TERMINAL_OUTCOMES)
        assert terminal == statz["submitted"]
