"""The ``/metrics`` endpoint: valid Prometheus text that agrees with /statz.

Both endpoints read the same ``MetricsRegistry`` cells, so the counter
values they report must match exactly — not approximately — for any
request history.
"""

from __future__ import annotations

import re

from repro.serve.stats import ServerStats


def parse_prometheus(text: str) -> dict[str, float]:
    """Sample lines only: ``name{labels} value`` -> {full_name: value}."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, __, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, server_factory):
        __, client = server_factory()
        status, body = client.metrics()
        assert status == 200
        # Every family carries HELP and TYPE headers, in that order.
        families = re.findall(r"^# TYPE (\S+) (\S+)$", body, re.MULTILINE)
        assert ("tkdc_serve_events_total", "counter") in families
        assert ("tkdc_serve_request_latency_seconds", "histogram") in families
        for name, __ in families:
            assert f"# HELP {name} " in body
        # Histogram invariants: +Inf bucket present and equal to _count.
        samples = parse_prometheus(body)
        inf = samples['tkdc_serve_request_latency_seconds_bucket{le="+Inf"}']
        assert inf == samples["tkdc_serve_request_latency_seconds_count"]

    def test_counters_match_statz(self, server_factory):
        __, client = server_factory()
        # Drive a mixed request history: two successes, one client error.
        assert client.classify([[0.0, 0.0]], deadline_ms=10_000)[0] == 200
        assert client.classify([[2.0, 0.0]], deadline_ms=10_000)[0] == 200
        assert client.request("POST", "/classify", {"queries": "junk"})[0] == 400

        status, statz = client.statz()
        assert status == 200
        status, body = client.metrics()
        assert status == 200
        samples = parse_prometheus(body)

        for name in ServerStats.COUNTER_NAMES:
            assert (
                samples[f'tkdc_serve_events_total{{event="{name}"}}']
                == statz[name]
            ), name
        assert statz["completed"] == 2
        # Each completed request contributed one latency observation.
        assert (
            samples["tkdc_serve_request_latency_seconds_count"]
            == statz["completed"]
        )

    def test_engine_selection_is_scrapeable(self, server_factory):
        """Serving calibration records its engine choice; /statz and
        /metrics must both surface it."""
        __, client = server_factory()
        status, statz = client.statz()
        assert status == 200
        # The test model is 2-D with a concretely configured engine.
        assert statz["engine"] == "batch"
        assert statz["engine_reason"] == "configured"
        status, body = client.metrics()
        assert status == 200
        needle = 'tkdc_engine_selected_total{engine="batch",reason="configured"}'
        assert needle in body

    def test_statz_reports_build_identity(self, server_factory):
        from repro.obs.buildinfo import build_info

        __, client = server_factory()
        status, statz = client.statz()
        assert status == 200
        assert statz["build"] == build_info()

    def test_process_registry_families_are_merged(self, server_factory):
        """Traversal counters recorded by the embedded classifier appear
        alongside the serve families in a single scrape."""
        __, client = server_factory()
        assert client.classify([[0.0, 0.0]], deadline_ms=10_000)[0] == 200
        status, body = client.metrics()
        assert status == 200
        assert "tkdc_serve_events_total" in body
        # The global registry contributes classifier-side families; the
        # scrape must not raise on duplicate names when merging.
        assert body.count("# TYPE tkdc_serve_events_total counter") == 1
