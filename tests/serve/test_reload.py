"""Verified hot reload: swap on success, rollback on every failure mode."""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import TKDCClassifier, TKDCConfig
from repro.io.models import save_model
from repro.serve import ModelManager, ServeConfig
from repro.serve.daemon import install_signal_handlers
from repro.serve.reload import CanaryError

from .conftest import TEST_DEFAULTS


def make_manager(model_path, **overrides) -> ModelManager:
    settings = dict(TEST_DEFAULTS)
    settings.update(overrides)
    return ModelManager(model_path, ServeConfig(**settings))


@pytest.fixture(scope="module")
def alternate_model_path(tmp_path_factory):
    """A second valid model with a visibly different threshold."""
    rng = np.random.default_rng(7)
    data = rng.normal(size=(400, 2)) * 2.0
    clf = TKDCClassifier(TKDCConfig(p=0.2, seed=3)).fit(data)
    return save_model(tmp_path_factory.mktemp("alt") / "alt.tkdc", clf)


class TestReloadSuccess:
    def test_swap_replaces_model_and_recalibrates(
        self, model_path, alternate_model_path
    ):
        manager = make_manager(model_path)
        old_threshold = manager.classifier.threshold.value
        result = manager.reload(alternate_model_path)
        assert result.ok
        assert result.stage == "swapped"
        assert result.model_path == str(alternate_model_path)
        assert manager.model_path == alternate_model_path
        assert manager.classifier.threshold.value == result.threshold
        assert manager.classifier.threshold.value != old_threshold
        assert result.expansions_per_second is not None
        assert manager.stats.snapshot()["reloads_ok"] == 1

    def test_reload_same_path_refreshes_in_place(self, model_path):
        manager = make_manager(model_path)
        before = manager.classifier
        result = manager.reload()
        assert result.ok
        assert manager.classifier is not before  # a fresh object was swapped in

    def test_http_reload_endpoint(self, server_factory, alternate_model_path):
        server, client = server_factory()
        status, payload = client.reload(str(alternate_model_path))
        assert status == 200
        assert payload["ok"] is True
        assert payload["stage"] == "swapped"
        # Subsequent classifications use the new model.
        status, answer = client.classify([[0.0, 0.0]], deadline_ms=5_000)
        assert status == 200
        assert answer["threshold"] == pytest.approx(payload["threshold"])


class TestReloadRollback:
    def test_corrupt_file_refused_at_load_stage(self, model_path, tmp_path):
        manager = make_manager(model_path)
        before = manager.classifier
        threshold = before.threshold.value
        corrupt = tmp_path / "corrupt.tkdc"
        blob = bytearray(model_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one payload byte
        corrupt.write_bytes(bytes(blob))

        result = manager.reload(corrupt)
        assert not result.ok
        assert result.stage == "load"
        assert "sha256" in result.error
        # Rollback == the swap never happened.
        assert manager.classifier is before
        assert manager.model_path == model_path
        assert manager.classifier.threshold.value == threshold
        assert manager.stats.snapshot()["reloads_failed"] == 1

    def test_truncated_file_refused(self, model_path, tmp_path):
        manager = make_manager(model_path)
        truncated = tmp_path / "truncated.tkdc"
        truncated.write_bytes(model_path.read_bytes()[: 100])
        result = manager.reload(truncated)
        assert not result.ok
        assert result.stage == "load"

    def test_missing_file_refused(self, model_path, tmp_path):
        manager = make_manager(model_path)
        result = manager.reload(tmp_path / "nope.tkdc")
        assert not result.ok
        assert result.stage == "load"
        assert "no model file" in result.error

    def test_canary_failure_rolls_back(self, model_path, monkeypatch):
        manager = make_manager(model_path)
        before = manager.classifier

        def failing_canary(candidate) -> None:
            raise CanaryError("injected canary failure")

        monkeypatch.setattr(manager, "_canary", failing_canary)
        result = manager.reload()
        assert not result.ok
        assert result.stage == "canary"
        assert "injected canary failure" in result.error
        assert manager.classifier is before
        assert manager.stats.snapshot()["reloads_failed"] == 1

    def test_http_reload_of_corrupt_file_is_500_and_keeps_serving(
        self, server_factory, model_path, tmp_path
    ):
        server, client = server_factory()
        threshold = client.statz()[1]["threshold"]
        corrupt = tmp_path / "corrupt.tkdc"
        blob = bytearray(model_path.read_bytes())
        blob[50] ^= 0x01
        corrupt.write_bytes(bytes(blob))

        status, payload = client.reload(str(corrupt))
        assert status == 500
        assert payload["ok"] is False
        assert payload["stage"] == "load"
        # The old model still answers, unchanged.
        status, answer = client.classify([[0.0, 0.0]], deadline_ms=5_000)
        assert status == 200
        assert answer["threshold"] == pytest.approx(threshold)
        statz = client.statz()[1]
        assert statz["reloads_failed"] == 1
        assert statz["reloads_ok"] == 0


class TestSignals:
    def test_install_returns_false_off_main_thread(self, server_factory):
        server, __ = server_factory()
        outcome: list[bool] = []
        thread = threading.Thread(
            target=lambda: outcome.append(install_signal_handlers(server))
        )
        thread.start()
        thread.join(5.0)
        assert outcome == [False]

    @pytest.mark.skipif(not hasattr(signal, "SIGHUP"), reason="no SIGHUP")
    def test_sighup_triggers_reload(self, server_factory):
        server, client = server_factory()
        saved = {
            sig: signal.getsignal(sig)
            for sig in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP)
        }
        try:
            assert install_signal_handlers(server)
            before = client.statz()[1]["reloads_ok"]
            os.kill(os.getpid(), signal.SIGHUP)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if client.statz()[1]["reloads_ok"] == before + 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("SIGHUP did not trigger a reload")
        finally:
            for sig, handler in saved.items():
                signal.signal(sig, handler)
