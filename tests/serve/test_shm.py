"""Shared-memory model-plane tests: the fleet's zero-copy substrate.

Covers the contract the fleet depends on: publish→attach round-trips
are bit-identical (weighted and unweighted trees alike), attached
arrays are read-only, a stale or tampered manifest fails loudly before
anything is unpickled, and a clean shutdown leaves nothing behind in
``/dev/shm``.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.index.flat import FlatTree
from repro.index.kdtree import KDTree
from repro.index.shm import (
    ARRAY_FIELDS,
    ShmAttachError,
    ShmManifestError,
    TreeManifest,
    attach_flat_tree,
    new_generation_id,
    publish_flat_tree,
)
from repro.io.models import load_model
from repro.serve.calibrate import calibrate
from repro.serve.plane import (
    attach_classifier,
    calibration_from_manifest,
    file_sha256,
    publish_classifier,
)
from repro.serve.reload import prepare_classifier


def _segments_named(generation: str) -> list[str]:
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm to inspect on this platform")
    return [name for name in os.listdir(shm_dir) if name.startswith(generation)]


@pytest.fixture
def flat(rng) -> FlatTree:
    return KDTree(rng.normal(size=(257, 3)), leaf_size=16).flatten()


@pytest.fixture
def weighted_flat(rng) -> FlatTree:
    points = rng.normal(size=(128, 2))
    weights = rng.uniform(0.5, 2.0, size=128)
    return KDTree(points, leaf_size=8, weights=weights).flatten()


class TestRoundTrip:
    def test_bit_identical_unweighted(self, flat):
        published = publish_flat_tree(flat)
        attachment = attach_flat_tree(published.manifest)
        try:
            for name in ARRAY_FIELDS:
                source = getattr(flat, name)
                mirrored = getattr(attachment.flat, name)
                if source is None:
                    assert mirrored is None
                    continue
                assert mirrored.dtype == source.dtype
                np.testing.assert_array_equal(mirrored, source)
        finally:
            attachment.close()
            published.unlink()

    def test_bit_identical_weighted(self, weighted_flat):
        published = publish_flat_tree(weighted_flat)
        attachment = attach_flat_tree(published.manifest)
        try:
            assert attachment.flat.point_weights is not None
            np.testing.assert_array_equal(
                attachment.flat.point_weights, weighted_flat.point_weights
            )
            np.testing.assert_array_equal(
                attachment.flat.node_weight, weighted_flat.node_weight
            )
            assert attachment.flat.total_weight == pytest.approx(
                weighted_flat.total_weight
            )
        finally:
            attachment.close()
            published.unlink()

    def test_attached_arrays_are_read_only(self, flat):
        published = publish_flat_tree(flat)
        attachment = attach_flat_tree(published.manifest)
        try:
            with pytest.raises(ValueError, match="read-only"):
                attachment.flat.points[0, 0] = 99.0
        finally:
            attachment.close()
            published.unlink()

    def test_manifest_file_round_trip(self, flat, tmp_path):
        published = publish_flat_tree(
            flat, model_sha256="ab" * 32, extras={"note": "x"}
        )
        path = published.manifest.save(tmp_path / "MANIFEST.json")
        attachment = attach_flat_tree(path)
        try:
            assert attachment.manifest.model_sha256 == "ab" * 32
            assert attachment.manifest.extras == {"note": "x"}
            np.testing.assert_array_equal(attachment.flat.points, flat.points)
        finally:
            attachment.close()
            published.unlink()

    def test_facade_matches_kdtree_surface(self, flat):
        published = publish_flat_tree(flat)
        attachment = attach_flat_tree(published.manifest)
        try:
            tree = attachment.tree
            assert tree.flatten() is attachment.flat
            assert tree.size == flat.size
            assert tree.dim == flat.dim
            assert tree.total_weight == pytest.approx(flat.total_weight)
            np.testing.assert_array_equal(tree.points, flat.points)
        finally:
            attachment.close()
            published.unlink()


class TestFailsLoudly:
    def test_stale_manifest_after_unlink(self, flat):
        published = publish_flat_tree(flat)
        manifest = published.manifest
        published.unlink()
        with pytest.raises(ShmAttachError, match="stale manifest"):
            attach_flat_tree(manifest)

    def test_never_published_generation(self, flat):
        published = publish_flat_tree(flat)
        # A manifest whose names point at segments nobody ever created.
        ghost = dataclasses.replace(
            published.manifest, generation=new_generation_id("ghost")
        )
        ghost = dataclasses.replace(
            ghost,
            segments={
                name: dataclasses.replace(spec, segment=f"ghost-{name}")
                for name, spec in ghost.segments.items()
            },
        )
        try:
            with pytest.raises(ShmAttachError, match="does not exist"):
                attach_flat_tree(ghost)
        finally:
            published.unlink()

    def test_missing_manifest_file(self, tmp_path):
        with pytest.raises(ShmAttachError, match="no manifest file"):
            attach_flat_tree(tmp_path / "nope.json")

    def test_foreign_manifest_refused(self, tmp_path):
        path = tmp_path / "MANIFEST.json"
        path.write_text('{"magic": "something-else", "version": 1}')
        with pytest.raises(ShmManifestError, match="magic"):
            TreeManifest.load(path)

    def test_version_skew_refused(self, flat, tmp_path):
        published = publish_flat_tree(flat)
        try:
            raw = published.manifest.to_dict()
            raw["version"] = 999
            with pytest.raises(ShmManifestError, match="version"):
                TreeManifest.from_dict(raw)
        finally:
            published.unlink()

    def test_missing_required_array_refused(self, flat):
        published = publish_flat_tree(flat)
        try:
            raw = published.manifest.to_dict()
            del raw["segments"]["points"]
            with pytest.raises(ShmManifestError, match="points"):
                TreeManifest.from_dict(raw)
        finally:
            published.unlink()

    def test_size_mismatch_refused(self, flat):
        published = publish_flat_tree(flat)
        try:
            lying = dataclasses.replace(
                published.manifest,
                segments={
                    name: (
                        dataclasses.replace(
                            spec, shape=(spec.shape[0] * 1000,) + spec.shape[1:]
                        )
                        if name == "points"
                        else spec
                    )
                    for name, spec in published.manifest.segments.items()
                },
            )
            with pytest.raises(ShmAttachError, match="bytes"):
                attach_flat_tree(lying)
        finally:
            published.unlink()


class TestLifecycle:
    def test_unlink_leaves_no_segments(self, flat):
        published = publish_flat_tree(flat)
        generation = published.manifest.generation
        assert _segments_named(generation)
        published.unlink()
        assert not _segments_named(generation)

    def test_unlink_is_idempotent(self, flat):
        published = publish_flat_tree(flat)
        published.unlink()
        published.unlink()

    def test_attacher_close_does_not_destroy(self, flat):
        published = publish_flat_tree(flat)
        try:
            first = attach_flat_tree(published.manifest)
            first.close()
            # The generation must survive an attacher's exit: a second
            # attach still works (the bpo-39959 regression guard).
            second = attach_flat_tree(published.manifest)
            np.testing.assert_array_equal(second.flat.points, flat.points)
            second.close()
        finally:
            published.unlink()


class TestModelPlane:
    @pytest.fixture(scope="class")
    def plane(self, model_path, tmp_path_factory):
        classifier = prepare_classifier(load_model(model_path))
        calibration = calibrate(classifier, 32, seed=0)
        published = publish_classifier(
            classifier, model_path, file_sha256(model_path), calibration
        )
        manifest_file = published.manifest.save(
            tmp_path_factory.mktemp("plane") / "MANIFEST.json"
        )
        yield classifier, calibration, published, manifest_file
        published.unlink()

    def test_classify_parity_with_source_model(self, plane, rng):
        classifier, __, __, manifest_file = plane
        attached, attachment, __ = attach_classifier(manifest_file)
        try:
            queries = rng.normal(size=(32, 2)) * 2.5
            reference = classifier.classify_detailed(queries)
            mirrored = attached.classify_detailed(queries)
            np.testing.assert_array_equal(
                reference.resolved_labels(), mirrored.resolved_labels()
            )
            np.testing.assert_allclose(reference.lower, mirrored.lower)
            np.testing.assert_allclose(reference.upper, mirrored.upper)
        finally:
            attachment.close()

    def test_calibration_ships_in_manifest(self, plane):
        __, calibration, __, manifest_file = plane
        manifest = TreeManifest.load(manifest_file)
        shipped = calibration_from_manifest(manifest)
        assert shipped == calibration
        # Engine selection rides along so workers resolve identically.
        assert shipped.engine == calibration.engine
        assert shipped.engine_reason == calibration.engine_reason
        assert shipped.per_engine == calibration.per_engine

    def test_pre_hbe_manifest_defaults_to_batch(self, plane):
        """Manifests written before the hbe engine carry no engine
        fields; those fleets were batch-only by construction."""
        *__, manifest_file = plane
        manifest = TreeManifest.load(manifest_file)
        doctored = dict(manifest.extras)
        legacy = dict(doctored["calibration"])
        for key in ("engine", "engine_reason", "per_engine"):
            legacy.pop(key, None)
        doctored["calibration"] = legacy
        shipped = calibration_from_manifest(
            dataclasses.replace(manifest, extras=doctored)
        )
        assert shipped.engine == "batch"
        assert shipped.engine_reason == "configured"
        assert shipped.per_engine == ()

    def test_skeleton_strips_hbe_index(self, plane):
        """The hbe tables are per-point state rebuilt deterministically
        from the seed; the published skeleton must not carry them."""
        classifier, *__, manifest_file = plane
        attached, attachment, __ = attach_classifier(manifest_file)
        try:
            assert attached._hbe is None
        finally:
            attachment.close()

    def test_tampered_skeleton_refused(self, plane, tmp_path):
        *__, manifest_file = plane
        manifest = TreeManifest.load(manifest_file)
        doctored = dict(manifest.extras)
        doctored["skeleton_sha256"] = "0" * 64
        tampered = dataclasses.replace(manifest, extras=doctored)
        path = tampered.save(tmp_path / "tampered.json")
        with pytest.raises(ShmManifestError, match="sha256"):
            attach_classifier(path)

    def test_manifest_records_model_identity(self, plane, model_path):
        *__, manifest_file = plane
        manifest = TreeManifest.load(manifest_file)
        assert manifest.model_sha256 == file_sha256(model_path)
        assert manifest.extras["source_model"] == str(model_path)
        assert manifest.build  # provenance present
