"""Shared input validation for estimators and classifiers.

Kernel density machinery silently misbehaves on non-finite inputs (NaN
coordinates poison every distance they touch; infinities collapse
bounding boxes), so every ``fit``/``density``/``classify`` entry point
funnels its arrays through these checks and fails loudly instead.
"""

from __future__ import annotations

import numpy as np

#: Policies for invalid *query* rows (training data always raises):
#: "raise" rejects the whole batch, "flag" masks the offending rows and
#: lets the caller answer them as degraded/UNCERTAIN.
QUERY_POLICIES = ("raise", "flag")


def as_finite_matrix(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Coerce to a float64 ``(n, d)`` matrix, rejecting non-finite values.

    Raises ``ValueError`` naming the offending argument when the input
    contains NaN or infinity, is empty, or cannot be shaped into a
    2-d matrix.
    """
    matrix = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-d point matrix, got shape {matrix.shape}")
    if matrix.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(matrix)):
        bad = int(np.count_nonzero(~np.isfinite(matrix)))
        raise ValueError(
            f"{name} contains {bad} non-finite value(s) (NaN or inf); "
            "clean or impute them before fitting/querying"
        )
    return matrix


def as_query_matrix(
    queries: np.ndarray,
    dim: int,
    policy: str = "raise",
    name: str = "queries",
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a query batch under the shared input-hardening policy.

    Returns ``(matrix, invalid_rows)`` where ``matrix`` is a float64
    ``(q, dim)`` array safe to hand to either traversal engine and
    ``invalid_rows`` is a boolean mask of rows that contained non-finite
    values. Under ``policy="raise"`` (the default) any such row raises
    ``ValueError`` instead, so the mask is all-False on return; under
    ``policy="flag"`` the offending rows are zero-filled (they are never
    actually traversed — callers must answer them from the mask) and
    flagged. Wrong dtype and wrong shape always raise: they are
    batch-level errors with no per-row interpretation.
    """
    if policy not in QUERY_POLICIES:
        raise ValueError(f"unknown query policy {policy!r}; choose from {QUERY_POLICIES}")
    try:
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"{name} must be numeric and coercible to float64: {error}"
        ) from None
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-d point matrix, got shape {matrix.shape}")
    if matrix.size == 0:
        # An empty batch is a valid no-op query.
        return matrix.reshape(0, dim), np.zeros(0, dtype=bool)
    if matrix.shape[1] != dim:
        raise ValueError(
            f"{name} dimensionality {matrix.shape[1]} does not match the "
            f"training dimensionality {dim}"
        )
    invalid = ~np.all(np.isfinite(matrix), axis=1)
    if not invalid.any():
        return matrix, invalid
    if policy == "raise":
        bad = int(np.count_nonzero(~np.isfinite(matrix)))
        raise ValueError(
            f"{name} contains {bad} non-finite value(s) (NaN or inf) in "
            f"{int(np.count_nonzero(invalid))} row(s); clean or impute them, "
            "or classify with query_policy='flag' to have them marked "
            "UNCERTAIN instead"
        )
    matrix = matrix.copy()
    matrix[invalid] = 0.0
    return matrix, invalid
