"""Shared input validation for estimators and classifiers.

Kernel density machinery silently misbehaves on non-finite inputs (NaN
coordinates poison every distance they touch; infinities collapse
bounding boxes), so every ``fit``/``density``/``classify`` entry point
funnels its arrays through these checks and fails loudly instead.
"""

from __future__ import annotations

import numpy as np


def as_finite_matrix(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Coerce to a float64 ``(n, d)`` matrix, rejecting non-finite values.

    Raises ``ValueError`` naming the offending argument when the input
    contains NaN or infinity, is empty, or cannot be shaped into a
    2-d matrix.
    """
    matrix = np.atleast_2d(np.asarray(data, dtype=np.float64))
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-d point matrix, got shape {matrix.shape}")
    if matrix.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(matrix)):
        bad = int(np.count_nonzero(~np.isfinite(matrix)))
        raise ValueError(
            f"{name} contains {bad} non-finite value(s) (NaN or inf); "
            "clean or impute them before fitting/querying"
        )
    return matrix
