"""tKDC: Scalable Kernel Density Classification via Threshold-Based Pruning.

A from-scratch Python reproduction of Gan & Bailis, SIGMOD 2017.

Quickstart
----------
>>> import numpy as np
>>> from repro import TKDCClassifier, TKDCConfig
>>> data = np.random.default_rng(0).normal(size=(5000, 2))
>>> clf = TKDCClassifier(TKDCConfig(p=0.01)).fit(data)
>>> clf.classify([[0.0, 0.0]])[0].name
'HIGH'

The public surface:

- :class:`TKDCClassifier` / :class:`TKDCConfig` — the paper's algorithm
  (threshold-pruned kernel density classification);
- :class:`Label`, :class:`ThresholdEstimate` — result types;
- :mod:`repro.baselines` — the comparison estimators from the paper's
  evaluation (naive, tree-tolerance, radial-cutoff, binned/FFT);
- :mod:`repro.datasets` — simulators for the paper's seven datasets;
- :mod:`repro.analysis` — F1 metrics and level-set extraction;
- :mod:`repro.bench` — the harness that regenerates every paper table
  and figure (see ``benchmarks/`` and ``python -m repro``);
- :mod:`repro.coresets` — certified training-set compression
  (``TKDCConfig(coreset=...)``);
- :mod:`repro.robustness` — fault injection, invariant guards, and
  supervised parallel dispatch (``TKDCConfig(guard_policy=...,
  fault_plan=...)``, ``classify_detailed`` degraded-result reporting).
"""

from repro.core.bands import BandClassifier
from repro.core.classifier import NotFittedError, TKDCClassifier
from repro.core.incremental import IncrementalTKDC
from repro.core.config import TKDCConfig
from repro.core.result import (
    ClassificationResult,
    DensityBounds,
    Label,
    ThresholdEstimate,
)
from repro.core.stats import TraversalStats
from repro.core.threshold import BootstrapExhausted
from repro.coresets import Coreset, build_coreset
from repro.robustness import FaultPlan, GuardWarning, InvariantViolation

__version__ = "1.1.0"

__all__ = [
    "TKDCClassifier",
    "TKDCConfig",
    "BandClassifier",
    "IncrementalTKDC",
    "Label",
    "ClassificationResult",
    "DensityBounds",
    "ThresholdEstimate",
    "TraversalStats",
    "NotFittedError",
    "BootstrapExhausted",
    "FaultPlan",
    "GuardWarning",
    "InvariantViolation",
    "Coreset",
    "build_coreset",
    "__version__",
]
