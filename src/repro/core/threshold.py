"""Algorithm 3: bootstrapped quantile-threshold bounds.

Estimating ``t(p)`` needs densities, but computing densities efficiently
needs threshold bounds — the paper's chicken-and-egg problem. The
bootstrap breaks it by training mini-KDEs on geometrically growing
subsamples: quantile bounds computed cheaply on a small subsample become
the pruning bounds for the next, larger subsample. Bounds that turn out
invalid (the new order statistics escape them) are multiplicatively
backed off and the iteration retried.

The returned bounds bracket the full-data threshold ``t(p)`` with
probability at least ``1 - delta`` (per iteration, via the order-statistic
confidence intervals of Section 3.5).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.batch_bounds import bound_densities
from repro.core.bounds import bound_density
from repro.core.config import TKDCConfig
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.base import Kernel
from repro.obs.metrics import (
    BOOTSTRAP_BACKOFFS_TOTAL,
    BOOTSTRAP_FAILURES_TOTAL,
    BOOTSTRAP_ITERATIONS_TOTAL,
)
from repro.quantile.order_stats import normal_order_ci
from repro.robustness.guards import GuardWarning, guard_interval

#: Hard cap on bootstrap iterations (growth rounds plus backoffs); the
#: expected count is ~log_growth(n / r0) + a handful of backoffs.
_MAX_ITERATIONS = 200


class BootstrapExhausted(RuntimeError):
    """Algorithm 3 hit its iteration cap without a converged bracket.

    Carries the last working threshold interval so callers can inspect
    (or, via ``TKDCConfig.bootstrap_accept_widened``, accept) the
    widened-but-unconverged bounds instead of losing them with the
    traceback.
    """

    def __init__(
        self,
        message: str,
        t_lower: float,
        t_upper: float,
        iterations: int,
        backoffs: int,
    ) -> None:
        super().__init__(message)
        self.t_lower = t_lower
        self.t_upper = t_upper
        self.iterations = iterations
        self.backoffs = backoffs


@dataclass(frozen=True)
class ThresholdBootstrapResult:
    """Outcome of the threshold bootstrap."""

    lower: float
    upper: float
    iterations: int
    backoffs: int


def bootstrap_threshold_bounds(
    data: np.ndarray,
    make_kernel: Callable[[np.ndarray], Kernel],
    config: TKDCConfig,
    stats: TraversalStats,
    rng: np.random.Generator,
    full_tree: KDTree | None = None,
    full_kernel: Kernel | None = None,
    eta: float = 0.0,
) -> ThresholdBootstrapResult:
    """Estimate probabilistic bounds on ``t(p)`` (paper Algorithm 3).

    Parameters
    ----------
    data:
        The full training set, shape ``(n, d)``.
    make_kernel:
        Factory that selects a bandwidth for (and binds a kernel to) a
        training subsample — Algorithm 3 recalculates the bandwidth at
        every subsample size.
    config:
        Supplies ``p``, ``delta``, ``epsilon``, the bootstrap constants
        ``r0, s0, h_backoff, h_buffer, h_growth``, and tree parameters.
    stats:
        Counter sink for all density-bounding work done here.
    rng:
        Source of subsample randomness.
    full_tree, full_kernel:
        Optional prebuilt index/kernel reused for the final iteration
        instead of rebuilding. With coreset compression this is the
        (possibly weighted) tree over the *sketch*, whose densities
        approximate the full-data KDE within ``eta``.
    eta:
        Sup-norm certificate ``|f_X - f_S| <= eta`` for the density the
        final-round tree estimates (0 when ``full_tree`` indexes the
        full data). A sup-norm error of ``eta`` shifts *every* quantile
        of the density distribution by at most ``eta``, so in certified
        mode (``eta < epsilon * t_lower``, see
        :mod:`repro.coresets.base`) both the final round's pruning rules
        and the returned bounds are widened by ``eta``, keeping the
        bracket valid for the full-data ``t(p)``. A coarser or infinite
        ``eta`` degrades to best-effort: no widening anywhere, and the
        bounds describe the compressed estimate's quantile only.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n = data.shape[0]

    t_lower = 0.0
    t_upper = math.inf
    r = min(config.bootstrap_r0, n)
    backoffs = 0

    for iteration in range(1, _MAX_ITERATIONS + 1):
        final_round = r == n and full_tree is not None and full_kernel is not None
        if final_round:
            subsample = data
            kernel = full_kernel
            tree = full_tree
        else:
            subsample = data[rng.choice(n, size=r, replace=False)] if r < n else data
            kernel = make_kernel(subsample)
            tree = KDTree(
                kernel.scale(subsample),
                leaf_size=config.leaf_size,
                split_rule=config.split_rule,
            )

        s = min(config.bootstrap_s0, r)
        queries = subsample[rng.choice(r, size=s, replace=False)] if s < r else subsample
        scaled_queries = kernel.scale(queries)

        # Bound the density of each sampled query under the mini-KDE,
        # correcting for the query's own contribution to the estimate.
        # Threshold bounds are in corrected-density space; the pruning
        # rules shift their edges by the self-contribution *after* the
        # epsilon margin (see repro.core.pruning.threshold_rule).
        # Scoring the sample is the dominant fit cost, so it runs on
        # the configured traversal engine (batched by default).
        #
        # Only the final round can index a coreset; the mini-KDE rounds
        # always subsample the raw data, so eta applies only there. The
        # self-contribution stays K(0)/n even over a sketch: the bounds
        # track the *full-data* corrected density f_X - K(0)/n, and the
        # sketch-vs-full gap (including any self-term mismatch) is
        # exactly what eta already accounts for.
        round_eta = eta if final_round and math.isfinite(eta) else 0.0
        rule_eta = (
            round_eta
            if 0.0 < round_eta < config.epsilon * t_lower
            else 0.0
        )
        self_contribution = kernel.max_value / r
        if config.engine == "batch":
            result = bound_densities(
                tree.flatten(), kernel, scaled_queries, t_lower, t_upper,
                config.epsilon, stats,
                use_threshold_rule=config.use_threshold_rule,
                use_tolerance_rule=config.use_tolerance_rule,
                threshold_shift=self_contribution,
                eta=rule_eta,
                block_size=config.batch_block_size,
                guard_policy=config.guard_policy,
            )
            densities = np.maximum(result.midpoint - self_contribution, 0.0)
        else:
            densities = np.empty(s)
            for i in range(s):
                result = bound_density(
                    tree, kernel, scaled_queries[i], t_lower, t_upper,
                    config.epsilon, stats,
                    use_threshold_rule=config.use_threshold_rule,
                    use_tolerance_rule=config.use_tolerance_rule,
                    threshold_shift=self_contribution,
                    eta=rule_eta,
                    guard_policy=config.guard_policy,
                )
                densities[i] = max(result.midpoint - self_contribution, 0.0)
        densities.sort()

        rank_lower, rank_upper = normal_order_ci(s, config.p, config.delta)
        d_lower = float(densities[rank_lower - 1])
        d_upper = float(densities[rank_upper - 1])
        if config.guard_policy != "off":
            # Interval sanity: order statistics of a sorted finite array
            # cannot invert or go non-finite unless an upstream guard
            # repaired densities to a vacuous envelope; re-repairing here
            # keeps the bracket a true (if loose) statement.
            d_lower, d_upper = guard_interval(
                d_lower, d_upper, config.guard_policy, stats, site="threshold"
            )

        if d_upper > t_upper:
            # Upper bound was too tight: densities near the quantile were
            # only resolved to the stale bound. Back off and retry. A
            # zero upper bound cannot recover multiplicatively; restart
            # it from the observed value.
            t_upper = t_upper * config.h_backoff if t_upper > 0 else d_upper
            backoffs += 1
        elif d_lower < t_lower:
            # Finite-support kernels can put the quantile at exactly
            # zero density (isolated points with empty neighbourhoods);
            # dividing can never reach 0, so snap there directly.
            t_lower = t_lower / config.h_backoff if d_lower > 0 else 0.0
            backoffs += 1
        else:
            if r == n:
                # Quantile-shift property: |f_X - f_S| <= eta moves any
                # quantile of the density sample by at most eta, so in
                # certified mode the sketch-derived bracket widened by
                # eta still brackets the full-data t(p). In best-effort
                # mode (rule_eta == 0) the bracket is left describing
                # the compressed estimate's quantile: widening it by a
                # coarse eta would blow up the bracket midpoint that
                # refine_threshold=False classifies against.
                BOOTSTRAP_ITERATIONS_TOTAL.inc(iteration)
                BOOTSTRAP_BACKOFFS_TOTAL.inc(backoffs)
                return ThresholdBootstrapResult(
                    max(d_lower - rule_eta, 0.0),
                    d_upper + rule_eta,
                    iteration,
                    backoffs,
                )
            # Valid bounds: buffer them and carry to a larger subsample.
            t_upper = d_upper * config.h_buffer
            t_lower = d_lower / config.h_buffer
            r = min(int(r * config.h_growth), n)

    if (
        config.bootstrap_accept_widened
        and math.isfinite(t_lower)
        and math.isfinite(t_upper)
        and 0.0 <= t_lower <= t_upper
    ):
        # Opt-in graceful degradation: the working bracket is a valid
        # (just looser-than-requested) statement about t(p); accept it
        # with a warning rather than failing the whole fit.
        warnings.warn(
            f"threshold bootstrap hit its {_MAX_ITERATIONS}-iteration cap; "
            f"accepting the widened bracket [{t_lower}, {t_upper}] "
            "(bootstrap_accept_widened=True)",
            GuardWarning,
            stacklevel=2,
        )
        BOOTSTRAP_ITERATIONS_TOTAL.inc(_MAX_ITERATIONS)
        BOOTSTRAP_BACKOFFS_TOTAL.inc(backoffs)
        return ThresholdBootstrapResult(t_lower, t_upper, _MAX_ITERATIONS, backoffs)
    BOOTSTRAP_ITERATIONS_TOTAL.inc(_MAX_ITERATIONS)
    BOOTSTRAP_BACKOFFS_TOTAL.inc(backoffs)
    BOOTSTRAP_FAILURES_TOTAL.inc()
    raise BootstrapExhausted(
        f"threshold bootstrap failed to converge within {_MAX_ITERATIONS} iterations "
        f"(n={n}, p={config.p}); the density distribution may be degenerate. "
        f"Last working bracket: [{t_lower}, {t_upper}]. Set "
        "bootstrap_accept_widened=True to accept a finite widened bracket.",
        t_lower,
        t_upper,
        _MAX_ITERATIONS,
        backoffs,
    )
