"""Algorithm 2 over a block of queries at once (the batch traversal engine).

:func:`repro.core.bounds.bound_density` answers one query per call and
pays Python interpreter dispatch for every node it touches — ~20 scalar
numpy calls per heap pop. This module runs the *same* traversal for a
whole block of queries simultaneously: per round, every still-active
query pops the loosest entry of its own frontier (the paper's
discrepancy order), all popped nodes are expanded with a handful of
vectorized sweeps over the :class:`~repro.index.flat.FlatTree` arrays,
and the threshold/tolerance pruning rules retire finished queries as
boolean masks. The per-query semantics — pop order, rule order, the
``±eps*t`` guarantee, and every :class:`~repro.core.stats.TraversalStats`
counter — are preserved exactly; only the arithmetic is batched.

Frontier bookkeeping uses padded 2-d arrays (one row per query in the
block) with swap-removal pops; selection scans each row for the best
``(discrepancy, insertion seq)`` pair, replicating the reference
engine's heap ordering including its tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounds import BUDGET_STOPS_KEY, EXACT_FALLBACKS_KEY
from repro.core.pruning import PruneOutcome
from repro.core.stats import TraversalStats
from repro.index.flat import FlatTree, pair_box_bounds
from repro.kernels.base import Kernel
from repro.obs.metrics import record_traversal_block
from repro.obs.registry import REGISTRY
from repro.robustness.faults import FaultInjector
from repro.robustness.guards import (
    escalate,
    guard_interval_arrays,
    guard_values_in_intervals,
)

#: Default number of queries traversed per block. Bounds peak frontier
#: memory (a block's frontier arrays are ``block_size x max_frontier``)
#: while keeping the vectorized sweeps wide enough to amortize dispatch.
#: The bench_batch_traversal block-size sweep (gauss d=2 n=50k, 2048
#: queries) measured 22.2k / 27.8k / 61.4k queries/s at 128 / 512 /
#: 2048: per-round dispatch overhead keeps falling as the block widens,
#: so the default sits at the top of the swept range.
DEFAULT_BLOCK_SIZE = 2048

#: Outcome codes stored per query (0 means the tree was exhausted).
OUTCOME_NONE = 0
OUTCOME_THRESHOLD_HIGH = 1
OUTCOME_THRESHOLD_LOW = 2
OUTCOME_TOLERANCE = 3
#: The anytime budget stopped this query (best-effort bounds, degraded).
OUTCOME_BUDGET = 4

_OUTCOME_BY_CODE: tuple[PruneOutcome | None, ...] = (
    None,
    PruneOutcome.THRESHOLD_HIGH,
    PruneOutcome.THRESHOLD_LOW,
    PruneOutcome.TOLERANCE,
    None,  # budget stop is not a prune
)

_SEQ_INF = np.iinfo(np.int64).max

#: Engine label this module reports under (see ``repro.obs.metrics``).
ENGINE_LABEL = "batch"

#: Trace-rule string for each outcome code (index = code).
_RULE_BY_CODE = ("exhausted", "threshold_high", "threshold_low", "tolerance", "budget")


@dataclass(frozen=True)
class BatchBoundResult:
    """Density intervals (and stop reasons) for a batch of queries."""

    lower: np.ndarray  #: (q,) guaranteed lower bounds.
    upper: np.ndarray  #: (q,) guaranteed upper bounds.
    outcome_codes: np.ndarray  #: (q,) int8 ``OUTCOME_*`` codes.
    #: (q,) True where the answer is best-effort (budget stop or exact
    #: guard fallback); the bounds remain valid either way.
    degraded: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.degraded is None:
            object.__setattr__(
                self, "degraded", np.zeros(self.lower.shape, dtype=bool)
            )

    @property
    def midpoint(self) -> np.ndarray:
        """Interval midpoints, the per-query density point estimates."""
        return 0.5 * (self.lower + self.upper)

    def outcomes(self) -> list[PruneOutcome | None]:
        """Per-query :class:`PruneOutcome` (None = tree exhausted)."""
        return [_OUTCOME_BY_CODE[code] for code in self.outcome_codes]


def bound_densities(
    flat: FlatTree,
    kernel: Kernel,
    queries: np.ndarray,
    t_lower: float,
    t_upper: float,
    epsilon: float,
    stats: TraversalStats,
    use_threshold_rule: bool = True,
    use_tolerance_rule: bool = True,
    tolerance_reference: float | None = None,
    threshold_shift: float = 0.0,
    eta: float = 0.0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    max_expansions: int | None = None,
    guard_policy: str = "off",
    faults: FaultInjector | None = None,
    trace=None,
) -> BatchBoundResult:
    """Bound the kernel density of every query (batched Algorithm 2).

    Parameters mirror :func:`repro.core.bounds.bound_density`, with a
    ``(q, d)`` query block instead of one point and a
    :class:`~repro.index.flat.FlatTree` instead of the pointer tree.
    Only the paper's "discrepancy" frontier priority is supported (the
    alternative orderings exist solely for the per-query ablation
    bench). ``eta`` widens the density interval by the coreset sup-norm
    slack before both pruning rules, exactly as in
    :func:`repro.core.pruning.check_rules`; weighted (coreset) trees are
    handled transparently via ``flat.node_weight``/``flat.point_weights``.

    ``max_expansions``, ``guard_policy`` and ``faults`` mirror
    :func:`repro.core.bounds.bound_density`: a per-query anytime budget
    (stopped queries come back with ``OUTCOME_BUDGET`` and
    ``degraded=True``), vectorized invariant guards at the node, leaf
    and accumulator sites, and deterministic fault injection for tests.

    ``trace`` is an optional :class:`~repro.obs.trace.TraceRecorder`
    (or view) indexed by position in ``queries``; recording is purely
    additive and changes no arithmetic.

    Returns
    -------
    A :class:`BatchBoundResult` whose intervals each contain the exact
    density of the corresponding query.
    """
    if t_lower > t_upper:
        raise ValueError(f"t_lower {t_lower} exceeds t_upper {t_upper}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")

    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    q = queries.shape[0]
    lower = np.empty(q)
    upper = np.empty(q)
    codes = np.zeros(q, dtype=np.int8)
    degraded = np.zeros(q, dtype=bool)
    if faults is not None and not faults.plan.targets_traversal:
        faults = None
    for begin in range(0, q, block_size):
        stop = min(begin + block_size, q)
        block_trace = None if trace is None else trace.view(range(begin, stop))
        _bound_block(
            flat, kernel, queries[begin:stop], t_lower, t_upper, epsilon, stats,
            use_threshold_rule, use_tolerance_rule, tolerance_reference,
            threshold_shift, eta,
            lower[begin:stop], upper[begin:stop], codes[begin:stop],
            degraded[begin:stop], max_expansions, guard_policy, faults,
            block_trace,
        )
    return BatchBoundResult(
        lower=lower, upper=upper, outcome_codes=codes, degraded=degraded
    )


def _bound_block(
    flat: FlatTree,
    kernel: Kernel,
    queries: np.ndarray,
    t_lower: float,
    t_upper: float,
    epsilon: float,
    stats: TraversalStats,
    use_threshold_rule: bool,
    use_tolerance_rule: bool,
    tolerance_reference: float | None,
    threshold_shift: float,
    eta: float,
    out_lower: np.ndarray,
    out_upper: np.ndarray,
    out_codes: np.ndarray,
    out_degraded: np.ndarray,
    max_expansions: int | None,
    guard_policy: str,
    faults: FaultInjector | None,
    trace=None,
) -> None:
    """Run the masked-frontier traversal for one block of queries."""
    n_queries = queries.shape[0]
    if n_queries == 0:
        return
    inv_n = 1.0 / flat.total_weight
    stats.queries += n_queries
    guarded = guard_policy != "off"
    kernel_ceiling = kernel.max_value
    kernels_start = stats.kernel_evaluations
    # Retirement tallies for the registry; out_codes alone cannot
    # distinguish exhausted from exact-fallback (both OUTCOME_NONE).
    exhausted_n = 0
    exact_n = 0

    def trace_stops(rows: np.ndarray, rule: str) -> None:
        """Record terminal rule + final bounds for retired queries."""
        if trace is None:
            return
        for row in rows:
            trace.stop(
                int(row), rule,
                f_lower=float(out_lower[row]), f_upper=float(out_upper[row]),
                expansions=int(expansions_used[row]),
            )

    def guard_pair(node_ids, pair_lower, pair_upper):
        """Inject faults into and guard one (query, node) bound sweep."""
        if faults is not None:
            pair_lower, pair_upper = faults.corrupt_bounds_array(pair_lower, pair_upper)
        if guarded:
            pair_lower, pair_upper, __ = guard_interval_arrays(
                pair_lower, pair_upper, guard_policy, stats, site="node",
                ceiling=flat.node_weight[node_ids] * (inv_n * kernel_ceiling),
            )
        return pair_lower, pair_upper

    # Rule edges are loop constants (identical expressions to
    # repro.core.pruning.threshold_rule / tolerance_rule, including the
    # eta widening — `f_l - eta > edge` is applied as `f_l > edge + eta`).
    high_edge = t_upper * (1.0 + epsilon) + threshold_shift + eta
    low_edge = t_lower * (1.0 - epsilon) + threshold_shift - eta
    reference = t_lower if tolerance_reference is None else tolerance_reference
    tolerance_width = epsilon * reference - 2.0 * eta

    root_ids = np.zeros(n_queries, dtype=np.int64)
    root_lower, root_upper = pair_box_bounds(flat, root_ids, queries, kernel, inv_n)
    root_lower, root_upper = guard_pair(root_ids, root_lower, root_upper)
    f_lower = root_lower.copy()
    f_upper = root_upper.copy()
    expansions_used = np.zeros(n_queries, dtype=np.int64)
    if trace is not None:
        for row in range(n_queries):
            trace.step(row, float(f_lower[row]), float(f_upper[row]))

    # Padded frontier arrays, one row per query; columns grow on demand.
    capacity = 16
    fr_node = np.zeros((n_queries, capacity), dtype=np.int64)
    fr_lower = np.zeros((n_queries, capacity))
    fr_upper = np.zeros((n_queries, capacity))
    fr_seq = np.zeros((n_queries, capacity), dtype=np.int64)
    fr_len = np.ones(n_queries, dtype=np.int64)
    fr_node[:, 0] = 0
    fr_lower[:, 0] = root_lower
    fr_upper[:, 0] = root_upper
    next_seq = np.ones(n_queries, dtype=np.int64)  # root consumed seq 0

    alive = np.arange(n_queries)

    while alive.size:
        # --- exhausted frontiers (checked before the rules, like the
        # reference engine's `while frontier:` condition).
        empty = fr_len[alive] == 0
        if empty.any():
            done = alive[empty]
            stats.exhausted += done.size
            exhausted_n += done.size
            out_lower[done] = np.minimum(f_lower[done], f_upper[done])
            out_upper[done] = np.maximum(f_lower[done], f_upper[done])
            out_codes[done] = OUTCOME_NONE
            trace_stops(done, "exhausted")
            alive = alive[~empty]
            if not alive.size:
                break

        # --- accumulator guard: a non-finite running interval has lost
        # its frontier bookkeeping; the sound recovery is one exact
        # evaluation per affected query.
        if guarded:
            broken = ~(np.isfinite(f_lower[alive]) & np.isfinite(f_upper[alive]))
            if broken.any():
                rows = alive[broken]
                escalate(
                    guard_policy, "accumulator",
                    f"{rows.size} non-finite running interval(s)", stats,
                    count=rows.size,
                )
                exact = _exact_full_sums(flat, kernel, queries[rows], inv_n)
                out_lower[rows] = exact
                out_upper[rows] = exact
                out_codes[rows] = OUTCOME_NONE
                stats.extras[EXACT_FALLBACKS_KEY] = (
                    stats.extras.get(EXACT_FALLBACKS_KEY, 0.0) + rows.size
                )
                exact_n += rows.size
                trace_stops(rows, "exact")
                alive = alive[~broken]
                if not alive.size:
                    break

        # --- pruning rules, threshold before tolerance (paper order).
        fl = f_lower[alive]
        fu = f_upper[alive]
        code = np.zeros(alive.size, dtype=np.int8)
        if use_threshold_rule:
            code[fl > high_edge] = OUTCOME_THRESHOLD_HIGH
            code[(code == 0) & (fu < low_edge)] = OUTCOME_THRESHOLD_LOW
        if use_tolerance_rule:
            code[(code == 0) & (fu - fl < tolerance_width)] = OUTCOME_TOLERANCE
        pruned = code != 0
        if pruned.any():
            done = alive[pruned]
            out_lower[done] = f_lower[done]
            out_upper[done] = f_upper[done]
            out_codes[done] = code[pruned]
            stats.threshold_prunes_high += int(
                np.count_nonzero(code == OUTCOME_THRESHOLD_HIGH)
            )
            stats.threshold_prunes_low += int(
                np.count_nonzero(code == OUTCOME_THRESHOLD_LOW)
            )
            stats.tolerance_prunes += int(
                np.count_nonzero(code == OUTCOME_TOLERANCE)
            )
            if trace is not None:
                for row, rule_code in zip(done, code[pruned]):
                    trace.stop(
                        int(row), _RULE_BY_CODE[rule_code],
                        f_lower=float(out_lower[row]),
                        f_upper=float(out_upper[row]),
                        expansions=int(expansions_used[row]),
                    )
            alive = alive[~pruned]
            if not alive.size:
                break

        # --- anytime budget: stop capped queries with their current
        # (valid, possibly vacuous) interval and a degraded marker.
        if max_expansions is not None:
            over = expansions_used[alive] >= max_expansions
            if over.any():
                done = alive[over]
                out_lower[done] = np.minimum(f_lower[done], f_upper[done])
                out_upper[done] = np.maximum(f_lower[done], f_upper[done])
                out_codes[done] = OUTCOME_BUDGET
                out_degraded[done] = True
                stats.extras[BUDGET_STOPS_KEY] = (
                    stats.extras.get(BUDGET_STOPS_KEY, 0.0) + done.size
                )
                trace_stops(done, "budget")
                alive = alive[~over]
                if not alive.size:
                    break

        # --- pop the loosest frontier entry of every active query.
        # Heap-order equivalent: minimize (-(upper-lower), seq).
        lens = fr_len[alive]
        width_cols = int(lens.max())
        cols = np.arange(width_cols)
        sub = np.ix_(alive, cols)
        valid = cols[None, :] < lens[:, None]
        rank = np.where(valid, fr_lower[sub] - fr_upper[sub], np.inf)
        best_rank = rank.min(axis=1)
        tie = rank == best_rank[:, None]
        seq_masked = np.where(tie, fr_seq[sub], _SEQ_INF)
        best_col = np.argmin(seq_masked, axis=1)

        node_sel = fr_node[alive, best_col]
        lower_sel = fr_lower[alive, best_col]
        upper_sel = fr_upper[alive, best_col]
        # Swap-remove the popped entry (selection is order-independent).
        last = lens - 1
        fr_node[alive, best_col] = fr_node[alive, last]
        fr_lower[alive, best_col] = fr_lower[alive, last]
        fr_upper[alive, best_col] = fr_upper[alive, last]
        fr_seq[alive, best_col] = fr_seq[alive, last]
        fr_len[alive] = last

        f_lower[alive] -= lower_sel
        f_upper[alive] -= upper_sel

        leaf = flat.left[node_sel] < 0

        # --- leaves: exact vectorized kernel sums, grouped by node so
        # queries that reached the same leaf share one distance matrix.
        if leaf.any():
            leaf_rows = alive[leaf]
            leaf_nodes = node_sel[leaf]
            stats.kernel_evaluations += int(flat.count[leaf_nodes].sum())
            exact = _leaf_exact_sums(flat, kernel, leaf_nodes, queries[leaf_rows], inv_n)
            if faults is not None:
                exact = faults.corrupt_leaves_array(exact)
            if guarded:
                # Exact sums must land inside the box bounds each leaf
                # was popped with (catches silent underflow).
                exact = guard_values_in_intervals(
                    exact, lower_sel[leaf], upper_sel[leaf], guard_policy, stats,
                    site="leaf",
                )
            f_lower[leaf_rows] += exact
            f_upper[leaf_rows] += exact

        # --- internal nodes: bound both children of every popped node
        # in two vectorized sweeps, then push the non-settled ones.
        internal = ~leaf
        if internal.any():
            int_rows = alive[internal]
            int_nodes = node_sel[internal]
            stats.node_expansions += int_rows.size
            expansions_used[int_rows] += 1
            int_queries = queries[int_rows]

            # Ensure room for both children before pushing.
            if int(fr_len[int_rows].max()) + 2 > capacity:
                capacity = max(capacity * 2, int(fr_len.max()) + 2)
                fr_node = _grow(fr_node, capacity)
                fr_lower = _grow(fr_lower, capacity)
                fr_upper = _grow(fr_upper, capacity)
                fr_seq = _grow(fr_seq, capacity)

            for child_ids in (flat.left[int_nodes], flat.right[int_nodes]):
                child_lower, child_upper = pair_box_bounds(
                    flat, child_ids, int_queries, kernel, inv_n
                )
                child_lower, child_upper = guard_pair(
                    child_ids, child_lower, child_upper
                )
                f_lower[int_rows] += child_lower
                f_upper[int_rows] += child_upper
                push = child_upper - child_lower > 0.0
                if push.any():
                    push_rows = int_rows[push]
                    slot = fr_len[push_rows]
                    fr_node[push_rows, slot] = child_ids[push]
                    fr_lower[push_rows, slot] = child_lower[push]
                    fr_upper[push_rows, slot] = child_upper[push]
                    fr_seq[push_rows, slot] = next_seq[push_rows]
                    next_seq[push_rows] += 1
                    fr_len[push_rows] = slot + 1

        if trace is not None:
            for row in alive:
                trace.step(int(row), float(f_lower[row]), float(f_upper[row]))

    if REGISTRY.enabled:
        record_traversal_block(
            ENGINE_LABEL,
            {
                "threshold_high": int(
                    np.count_nonzero(out_codes == OUTCOME_THRESHOLD_HIGH)
                ),
                "threshold_low": int(
                    np.count_nonzero(out_codes == OUTCOME_THRESHOLD_LOW)
                ),
                "tolerance": int(np.count_nonzero(out_codes == OUTCOME_TOLERANCE)),
                "budget": int(np.count_nonzero(out_codes == OUTCOME_BUDGET)),
                "exhausted": int(exhausted_n),
                "exact": int(exact_n),
            },
            expansions_used,
            stats.kernel_evaluations - kernels_start,
        )


def _leaf_exact_sums(
    flat: FlatTree,
    kernel: Kernel,
    leaf_nodes: np.ndarray,
    leaf_queries: np.ndarray,
    inv_n: float,
) -> np.ndarray:
    """Exact leaf contributions for (query, leaf) pairs, grouped by leaf."""
    sums = np.empty(leaf_nodes.size)
    order = np.argsort(leaf_nodes, kind="stable")
    boundaries = np.flatnonzero(np.diff(leaf_nodes[order])) + 1
    for group in np.split(order, boundaries):
        node_id = leaf_nodes[group[0]]
        points = flat.points[flat.start[node_id] : flat.end[node_id]]
        diffs = leaf_queries[group][:, None, :] - points[None, :, :]
        sq_dists = np.einsum("kmd,kmd->km", diffs, diffs)
        values = kernel.value(sq_dists)
        if flat.point_weights is not None:
            values = values * flat.point_weights[flat.start[node_id] : flat.end[node_id]]
        sums[group] = np.sum(values, axis=1) * inv_n
    return sums


def _exact_full_sums(
    flat: FlatTree, kernel: Kernel, rows: np.ndarray, inv_n: float
) -> np.ndarray:
    """Brute-force exact densities for a few queries (guard fallback)."""
    diffs = rows[:, None, :] - flat.points[None, :, :]
    sq = np.einsum("kmd,kmd->km", diffs, diffs)
    values = kernel.value(sq)
    if flat.point_weights is not None:
        values = values * flat.point_weights[None, :]
    return np.sum(values, axis=1) * inv_n


def _grow(array: np.ndarray, capacity: int) -> np.ndarray:
    """Return ``array`` widened to ``capacity`` columns (zero-padded)."""
    grown = np.zeros((array.shape[0], capacity), dtype=array.dtype)
    grown[:, : array.shape[1]] = array
    return grown
