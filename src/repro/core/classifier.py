"""Algorithm 1: the end-to-end tKDC classifier.

``fit`` builds the spatial index, bootstraps probabilistic threshold
bounds (Algorithm 3), scores every training point with those bounds, and
refines the working threshold to the exact ``p``-quantile of the bounded
training densities. ``classify`` then answers queries by bounding each
query's density against the refined threshold, short-circuiting via the
grid cache and the pruning rules.

Example
-------
>>> import numpy as np
>>> from repro import TKDCClassifier, TKDCConfig
>>> rng = np.random.default_rng(0)
>>> train = rng.normal(size=(2000, 2))
>>> clf = TKDCClassifier(TKDCConfig(p=0.05)).fit(train)
>>> labels = clf.classify(np.array([[0.0, 0.0], [6.0, 6.0]]))
>>> [label.name for label in labels]
['HIGH', 'LOW']
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time
import warnings

import numpy as np

from repro.core.batch_bounds import bound_densities
from repro.core.bounds import bound_density
from repro.core.config import ENGINES, TKDCConfig
from repro.coresets.base import Coreset, build_coreset
from repro.estimators.hbe import HbeIndex
from repro.estimators.select import select_engine
from repro.core.grid import GridCache
from repro.core.result import (
    ClassificationResult,
    DensityBounds,
    Label,
    ThresholdEstimate,
)
from repro.core.stats import TraversalStats
from repro.core.threshold import bootstrap_threshold_bounds
from repro.index.kdtree import KDTree
from repro.kernels.base import Kernel
from repro.kernels.factory import kernel_for_data
from repro.obs.explain import explain_traces
from repro.obs.metrics import (
    CLASSIFY_SECONDS,
    GRID_HITS_TOTAL,
    record_engine_selected,
    record_hbe_block,
    record_traversal_block,
)
from repro.obs.trace import TraceRecorder
from repro.quantile.order_stats import quantile_of_sorted
from repro.robustness.faults import (
    WORKER_CRASH,
    WORKER_STALL,
    FaultInjector,
    FaultPlan,
)
from repro.robustness.supervisor import SupervisionPolicy, supervised_map
from repro.validation import as_finite_matrix, as_query_matrix


class NotFittedError(RuntimeError):
    """Raised when a classifier method requires a prior ``fit`` call."""


#: Label lookup for vectorized int->Label mapping (index = int value).
_LABELS = np.array([Label.LOW, Label.HIGH, Label.UNCERTAIN], dtype=object)

#: Per-worker state for the multiprocess classify path. Populated in the
#: parent *before* the fork so workers inherit the classifier (index
#: arrays included) through copy-on-write pages instead of a per-worker
#: pickle — shipping a 50k-point flat tree through ``initargs`` used to
#: cost more than the traversal it parallelized.
_WORKER_STATE: dict = {}

#: Query-count floor below which ``classify`` ignores ``n_jobs`` and
#: stays in-process: pool setup plus result pickling costs a few tens of
#: milliseconds, which a small batch can never amortize.
_PARALLEL_MIN_QUERIES = 4096

#: Chunks handed out per worker by the parallel path. More than one
#: chunk per worker lets the pool rebalance when pruning makes some
#: query regions much cheaper than others; too many chunks re-introduces
#: per-chunk dispatch overhead.
_CHUNKS_PER_WORKER = 4

#: One-time flag for the no-multiprocessing serial-degradation warning.
_NO_POOL_WARNED = False


def _enact_worker_fault(plan: FaultPlan, chunk_index: int, attempt: int) -> None:
    """Make this worker die or hang if the fault plan says so.

    ``os._exit`` models a hard crash (segfault, OOM kill) — no cleanup,
    no exception crosses the pipe. An ``Event`` that is never set models
    a stall (swap storm, adversarial query): the worker blocks forever
    and only the supervisor's deadline can reclaim the chunk.
    """
    fault = plan.worker_fault(chunk_index, attempt)
    if fault == WORKER_CRASH:
        os._exit(17)
    elif fault == WORKER_STALL:
        threading.Event().wait()


def _classify_chunk(
    chunk_index: int, attempt: int, scaled_chunk: np.ndarray
) -> tuple[np.ndarray, dict]:
    """Classify one chunk in a worker; stats come back for merging.

    Stats cross the process boundary as the lossless
    :meth:`TraversalStats.to_dict` form (core counters plus the full
    ``extras`` dict), so worker-side bookkeeping like exact-fallback and
    budget-stop counts survives aggregation verbatim.
    """
    plan = _WORKER_STATE.get("fault_plan")
    if plan is not None:
        _enact_worker_fault(plan, chunk_index, attempt)
    stats = TraversalStats()
    highs = _WORKER_STATE["classifier"]._classify_scaled_block(
        scaled_chunk, _WORKER_STATE["threshold"], stats, engine="batch"
    )
    return highs, stats.to_dict()


def _init_worker(
    classifier: "TKDCClassifier", threshold: float, fault_plan: FaultPlan | None
) -> None:
    """Spawn-context initializer: receive the state fork gets for free."""
    _WORKER_STATE["classifier"] = classifier
    _WORKER_STATE["threshold"] = threshold
    _WORKER_STATE["fault_plan"] = fault_plan


class TKDCClassifier:
    """Thresholded kernel density classification (the paper's tKDC).

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.TKDCConfig`; defaults reproduce the
        paper's Table 1 settings (``p = eps = delta = 0.01``).

    Attributes (populated by :meth:`fit`)
    -------------------------------------
    threshold:
        The :class:`~repro.core.result.ThresholdEstimate` for ``t(p)``.
    training_scores_:
        Self-contribution-corrected density estimates for every training
        point (coarse for points far from the threshold, ``eps``-precise
        near it — exactly the guarantee classification needs).
    training_labels_:
        HIGH/LOW labels for the training points, as used by the paper's
        outlier-detection workload.
    coreset_:
        The :class:`~repro.coresets.base.Coreset` the index was built
        over, or ``None`` when classifying against the full training
        set (``config.coreset is None``).
    stats:
        :class:`~repro.core.stats.TraversalStats` accumulated over all
        work done so far (training and queries).
    """

    def __init__(self, config: TKDCConfig | None = None) -> None:
        self.config = config or TKDCConfig()
        self._kernel: Kernel | None = None
        self._tree: KDTree | None = None
        self._grid: GridCache | None = None
        self._threshold: ThresholdEstimate | None = None
        self._stats = TraversalStats()
        self.training_scores_: np.ndarray | None = None
        self.training_labels_: np.ndarray | None = None
        self.coreset_: Coreset | None = None
        self._rule_eta = 0.0
        self._hbe: HbeIndex | None = None
        self.engine_selected_: str | None = None
        self.engine_reason_: str | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "TKDCClassifier":
        """Train on ``data``: index, threshold bootstrap, full scoring pass."""
        data = as_finite_matrix(data, "training data")
        n = data.shape[0]
        if n < 2:
            raise ValueError(f"need at least 2 training points, got {n}")
        config = self.config
        rng = np.random.default_rng(config.seed)

        self._kernel = self._make_kernel(data)
        scaled = self._kernel.scale(data)
        self.coreset_ = None
        if config.coreset is not None:
            k = config.coreset_size
            if k is None:
                k = max(1, round(config.coreset_fraction * n))
            self.coreset_ = build_coreset(
                scaled, self._kernel, config.coreset, min(k, n),
                delta=config.coreset_delta, rng=rng,
            )
            self._tree = KDTree(
                self.coreset_.points,
                leaf_size=config.leaf_size,
                split_rule=config.split_rule,
                weights=self.coreset_.weights,
            )
        else:
            self._tree = KDTree(
                scaled, leaf_size=config.leaf_size, split_rule=config.split_rule
            )

        bootstrap = bootstrap_threshold_bounds(
            data,
            make_kernel=self._make_kernel,
            config=config,
            stats=self._stats,
            rng=rng,
            full_tree=self._tree,
            full_kernel=self._kernel,
            eta=self.eta,
        )
        t_lower, t_upper = bootstrap.lower, bootstrap.upper

        # The grid cache stays built over the FULL training set even
        # under compression: it lower-bounds the full-data density f_X
        # directly, so its HIGH shortcut remains a certified statement
        # regardless of how coarse the sketch's certificate is.
        self._grid = None
        if config.use_grid and data.shape[1] <= config.grid_max_dim:
            self._grid = GridCache(scaled, self._kernel)

        if config.refine_threshold:
            scores = self._score_training_points(scaled, t_lower, t_upper)
            # Corrected densities are non-negative by construction
            # (f_X(x) >= K(0)/n: x's own contribution), so a negative
            # quantile can only be sketch underestimation in the tails
            # (best-effort compression); snap it to the achievable
            # floor rather than shipping a threshold no density can be
            # below.
            refined = max(quantile_of_sorted(np.sort(scores), config.p), 0.0)
            # Section 3.6: the bootstrap's bounds are probabilistic — with
            # probability delta they miss the true threshold, detectable
            # because the refined quantile escapes the bracket. Back the
            # escaped side off and re-score once (the scoring pass is
            # cheap relative to silently classifying against a bad t).
            if not t_lower <= refined <= t_upper:
                self._stats.extras["threshold_rescores"] = (
                    self._stats.extras.get("threshold_rescores", 0.0) + 1.0
                )
                if refined < t_lower:
                    t_lower = refined / config.h_backoff
                else:
                    t_upper = refined * config.h_backoff
                scores = self._score_training_points(scaled, t_lower, t_upper)
                refined = max(quantile_of_sorted(np.sort(scores), config.p), 0.0)
            self._threshold = ThresholdEstimate(
                value=refined,
                lower=min(t_lower, refined),
                upper=max(t_upper, refined),
                p=config.p,
            )
            self.training_scores_ = scores
            self.training_labels_ = np.where(scores > refined, Label.HIGH, Label.LOW)
        else:
            self._threshold = ThresholdEstimate(
                value=0.5 * (t_lower + t_upper), lower=t_lower, upper=t_upper, p=config.p
            )
            self.training_scores_ = None
            self.training_labels_ = None
        # Widening the pruning rules by eta is only worthwhile while it
        # preserves the certification condition eta < eps * t_l; a
        # certificate coarser than that would zero out every prune (the
        # tolerance width eps*t - 2*eta goes negative), so classification
        # degrades to best-effort against the compressed estimate instead.
        eta = self.eta
        self._rule_eta = (
            eta if 0.0 < eta < config.epsilon * self._threshold.lower else 0.0
        )
        # Resolve engine="auto" once per fit (dimension rule; the serving
        # calibrator may re-resolve with a measured expansion rate) and
        # drop any hbe index built for a previous training set.
        self._hbe = None
        self.engine_selected_, self.engine_reason_ = select_engine(
            data.shape[1], config.kernel, config
        )
        if config.engine == "auto" and self.engine_selected_ == "hbe":
            # The dimension rule says hash, but hashing is only useful if
            # its LOW decisions are certifiable: a workload whose
            # threshold sits below what one hash-invisible point can
            # contribute (degenerate bandwidth — e.g. Scott's rule far
            # above ~10 dimensions turns the KDE into a nearest-neighbour
            # spike field) would route every would-be LOW to the tree
            # fallback, making the hbe engine pure overhead.
            if not self.hbe_low_certifiable():
                self.engine_selected_ = "batch"
                self.engine_reason_ = "degenerate_bandwidth"
                self._hbe = None
        record_engine_selected(self.engine_selected_, self.engine_reason_)
        return self

    def _make_kernel(self, data: np.ndarray) -> Kernel:
        return kernel_for_data(
            data,
            name=self.config.kernel,
            scale=self.config.bandwidth_scale,
            normalize=self.config.normalize_densities,
        )

    def _score_training_points(
        self, scaled: np.ndarray, t_lower: float, t_upper: float
    ) -> np.ndarray:
        """Bound every training point's density (Algorithm 1's Dx loop).

        The threshold bounds live in *self-contribution-corrected*
        density space (Equation 1 subtracts ``K(0)/n``), while the
        traversal bounds raw densities. Pruning therefore compares raw
        bounds against the threshold bounds shifted up by the
        self-contribution, with the tolerance width still anchored at
        the unshifted ``eps * t_l`` — otherwise, on datasets where
        ``K(0)/n`` rivals ``t(p)`` (isolated heavy-tail outliers), the
        coarse pruned scores scramble ranks across the threshold and
        corrupt the refined quantile.
        """
        assert self._tree is not None and self._kernel is not None
        config = self.config
        n = scaled.shape[0]
        self_contribution = self._kernel.max_value / n
        scores = np.empty(n)
        remaining = np.arange(n)
        if self._grid is not None:
            # The grid shortcut must likewise clear the threshold
            # *after* the self-contribution correction.
            grid_scores = self._grid.density_lower_bounds(scaled) - self_contribution
            certain = grid_scores > t_upper * (1.0 + config.epsilon)
            self._stats.grid_hits += int(np.count_nonzero(certain))
            scores[certain] = grid_scores[certain]
            remaining = np.flatnonzero(~certain)
        if remaining.size == 0:
            return scores
        # Gate the eta widening on the *current* bracket (it may have
        # been backed off since fit computed the classification gate).
        rule_eta = self.eta if 0.0 < self.eta < config.epsilon * t_lower else 0.0
        if config.engine == "batch":
            result = bound_densities(
                self._tree.flatten(), self._kernel, scaled[remaining],
                t_lower, t_upper, config.epsilon, self._stats,
                use_threshold_rule=config.use_threshold_rule,
                use_tolerance_rule=config.use_tolerance_rule,
                threshold_shift=self_contribution,
                eta=rule_eta,
                block_size=config.batch_block_size,
                guard_policy=config.guard_policy,
            )
            scores[remaining] = result.midpoint - self_contribution
        else:
            for i in remaining:
                result = bound_density(
                    self._tree, self._kernel, scaled[i], t_lower, t_upper,
                    config.epsilon, self._stats,
                    use_threshold_rule=config.use_threshold_rule,
                    use_tolerance_rule=config.use_tolerance_rule,
                    threshold_shift=self_contribution,
                    eta=rule_eta,
                    guard_policy=config.guard_policy,
                )
                scores[i] = result.midpoint - self_contribution
        return scores

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._threshold is not None

    @property
    def threshold(self) -> ThresholdEstimate:
        """The estimated classification threshold ``t(p)``."""
        self._require_fitted()
        assert self._threshold is not None
        return self._threshold

    @property
    def kernel(self) -> Kernel:
        """The fitted kernel (Scott's-rule bandwidth on the training data)."""
        self._require_fitted()
        assert self._kernel is not None
        return self._kernel

    @property
    def tree(self) -> KDTree:
        """The k-d tree over bandwidth-scaled training points."""
        self._require_fitted()
        assert self._tree is not None
        return self._tree

    @property
    def stats(self) -> TraversalStats:
        """Work counters accumulated across training and queries."""
        return self._stats

    @property
    def eta(self) -> float:
        """Certified sup-norm density error of the compressed index.

        0 when classifying against the full training set; ``math.inf``
        when the coreset construction could not certify (non-Lipschitz
        kernel under merge-reduce).
        """
        return self.coreset_.eta if self.coreset_ is not None else 0.0

    @property
    def eta_applied(self) -> float:
        """The eta actually widening the pruning rules (0 = best-effort).

        Equals :attr:`eta` exactly when the certificate is fine enough to
        keep certification (``eta < epsilon * t_lower``); otherwise 0,
        meaning labels describe the compressed estimate rather than the
        full-data density.
        """
        self._require_fitted()
        return self._rule_eta

    def widen_threshold_bracket(self, eta: float) -> float:
        """Fold a stream-sketch displacement certificate into the bracket.

        A drift-triggered refit trains on a :class:`StreamSketch`
        materialization, not the raw stream — so the fitted threshold's
        uncertainty must additionally absorb the sketch's certified
        sup-norm KDE error ``eta`` (the quantile of the true stream
        density lies within ``±eta`` of the sketch density's quantile in
        density space). This widens ``threshold.lower/upper`` by ``eta``
        (clamping lower at 0) and re-gates the coreset pruning eta
        against the new, smaller lower bound.

        Returns the eta actually applied (0 when ``eta`` is 0 or not
        finite — a non-Lipschitz kernel yields an uninformative ``inf``
        certificate, recorded but not applied). The applied value is
        stored as ``stream_eta_applied_`` and rides the saved artifact,
        so the swapped model's manifest can surface it.
        """
        self._require_fitted()
        if eta < 0.0:
            raise ValueError(f"eta must be >= 0, got {eta}")
        self.stream_eta_ = float(eta)
        if eta == 0.0 or not np.isfinite(eta):
            self.stream_eta_applied_ = 0.0
            return 0.0
        old = self._threshold
        self._threshold = ThresholdEstimate(
            value=old.value,
            lower=max(old.lower - eta, 0.0),
            upper=old.upper + eta,
            p=old.p,
        )
        coreset_eta = self.eta
        self._rule_eta = (
            coreset_eta
            if 0.0 < coreset_eta < self.config.epsilon * self._threshold.lower
            else 0.0
        )
        self.stream_eta_applied_ = float(eta)
        return float(eta)

    @property
    def stream_eta_applied(self) -> float:
        """Stream-sketch eta folded into the bracket (0 when none was)."""
        return float(getattr(self, "stream_eta_applied_", 0.0))

    @property
    def certified(self) -> bool:
        """Whether labels carry the full-data ``±eps * t`` guarantee.

        Always True without compression. Under compression, True exactly
        when the coreset certificate is applied to the pruning rules
        (see :attr:`eta_applied`); note the uniform construction's
        certificate is itself probabilistic (per query, level
        ``1 - coreset_delta``).
        """
        self._require_fitted()
        if self.coreset_ is None:
            return True
        # eta == 0 means the sketch reproduces the KDE exactly (k >= n,
        # or merge-reduce over duplicate-only data): certified trivially.
        return self.eta == 0.0 or self._rule_eta > 0.0

    def classify(
        self,
        queries: np.ndarray,
        engine: str | None = None,
        n_jobs: int | None = None,
        trace=None,
    ) -> np.ndarray:
        """Classify query points as HIGH/LOW density (paper Algorithm 1).

        Returns an array of :class:`~repro.core.result.Label`. Points
        whose exact density lies within ``±eps * t(p)`` of the threshold
        may receive either label (Problem 1's approximate semantics).

        Parameters
        ----------
        engine:
            ``"batch"`` (vectorized multi-query traversal, the default)
            or ``"per-query"`` (the reference engine). ``None`` defers
            to ``config.engine``. Both engines produce the same labels.
        n_jobs:
            Worker processes for the batch engine (``None`` defers to
            ``config.n_jobs``; -1 uses every core). Ignored by the
            per-query engine.
        trace:
            Optional :class:`~repro.obs.trace.TraceRecorder` receiving
            each query's bound trajectory, terminating rule, and final
            label, indexed by row in ``queries``. Tracing is purely
            additive (labels are bit-identical with it on) and forces
            the in-process path — worker-side recorders cannot cross a
            process boundary, so ``n_jobs`` is ignored while tracing.
            Flagged-invalid rows are never traversed and get no trace.

        Under ``config.query_policy == "flag"``, non-finite query rows
        are never traversed and come back as ``Label.UNCERTAIN``.
        """
        self._require_fitted()
        queries, invalid = self._as_query_matrix(queries)
        if not invalid.any():
            highs = self._classify_mask(queries, engine, n_jobs, trace=trace)
            labels = _LABELS[highs.astype(np.intp)]
        else:
            labels = np.full(queries.shape[0], Label.UNCERTAIN, dtype=object)
            valid = np.flatnonzero(~invalid)
            block_trace = None if trace is None else trace.view(valid)
            highs = self._classify_mask(
                queries[valid], engine, n_jobs, trace=block_trace
            )
            labels[valid] = _LABELS[highs.astype(np.intp)]
        if trace is not None:
            for query_trace in trace.traces() if hasattr(trace, "traces") else ():
                query_trace.label = int(labels[query_trace.query_index])
        return labels

    def trace_classify(
        self, queries: np.ndarray, engine: str | None = None
    ) -> tuple[np.ndarray, TraceRecorder]:
        """Classify with per-query tracing on; returns (labels, recorder).

        Convenience wrapper: builds a fresh
        :class:`~repro.obs.trace.TraceRecorder`, classifies in-process
        with it attached, and hands both back. The labels are
        bit-identical to a :meth:`classify` call without tracing.
        """
        recorder = TraceRecorder(engine=self._resolve_engine(engine))
        labels = self.classify(queries, engine=engine, trace=recorder)
        return labels, recorder

    def explain(
        self,
        queries: np.ndarray,
        engine: str | None = None,
        limit: int = 10,
        max_steps: int = 12,
    ) -> str:
        """Classify ``queries`` and render why each got its label.

        Re-runs the classification with tracing enabled and returns the
        human-readable account produced by
        :func:`repro.obs.explain.explain_traces`: a rule tally plus, for
        the first ``limit`` queries, the bound trajectory against the
        threshold band and the rule that terminated the traversal.
        Backs the ``repro explain`` CLI command.
        """
        self._require_fitted()
        __, recorder = self.trace_classify(queries, engine=engine)
        threshold = self.threshold.value
        band = (
            threshold * (1.0 - self.config.epsilon),
            threshold * (1.0 + self.config.epsilon),
        )
        return explain_traces(
            recorder.traces(), thresholds=band, limit=limit, max_steps=max_steps
        )

    def classify_detailed(
        self, queries: np.ndarray, engine: str | None = None
    ) -> ClassificationResult:
        """Classify with full degradation diagnostics (always in-process).

        Returns a :class:`~repro.core.result.ClassificationResult`
        carrying, per query, the density interval the label was decided
        on and whether the answer is best-effort: the query hit the
        ``config.max_node_expansions`` anytime budget, a guard collapsed
        it to an exact fallback, or its input row was flagged invalid
        under ``query_policy="flag"``. Degraded bounds are always valid
        (possibly vacuous); :meth:`ClassificationResult.resolved_labels`
        turns the genuinely undecidable ones into ``Label.UNCERTAIN``.

        Runs serially regardless of ``config.n_jobs`` — the diagnostic
        path favours complete per-query information over throughput; use
        :meth:`classify` for large parallel batches.
        """
        self._require_fitted()
        matrix, invalid = self._as_query_matrix(queries)
        config = self.config
        threshold = self.threshold.value
        engine = self._resolve_engine(engine)
        q = matrix.shape[0]
        lower = np.zeros(q)
        upper = np.full(q, math.inf)
        labels = np.full(q, Label.LOW, dtype=object)
        degraded = invalid.copy()

        valid_rows = np.flatnonzero(~invalid)
        if valid_rows.size:
            scaled = self.kernel.scale(matrix[valid_rows])
            remaining = np.arange(valid_rows.size)
            if self._grid is not None:
                # The grid shortcut certifies HIGH from a lower bound
                # alone, so those rows keep an infinite upper bound.
                grid_bounds = self._grid.density_lower_bounds(scaled)
                certain = grid_bounds > threshold * (1.0 + config.epsilon)
                self._stats.grid_hits += int(np.count_nonzero(certain))
                rows = valid_rows[certain]
                lower[rows] = grid_bounds[certain]
                labels[rows] = Label.HIGH
                remaining = np.flatnonzero(~certain)
            budget = config.max_node_expansions
            if remaining.size and engine == "hbe":
                decision = self._hbe_decide(
                    scaled[remaining], threshold, self._stats, budget,
                )
                eta = self._rule_eta
                decided = decision.decided
                rows = valid_rows[remaining[decided]]
                lower[rows] = np.maximum(decision.ci_lo[decided] - eta, 0.0)
                upper[rows] = decision.ci_hi[decided] + eta
                labels[rows] = _LABELS[decision.high[decided].astype(np.intp)]
                exhausted = decision.exhausted
                rows = valid_rows[remaining[exhausted]]
                # Sample budget spent with no decision: the estimate
                # carries no certified interval, so report the vacuous
                # one — exactly the tree engines' anytime contract
                # (degraded + straddling bounds -> UNCERTAIN under
                # resolved_labels()).
                lower[rows] = 0.0
                upper[rows] = math.inf
                labels[rows] = _LABELS[
                    (decision.mean[exhausted] > threshold).astype(np.intp)
                ]
                degraded[rows] = True
                fallback = decision.fallback_rows
                if budget is not None and fallback.size:
                    budget = max(
                        int(budget)
                        - int(decision.samples[fallback[0]])
                        * config.hbe_sample_cost,
                        1,
                    )
                remaining = remaining[fallback]
                engine = "batch"
            if remaining.size:
                eta = self._rule_eta
                faults = self._traversal_injector()
                rows = valid_rows[remaining]
                if engine == "batch":
                    result = bound_densities(
                        self.tree.flatten(), self.kernel, scaled[remaining],
                        threshold, threshold, config.epsilon, self._stats,
                        use_threshold_rule=config.use_threshold_rule,
                        use_tolerance_rule=config.use_tolerance_rule,
                        eta=eta,
                        block_size=config.batch_block_size,
                        max_expansions=budget,
                        guard_policy=config.guard_policy,
                        faults=faults,
                    )
                    lower[rows] = np.maximum(result.lower - eta, 0.0)
                    upper[rows] = result.upper + eta
                    labels[rows] = _LABELS[
                        (result.midpoint > threshold).astype(np.intp)
                    ]
                    degraded[rows] = result.degraded
                else:
                    for local, row in zip(remaining, rows):
                        result = bound_density(
                            self.tree, self.kernel, scaled[local],
                            threshold, threshold, config.epsilon, self._stats,
                            use_threshold_rule=config.use_threshold_rule,
                            use_tolerance_rule=config.use_tolerance_rule,
                            eta=eta,
                            max_expansions=config.max_node_expansions,
                            guard_policy=config.guard_policy,
                            faults=faults,
                        )
                        lower[row] = max(result.lower - eta, 0.0)
                        upper[row] = result.upper + eta
                        labels[row] = (
                            Label.HIGH if result.midpoint > threshold else Label.LOW
                        )
                        degraded[row] = result.degraded
        return ClassificationResult(
            labels=labels, lower=lower, upper=upper,
            degraded=degraded, invalid=invalid, threshold=threshold,
        )

    def _classify_mask(
        self,
        queries: np.ndarray,
        engine: str | None = None,
        n_jobs: int | None = None,
        trace=None,
    ) -> np.ndarray:
        """Boolean HIGH mask for validated queries (shared classify core)."""
        engine = self._resolve_engine(engine)
        n_jobs = self._resolve_n_jobs(n_jobs)
        scaled = self.kernel.scale(queries)
        threshold = self.threshold.value
        with CLASSIFY_SECONDS.labels(engine).time():
            # Below the floor, pool startup dominates any traversal
            # saving; fall back to the serial batch path (see
            # bench_batch_traversal). Tracing also stays in-process: a
            # recorder cannot follow chunks across a process boundary.
            if (
                engine == "batch"
                and n_jobs > 1
                and scaled.shape[0] >= _PARALLEL_MIN_QUERIES
                and trace is None
            ):
                return self._classify_parallel(scaled, threshold, n_jobs)
            return self._classify_scaled_block(
                scaled, threshold, self._stats, engine, trace=trace
            )

    def _classify_scaled_block(
        self,
        scaled: np.ndarray,
        threshold: float,
        stats: TraversalStats,
        engine: str,
        trace=None,
    ) -> np.ndarray:
        """Grid shortcut + density-bounding traversal for a scaled block."""
        config = self.config
        highs = np.zeros(scaled.shape[0], dtype=bool)
        remaining = np.arange(scaled.shape[0])
        if self._grid is not None and scaled.shape[0] > 0:
            grid_bounds = self._grid.density_lower_bounds(scaled)
            certain = grid_bounds > threshold * (1.0 + config.epsilon)
            grid_hits = int(np.count_nonzero(certain))
            stats.grid_hits += grid_hits
            if grid_hits:
                GRID_HITS_TOTAL.inc(grid_hits)
            highs[certain] = True
            remaining = np.flatnonzero(~certain)
            if trace is not None:
                for row in np.flatnonzero(certain):
                    trace.stop(
                        int(row), "grid",
                        f_lower=float(grid_bounds[row]), f_upper=math.inf,
                        expansions=0,
                    )
        if remaining.size == 0:
            return highs
        budget = config.max_node_expansions
        if engine == "hbe":
            decision = self._hbe_decide(
                scaled[remaining], threshold, stats, budget, trace=trace,
                trace_rows=remaining,
            )
            decided = decision.decided
            highs[remaining[decided]] = decision.high[decided]
            # Budget-exhausted rows get the best-effort midpoint label,
            # matching the tree engines' anytime semantics (the degraded
            # flag surfaces through classify_detailed, not here).
            exhausted = decision.exhausted
            highs[remaining[exhausted]] = decision.mean[exhausted] > threshold
            fallback = decision.fallback_rows
            if fallback.size == 0:
                return highs
            if budget is not None:
                budget = max(
                    int(budget)
                    - int(decision.samples[fallback[0]]) * config.hbe_sample_cost,
                    1,
                )
            remaining = remaining[fallback]
            engine = "batch"
        faults = self._traversal_injector()
        if engine == "batch":
            result = bound_densities(
                self.tree.flatten(), self.kernel, scaled[remaining],
                threshold, threshold, config.epsilon, stats,
                use_threshold_rule=config.use_threshold_rule,
                use_tolerance_rule=config.use_tolerance_rule,
                eta=self._rule_eta,
                block_size=config.batch_block_size,
                max_expansions=budget,
                guard_policy=config.guard_policy,
                faults=faults,
                trace=None if trace is None else trace.view(remaining),
            )
            highs[remaining] = result.midpoint > threshold
        else:
            for i in remaining:
                result = bound_density(
                    self.tree, self.kernel, scaled[i], threshold, threshold,
                    config.epsilon, stats,
                    use_threshold_rule=config.use_threshold_rule,
                    use_tolerance_rule=config.use_tolerance_rule,
                    eta=self._rule_eta,
                    max_expansions=config.max_node_expansions,
                    guard_policy=config.guard_policy,
                    faults=faults,
                    trace=trace,
                    trace_index=int(i),
                )
                highs[i] = result.midpoint > threshold
        return highs

    def _traversal_injector(self) -> FaultInjector | None:
        """A fresh injector for one traversal pass, or None in production."""
        plan = self.config.fault_plan
        if plan is None or not plan.targets_traversal:
            return None
        return FaultInjector(plan)

    def _classify_parallel(
        self, scaled: np.ndarray, threshold: float, n_jobs: int
    ) -> np.ndarray:
        """Chunk the scaled queries across a supervised process pool.

        Dispatch is per-chunk with deadlines, bounded retries, and an
        in-process serial fallback (see
        :mod:`repro.robustness.supervisor`): a crashed or stalled
        worker delays its chunks but can never lose them or hang the
        batch. Prefers a fork context (workers inherit the index through
        copy-on-write), falls back to spawn with an explicit
        initializer pickle, and degrades to the serial path — with a
        one-time warning — when no start method works at all.
        """
        n_jobs = min(n_jobs, scaled.shape[0])
        config = self.config
        context, needs_init = self._parallel_context()
        if context is None:
            return self._classify_scaled_block(
                scaled, threshold, self._stats, engine="batch"
            )
        self.tree.flatten()  # build once pre-fork so workers share it
        # Several chunks per worker (not one) so the pool rebalances
        # around pruning-induced cost skew across query regions, capped
        # so each chunk still fills at least one vectorized block.
        n_chunks = min(
            n_jobs * _CHUNKS_PER_WORKER,
            max(n_jobs, scaled.shape[0] // config.batch_block_size),
        )
        chunks = np.array_split(scaled, n_chunks)
        plan = config.fault_plan
        if plan is not None and not plan.targets_workers:
            plan = None
        policy = SupervisionPolicy(
            timeout=config.worker_timeout,
            max_retries=config.worker_retries,
            backoff=config.worker_backoff,
        )

        def serial_fallback(
            index: int, chunk: np.ndarray
        ) -> tuple[np.ndarray, dict]:
            # Worker faults are a pool phenomenon; the in-process
            # fallback runs the same traversal clean.
            stats = TraversalStats()
            highs = self._classify_scaled_block(
                chunk, threshold, stats, engine="batch"
            )
            return highs, stats.to_dict()

        _WORKER_STATE["classifier"] = self
        _WORKER_STATE["threshold"] = threshold
        _WORKER_STATE["fault_plan"] = plan
        try:
            results, report = supervised_map(
                _classify_chunk, chunks, n_jobs, policy, serial_fallback, context,
                initializer=_init_worker if needs_init else None,
                initargs=(self, threshold, plan) if needs_init else (),
            )
        finally:
            _WORKER_STATE.clear()
        for key, value in report.as_extras().items():
            self._stats.extras[key] = self._stats.extras.get(key, 0.0) + value
        for __, worker_stats in results:
            self._stats.merge(TraversalStats.from_dict(worker_stats))
        return np.concatenate([highs for highs, __ in results])

    def _parallel_context(self) -> tuple[object, bool]:
        """Pick a multiprocessing start method: fork, spawn, or give up.

        Returns ``(context, needs_initializer)``; a ``None`` context
        means no start method is usable and the caller must run
        serially (warned once per process).
        """
        global _NO_POOL_WARNED
        try:
            return multiprocessing.get_context("fork"), False
        except ValueError:
            pass
        try:
            # Spawn cannot inherit _WORKER_STATE; workers rebuild it
            # from an initializer pickle of the classifier instead.
            return multiprocessing.get_context("spawn"), True
        except ValueError:
            if not _NO_POOL_WARNED:
                _NO_POOL_WARNED = True
                warnings.warn(
                    "no usable multiprocessing start method (fork and spawn both "
                    "unavailable); classify is degrading to the serial in-process "
                    "path despite n_jobs > 1",
                    RuntimeWarning,
                    stacklevel=3,
                )
            return None, False

    def _resolve_engine(self, engine: str | None) -> str:
        engine = self.config.engine if engine is None else engine
        if engine == "auto":
            engine, __ = self.auto_selection()
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        return engine

    def hbe_low_certifiable(self) -> bool:
        """Whether the hbe engine's LOW decisions can certify here.

        True when no single hash-invisible training point could exceed
        the lower threshold band on its own (see
        :meth:`~repro.estimators.hbe.HbeIndex.low_visibility_bound`).
        When False the sampler would route every would-be LOW to the
        tree fallback, so selecting hbe is pure overhead; fit-time auto
        selection and the serving calibrator both consult this. Builds
        the hbe index on first call (cached).
        """
        self._require_fitted()
        band_lo = self._threshold.value * (1.0 - self.config.epsilon)
        return self._ensure_hbe().low_visibility_bound() <= band_lo - self._rule_eta

    def auto_selection(self) -> tuple[str, str]:
        """The concrete ``(engine, reason)`` ``engine="auto"`` resolves to.

        Uses the selection stored at fit time; recomputes from the
        fitted dimensionality when absent (models pickled before the
        attribute existed). For a concretely configured engine the
        reason is ``"configured"``.
        """
        selected = getattr(self, "engine_selected_", None)
        reason = getattr(self, "engine_reason_", None)
        if selected is None or reason is None or selected == "auto":
            selected, reason = select_engine(
                self.kernel.dim, self.config.kernel, self.config
            )
        return selected, reason

    def _ensure_hbe(self) -> HbeIndex:
        """The lazily built hbe index over the (possibly coreset) tree points.

        Built from ``config.seed`` and the tree's point order — both
        deterministic — so every process that holds the same fitted
        model (fleet workers included) reconstructs an identical index
        and answers identically.
        """
        hbe = getattr(self, "_hbe", None)
        if hbe is None:
            config = self.config
            tree = self.tree
            hbe = HbeIndex(
                tree.points,
                tree.point_weights,
                self.kernel,
                tables=config.hbe_tables,
                width=config.hbe_bucket_width,
                depth=config.hbe_hash_depth,
                seed=config.seed,
                delta=config.hbe_delta if config.hbe_delta is not None else config.delta,
                min_samples=config.hbe_min_samples,
                batch_tables=config.hbe_batch_tables,
                sample_cost=config.hbe_sample_cost,
                margin=config.hbe_margin,
            )
            self._hbe = hbe
        return hbe

    def _hbe_decide(
        self,
        block: np.ndarray,
        threshold: float,
        stats: TraversalStats,
        budget: int | None,
        trace=None,
        trace_rows: np.ndarray | None = None,
    ):
        """Run the hbe sampling stage over one scaled block.

        Charges every table consulted into ``stats.node_expansions`` (at
        ``hbe_sample_cost`` units each) so expansion-rate calibration and
        deadline budgets stay coherent across engines, reports the
        block's outcomes to the metrics registry, and records traces for
        the queries the sampler settled. Fallback rows are *not* traced
        or counted here — the tree engine they re-run through does both.
        """
        config = self.config
        eta = self._rule_eta
        decision = self._ensure_hbe().decide_block(
            block, threshold, config.epsilon, eta=eta, budget=budget,
        )
        decided = decision.decided
        exhausted = decision.exhausted
        fallback = decision.fallback_rows
        settled = decided | exhausted
        stats.node_expansions += decision.samples_total * config.hbe_sample_cost
        stats.kernel_evaluations += decision.samples_total
        stats.queries += int(np.count_nonzero(settled))
        extras = stats.extras
        high_count = int(np.count_nonzero(decided & decision.high))
        low_count = int(np.count_nonzero(decided & ~decision.high))
        exhausted_count = int(np.count_nonzero(exhausted))
        for key, value in (
            ("hbe_samples", float(decision.samples_total)),
            ("hbe_decided_high", float(high_count)),
            ("hbe_decided_low", float(low_count)),
            ("hbe_fallbacks", float(fallback.size)),
            ("hbe_exhausted", float(exhausted_count)),
        ):
            if value:
                extras[key] = extras.get(key, 0.0) + value
        record_hbe_block(
            decision.samples[decided],
            decision.samples[fallback],
            decision.samples[exhausted],
        )
        record_traversal_block(
            "hbe",
            {"hbe_high": high_count, "hbe_low": low_count,
             "budget": exhausted_count},
            decision.samples[settled] * config.hbe_sample_cost,
            decision.samples_total,
        )
        if trace is not None and trace_rows is not None:
            cost = config.hbe_sample_cost
            for local in np.flatnonzero(settled):
                if decided[local]:
                    rule = "hbe_high" if decision.high[local] else "hbe_low"
                else:
                    rule = "budget"
                trace.stop(
                    int(trace_rows[local]), rule,
                    f_lower=float(max(decision.ci_lo[local] - eta, 0.0)),
                    f_upper=float(decision.ci_hi[local] + eta),
                    expansions=int(decision.samples[local]) * cost,
                )
        return decision

    def _resolve_n_jobs(self, n_jobs: int | None) -> int:
        n_jobs = self.config.n_jobs if n_jobs is None else n_jobs
        if n_jobs == 0 or n_jobs < -1:
            raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
        cores = os.cpu_count() or 1
        # More workers than cores is strictly slower for this CPU-bound
        # traversal (they time-slice one another plus pay fork/pickle
        # overhead), so a larger request clamps to the machine.
        return cores if n_jobs == -1 else min(n_jobs, cores)

    def measure_expansion_rate(
        self, queries: np.ndarray, repeats: int = 1, engine: str = "batch"
    ) -> tuple[float, int]:
        """Measure work units per second on this host for one engine.

        Runs the standard classify pipeline over ``queries`` (fresh
        stats, in-process, current config) ``repeats`` times and returns
        ``(expansions_per_second, expansions_observed)``. The serving
        layer uses the rate to translate a request deadline into a
        per-query ``max_node_expansions`` anytime budget (see
        :mod:`repro.serve.calibrate`); anything that needs a
        machine-specific cost model can reuse it.

        The measurement deliberately includes grid-cache shortcuts and
        pruning: the rate describes expansions per wall-clock second of
        the *real* pipeline, which is exactly the quantity a deadline
        must be converted through. The hbe engine charges its LSH
        samples into the same counter (at ``hbe_sample_cost`` units
        each), so passing ``engine="hbe"`` yields that pipeline's rate
        in the identical currency. A calibration workload whose queries
        all short-circuit yields ``expansions_observed == 0``; callers
        must treat the rate as unusable then (the serving layer falls
        back to a conservative floor).
        """
        self._require_fitted()
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        engine = self._resolve_engine(engine)
        matrix, invalid = self._as_query_matrix(queries)
        valid = matrix[~invalid]
        if valid.shape[0] == 0:
            return 0.0, 0
        scaled = self.kernel.scale(valid)
        stats = TraversalStats()
        start = time.perf_counter()
        for __ in range(repeats):
            self._classify_scaled_block(
                scaled, self.threshold.value, stats, engine=engine
            )
        elapsed = time.perf_counter() - start
        if stats.node_expansions <= 0 or elapsed <= 0.0:
            return 0.0, int(stats.node_expansions)
        return stats.node_expansions / elapsed, int(stats.node_expansions)

    def classify_batch(self, queries: np.ndarray) -> np.ndarray:
        """Classify a batch of queries with dual-tree block sharing.

        Builds a second k-d tree over the queries so spatially close
        queries share their traversal work (see
        :mod:`repro.core.dualtree`). Same ``±eps * t`` guarantee as
        :meth:`classify`; much faster when the batch is spatially
        coherent (e.g. classifying a grid of the plane for region
        visualization).
        """
        from repro.core.dualtree import dual_tree_classify

        self._require_fitted()
        queries, invalid = self._as_query_matrix(queries)
        if self.coreset_ is not None:
            # The dual-tree engine counts points (no weighted-node mass
            # or eta widening); under compression, route through the
            # batch engine instead of silently changing semantics.
            return self.classify(queries)
        if not invalid.any():
            return dual_tree_classify(
                self.tree, self.kernel, self.kernel.scale(queries),
                self.threshold.value, self.config.epsilon, self._stats,
            )
        labels = np.full(queries.shape[0], Label.UNCERTAIN, dtype=object)
        valid = np.flatnonzero(~invalid)
        labels[valid] = dual_tree_classify(
            self.tree, self.kernel, self.kernel.scale(queries[valid]),
            self.threshold.value, self.config.epsilon, self._stats,
        )
        return labels

    def predict(
        self,
        queries: np.ndarray,
        engine: str | None = None,
        n_jobs: int | None = None,
    ) -> np.ndarray:
        """Like :meth:`classify` but returning a plain int array (1 = HIGH).

        Flagged-invalid rows (``query_policy="flag"``) come back as
        ``int(Label.UNCERTAIN)`` (2).
        """
        self._require_fitted()
        queries, invalid = self._as_query_matrix(queries)
        if not invalid.any():
            return self._classify_mask(queries, engine, n_jobs).astype(np.int64)
        predictions = np.full(queries.shape[0], int(Label.UNCERTAIN), dtype=np.int64)
        valid = np.flatnonzero(~invalid)
        predictions[valid] = self._classify_mask(
            queries[valid], engine, n_jobs
        ).astype(np.int64)
        return predictions

    def decision_bounds(
        self, queries: np.ndarray, engine: str | None = None
    ) -> list[DensityBounds]:
        """The density intervals classification would act on.

        Coarse away from the threshold (the pruning rules stop early),
        ``eps * t``-tight near it. Under certified compression the
        traversal's intervals are widened by the applied ``eta`` so they
        remain valid for the *full-data* density; in best-effort mode
        they describe the compressed estimate.

        Flagged-invalid rows (``query_policy="flag"``) come back with the
        vacuous interval ``[0, inf)``.
        """
        self._require_fitted()
        queries, invalid = self._as_query_matrix(queries)
        if invalid.any():
            bounds = [DensityBounds(0.0, math.inf)] * queries.shape[0]
            valid = np.flatnonzero(~invalid)
            for row, item in zip(valid, self.decision_bounds(queries[valid], engine)):
                bounds[row] = item
            return bounds
        scaled = self.kernel.scale(queries)
        threshold = self.threshold.value
        eta = self._rule_eta
        # The hbe sampler answers band membership, not eps-precise
        # intervals; bounds requests route through the batch tree.
        if self._resolve_engine(engine) in ("batch", "hbe"):
            result = bound_densities(
                self.tree.flatten(), self.kernel, scaled, threshold, threshold,
                self.config.epsilon, self._stats,
                use_threshold_rule=self.config.use_threshold_rule,
                use_tolerance_rule=self.config.use_tolerance_rule,
                eta=eta,
                block_size=self.config.batch_block_size,
            )
            return [
                DensityBounds(max(lower - eta, 0.0), upper + eta)
                for lower, upper in zip(result.lower, result.upper)
            ]
        results: list[DensityBounds] = []
        for i in range(queries.shape[0]):
            bounds = bound_density(
                self.tree, self.kernel, scaled[i], threshold, threshold,
                self.config.epsilon, self._stats,
                use_threshold_rule=self.config.use_threshold_rule,
                use_tolerance_rule=self.config.use_tolerance_rule,
                eta=eta,
            )
            results.append(
                DensityBounds(max(bounds.lower - eta, 0.0), bounds.upper + eta)
            )
        return results

    def estimate_density(
        self, queries: np.ndarray, engine: str | None = None
    ) -> np.ndarray:
        """``eps * t``-precise density estimates (tolerance rule only).

        Unlike :meth:`classify`, this disables the threshold rule so the
        returned values are uniformly precise — the mode downstream
        statistical use cases (p-values, likelihood ratios) need.

        Flagged-invalid rows (``query_policy="flag"``) come back as NaN.
        """
        self._require_fitted()
        queries, invalid = self._as_query_matrix(queries)
        if invalid.any():
            densities = np.full(queries.shape[0], np.nan)
            valid = np.flatnonzero(~invalid)
            densities[valid] = self.estimate_density(queries[valid], engine)
            return densities
        scaled = self.kernel.scale(queries)
        threshold = self.threshold.value
        # With the applied eta shrinking the tolerance width to
        # eps*t - 2*eta, the compressed midpoint still lands within
        # eps*t/2 of the full-data density: width/2 + eta <= eps*t/2.
        # hbe routes through the batch tree: sampling cannot deliver
        # the tolerance rule's uniform precision.
        if self._resolve_engine(engine) in ("batch", "hbe"):
            result = bound_densities(
                self.tree.flatten(), self.kernel, scaled, threshold, threshold,
                self.config.epsilon, self._stats,
                use_threshold_rule=False,
                use_tolerance_rule=True,
                eta=self._rule_eta,
                block_size=self.config.batch_block_size,
            )
            return result.midpoint
        densities = np.empty(queries.shape[0])
        for i in range(queries.shape[0]):
            result = bound_density(
                self.tree, self.kernel, scaled[i], threshold, threshold,
                self.config.epsilon, self._stats,
                use_threshold_rule=False,
                use_tolerance_rule=True,
                eta=self._rule_eta,
            )
            densities[i] = result.midpoint
        return densities

    def _as_query_matrix(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Validate a query batch under the configured input policy.

        Returns ``(matrix, invalid_rows)`` — the shared hardening
        contract of :func:`repro.validation.as_query_matrix`, applied
        identically by both traversal engines: non-finite rows raise
        under ``query_policy="raise"`` and come back flagged (and
        zero-filled, never traversed) under ``"flag"``; shape and dtype
        errors always raise.
        """
        return as_query_matrix(
            queries, self.kernel.dim, policy=self.config.query_policy
        )

    def _require_fitted(self) -> None:
        if self._threshold is None:
            raise NotFittedError("this TKDCClassifier has not been fitted; call fit() first")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "fitted" if self.is_fitted else "unfitted"
        return f"TKDCClassifier(p={self.config.p}, eps={self.config.epsilon}, {state})"
