"""The two pruning rules that short-circuit density computation.

Paper Section 3.3:

- **Threshold rule** (Equation 9, the key contribution): stop as soon as
  the density interval provably lies on one side of the threshold —
  ``f_l > t_u (1 + eps)`` classifies HIGH, ``f_u < t_l (1 - eps)``
  classifies LOW.
- **Tolerance rule** (Equation 8, from Gray & Moore): stop once the
  interval is narrower than ``eps * t_l`` — the estimate is as precise
  as approximate classification requires.
"""

from __future__ import annotations

from enum import Enum


class PruneOutcome(Enum):
    """Why a density-bounding traversal stopped early."""

    THRESHOLD_HIGH = "threshold_high"
    THRESHOLD_LOW = "threshold_low"
    TOLERANCE = "tolerance"


def threshold_rule(
    f_lower: float,
    f_upper: float,
    t_lower: float,
    t_upper: float,
    epsilon: float,
    shift: float = 0.0,
    eta: float = 0.0,
) -> PruneOutcome | None:
    """Equation 9: classify immediately if the bounds clear the threshold.

    ``shift`` is an additive offset applied to the rule edges *after*
    the epsilon margin. When scoring training points, the threshold
    bounds live in self-contribution-corrected space while ``f`` bounds
    raw densities: the corrected-space rule ``f - sc > t_u (1 + eps)``
    becomes ``f > t_u (1 + eps) + sc``, i.e. ``shift = sc``. Folding the
    shift into the bounds *before* the multiplication instead would
    inflate the margin to ``eps * (t + sc)`` — catastrophic in high
    dimensions where ``K(0)/n`` dwarfs ``t``.

    ``eta`` widens the density interval to ``(f_l - eta, f_u + eta)``
    before the comparison. When the traversal runs over a coreset ``S``
    of the training set with ``sup |f_X - f_S| <= eta``, the widened
    bounds are valid bounds on the *full-data* density ``f_X``, so a
    prune here still certifies the label against ``f_X`` (the coreset
    layer's certification argument; see :mod:`repro.coresets`).
    """
    if f_lower > t_upper * (1.0 + epsilon) + shift + eta:
        return PruneOutcome.THRESHOLD_HIGH
    if f_upper < t_lower * (1.0 - epsilon) + shift - eta:
        return PruneOutcome.THRESHOLD_LOW
    return None


def tolerance_rule(
    f_lower: float,
    f_upper: float,
    tolerance_width: float,
) -> PruneOutcome | None:
    """Equation 8: stop once the interval is within ``eps * t_l``.

    ``tolerance_width`` is the absolute target width (``eps * t_l``).
    """
    if f_upper - f_lower < tolerance_width:
        return PruneOutcome.TOLERANCE
    return None


def check_rules(
    f_lower: float,
    f_upper: float,
    t_lower: float,
    t_upper: float,
    epsilon: float,
    use_threshold_rule: bool = True,
    use_tolerance_rule: bool = True,
    tolerance_reference: float | None = None,
    threshold_shift: float = 0.0,
    eta: float = 0.0,
) -> PruneOutcome | None:
    """Evaluate both rules in the paper's order (threshold first).

    ``tolerance_reference`` lets callers anchor the tolerance width at a
    threshold different from ``t_lower``, and ``threshold_shift`` adds a
    post-margin offset to the threshold rule's edges — together they
    express the self-contribution-corrected pruning the training scoring
    pass needs (see :func:`threshold_rule`).

    ``eta`` widens the density interval to ``(f_l - eta, f_u + eta)``
    before *both* rules: the threshold rule's edges move out by ``eta``
    and the tolerance rule's effective width target shrinks to
    ``eps * reference - 2 eta`` (a non-positive target simply means the
    tolerance rule never fires and near-threshold queries run the
    coreset tree to exhaustion).
    """
    if use_threshold_rule:
        outcome = threshold_rule(
            f_lower, f_upper, t_lower, t_upper, epsilon,
            shift=threshold_shift, eta=eta,
        )
        if outcome is not None:
            return outcome
    if use_tolerance_rule:
        reference = t_lower if tolerance_reference is None else tolerance_reference
        return tolerance_rule(f_lower, f_upper, epsilon * reference - 2.0 * eta)
    return None
