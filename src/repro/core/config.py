"""Configuration for the tKDC classifier (paper Table 1 plus Section 3.5/3.7
tuning constants).

Defaults follow the paper exactly: ``p = 0.01``, ``delta = 0.01``,
``epsilon = 0.01``, bandwidth factor ``b = 1``, bootstrap constants
``r0 = 200``, ``s0 = 20000``, ``h_backoff = 4``, ``h_buffer = 1.5``,
``h_growth = 4``, grid enabled for ``d <= 4``, trimmed-midpoint splits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.coresets.base import CORESET_METHODS
from repro.kernels.factory import KERNELS
from repro.robustness.faults import FaultPlan
from repro.robustness.guards import GUARD_POLICIES
from repro.validation import QUERY_POLICIES

#: Concrete engines: "batch" is the vectorized multi-query tree engine
#: (repro.core.batch_bounds), "per-query" the reference priority-queue
#: implementation (repro.core.bounds), "hbe" the hashing-based estimator
#: for high dimensions (repro.estimators.hbe) with tree fallback.
ENGINES = ("batch", "per-query", "hbe")

#: What ``config.engine`` accepts: any concrete engine, or "auto" to let
#: :func:`repro.estimators.select.select_engine` pick from the fitted
#: dimensionality (and, when serving, the measured expansion rate).
ENGINE_CHOICES = ENGINES + ("auto",)


@dataclass(frozen=True)
class TKDCConfig:
    """All knobs for :class:`repro.core.classifier.TKDCClassifier`.

    Attributes
    ----------
    p:
        Classification quantile: the fraction of the data expected below
        the threshold ``t(p)`` (paper Table 1, default 0.01).
    epsilon:
        Multiplicative classification tolerance: behaviour is undefined
        only for densities within ``±epsilon * t(p)`` of the threshold.
    delta:
        Acceptable failure probability for the sampled threshold bounds.
    bandwidth_scale:
        The paper's factor ``b`` multiplying Scott's-rule bandwidths.
    kernel:
        Kernel family name: ``"gaussian"`` (paper default),
        ``"epanechnikov"``, ``"uniform"``, ``"biweight"``, or
        ``"triweight"``.
    use_threshold_rule / use_tolerance_rule / use_grid:
        Pruning-rule toggles; disabling them reproduces the paper's
        factor/lesion analyses (Figures 12 and 16).
    grid_max_dim:
        The grid cache is disabled above this dimensionality (paper
        Section 3.7 disables it for ``d > 4``).
    split_rule:
        k-d tree split rule: ``"trimmed_midpoint"`` (the paper's
        equi-width rule) or ``"median"``.
    leaf_size:
        Maximum k-d tree leaf size.
    bootstrap_r0 / bootstrap_s0:
        Initial training-subsample and query-sample sizes for the
        threshold bootstrap (Algorithm 3). Both are clamped to the
        dataset size at fit time.
    h_backoff / h_buffer / h_growth:
        Algorithm 3's multiplicative constants: how aggressively invalid
        threshold bounds are widened, how much slack valid bounds get
        when carried to a larger training subsample, and how fast the
        training subsample grows.
    normalize_densities:
        When False, densities are left unnormalized (constant factor 1);
        needed above ~200 dimensions where the Gaussian constant
        underflows float64. Classification results are unaffected.
    refine_threshold:
        When True (Algorithm 1's default behaviour) fit() scores every
        training point and re-derives the threshold from the exact
        p-quantile of those bounded densities; when False the bootstrap's
        probabilistic bounds are used directly (cheaper, slightly looser).
    engine:
        Query engine: ``"batch"`` (default) vectorizes Algorithm 2
        across blocks of queries over the flattened tree;
        ``"per-query"`` is the reference priority-queue implementation
        (same labels and prune outcomes as batch); ``"hbe"`` is the
        hashing-based estimator (:mod:`repro.estimators.hbe`) — LSH
        importance sampling that answers a query as soon as its
        confidence interval clears the threshold band and falls back
        to the batch tree engine otherwise; ``"auto"`` picks hbe vs.
        batch from the fitted dimensionality (``hbe_auto_dim``) and,
        in the serving stack, the measured expansion rate.
    hbe_tables:
        Number of E2LSH tables (= max density samples per query) the
        hbe engine builds.
    hbe_hash_depth:
        Concatenated hashes per table (E2LSH ``k``); ``None`` (default)
        auto-tunes the smallest depth whose expected query-bucket
        occupancy falls below ~8 points, which keeps estimator variance
        flat across dimensionalities.
    hbe_bucket_width:
        LSH bucket width ``w`` in bandwidth-scaled space.
    hbe_delta:
        Per-query failure probability of the hbe confidence interval;
        CI-decided labels are correct at level ``1 - hbe_delta`` (the
        tree fallback path stays deterministic). ``None`` (default)
        reuses ``delta``.
    hbe_min_samples:
        Tables consulted before the first decision attempt (floor on
        the normal-CI sample count).
    hbe_batch_tables:
        Tables sampled between decision checks; larger chunks amortize
        lookup overhead, smaller ones exit earlier.
    hbe_sample_cost:
        ``max_node_expansions`` budget units charged per table
        consulted, so anytime deadlines price hbe sampling and tree
        expansion in one currency.
    hbe_margin:
        Decision robustness factor: besides the CI clearing the band,
        the point estimate must clear it by this multiple. Guards the
        heavy-tailed sampler against variance underestimation; queries
        within the margin fall back to the tree.
    hbe_auto_dim:
        ``engine="auto"`` picks hbe at or above this dimensionality.
    hbe_auto_expansion_fraction:
        Below ``hbe_auto_dim``, auto still switches to hbe when a
        measured traversal expands at least this fraction of the index
        per query (pruning is not working).
    n_jobs:
        Worker processes for ``classify`` with the batch engine. 1
        (default) stays in-process; -1 uses every available core.
        Requests are clamped to the machine's core count, and blocks
        below a spawn-amortization floor (~4k queries) run serially
        regardless — a pool only pays off when there is enough work to
        amortize forking and result transport.
    batch_block_size:
        Queries traversed per vectorized block by the batch engine;
        bounds peak frontier memory. The default follows the measured
        optimum in ``benchmarks/bench_batch_traversal.py``'s block-size
        sweep.
    coreset:
        When set, ``fit`` compresses the training set with the named
        construction (``"uniform"`` or ``"merge-reduce"``, see
        :mod:`repro.coresets`) and classifies against the sketch. The
        sketch's error certificate ``eta`` widens the density bounds
        before both pruning rules whenever it is small enough to keep
        (``eta < epsilon * t_lower``); otherwise classification is
        best-effort against the compressed estimate.
    coreset_fraction:
        Target coreset size as a fraction of ``n`` (default 0.05).
        Ignored when ``coreset_size`` is set.
    coreset_size:
        Absolute target coreset size ``k``; overrides
        ``coreset_fraction`` when set.
    coreset_delta:
        Failure probability for probabilistic coreset certificates
        (the uniform construction's Hoeffding bound).
    seed:
        Seed for the bootstrap's subsampling RNG. Classification itself
        is deterministic (paper Section 2.3).
    guard_policy:
        Runtime invariant-guard policy for both traversal engines and
        the threshold bootstrap (see :mod:`repro.robustness.guards`):
        ``"repair"`` (default) widens violated bounds to their valid
        envelope and counts the event, ``"warn"`` additionally emits a
        :class:`~repro.robustness.guards.GuardWarning`, ``"raise"``
        fails fast with
        :class:`~repro.robustness.guards.InvariantViolation`, ``"off"``
        disables the checks.
    max_node_expansions:
        Anytime budget: per-query cap on traversal node expansions.
        A query that exhausts it stops with its current (valid, possibly
        vacuous) bounds, a best-effort label, and ``degraded=True`` in
        :meth:`~repro.core.classifier.TKDCClassifier.classify_detailed`.
        ``None`` (default) leaves traversal unbounded. Applies to query
        classification, not to ``fit``.
    query_policy:
        What ``classify``/``predict``/``estimate_density`` do with
        non-finite query rows: ``"raise"`` (default) rejects the batch
        with ``ValueError``; ``"flag"`` classifies the finite rows and
        marks the bad ones degraded/UNCERTAIN instead. Shape and dtype
        errors always raise — they cannot be flagged row-wise.
    bootstrap_accept_widened:
        When the threshold bootstrap exhausts its iteration cap, accept
        the last (finite) widened interval instead of raising
        :class:`~repro.core.threshold.BootstrapExhausted`; fit then
        completes with a looser-than-requested bracket.
    worker_timeout / worker_retries / worker_backoff:
        Supervision policy for multiprocess classify (see
        :mod:`repro.robustness.supervisor`): per-chunk collection
        deadline in seconds (``None`` disables), re-dispatches per chunk
        before the in-process serial fallback, and the base backoff
        slept before a retry round.
    fault_plan:
        Deterministic fault-injection schedule
        (:class:`~repro.robustness.faults.FaultPlan`) for robustness
        testing; ``None`` (the default, and the only sensible production
        value) injects nothing.
    """

    p: float = 0.01
    epsilon: float = 0.01
    delta: float = 0.01
    bandwidth_scale: float = 1.0
    kernel: str = "gaussian"
    use_threshold_rule: bool = True
    use_tolerance_rule: bool = True
    use_grid: bool = True
    grid_max_dim: int = 4
    split_rule: str = "trimmed_midpoint"
    leaf_size: int = 32
    bootstrap_r0: int = 200
    bootstrap_s0: int = 20000
    h_backoff: float = 4.0
    h_buffer: float = 1.5
    h_growth: float = 4.0
    normalize_densities: bool = True
    refine_threshold: bool = True
    engine: str = "batch"
    hbe_tables: int = 64
    hbe_hash_depth: int | None = None
    hbe_bucket_width: float = 3.0
    hbe_delta: float | None = None
    hbe_min_samples: int = 16
    hbe_batch_tables: int = 8
    hbe_sample_cost: int = 1
    hbe_margin: float = 4.0
    hbe_auto_dim: int = 16
    hbe_auto_expansion_fraction: float = 0.25
    n_jobs: int = 1
    batch_block_size: int = 2048
    coreset: str | None = None
    coreset_fraction: float = 0.05
    coreset_size: int | None = None
    coreset_delta: float = 0.05
    seed: int | None = 0
    guard_policy: str = "repair"
    max_node_expansions: int | None = None
    query_policy: str = "raise"
    bootstrap_accept_widened: bool = False
    worker_timeout: float | None = 120.0
    worker_retries: int = 2
    worker_backoff: float = 0.05
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {self.p}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if self.bandwidth_scale <= 0:
            raise ValueError(f"bandwidth_scale must be positive, got {self.bandwidth_scale}")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from {sorted(KERNELS)}"
            )
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.bootstrap_r0 < 2:
            raise ValueError(f"bootstrap_r0 must be >= 2, got {self.bootstrap_r0}")
        if self.bootstrap_s0 < 2:
            raise ValueError(f"bootstrap_s0 must be >= 2, got {self.bootstrap_s0}")
        if self.h_backoff <= 1.0:
            raise ValueError(f"h_backoff must exceed 1, got {self.h_backoff}")
        if self.h_buffer < 1.0:
            raise ValueError(f"h_buffer must be >= 1, got {self.h_buffer}")
        if self.h_growth <= 1.0:
            raise ValueError(f"h_growth must exceed 1, got {self.h_growth}")
        if self.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_CHOICES}"
            )
        if self.hbe_tables < 1:
            raise ValueError(f"hbe_tables must be >= 1, got {self.hbe_tables}")
        if self.hbe_hash_depth is not None and self.hbe_hash_depth < 1:
            raise ValueError(
                f"hbe_hash_depth must be >= 1 or None, got {self.hbe_hash_depth}"
            )
        if self.hbe_bucket_width <= 0:
            raise ValueError(
                f"hbe_bucket_width must be positive, got {self.hbe_bucket_width}"
            )
        if self.hbe_delta is not None and not 0.0 < self.hbe_delta < 1.0:
            raise ValueError(
                f"hbe_delta must be in (0, 1) or None, got {self.hbe_delta}"
            )
        if self.hbe_min_samples < 1:
            raise ValueError(
                f"hbe_min_samples must be >= 1, got {self.hbe_min_samples}"
            )
        if self.hbe_batch_tables < 1:
            raise ValueError(
                f"hbe_batch_tables must be >= 1, got {self.hbe_batch_tables}"
            )
        if self.hbe_sample_cost < 1:
            raise ValueError(
                f"hbe_sample_cost must be >= 1, got {self.hbe_sample_cost}"
            )
        if self.hbe_margin < 1.0:
            raise ValueError(
                f"hbe_margin must be >= 1, got {self.hbe_margin}"
            )
        if self.hbe_auto_dim < 1:
            raise ValueError(
                f"hbe_auto_dim must be >= 1, got {self.hbe_auto_dim}"
            )
        if not 0.0 < self.hbe_auto_expansion_fraction <= 1.0:
            raise ValueError(
                "hbe_auto_expansion_fraction must be in (0, 1], "
                f"got {self.hbe_auto_expansion_fraction}"
            )
        if self.n_jobs == 0 or self.n_jobs < -1:
            raise ValueError(f"n_jobs must be >= 1 or -1, got {self.n_jobs}")
        if self.batch_block_size < 1:
            raise ValueError(
                f"batch_block_size must be >= 1, got {self.batch_block_size}"
            )
        if self.coreset is not None and self.coreset not in CORESET_METHODS:
            raise ValueError(
                f"unknown coreset method {self.coreset!r}; "
                f"choose from {CORESET_METHODS} or None"
            )
        if not 0.0 < self.coreset_fraction <= 1.0:
            raise ValueError(
                f"coreset_fraction must be in (0, 1], got {self.coreset_fraction}"
            )
        if self.coreset_size is not None and self.coreset_size < 1:
            raise ValueError(
                f"coreset_size must be >= 1, got {self.coreset_size}"
            )
        if not 0.0 < self.coreset_delta < 1.0:
            raise ValueError(
                f"coreset_delta must be in (0, 1), got {self.coreset_delta}"
            )
        if self.guard_policy not in GUARD_POLICIES:
            raise ValueError(
                f"unknown guard_policy {self.guard_policy!r}; "
                f"choose from {GUARD_POLICIES}"
            )
        if self.max_node_expansions is not None and self.max_node_expansions < 1:
            raise ValueError(
                f"max_node_expansions must be >= 1 or None, "
                f"got {self.max_node_expansions}"
            )
        if self.query_policy not in QUERY_POLICIES:
            raise ValueError(
                f"unknown query_policy {self.query_policy!r}; "
                f"choose from {QUERY_POLICIES}"
            )
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ValueError(
                f"worker_timeout must be positive or None, got {self.worker_timeout}"
            )
        if self.worker_retries < 0:
            raise ValueError(f"worker_retries must be >= 0, got {self.worker_retries}")
        if self.worker_backoff < 0:
            raise ValueError(f"worker_backoff must be >= 0, got {self.worker_backoff}")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValueError("fault_plan must be a FaultPlan or None")

    def with_updates(self, **changes: object) -> "TKDCConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]
