"""tKDC core: threshold-pruned kernel density classification.

This package implements the paper's primary contribution:

- :mod:`repro.core.bounds` — Algorithm 2, priority-queue density bounding
  over the k-d tree with threshold and tolerance pruning rules;
- :mod:`repro.core.batch_bounds` — the vectorized multi-query batch
  traversal engine over the flattened tree;
- :mod:`repro.core.threshold` — Algorithm 3, the bootstrapped quantile
  threshold estimator;
- :mod:`repro.core.classifier` — Algorithm 1, the end-to-end
  :class:`~repro.core.classifier.TKDCClassifier`;
- :mod:`repro.core.grid` — the Section 3.7 hypergrid cache for dense
  inliers;
- :mod:`repro.core.config` / :mod:`repro.core.stats` — configuration and
  instrumentation.
"""

from repro.core.bands import BandClassifier
from repro.core.batch_bounds import BatchBoundResult, bound_densities
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.core.dualtree import dual_tree_classify
from repro.core.incremental import IncrementalTKDC
from repro.core.result import Label, ThresholdEstimate
from repro.core.stats import TraversalStats

__all__ = [
    "TKDCClassifier",
    "TKDCConfig",
    "BatchBoundResult",
    "bound_densities",
    "Label",
    "ThresholdEstimate",
    "TraversalStats",
    "BandClassifier",
    "dual_tree_classify",
    "IncrementalTKDC",
]
