"""Incremental density classification over a growing dataset.

The paper's classifier is batch-trained; production pipelines (e.g. the
MacroBase-style explanation engines the paper cites) see data arrive
continuously. This wrapper keeps tKDC usable in that setting:

- new points are buffered and their kernel contributions folded into
  every classification *exactly* (the buffer is small, so a vectorized
  brute-force sum over it is cheap);
- the pruning threshold for the indexed part is algebraically shifted
  so the decision is against the combined density — the accuracy
  guarantee relative to the current model's threshold is preserved;
- once the buffer outgrows ``refit_fraction`` of the indexed set, the
  model is retrained from scratch (new bandwidth, index, and threshold,
  per the paper's training procedure).

The one approximation is *threshold staleness*: between refits the
quantile threshold is the one estimated at the last fit. Density
estimates themselves always include every inserted point.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import bound_density
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.core.result import Label
from repro.core.stats import TraversalStats


class IncrementalTKDC:
    """tKDC over a stream of inserts with automatic refits.

    Parameters
    ----------
    config:
        Configuration forwarded to the underlying
        :class:`~repro.core.classifier.TKDCClassifier`.
    refit_fraction:
        Retrain once the buffer exceeds this fraction of the indexed
        point count (default 0.25).

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> model = IncrementalTKDC(TKDCConfig(p=0.05, seed=0))
    >>> model.fit(rng.normal(size=(2000, 2)))           # doctest: +ELLIPSIS
    <repro.core.incremental.IncrementalTKDC object at ...>
    >>> model.insert(rng.normal(size=(100, 2)))
    >>> model.classify([[0.0, 0.0]])[0].name
    'HIGH'
    """

    def __init__(
        self, config: TKDCConfig | None = None, refit_fraction: float = 0.25
    ) -> None:
        if refit_fraction <= 0:
            raise ValueError(f"refit_fraction must be positive, got {refit_fraction}")
        self.config = config or TKDCConfig()
        self.refit_fraction = refit_fraction
        self._classifier: TKDCClassifier | None = None
        self._indexed: np.ndarray | None = None
        self._buffer: list[np.ndarray] = []
        self._buffer_count = 0
        self.refits = 0

    @property
    def classifier(self) -> TKDCClassifier:
        """The currently fitted underlying model."""
        if self._classifier is None:
            raise RuntimeError("IncrementalTKDC is not fitted; call fit() first")
        return self._classifier

    @property
    def n_indexed(self) -> int:
        """Points inside the current spatial index."""
        return 0 if self._indexed is None else self._indexed.shape[0]

    @property
    def n_buffered(self) -> int:
        """Points inserted since the last (re)fit."""
        return self._buffer_count

    @property
    def n_total(self) -> int:
        """All points the model currently represents."""
        return self.n_indexed + self.n_buffered

    @property
    def stats(self) -> TraversalStats:
        return self.classifier.stats

    def fit(self, data: np.ndarray) -> "IncrementalTKDC":
        """(Re)train from scratch on ``data``; clears the buffer."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self._classifier = TKDCClassifier(self.config).fit(data)
        self._indexed = data
        self._buffer = []
        self._buffer_count = 0
        return self

    def insert(self, points: np.ndarray) -> None:
        """Add new observations; refits automatically when due."""
        if self._classifier is None or self._indexed is None:
            raise RuntimeError("IncrementalTKDC is not fitted; call fit() first")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self._indexed.shape[1]:
            raise ValueError(
                f"insert dimensionality {points.shape[1]} does not match "
                f"the model dimensionality {self._indexed.shape[1]}"
            )
        self._buffer.append(points)
        self._buffer_count += points.shape[0]
        if self._buffer_count > self.refit_fraction * self.n_indexed:
            merged = np.concatenate([self._indexed, *self._buffer])
            self.refits += 1
            self.fit(merged)

    def classify(self, queries: np.ndarray) -> np.ndarray:
        """HIGH/LOW labels against the combined (indexed + buffered) density.

        For each query the buffered contribution is summed exactly and
        the indexed part is bounded with a correspondingly shifted
        threshold, so the decision is equivalent to classifying the full
        current dataset's density against the model threshold.
        """
        clf = self.classifier
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        kernel = clf.kernel
        scaled = kernel.scale(queries)
        threshold = clf.threshold.value
        epsilon = clf.config.epsilon
        n_indexed = self.n_indexed
        n_total = self.n_total
        buffer = (
            kernel.scale(np.concatenate(self._buffer)) if self._buffer else None
        )

        labels = np.empty(queries.shape[0], dtype=object)
        for i in range(queries.shape[0]):
            query = scaled[i]
            buffer_sum = 0.0
            if buffer is not None:
                buffer_sum = kernel.sum_at(buffer, query)
                clf.stats.kernel_evaluations += buffer.shape[0]
            # f_total = (n_indexed * f_idx + buffer_sum) / n_total > t
            #   <=>  f_idx > (t * n_total - buffer_sum) / n_indexed.
            shifted = (threshold * n_total - buffer_sum) / n_indexed
            if shifted <= 0.0:
                # The buffer alone already pushes the density over t.
                labels[i] = Label.HIGH
                clf.stats.queries += 1
                continue
            result = bound_density(
                clf.tree, kernel, query, shifted, shifted, epsilon, clf.stats,
                tolerance_reference=threshold,
            )
            labels[i] = Label.HIGH if result.midpoint > shifted else Label.LOW
        return labels

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Int labels (1 = HIGH) for :meth:`classify`."""
        return np.array([int(label) for label in self.classify(queries)], dtype=np.int64)
