"""Incremental density classification over a growing dataset.

The paper's classifier is batch-trained; production pipelines (e.g. the
MacroBase-style explanation engines the paper cites) see data arrive
continuously. This wrapper keeps tKDC usable in that setting:

- new points are buffered and their kernel contributions folded into
  every classification *exactly* (the buffer is small, so a vectorized
  brute-force sum over it is cheap);
- the pruning threshold for the indexed part is algebraically shifted
  so the decision is against the combined density — the accuracy
  guarantee relative to the current model's threshold is preserved;
- once the buffer outgrows ``refit_fraction`` of the indexed set, the
  model is retrained from scratch (new bandwidth, index, and threshold,
  per the paper's training procedure) — unless ``auto_refit=False``,
  in which case refits are owned by an external controller (the
  streaming pipeline's drift-triggered background refit,
  :mod:`repro.streaming.pipeline`) which installs new models through
  :meth:`adopt`.

The one approximation is *threshold staleness*: between refits the
quantile threshold is the one estimated at the last fit. Density
estimates themselves always include every inserted point.

Classification honours the full robustness contract of
:class:`~repro.core.classifier.TKDCClassifier`: queries are validated
under ``config.query_policy``, traversals run under
``config.guard_policy`` and ``config.max_node_expansions``, injected
fault plans fire, and budget-degraded straddling queries surface as
``Label.UNCERTAIN`` instead of a silently best-effort HIGH/LOW.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import bound_density
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.core.result import ClassificationResult, Label
from repro.core.stats import TraversalStats

#: Initial preallocated buffer rows (grown geometrically afterwards).
_MIN_BUFFER_CAPACITY = 256


class IncrementalTKDC:
    """tKDC over a stream of inserts with automatic refits.

    Parameters
    ----------
    config:
        Configuration forwarded to the underlying
        :class:`~repro.core.classifier.TKDCClassifier`.
    refit_fraction:
        Retrain once the buffer exceeds this fraction of the indexed
        point count (default 0.25).
    auto_refit:
        When False, :meth:`insert` never retrains; refits are driven
        externally (see :meth:`adopt`). The exact-buffer answer path is
        unaffected.

    Example
    -------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> model = IncrementalTKDC(TKDCConfig(p=0.05, seed=0))
    >>> model.fit(rng.normal(size=(2000, 2)))           # doctest: +ELLIPSIS
    <repro.core.incremental.IncrementalTKDC object at ...>
    >>> model.insert(rng.normal(size=(100, 2)))
    >>> model.classify([[0.0, 0.0]])[0].name
    'HIGH'
    """

    def __init__(
        self,
        config: TKDCConfig | None = None,
        refit_fraction: float = 0.25,
        auto_refit: bool = True,
    ) -> None:
        if refit_fraction <= 0:
            raise ValueError(f"refit_fraction must be positive, got {refit_fraction}")
        self.config = config or TKDCConfig()
        self.refit_fraction = refit_fraction
        self.auto_refit = auto_refit
        self._classifier: TKDCClassifier | None = None
        self._indexed: np.ndarray | None = None
        self._n_indexed = 0
        # Preallocated insert buffer: rows [0, _buffer_count) are live.
        # Grown geometrically so k inserts cost O(total rows) amortized
        # instead of the O(k * total) of per-classify concatenation.
        self._buffer_array: np.ndarray | None = None
        self._buffer_count = 0
        self.refits = 0
        #: Bumped by :meth:`adopt`; lets external controllers tell which
        #: model generation produced an answer.
        self.generation = 0

    @property
    def classifier(self) -> TKDCClassifier:
        """The currently fitted underlying model."""
        if self._classifier is None:
            raise RuntimeError("IncrementalTKDC is not fitted; call fit() first")
        return self._classifier

    @property
    def n_indexed(self) -> int:
        """Points the current spatial index represents.

        After :meth:`adopt` this is the population count the adopted
        model was trained to represent (its index may hold a weighted
        coreset of fewer rows); the shifted-threshold algebra only needs
        the represented count.
        """
        return self._n_indexed

    @property
    def n_buffered(self) -> int:
        """Points inserted since the last (re)fit."""
        return self._buffer_count

    @property
    def n_total(self) -> int:
        """All points the model currently represents."""
        return self.n_indexed + self.n_buffered

    @property
    def stats(self) -> TraversalStats:
        return self.classifier.stats

    @property
    def buffer_view(self) -> np.ndarray:
        """Zero-copy view of the live buffered rows."""
        if self._buffer_array is None or self._buffer_count == 0:
            return np.empty((0, self.classifier.kernel.dim))
        return self._buffer_array[: self._buffer_count]

    def fit(self, data: np.ndarray) -> "IncrementalTKDC":
        """(Re)train from scratch on ``data``; clears the buffer."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self._classifier = TKDCClassifier(self.config).fit(data)
        self._indexed = data
        self._n_indexed = data.shape[0]
        self._buffer_array = None
        self._buffer_count = 0
        return self

    def adopt(
        self,
        classifier: TKDCClassifier,
        n_indexed: int,
        keep_last: int = 0,
        generation: int | None = None,
    ) -> "IncrementalTKDC":
        """Swap in an externally trained model (verified hot swap target).

        The streaming pipeline refits in a crash-isolated subprocess and
        ships the product through the sha256-verified reload path; the
        surviving classifier lands here. ``n_indexed`` is the number of
        stream points the new model represents (its threshold's
        population), and ``keep_last`` retains that many of the *most
        recent* buffered rows — the points that arrived while the refit
        was running and are therefore not in the new model.

        ``generation`` installs an absolute generation number instead of
        incrementing — WAL recovery uses it so a restarted daemon resumes
        the pre-crash accounting generation rather than silently starting
        over from 1.

        Raw training data is not retained, so automatic refits are
        unavailable after adoption (the external controller owns them).
        """
        if not classifier.is_fitted:
            raise ValueError("adopt() requires a fitted classifier")
        if n_indexed < 1:
            raise ValueError(f"n_indexed must be >= 1, got {n_indexed}")
        if generation is not None and generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        if not 0 <= keep_last <= self._buffer_count:
            raise ValueError(
                f"keep_last must be in [0, {self._buffer_count}], got {keep_last}"
            )
        if self._buffer_array is not None and keep_last:
            start = self._buffer_count - keep_last
            if start:
                # Slide the retained tail to the front of the same
                # preallocated array (no reallocation on swap).
                self._buffer_array[:keep_last] = self._buffer_array[
                    start : self._buffer_count
                ].copy()
        self._classifier = classifier
        self._indexed = None
        self._n_indexed = int(n_indexed)
        self._buffer_count = keep_last
        if generation is None:
            self.generation += 1
        else:
            self.generation = int(generation)
        return self

    def insert(self, points: np.ndarray) -> None:
        """Add new observations; refits automatically when due."""
        if self._classifier is None:
            raise RuntimeError("IncrementalTKDC is not fitted; call fit() first")
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        dim = self._classifier.kernel.dim
        if points.ndim != 2 or points.shape[1] != dim:
            raise ValueError(
                f"insert dimensionality {points.shape[-1]} does not match "
                f"the model dimensionality {dim}"
            )
        self._append_to_buffer(points)
        if (
            self.auto_refit
            and self._indexed is not None
            and self._buffer_count > self.refit_fraction * self.n_indexed
        ):
            merged = np.concatenate([self._indexed, self.buffer_view])
            self.refits += 1
            self.fit(merged)

    def _append_to_buffer(self, points: np.ndarray) -> None:
        rows, dim = points.shape
        needed = self._buffer_count + rows
        if self._buffer_array is None:
            capacity = max(2 * rows, _MIN_BUFFER_CAPACITY)
            self._buffer_array = np.empty((capacity, dim))
        elif needed > self._buffer_array.shape[0]:
            capacity = max(2 * needed, 2 * self._buffer_array.shape[0])
            grown = np.empty((capacity, dim))
            grown[: self._buffer_count] = self._buffer_array[: self._buffer_count]
            self._buffer_array = grown
        self._buffer_array[self._buffer_count : needed] = points
        self._buffer_count = needed

    def classify_detailed(self, queries: np.ndarray) -> ClassificationResult:
        """Combined-density classification with degradation diagnostics.

        For each query the buffered contribution is summed exactly and
        the indexed part is bounded with a correspondingly shifted
        threshold, so the decision is equivalent to classifying the full
        current dataset's density against the model threshold. The
        returned bounds are on the *combined* density and compare
        against :attr:`ClassificationResult.threshold` exactly like
        :meth:`TKDCClassifier.classify_detailed` — the serving daemon
        routes streaming requests through this path with the same
        payload shape as batch ones.
        """
        clf = self.classifier
        matrix, invalid = clf._as_query_matrix(queries)
        config = clf.config
        kernel = clf.kernel
        threshold = clf.threshold.value
        epsilon = config.epsilon
        eta = clf._rule_eta
        n_indexed = self.n_indexed
        n_total = self.n_total

        n_queries = matrix.shape[0]
        # np.full would coerce the IntEnum to a plain int on the way in;
        # slice-assignment into an object array keeps the Label objects.
        labels = np.empty(n_queries, dtype=object)
        labels[:] = Label.LOW
        lower = np.zeros(n_queries)
        upper = np.full(n_queries, np.inf)
        # Invalid rows keep the vacuous [0, inf) bounds and count as
        # degraded, so resolved_labels() surfaces them as UNCERTAIN.
        degraded = invalid.copy()
        valid_rows = np.flatnonzero(~invalid)
        if valid_rows.size == 0:
            return ClassificationResult(
                labels=labels, lower=lower, upper=upper,
                degraded=degraded, invalid=invalid, threshold=threshold,
            )
        scaled = kernel.scale(matrix[valid_rows])
        buffer = (
            kernel.scale(self.buffer_view) if self._buffer_count else None
        )
        faults = clf._traversal_injector()
        for local, row in enumerate(valid_rows):
            query = scaled[local]
            buffer_sum = 0.0
            if buffer is not None:
                buffer_sum = kernel.sum_at(buffer, query)
                clf.stats.kernel_evaluations += buffer.shape[0]
            # f_total = (n_indexed * f_idx + buffer_sum) / n_total > t
            #   <=>  f_idx > (t * n_total - buffer_sum) / n_indexed.
            shifted = (threshold * n_total - buffer_sum) / n_indexed
            if shifted <= 0.0:
                # The buffer alone already pushes the density over t;
                # the indexed part can only add to it.
                labels[row] = Label.HIGH
                lower[row] = buffer_sum / n_total
                clf.stats.queries += 1
                continue
            result = bound_density(
                clf.tree, kernel, query, shifted, shifted, epsilon, clf.stats,
                use_threshold_rule=config.use_threshold_rule,
                use_tolerance_rule=config.use_tolerance_rule,
                tolerance_reference=threshold,
                eta=eta,
                max_expansions=config.max_node_expansions,
                guard_policy=config.guard_policy,
                faults=faults,
            )
            lo = max(result.lower - eta, 0.0)
            up = result.upper + eta
            # Map the indexed-part bounds back to combined-density space
            # (the same affine shift, so straddle-vs-threshold tests are
            # equivalent to the shifted-threshold decision).
            lower[row] = (n_indexed * lo + buffer_sum) / n_total
            upper[row] = (n_indexed * up + buffer_sum) / n_total
            degraded[row] = result.degraded
            labels[row] = (
                Label.HIGH if result.midpoint > shifted else Label.LOW
            )
        return ClassificationResult(
            labels=labels, lower=lower, upper=upper,
            degraded=degraded, invalid=invalid, threshold=threshold,
        )

    def classify(self, queries: np.ndarray) -> np.ndarray:
        """Labels against the combined (indexed + buffered) density.

        Same contract as :meth:`TKDCClassifier.classify`: returns an
        object array of :class:`~repro.core.result.Label`. Rows flagged
        invalid under ``query_policy="flag"`` and budget-degraded
        traversals still straddling their (shifted) threshold come back
        ``Label.UNCERTAIN``.
        """
        return self.classify_detailed(queries).resolved_labels()

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Int64 labels for :meth:`classify` (1 = HIGH, UNCERTAIN = 2).

        Same contract as :meth:`TKDCClassifier.predict`.
        """
        return np.array(
            [int(label) for label in self.classify(queries)], dtype=np.int64
        )
