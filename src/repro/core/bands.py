"""Multi-threshold density classification (nested contour bands).

The paper's visualization use case (Section 2.1, Figure 2a) usually
wants *several* nested level sets at once — e.g. the 10%/50%/90%
quantile contours of a distribution. Running tKDC once per threshold
repeats most of the traversal work; this module generalizes the
threshold pruning rule to a ladder of thresholds so a single traversal
assigns each query to its density *band*.

For thresholds ``t_1 < t_2 < ... < t_k``, a query's band is
``#{i : f(x) > t_i}`` (0 = below all thresholds, k = above all). The
traversal stops as soon as the density interval ``[f_l, f_u]`` clears
every threshold on one side or the other — i.e. the band is certain —
or the interval is narrower than ``eps * t_1``. The accuracy guarantee
is the natural generalization of Problem 1: a query can only be
misbanded across a threshold its exact density lies within
``±eps * t_i`` of.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Sequence

import numpy as np

from repro.core.bounds import _node_bounds
from repro.core.classifier import TKDCClassifier
from repro.core.stats import TraversalStats
from repro.index.kdtree import KDTree
from repro.kernels.base import Kernel
from repro.quantile.order_stats import quantile_of_sorted


def band_of(density: float, thresholds: Sequence[float]) -> int:
    """The band index of an exact density under a threshold ladder."""
    return int(np.sum(density > np.asarray(thresholds)))


def bound_band(
    tree: KDTree,
    kernel: Kernel,
    query: np.ndarray,
    thresholds: np.ndarray,
    epsilon: float,
    stats: TraversalStats,
) -> int:
    """Assign one scaled query to its density band (single traversal).

    ``thresholds`` must be ascending and strictly positive. Returns the
    band index in ``[0, len(thresholds)]``.
    """
    upper_edges = thresholds * (1.0 + epsilon)
    lower_edges = thresholds * (1.0 - epsilon)
    tolerance_width = epsilon * float(thresholds[0])
    inv_n = 1.0 / tree.size
    counter = itertools.count()
    stats.queries += 1

    lower, upper = _node_bounds(tree.root, query, kernel, inv_n)
    f_lower, f_upper = lower, upper
    frontier = [(-(upper - lower), next(counter), tree.root, lower, upper)]

    while frontier:
        # Thresholds provably below the density vs. provably above it.
        band_floor = int(np.searchsorted(upper_edges, f_lower, side="left"))
        band_ceiling = len(thresholds) - int(
            len(lower_edges) - np.searchsorted(lower_edges, f_upper, side="right")
        )
        if band_floor >= band_ceiling:
            stats.threshold_prunes_high += 1
            return band_floor
        if f_upper - f_lower < tolerance_width:
            stats.tolerance_prunes += 1
            return band_of(0.5 * (f_lower + f_upper), thresholds)

        __, __, node, node_lower, node_upper = heapq.heappop(frontier)
        f_lower -= node_lower
        f_upper -= node_upper
        if node.is_leaf:
            exact = kernel.sum_at(tree.leaf_points(node), query) * inv_n
            stats.kernel_evaluations += node.count
            f_lower += exact
            f_upper += exact
        else:
            stats.node_expansions += 1
            for child in node.children():
                child_lower, child_upper = _node_bounds(child, query, kernel, inv_n)
                f_lower += child_lower
                f_upper += child_upper
                if child_upper - child_lower > 0.0:
                    heapq.heappush(
                        frontier,
                        (-(child_upper - child_lower), next(counter), child,
                         child_lower, child_upper),
                    )

    stats.exhausted += 1
    return band_of(0.5 * (f_lower + f_upper), thresholds)


class BandClassifier:
    """Nested level-set classification on top of a fitted tKDC model.

    Parameters
    ----------
    classifier:
        A fitted :class:`~repro.core.classifier.TKDCClassifier` trained
        with ``refine_threshold=True`` (the default) — the band
        thresholds are derived from its training scores at no extra
        density-evaluation cost.
    quantiles:
        Ascending band quantiles, e.g. ``(0.1, 0.5, 0.9)`` for the
        paper-style 10/50/90% contours.

    Example
    -------
    >>> import numpy as np
    >>> from repro import TKDCClassifier, TKDCConfig
    >>> from repro.core.bands import BandClassifier
    >>> data = np.random.default_rng(0).normal(size=(3000, 2))
    >>> clf = TKDCClassifier(TKDCConfig(seed=0)).fit(data)
    >>> bands = BandClassifier(clf, (0.1, 0.5, 0.9))
    >>> int(bands.classify_bands([[0.0, 0.0]])[0])   # densest band
    3
    """

    def __init__(self, classifier: TKDCClassifier, quantiles: Sequence[float]) -> None:
        if not classifier.is_fitted or classifier.training_scores_ is None:
            raise ValueError(
                "BandClassifier needs a fitted TKDCClassifier with "
                "refine_threshold=True (training scores are required)"
            )
        quantiles = tuple(quantiles)
        if not quantiles:
            raise ValueError("at least one band quantile is required")
        if any(not 0.0 < q < 1.0 for q in quantiles):
            raise ValueError(f"quantiles must be in (0, 1), got {quantiles}")
        if list(quantiles) != sorted(quantiles):
            raise ValueError(f"quantiles must be ascending, got {quantiles}")

        self.classifier = classifier
        self.quantiles = quantiles
        sorted_scores = np.sort(np.asarray(classifier.training_scores_))
        thresholds = [quantile_of_sorted(sorted_scores, q) for q in quantiles]
        if any(t <= 0.0 for t in thresholds):
            raise ValueError(
                "band thresholds must be strictly positive; the lowest "
                f"requested quantile maps to {thresholds[0]!r} — raise it"
            )
        if list(thresholds) != sorted(thresholds):
            # Quantiles of a sorted array are non-decreasing by
            # construction; ties can only arise from duplicate scores.
            thresholds = sorted(thresholds)
        self.thresholds = np.asarray(thresholds, dtype=np.float64)

    @property
    def n_bands(self) -> int:
        """Number of bands (one more than the number of thresholds)."""
        return len(self.thresholds) + 1

    def classify_bands(self, queries: np.ndarray) -> np.ndarray:
        """Band index per query: 0 (sparsest) .. n_bands-1 (densest)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        clf = self.classifier
        scaled = clf.kernel.scale(queries)
        bands = np.empty(queries.shape[0], dtype=np.int64)
        for i in range(queries.shape[0]):
            bands[i] = bound_band(
                clf.tree, clf.kernel, scaled[i], self.thresholds,
                clf.config.epsilon, clf.stats,
            )
        return bands

    def training_bands(self) -> np.ndarray:
        """Band indices of the training points (from their fit scores)."""
        scores = np.asarray(self.classifier.training_scores_)
        return np.searchsorted(self.thresholds, scores, side="left")
