"""Dual-tree batch density classification.

The paper (Section 5) notes that tKDC "does not make use of dual-tree
techniques for grouping both query and training points [26] and
integrating these with our pruning rules is a promising direction of
future work." This module implements that direction.

A k-d tree is built over the *query* batch as well. For a query-tree
node ``Q`` with bounding box ``B_Q``, the contribution of a training
node ``T`` to *any* query in ``B_Q`` is bounded using box-to-box
distances:

    count(T)/n * K(d_max(B_Q, B_T)^2)  <=  f^(T)(q)  <=
    count(T)/n * K(d_min(B_Q, B_T)^2)      for every q in B_Q.

Refining these shared bounds with the usual priority queue lets the
threshold rule classify an entire query block in one traversal. Blocks
the shared bounds cannot settle (they straddle the threshold, or the
query box is too wide for the bounds to converge) are recursively split
into the query node's children; at query leaves the classifier falls
back to the paper's single-query traversal.

The win is largest exactly where the paper's motivating workloads sit:
classifying dense grids of the plane for region visualization
(Figure 1b), where neighbouring queries share almost all of their
pruning work.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.bounds import bound_density
from repro.core.result import Label
from repro.core.stats import TraversalStats
from repro.index.boxes import box_max_sq_dist, box_min_sq_dist
from repro.index.kdtree import KDTree, Node
from repro.kernels.base import Kernel

#: Query-tree leaf size: small enough that fallback per-query work is
#: bounded, large enough to amortize block traversals.
DEFAULT_QUERY_LEAF_SIZE = 16

#: Only attempt a shared block traversal once the query box's squared
#: diagonal (in bandwidth-scaled space) is below this gate. Boxes much
#: wider than a bandwidth almost always straddle the threshold, so
#: attempting them just repeats root-level work at every recursion
#: level.
DEFAULT_BLOCK_GATE_SQ = 4.0


@dataclass(frozen=True)
class BlockOutcome:
    """Result of bounding one query block against the training tree."""

    label: Label | None  # None when the block could not be settled
    expansions: int


def _block_node_bounds(
    qnode: Node, tnode: Node, kernel: Kernel, inv_n: float
) -> tuple[float, float]:
    """Density-contribution bounds of ``tnode`` valid for every query in
    ``qnode``'s box (box-to-box version of Equation 6)."""
    weight = tnode.count * inv_n
    upper = weight * kernel.value_scalar(
        box_min_sq_dist(qnode.lo, qnode.hi, tnode.lo, tnode.hi)
    )
    lower = weight * kernel.value_scalar(
        box_max_sq_dist(qnode.lo, qnode.hi, tnode.lo, tnode.hi)
    )
    return lower, upper


def _bound_block(
    tree: KDTree,
    kernel: Kernel,
    qnode: Node,
    threshold: float,
    epsilon: float,
    stats: TraversalStats,
    max_expansions: int,
) -> BlockOutcome:
    """Try to classify every query in ``qnode``'s box with one traversal.

    Returns a settled label when the shared bounds clear the threshold
    rule for the whole box; ``None`` when the box straddles the
    threshold (or the expansion budget runs out), in which case the
    caller recurses into smaller query boxes.
    """
    inv_n = 1.0 / tree.size
    counter = itertools.count()
    lower, upper = _block_node_bounds(qnode, tree.root, kernel, inv_n)
    f_lower, f_upper = lower, upper
    frontier = [(-(upper - lower), next(counter), tree.root, lower, upper)]
    expansions = 0

    while frontier and expansions < max_expansions:
        if f_lower > threshold * (1.0 + epsilon):
            return BlockOutcome(Label.HIGH, expansions)
        if f_upper < threshold * (1.0 - epsilon):
            return BlockOutcome(Label.LOW, expansions)
        neg_gap, __, tnode, node_lower, node_upper = heapq.heappop(frontier)
        if -neg_gap <= 0.0:
            break  # no remaining frontier entry can move the bounds
        f_lower -= node_lower
        f_upper -= node_upper
        if tnode.is_leaf:
            # Tighten the leaf to per-point box distances (still valid
            # for the whole query box, strictly tighter than the leaf's
            # own bounding box).
            points = tree.leaf_points(tnode)
            leaf_lower, leaf_upper = _leaf_block_bounds(points, qnode, kernel, inv_n)
            stats.kernel_evaluations += 2 * tnode.count
            f_lower += leaf_lower
            f_upper += leaf_upper
        else:
            stats.node_expansions += 1
            expansions += 1
            for child in tnode.children():
                child_lower, child_upper = _block_node_bounds(
                    qnode, child, kernel, inv_n
                )
                f_lower += child_lower
                f_upper += child_upper
                if child_upper - child_lower > 0.0:
                    heapq.heappush(
                        frontier,
                        (-(child_upper - child_lower), next(counter), child,
                         child_lower, child_upper),
                    )

    if f_lower > threshold * (1.0 + epsilon):
        return BlockOutcome(Label.HIGH, expansions)
    if f_upper < threshold * (1.0 - epsilon):
        return BlockOutcome(Label.LOW, expansions)
    return BlockOutcome(None, expansions)


def _leaf_block_bounds(
    points: np.ndarray, qnode: Node, kernel: Kernel, inv_n: float
) -> tuple[float, float]:
    """Per-point box-distance bounds of a training leaf for a query box."""
    below = qnode.lo - points
    above = points - qnode.hi
    gaps = np.maximum(0.0, np.maximum(below, above))
    min_sq = np.einsum("ij,ij->i", gaps, gaps)
    spans = np.maximum(np.abs(below), np.abs(above))
    max_sq = np.einsum("ij,ij->i", spans, spans)
    upper = float(np.sum(kernel.value(min_sq))) * inv_n
    lower = float(np.sum(kernel.value(max_sq))) * inv_n
    return lower, upper


def dual_tree_classify(
    tree: KDTree,
    kernel: Kernel,
    scaled_queries: np.ndarray,
    threshold: float,
    epsilon: float,
    stats: TraversalStats,
    query_leaf_size: int = DEFAULT_QUERY_LEAF_SIZE,
    block_gate_sq: float = DEFAULT_BLOCK_GATE_SQ,
) -> np.ndarray:
    """Classify a batch of scaled queries with shared block traversals.

    Parameters mirror :func:`repro.core.bounds.bound_density`;
    ``scaled_queries`` has shape ``(m, d)`` in bandwidth-scaled space.
    Returns an object array of :class:`~repro.core.result.Label`.

    Exactness: every label satisfies the same ``±epsilon * threshold``
    guarantee as single-query tKDC — block bounds are valid for every
    query they cover, and unsettled queries fall back to the per-query
    traversal.
    """
    scaled_queries = np.atleast_2d(np.asarray(scaled_queries, dtype=np.float64))
    labels = np.empty(scaled_queries.shape[0], dtype=object)
    if scaled_queries.shape[0] == 0:
        return labels

    query_tree = KDTree(scaled_queries, leaf_size=query_leaf_size)

    # Every attempt gets a small constant budget: blocks that settle at
    # all (entire box provably far from / deep inside the distribution)
    # settle within a few dozen expansions regardless of box width,
    # while straddling blocks never settle and should fail fast. Narrow
    # boxes (under the gate) get a per-query-sized budget since they are
    # the last chance to amortize before per-query fallback.
    quick_budget = max(24, 2 * int(np.log2(tree.size + 1)))

    pending = [query_tree.root]
    while pending:
        qnode = pending.pop()
        diag = qnode.hi - qnode.lo
        narrow = float(diag @ diag) <= block_gate_sq
        budget = max(32, 4 * qnode.count) if narrow else quick_budget
        outcome = _bound_block(
            tree, kernel, qnode, threshold, epsilon, stats, max_expansions=budget
        )
        if outcome.label is not None:
            labels[query_tree.node_indices(qnode)] = outcome.label
            stats.extras["dual_block_hits"] = stats.extras.get("dual_block_hits", 0.0) + 1.0
            stats.queries += qnode.count
        elif not qnode.is_leaf:
            left, right = qnode.children()
            pending.append(left)
            pending.append(right)
        else:
            # Unsettled leaf block: classify its queries individually.
            indices = query_tree.node_indices(qnode)
            for index in indices:
                result = bound_density(
                    tree, kernel, scaled_queries[index], threshold, threshold,
                    epsilon, stats,
                )
                labels[index] = Label.HIGH if result.midpoint > threshold else Label.LOW
    return labels
