"""Instrumentation counters for tKDC traversals.

The paper's factor and lesion analyses (Figures 12 and 16) report both
throughput and *kernel evaluations per query* — the latter is a
machine-independent cost proxy, so every traversal in this repository
counts its work through a :class:`TraversalStats` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TraversalStats:
    """Mutable counters accumulated across density-bounding traversals."""

    #: Individual kernel evaluations against training points (leaf work).
    kernel_evaluations: int = 0
    #: Internal nodes expanded (popped and replaced by their children).
    node_expansions: int = 0
    #: Queries answered (one BoundDensity call each).
    queries: int = 0
    #: Queries short-circuited by the grid cache before any traversal.
    grid_hits: int = 0
    #: Traversals stopped by the threshold rule (density provably high).
    threshold_prunes_high: int = 0
    #: Traversals stopped by the threshold rule (density provably low).
    threshold_prunes_low: int = 0
    #: Traversals stopped by the tolerance rule.
    tolerance_prunes: int = 0
    #: Traversals that exhausted the tree (every leaf evaluated exactly).
    exhausted: int = 0
    #: Extra bookkeeping for composite experiments.
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def kernels_per_query(self) -> float:
        """Average kernel evaluations per query (the Figure 12/16 metric)."""
        if self.queries == 0:
            return 0.0
        return self.kernel_evaluations / self.queries

    @property
    def prunes(self) -> int:
        """Total traversals ended by any pruning rule."""
        return self.threshold_prunes_high + self.threshold_prunes_low + self.tolerance_prunes

    def merge(self, other: "TraversalStats") -> None:
        """Accumulate another stats object into this one."""
        self.kernel_evaluations += other.kernel_evaluations
        self.node_expansions += other.node_expansions
        self.queries += other.queries
        self.grid_hits += other.grid_hits
        self.threshold_prunes_high += other.threshold_prunes_high
        self.threshold_prunes_low += other.threshold_prunes_low
        self.tolerance_prunes += other.tolerance_prunes
        self.exhausted += other.exhausted
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0.0) + value

    def reset(self) -> None:
        """Zero every counter in place."""
        self.kernel_evaluations = 0
        self.node_expansions = 0
        self.queries = 0
        self.grid_hits = 0
        self.threshold_prunes_high = 0
        self.threshold_prunes_low = 0
        self.tolerance_prunes = 0
        self.exhausted = 0
        self.extras.clear()

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all counters (for reports/JSON).

        Flattens ``extras`` in and adds the derived ``kernels_per_query``
        — convenient for reports, but lossy. For a faithful round-trip
        (e.g. shipping worker stats across a process boundary) use
        :meth:`to_dict`/:meth:`from_dict` instead.
        """
        return {
            "kernel_evaluations": self.kernel_evaluations,
            "node_expansions": self.node_expansions,
            "queries": self.queries,
            "grid_hits": self.grid_hits,
            "threshold_prunes_high": self.threshold_prunes_high,
            "threshold_prunes_low": self.threshold_prunes_low,
            "tolerance_prunes": self.tolerance_prunes,
            "exhausted": self.exhausted,
            "kernels_per_query": self.kernels_per_query,
            **self.extras,
        }

    _CORE_FIELDS = (
        "kernel_evaluations",
        "node_expansions",
        "queries",
        "grid_hits",
        "threshold_prunes_high",
        "threshold_prunes_low",
        "tolerance_prunes",
        "exhausted",
    )

    def to_dict(self) -> dict:
        """Exact, lossless dict form: core counters plus a nested
        ``"extras"`` dict (every key preserved verbatim). Inverse of
        :meth:`from_dict`; used to move worker stats across process
        boundaries without dropping ``extras`` entries.
        """
        payload: dict = {name: getattr(self, name) for name in self._CORE_FIELDS}
        payload["extras"] = dict(self.extras)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraversalStats":
        """Rebuild a stats object written by :meth:`to_dict`.

        Unknown top-level keys (e.g. from a newer worker) are folded
        into ``extras`` rather than dropped.
        """
        stats = cls()
        extras = dict(payload.get("extras", {}))
        for key, value in payload.items():
            if key == "extras":
                continue
            if key in cls._CORE_FIELDS:
                setattr(stats, key, int(value))
            else:
                extras[key] = extras.get(key, 0.0) + float(value)
        stats.extras = extras
        return stats
