"""Instrumentation counters for tKDC traversals.

The paper's factor and lesion analyses (Figures 12 and 16) report both
throughput and *kernel evaluations per query* — the latter is a
machine-independent cost proxy, so every traversal in this repository
counts its work through a :class:`TraversalStats` instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TraversalStats:
    """Mutable counters accumulated across density-bounding traversals."""

    #: Individual kernel evaluations against training points (leaf work).
    kernel_evaluations: int = 0
    #: Internal nodes expanded (popped and replaced by their children).
    node_expansions: int = 0
    #: Queries answered (one BoundDensity call each).
    queries: int = 0
    #: Queries short-circuited by the grid cache before any traversal.
    grid_hits: int = 0
    #: Traversals stopped by the threshold rule (density provably high).
    threshold_prunes_high: int = 0
    #: Traversals stopped by the threshold rule (density provably low).
    threshold_prunes_low: int = 0
    #: Traversals stopped by the tolerance rule.
    tolerance_prunes: int = 0
    #: Traversals that exhausted the tree (every leaf evaluated exactly).
    exhausted: int = 0
    #: Extra bookkeeping for composite experiments.
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def kernels_per_query(self) -> float:
        """Average kernel evaluations per query (the Figure 12/16 metric)."""
        if self.queries == 0:
            return 0.0
        return self.kernel_evaluations / self.queries

    @property
    def prunes(self) -> int:
        """Total traversals ended by any pruning rule."""
        return self.threshold_prunes_high + self.threshold_prunes_low + self.tolerance_prunes

    def merge(self, other: "TraversalStats") -> None:
        """Accumulate another stats object into this one."""
        self.kernel_evaluations += other.kernel_evaluations
        self.node_expansions += other.node_expansions
        self.queries += other.queries
        self.grid_hits += other.grid_hits
        self.threshold_prunes_high += other.threshold_prunes_high
        self.threshold_prunes_low += other.threshold_prunes_low
        self.tolerance_prunes += other.tolerance_prunes
        self.exhausted += other.exhausted
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0.0) + value

    def reset(self) -> None:
        """Zero every counter in place."""
        self.kernel_evaluations = 0
        self.node_expansions = 0
        self.queries = 0
        self.grid_hits = 0
        self.threshold_prunes_high = 0
        self.threshold_prunes_low = 0
        self.tolerance_prunes = 0
        self.exhausted = 0
        self.extras.clear()

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all counters (for reports/JSON)."""
        return {
            "kernel_evaluations": self.kernel_evaluations,
            "node_expansions": self.node_expansions,
            "queries": self.queries,
            "grid_hits": self.grid_hits,
            "threshold_prunes_high": self.threshold_prunes_high,
            "threshold_prunes_low": self.threshold_prunes_low,
            "tolerance_prunes": self.tolerance_prunes,
            "exhausted": self.exhausted,
            "kernels_per_query": self.kernels_per_query,
            **self.extras,
        }
