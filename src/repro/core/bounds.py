"""Algorithm 2: priority-queue density bounding over the k-d tree.

Maintains a running interval ``[f_l, f_u]`` that always contains the true
kernel density ``f(x_q)``. Tree nodes in the frontier each contribute
``count/n * K(d_max^2)`` to the lower bound and ``count/n * K(d_min^2)``
to the upper bound (Equation 7). Iteratively replacing the frontier node
with the largest bound discrepancy by its children (or its exact leaf
sum) tightens the interval until a pruning rule fires or the tree is
exhausted — at which point the interval has collapsed to the exact
density.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.pruning import PruneOutcome, check_rules
from repro.core.stats import TraversalStats
from repro.index.boxes import box_kernel_bounds, min_sq_dist
from repro.index.kdtree import KDTree, Node
from repro.kernels.base import Kernel
from repro.obs.metrics import record_traversal
from repro.robustness.faults import FaultInjector
from repro.robustness.guards import (
    escalate,
    guard_interval,
    guard_value_in_interval,
)

#: ``stats.extras`` keys for degradation events.
BUDGET_STOPS_KEY = "budget_stops"
EXACT_FALLBACKS_KEY = "guard_exact_fallbacks"

#: Engine label this module reports under (see ``repro.obs.metrics``).
ENGINE_LABEL = "per-query"

#: Frontier orderings. "discrepancy" is the paper's rule (Section 3.4):
#: expand the node whose bounds are loosest. The others exist for the
#: priority-ordering ablation bench.
PRIORITY_ORDERS = ("discrepancy", "nearest", "fifo", "lifo")


@dataclass(frozen=True)
class BoundResult:
    """Outcome of one density-bounding traversal.

    ``degraded`` marks best-effort results: the traversal stopped on an
    anytime budget (or an exact guard fallback collapsed it) before any
    pruning rule fired. The interval is still a valid bound on the
    density — possibly a loose one.
    """

    lower: float
    upper: float
    outcome: PruneOutcome | None  # None means the tree was exhausted
    degraded: bool = False

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)


def _node_bounds(
    node: Node, query: np.ndarray, kernel: Kernel, inv_n: float
) -> tuple[float, float]:
    """(lower, upper) density contribution of a k-d node's points (Eq. 6).

    Thin alias over :func:`repro.index.boxes.box_kernel_bounds`, kept
    for callers that are explicitly box-based (the nocut baseline).
    """
    return box_kernel_bounds(node.lo, node.hi, node.count, query, kernel, inv_n)


def bound_density(
    tree: KDTree,
    kernel: Kernel,
    query: np.ndarray,
    t_lower: float,
    t_upper: float,
    epsilon: float,
    stats: TraversalStats,
    use_threshold_rule: bool = True,
    use_tolerance_rule: bool = True,
    priority: str = "discrepancy",
    tolerance_reference: float | None = None,
    threshold_shift: float = 0.0,
    eta: float = 0.0,
    max_expansions: int | None = None,
    guard_policy: str = "off",
    faults: FaultInjector | None = None,
    trace=None,
    trace_index: int = 0,
) -> BoundResult:
    """Bound the kernel density of one query point (paper Algorithm 2).

    Parameters
    ----------
    tree:
        Spatial index built over *bandwidth-scaled* training
        coordinates — a :class:`~repro.index.kdtree.KDTree` or any
        index exposing the same surface (``size``, ``root``,
        ``leaf_points``, ``node_bounds``), e.g.
        :class:`~repro.index.balltree.BallTree`. The "nearest" priority
        requires box nodes.
    kernel:
        The kernel the tree's densities are measured under.
    query:
        One query point in bandwidth-scaled space, shape ``(d,)``.
    t_lower, t_upper:
        Current bounds on the classification threshold ``t(p)``. Pass the
        same value for both once a point estimate is available
        (Algorithm 1 does exactly that at classification time).
    epsilon:
        The multiplicative tolerance from Problem 1.
    stats:
        Counter sink; mutated in place.
    use_threshold_rule, use_tolerance_rule:
        Pruning-rule toggles (the Figure 12/16 ablations).
    priority:
        Frontier ordering; see :data:`PRIORITY_ORDERS`.
    tolerance_reference:
        Optional anchor for the tolerance rule's width target
        (``epsilon * tolerance_reference`` instead of
        ``epsilon * t_lower``).
    threshold_shift:
        Post-margin additive offset to the threshold rule's edges.
        Together with ``tolerance_reference`` this expresses pruning in
        self-contribution-corrected space when scoring training points;
        see :func:`repro.core.pruning.threshold_rule`.
    eta:
        Coreset sup-norm slack: the density interval is widened to
        ``(f_l - eta, f_u + eta)`` before both pruning rules, so prunes
        stay valid for the full-data density when the tree indexes a
        coreset with ``sup |f_X - f_S| <= eta`` (see
        :mod:`repro.coresets`). The returned interval still bounds the
        *coreset* density ``f_S``; callers widen it by ``eta`` when they
        need an ``f_X`` claim.
    max_expansions:
        Anytime budget: after this many node expansions the traversal
        stops with its current (valid, possibly vacuous) interval and
        ``degraded=True`` instead of running to a prune or exhaustion.
        ``None`` leaves it unbounded.
    guard_policy:
        Invariant-guard policy (see :mod:`repro.robustness.guards`):
        node contributions and leaf sums are checked for finiteness,
        ordering, and envelope containment, and the running accumulator
        for finiteness, with ``"raise"``/``"repair"``/``"warn"``
        handling. ``"off"`` (default here; the classifier passes its
        configured policy) skips all checks. A non-finite accumulator
        under a repairing policy falls back to one exact O(n) density
        evaluation — degraded never means wrong.
    faults:
        Optional deterministic fault injector (tests only); corrupts
        planned node bounds and leaf sums before the guards see them.
    trace, trace_index:
        Optional :class:`~repro.obs.trace.TraceRecorder` (or view) that
        receives this query's bound trajectory and terminating rule
        under index ``trace_index``. Recording is purely additive — no
        arithmetic changes, so labels are identical with or without it.

    Returns
    -------
    A :class:`BoundResult` whose interval is guaranteed to contain the
    exact density ``f(query)`` under the indexed (possibly weighted)
    point set.
    """
    if t_lower > t_upper:
        raise ValueError(f"t_lower {t_lower} exceeds t_upper {t_upper}")
    if priority not in PRIORITY_ORDERS:
        raise ValueError(f"unknown priority {priority!r}; choose from {PRIORITY_ORDERS}")

    query = np.asarray(query, dtype=np.float64)
    # Weighted trees (coresets) normalize by total mass, not point count;
    # for ordinary trees the two coincide exactly.
    inv_n = 1.0 / getattr(tree, "total_weight", tree.size)
    point_weights = getattr(tree, "point_weights", None)
    counter = itertools.count()
    stats.queries += 1
    guarded = guard_policy != "off"
    if faults is not None and not faults.plan.targets_traversal:
        faults = None
    expansions_used = 0
    kernels_start = stats.kernel_evaluations

    def exact_fallback() -> BoundResult:
        """Brute-force density after an unrepairable accumulator: exact."""
        diffs = tree.points - query
        sq = np.einsum("ij,ij->i", diffs, diffs)
        values = kernel.value(sq)
        if point_weights is not None:
            values = values * point_weights
        exact = float(np.sum(values)) * inv_n
        stats.extras[EXACT_FALLBACKS_KEY] = (
            stats.extras.get(EXACT_FALLBACKS_KEY, 0.0) + 1.0
        )
        record_traversal(
            ENGINE_LABEL, "exact", expansions_used,
            stats.kernel_evaluations - kernels_start,
        )
        if trace is not None:
            trace.stop(
                trace_index, "exact",
                f_lower=exact, f_upper=exact, expansions=expansions_used,
            )
        return BoundResult(exact, exact, None)

    def node_envelope(node: Node) -> float:
        """A-priori ceiling on a node's density contribution."""
        mass = (
            tree.node_weight(node)
            if hasattr(tree, "node_weight")
            else float(node.count)
        )
        return mass * inv_n * kernel.max_value

    def rank(node: Node, lower: float, upper: float) -> float:
        if priority == "discrepancy":
            return -(upper - lower)  # biggest improvement potential first
        if priority == "nearest":
            return min_sq_dist(query, node.lo, node.hi)
        if priority == "fifo":
            return 0.0  # seq tie-breaker makes this insertion order
        return -float(next(counter))  # lifo: most recent first

    node_bounds = tree.node_bounds  # index-family dispatch (k-d or ball)
    root_lower, root_upper = node_bounds(tree.root, query, kernel, inv_n)
    if faults is not None:
        root_lower, root_upper = faults.corrupt_bounds(root_lower, root_upper)
    if guarded:
        root_lower, root_upper = guard_interval(
            root_lower, root_upper, guard_policy, stats, site="node",
            ceiling=node_envelope(tree.root),
        )
    f_lower, f_upper = root_lower, root_upper
    if trace is not None:
        trace.step(trace_index, f_lower, f_upper)
    frontier: list[tuple[float, int, Node, float, float]] = []
    heapq.heappush(
        frontier, (rank(tree.root, root_lower, root_upper), next(counter), tree.root,
                   root_lower, root_upper)
    )

    while frontier:
        if guarded and not (np.isfinite(f_lower) and np.isfinite(f_upper)):
            # The running accumulator cannot be repaired locally (its
            # frontier bookkeeping is lost); the sound recovery is one
            # exact evaluation.
            escalate(
                guard_policy, "accumulator",
                f"running interval [{f_lower}, {f_upper}] is non-finite", stats,
            )
            return exact_fallback()
        outcome = check_rules(
            f_lower, f_upper, t_lower, t_upper, epsilon,
            use_threshold_rule=use_threshold_rule,
            use_tolerance_rule=use_tolerance_rule,
            tolerance_reference=tolerance_reference,
            threshold_shift=threshold_shift,
            eta=eta,
        )
        if outcome is not None:
            _record_outcome(stats, outcome)
            record_traversal(
                ENGINE_LABEL, outcome.value, expansions_used,
                stats.kernel_evaluations - kernels_start,
            )
            if trace is not None:
                trace.stop(
                    trace_index, outcome.value,
                    f_lower=f_lower, f_upper=f_upper, expansions=expansions_used,
                )
            return BoundResult(f_lower, f_upper, outcome)
        if max_expansions is not None and expansions_used >= max_expansions:
            # Anytime budget exhausted: stop with the current valid
            # interval and an explicit degraded marker.
            stats.extras[BUDGET_STOPS_KEY] = (
                stats.extras.get(BUDGET_STOPS_KEY, 0.0) + 1.0
            )
            record_traversal(
                ENGINE_LABEL, "budget", expansions_used,
                stats.kernel_evaluations - kernels_start,
            )
            if trace is not None:
                trace.stop(
                    trace_index, "budget",
                    f_lower=min(f_lower, f_upper), f_upper=max(f_lower, f_upper),
                    expansions=expansions_used,
                )
            return BoundResult(
                min(f_lower, f_upper), max(f_lower, f_upper), None, degraded=True
            )

        __, __, node, node_lower, node_upper = heapq.heappop(frontier)
        f_lower -= node_lower
        f_upper -= node_upper

        if node.is_leaf:
            points = tree.leaf_points(node)
            if point_weights is None:
                exact = kernel.sum_at(points, query) * inv_n
            else:
                weights = point_weights[node.start : node.end]
                diffs = points - query
                sq = np.einsum("ij,ij->i", diffs, diffs)
                exact = float(np.sum(weights * kernel.value(sq))) * inv_n
            stats.kernel_evaluations += node.count
            if faults is not None:
                exact = faults.corrupt_leaf(exact)
            if guarded:
                # The exact sum must land inside the box bounds this
                # leaf was popped with (catches silent underflow).
                exact = guard_value_in_interval(
                    exact, node_lower, node_upper, guard_policy, stats, site="leaf"
                )
            f_lower += exact
            f_upper += exact
        else:
            stats.node_expansions += 1
            expansions_used += 1
            for child in node.children():
                child_lower, child_upper = node_bounds(child, query, kernel, inv_n)
                if faults is not None:
                    child_lower, child_upper = faults.corrupt_bounds(
                        child_lower, child_upper
                    )
                if guarded:
                    child_lower, child_upper = guard_interval(
                        child_lower, child_upper, guard_policy, stats, site="node",
                        ceiling=node_envelope(child),
                    )
                f_lower += child_lower
                f_upper += child_upper
                if child_upper - child_lower > 0.0:
                    heapq.heappush(
                        frontier,
                        (rank(child, child_lower, child_upper), next(counter), child,
                         child_lower, child_upper),
                    )
        if trace is not None:
            trace.step(trace_index, f_lower, f_upper)

    # Tree exhausted: the interval has collapsed to the exact density
    # (up to floating-point accumulation).
    stats.exhausted += 1
    f_lower, f_upper = min(f_lower, f_upper), max(f_lower, f_upper)
    record_traversal(
        ENGINE_LABEL, "exhausted", expansions_used,
        stats.kernel_evaluations - kernels_start,
    )
    if trace is not None:
        trace.stop(
            trace_index, "exhausted",
            f_lower=f_lower, f_upper=f_upper, expansions=expansions_used,
        )
    return BoundResult(f_lower, f_upper, None)


def _record_outcome(stats: TraversalStats, outcome: PruneOutcome) -> None:
    if outcome is PruneOutcome.THRESHOLD_HIGH:
        stats.threshold_prunes_high += 1
    elif outcome is PruneOutcome.THRESHOLD_LOW:
        stats.threshold_prunes_low += 1
    else:
        stats.tolerance_prunes += 1
