"""Hypergrid cache for short-circuiting obvious inliers (paper Section 3.7).

Once a lower bound ``t_l`` on the threshold is known, a single pass over
the dataset counts points per cell of a bandwidth-width grid. Any query
sharing a cell with ``c`` points has density at least
``c/n * K_H(d_diag)`` — every co-resident point is within one cell
diagonal — so when that bound already clears the HIGH side of the
threshold rule, no tree traversal is needed at all.

The cache's usefulness decays exponentially with dimension (cells go
empty), so it is disabled above ``grid_max_dim`` (the paper uses 4).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.kernels.base import Kernel


class GridCache:
    """Per-cell point counts over bandwidth-scaled coordinates.

    Parameters
    ----------
    scaled_points:
        Training points in bandwidth-scaled space, shape ``(n, d)``. In
        this space the paper's "grid dimensions equal to the bandwidth"
        means unit cells.
    kernel:
        The kernel densities are measured under.
    cell_width:
        Cell edge length in scaled space (1.0 = one bandwidth, the
        paper's default).
    """

    def __init__(
        self,
        scaled_points: np.ndarray,
        kernel: Kernel,
        cell_width: float = 1.0,
    ) -> None:
        if cell_width <= 0:
            raise ValueError(f"cell_width must be positive, got {cell_width}")
        scaled_points = np.atleast_2d(np.asarray(scaled_points, dtype=np.float64))
        self._n = scaled_points.shape[0]
        self._dim = scaled_points.shape[1]
        self._cell_width = cell_width
        self._kernel = kernel
        # Two points in the same cell differ by < cell_width per axis, so
        # their squared scaled distance is < d * cell_width^2.
        self._min_kernel_value = float(kernel.value(self._dim * cell_width * cell_width))
        cells = np.floor(scaled_points / cell_width).astype(np.int64)
        self._counts: Counter[tuple[int, ...]] = Counter(map(tuple, cells))

    @property
    def n_cells(self) -> int:
        """Number of occupied grid cells."""
        return len(self._counts)

    @property
    def cell_width(self) -> float:
        return self._cell_width

    def cell_count(self, scaled_query: np.ndarray) -> int:
        """Number of training points sharing the query's cell."""
        key = tuple(np.floor(np.asarray(scaled_query) / self._cell_width).astype(np.int64))
        return self._counts.get(key, 0)

    def density_lower_bound(self, scaled_query: np.ndarray) -> float:
        """A conservative lower bound on the query's kernel density."""
        return self.cell_count(scaled_query) / self._n * self._min_kernel_value

    def density_lower_bounds(self, scaled_queries: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`density_lower_bound` for an ``(m, d)`` batch.

        The cell lookup itself stays a dict probe per query (the counts
        live in a hash map), but the floor/ratio arithmetic matches the
        scalar path operation-for-operation so both produce identical
        bounds.
        """
        scaled = np.atleast_2d(np.asarray(scaled_queries, dtype=np.float64))
        if scaled.shape[0] == 0:
            return np.zeros(0)
        cells = np.floor(scaled / self._cell_width).astype(np.int64)
        get = self._counts.get
        counts = np.fromiter(
            (get(cell, 0) for cell in map(tuple, cells.tolist())),
            dtype=np.int64,
            count=scaled.shape[0],
        )
        return counts / self._n * self._min_kernel_value

    def is_certain_inlier(
        self, scaled_query: np.ndarray, t_upper: float, epsilon: float
    ) -> bool:
        """True when the grid alone proves the query is HIGH.

        Uses the same margin as the threshold rule, so grid-classified
        points satisfy the identical accuracy guarantee.
        """
        return self.density_lower_bound(scaled_query) > t_upper * (1.0 + epsilon)
