"""Result types shared across the tKDC core."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class Label(IntEnum):
    """Density classification outcome (paper Problem 1)."""

    LOW = 0
    HIGH = 1


@dataclass(frozen=True)
class DensityBounds:
    """Deterministic lower/upper bounds on a kernel density value."""

    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise ValueError(f"lower bound {self.lower} exceeds upper bound {self.upper}")


@dataclass(frozen=True)
class ThresholdEstimate:
    """A bracketed estimate of the quantile threshold ``t(p)``.

    ``lower``/``upper`` bracket the true threshold with probability at
    least ``1 - delta`` (paper Section 3.5); ``value`` is the working
    point estimate used for classification.
    """

    value: float
    lower: float
    upper: float
    p: float

    def __post_init__(self) -> None:
        if not self.lower <= self.value <= self.upper:
            raise ValueError(
                f"threshold estimate {self.value} outside its bounds "
                f"[{self.lower}, {self.upper}]"
            )
