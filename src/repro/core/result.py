"""Result types shared across the tKDC core."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np


class Label(IntEnum):
    """Density classification outcome (paper Problem 1).

    ``UNCERTAIN`` is never produced by an unconstrained traversal — it
    marks queries that hit an anytime budget while their density bounds
    still straddled the threshold, or queries rejected as invalid under
    the ``"flag"`` input policy (see
    :meth:`ClassificationResult.resolved_labels`).
    """

    LOW = 0
    HIGH = 1
    UNCERTAIN = 2


@dataclass(frozen=True)
class DensityBounds:
    """Deterministic lower/upper bounds on a kernel density value."""

    lower: float
    upper: float

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-12:
            raise ValueError(f"lower bound {self.lower} exceeds upper bound {self.upper}")


@dataclass(frozen=True)
class ThresholdEstimate:
    """A bracketed estimate of the quantile threshold ``t(p)``.

    ``lower``/``upper`` bracket the true threshold with probability at
    least ``1 - delta`` (paper Section 3.5); ``value`` is the working
    point estimate used for classification.
    """

    value: float
    lower: float
    upper: float
    p: float

    def __post_init__(self) -> None:
        if not self.lower <= self.value <= self.upper:
            raise ValueError(
                f"threshold estimate {self.value} outside its bounds "
                f"[{self.lower}, {self.upper}]"
            )


@dataclass(frozen=True)
class ClassificationResult:
    """Labels plus degradation diagnostics for one classify call.

    :meth:`TKDCClassifier.classify` keeps returning a bare label array;
    this richer result (from
    :meth:`~repro.core.classifier.TKDCClassifier.classify_detailed`)
    additionally carries the density interval each label was decided on
    and *why* any query got a best-effort answer — an exhausted anytime
    budget or an invalid (non-finite) input row under the ``"flag"``
    policy. Degraded queries still carry valid (possibly vacuous)
    bounds; their labels are midpoint best-effort.
    """

    labels: np.ndarray  #: (q,) best-effort HIGH/LOW :class:`Label` array.
    lower: np.ndarray  #: (q,) guaranteed density lower bounds.
    upper: np.ndarray  #: (q,) guaranteed density upper bounds.
    degraded: np.ndarray  #: (q,) True where the answer is best-effort.
    invalid: np.ndarray  #: (q,) True for input rows flagged as invalid.
    threshold: float  #: the threshold ``t(p)`` the labels compare against.

    @property
    def n_degraded(self) -> int:
        """Number of best-effort answers in the batch."""
        return int(np.count_nonzero(self.degraded))

    @property
    def any_degraded(self) -> bool:
        return bool(self.degraded.any())

    @property
    def uncertain(self) -> np.ndarray:
        """Degraded queries whose bounds still straddle the threshold.

        These are the answers with no directional evidence at all: the
        traversal stopped (budget) or never ran (invalid input) while
        ``[f_l, f_u]`` contained ``t``. Everything else — including
        degraded queries whose partial bounds already cleared the
        threshold — has at least best-effort support.
        """
        straddles = (self.lower <= self.threshold) & (self.upper >= self.threshold)
        return self.degraded & (straddles | self.invalid)

    def resolved_labels(self) -> np.ndarray:
        """Labels with :attr:`uncertain` queries replaced by ``UNCERTAIN``."""
        labels = self.labels.copy()
        labels[self.uncertain] = Label.UNCERTAIN
        return labels
