"""One experiment function per table and figure in the paper's evaluation.

Each function returns a list of plain-dict rows (the same rows the
paper's table or figure reports) and optionally prints them as a console
table. Sizes default to laptop-scale draws of the dataset simulators;
every function takes explicit size parameters so the CLI and the
``benchmarks/`` suite can trade fidelity for runtime. See DESIGN.md's
experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.accuracy import f1_score
from repro.analysis.contours import classification_mask, render_ascii
from repro.baselines import NaiveKDE, RadialKDE, TreeKDE
from repro.bench.algorithms import (
    AMORTIZED_ALGORITHMS,
    pilot_threshold,
    run_amortized,
    train_for_queries,
)
from repro.bench.harness import Timer, fit_loglog_slope
from repro.bench.reporting import ConsoleTable
from repro.core.bounds import bound_density
from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.core.grid import GridCache
from repro.core.result import Label
from repro.core.stats import TraversalStats
from repro.datasets.pca import PCA
from repro.datasets.registry import DATASETS, load
from repro.index.kdtree import KDTree
from repro.kernels.factory import kernel_for_data
from repro.quantile.order_stats import quantile_of_sorted

Row = dict[str, object]


def _print_rows(rows: list[Row], columns: list[str], title: str, verbose: bool) -> None:
    if not verbose:
        return
    table = ConsoleTable(columns)
    for row in rows:
        table.add_row(row)
    table.print(title)


# ----------------------------------------------------------------------
# Table 3: dataset roster
# ----------------------------------------------------------------------

def table3_datasets(scale: float = 0.01, seed: int = 0, verbose: bool = True) -> list[Row]:
    """Table 3: the evaluation datasets and their simulated stand-ins.

    Alongside the paper's (n, d) roster, each simulator draw is
    characterized by the density-geometry statistics tKDC's behaviour
    depends on: intrinsic dimensionality and tail weight.
    """
    from repro.datasets.stats import summarize

    rows: list[Row] = []
    for spec in DATASETS.values():
        data = load(spec.name, scale=scale, seed=seed)
        summary = summarize(data)
        rows.append(
            {
                "name": spec.name,
                "d": spec.dim,
                "paper_n": spec.paper_n,
                "sim_n": summary.n,
                "intrinsic_d": summary.intrinsic_dim,
                "tail_weight": summary.tail_weight,
                "description": spec.description,
            }
        )
    _print_rows(rows, ["name", "d", "paper_n", "sim_n", "intrinsic_d",
                       "tail_weight", "description"],
                "Table 3: datasets", verbose)
    return rows


# ----------------------------------------------------------------------
# Figure 1: shuttle density classification
# ----------------------------------------------------------------------

def fig1_shuttle_classification(
    n: int = 15_000,
    p: float = 0.15,
    grid_cells: int = 40,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 1: classify the 2-d shuttle measurement space by density.

    Reproduces the paper's motivating picture: train on the informative
    shuttle columns (A, B), classify a grid of the measurement plane,
    and report the HIGH-region coverage. With ``verbose`` the region is
    rendered as ASCII art.
    """
    data = load("shuttle", n=n, seed=seed)[:, [3, 5]]
    clf = TKDCClassifier(TKDCConfig(p=p, seed=seed)).fit(data)

    # Frame the bulk of the distribution (the paper's Figure 1 axes),
    # not the heavy-tail extremes — a min/max viewport would be almost
    # entirely empty space.
    lo = np.percentile(data, 1.0, axis=0)
    hi = np.percentile(data, 99.0, axis=0)
    pad = 0.1 * (hi - lo)
    xlim = (float(lo[0] - pad[0]), float(hi[0] + pad[0]))
    ylim = (float(lo[1] - pad[1]), float(hi[1] + pad[1]))
    __, __, mask = classification_mask(clf.classify, xlim, ylim, grid_cells, grid_cells)

    assert clf.training_labels_ is not None
    rows: list[Row] = [
        {
            "n": n,
            "p": p,
            "threshold": clf.threshold.value,
            "grid_cells": grid_cells * grid_cells,
            "high_region_fraction": float(np.mean(mask)),
            "training_low_fraction": float(np.mean(clf.training_labels_ == Label.LOW)),
            "kernels_per_query": clf.stats.kernels_per_query,
        }
    ]
    if verbose:
        print("\n== Figure 1: shuttle density classification (HIGH region = '#') ==")
        print(render_ascii(mask))
    _print_rows(rows, list(rows[0].keys()), "Figure 1: summary", verbose)
    return rows


# ----------------------------------------------------------------------
# Table 2: algorithm roster / equivalence smoke test
# ----------------------------------------------------------------------

def table2_algorithms(
    n: int = 4_000, p: float = 0.01, seed: int = 0, verbose: bool = True
) -> list[Row]:
    """Table 2: run every algorithm on one workload and cross-validate.

    All algorithms classify the same 2-d gauss draw; agreement is
    measured against the exact ("simple") labels. This is the
    equivalence check behind using them interchangeably in Figure 7.
    """
    data = load("gauss", n=n, seed=seed)
    runs = {name: run_amortized(name, data, p=p, seed=seed) for name in AMORTIZED_ALGORITHMS}
    exact_labels = runs["simple"].labels
    rows: list[Row] = []
    descriptions = {
        "tkdc": "Density classification w/ pruning",
        "simple": "Naive algorithm, iterates through every point",
        "sklearn": "K-d tree approximation algorithm (rtol=0.1)",
        "nocut": "tKDC with the threshold rule and grid disabled (rtol=0.01)",
        "rkde": "Contribution from only nearby points",
        "ks": "Binning approximation algorithm",
    }
    for name, run in runs.items():
        rows.append(
            {
                "algorithm": name,
                "description": descriptions[name],
                "agreement_vs_exact": float(np.mean(run.labels == exact_labels)),
                "throughput": run.amortized_throughput,
            }
        )
    _print_rows(rows, ["algorithm", "description", "agreement_vs_exact", "throughput"],
                "Table 2: algorithms", verbose)
    return rows


# ----------------------------------------------------------------------
# Figure 7: end-to-end amortized throughput
# ----------------------------------------------------------------------

#: The paper's eight Figure 7 panels: (dataset, dims, PCA?), sized here
#: by per-panel n caps.
FIG7_PANELS: list[tuple[str, int, bool]] = [
    ("gauss", 2, False),
    ("tmy3", 4, False),
    ("tmy3", 8, False),
    ("home", 10, False),
    ("hep", 27, False),
    ("sift", 64, False),
    ("mnist", 64, True),
    ("mnist", 256, True),
]


def fig7_throughput(
    n: int = 8_000,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int = 0,
    algorithms: tuple[str, ...] = AMORTIZED_ALGORITHMS,
    panels: list[tuple[str, int, bool]] | None = None,
    verbose: bool = True,
) -> list[Row]:
    """Figure 7: amortized classification throughput across datasets.

    Every algorithm trains on the panel dataset and classifies all of
    its points; throughput includes training. ``ks`` is skipped above
    d=4 (the library limit the paper also hit).
    """
    rows: list[Row] = []
    for dataset, dim, use_pca in panels if panels is not None else FIG7_PANELS:
        data = _panel_data(dataset, dim, use_pca, n, seed)
        scale = 3.0 if (dataset == "mnist" and dim >= 64) else 1.0
        normalize = dim <= 64
        for name in algorithms:
            if name == "ks" and dim > 4:
                continue
            config = None
            if name == "tkdc":
                config = TKDCConfig(
                    p=p, epsilon=epsilon, seed=seed, bandwidth_scale=scale,
                    normalize_densities=normalize,
                )
            run = run_amortized(
                name, data, p=p, epsilon=epsilon, seed=seed,
                bandwidth_scale=scale, tkdc_config=config,
            )
            rows.append(
                {
                    "dataset": dataset, "d": dim, "n": data.shape[0],
                    "algorithm": name,
                    "throughput": run.amortized_throughput,
                    "total_s": run.total_seconds,
                    "kernels_per_pt": run.kernels_per_item,
                }
            )
    _print_rows(rows, ["dataset", "d", "n", "algorithm", "throughput", "total_s",
                       "kernels_per_pt"], "Figure 7: end-to-end throughput", verbose)
    return rows


def _panel_data(dataset: str, dim: int, use_pca: bool, n: int, seed: int) -> np.ndarray:
    native_dim = DATASETS[dataset].dim
    if use_pca:
        raw = load(dataset, n=n, seed=seed)
        return PCA(dim).fit_transform(raw)
    if dim < native_dim:
        return load(dataset, n=n, seed=seed)[:, :dim]
    return load(dataset, n=n, d=dim if dim != native_dim else None, seed=seed)


# ----------------------------------------------------------------------
# Figure 8: classification accuracy (F1 vs exact ground truth)
# ----------------------------------------------------------------------

def fig8_accuracy(
    n: int = 6_000,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 8: F1 of the below-threshold class vs exact-KDE truth.

    Panels at d = 2, 4, and 7/8 over the tmy3, home, and shuttle
    simulators, scoring tkdc, sklearn (rtol=0.1 tree KDE), and ks
    (d <= 4 only) exactly as the paper does.
    """
    panel_dims = {"tmy3": (2, 4, 8), "home": (2, 4, 7), "shuttle": (2, 4, 8)}
    rows: list[Row] = []
    for dataset, dims in panel_dims.items():
        for dim in dims:
            data = load(dataset, n=n, seed=seed)[:, :dim]
            exact = NaiveKDE().fit(data)
            densities = exact.density(data) - exact.kernel.max_value / data.shape[0]
            truth_threshold = quantile_of_sorted(np.sort(densities), p)
            # LOW (below-threshold) is the positive class; the quantile
            # order statistic itself counts as LOW, matching the
            # labels-from-densities convention in run_amortized.
            truth = (densities <= truth_threshold).astype(int)

            for name in ("tkdc", "sklearn", "ks"):
                if name == "ks" and dim > 4:
                    continue
                run = run_amortized(name, data, p=p, epsilon=epsilon, seed=seed)
                predicted = (run.labels == int(Label.LOW)).astype(int)
                rows.append(
                    {
                        "dataset": dataset, "d": dim, "n": n, "algorithm": name,
                        "f1_low_class": f1_score(truth, predicted, positive=1),
                    }
                )
    _print_rows(rows, ["dataset", "d", "n", "algorithm", "f1_low_class"],
                "Figure 8: classification accuracy", verbose)
    return rows


# ----------------------------------------------------------------------
# Figures 9 & 10: scalability over dataset size
# ----------------------------------------------------------------------

def fig9_scaling_n(
    sizes: tuple[int, ...] = (1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000),
    dim: int = 2,
    dataset: str = "gauss",
    n_queries: int = 400,
    p: float = 0.01,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("tkdc", "sklearn", "simple", "rkde"),
    verbose: bool = True,
) -> list[Row]:
    """Figure 9: query-only throughput vs training-set size (gauss, d=2).

    Training time is excluded. The summary rows report fitted log-log
    slopes: the paper's analysis predicts tkdc cost growth
    ``n^((d-1)/d)`` against ``n`` for the O(n) algorithms.
    """
    rng = np.random.default_rng(seed + 1)
    rows: list[Row] = []
    per_algo: dict[str, list[tuple[int, float]]] = {name: [] for name in algorithms}
    for size in sizes:
        data = load(dataset, n=size, seed=seed) if dim == DATASETS[dataset].dim else (
            load(dataset, n=size, seed=seed)[:, :dim]
        )
        queries = data[rng.choice(size, size=min(n_queries, size), replace=False)]
        queries = queries + rng.normal(scale=0.05, size=queries.shape)
        for name in algorithms:
            trained = train_for_queries(name, data, p=p, seed=seed)
            run = trained.classify(queries)
            rows.append(
                {
                    "n": size, "algorithm": name,
                    "queries_per_s": run.query_throughput,
                    "kernels_per_query": run.kernels_per_item,
                }
            )
            per_algo[name].append((size, run.query_throughput))
    for name, points in per_algo.items():
        xs = np.array([x for x, __ in points], dtype=float)
        ys = np.array([y for __, y in points], dtype=float)
        rows.append(
            {
                "n": 0, "algorithm": f"{name}:loglog_slope",
                "queries_per_s": fit_loglog_slope(xs, ys),
                "kernels_per_query": float("nan"),
            }
        )
    _print_rows(rows, ["n", "algorithm", "queries_per_s", "kernels_per_query"],
                f"Figure 9: scalability over n ({dataset}, d={dim})", verbose)
    return rows


def fig10_scaling_hep(
    sizes: tuple[int, ...] = (2_000, 4_000, 8_000, 16_000, 32_000),
    n_queries: int = 200,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 10: the Figure 9 sweep on the 27-dimensional hep data."""
    return fig9_scaling_n(
        sizes=sizes, dim=27, dataset="hep", n_queries=n_queries, p=p, seed=seed,
        algorithms=("tkdc", "simple", "rkde"), verbose=verbose,
    )


# ----------------------------------------------------------------------
# Figure 11: scalability over dimension
# ----------------------------------------------------------------------

def fig11_dims(
    dims: tuple[int, ...] = (1, 2, 4, 8, 16, 27),
    n: int = 10_000,
    n_queries: int = 300,
    p: float = 0.01,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("tkdc", "simple", "sklearn", "rkde"),
    verbose: bool = True,
) -> list[Row]:
    """Figure 11: query throughput vs dimensionality (hep subsets)."""
    rng = np.random.default_rng(seed + 1)
    full = load("hep", n=n, seed=seed)
    rows: list[Row] = []
    for dim in dims:
        data = full[:, :dim]
        queries = data[rng.choice(n, size=min(n_queries, n), replace=False)]
        for name in algorithms:
            trained = train_for_queries(name, data, p=p, seed=seed)
            run = trained.classify(queries)
            rows.append(
                {
                    "d": dim, "n": n, "algorithm": name,
                    "queries_per_s": run.query_throughput,
                    "kernels_per_query": run.kernels_per_item,
                }
            )
    _print_rows(rows, ["d", "n", "algorithm", "queries_per_s", "kernels_per_query"],
                "Figure 11: scalability over dimension (hep)", verbose)
    return rows


# ----------------------------------------------------------------------
# Figures 12 & 16: factor and lesion analyses
# ----------------------------------------------------------------------

#: (variant label, threshold rule, tolerance rule, equi-width split, grid)
_FACTOR_STEPS: list[tuple[str, bool, bool, bool, bool]] = [
    ("baseline", False, False, False, False),
    ("+threshold", True, False, False, False),
    ("+tolerance", True, True, False, False),
    ("+equiwidth", True, True, True, False),
    ("+grid", True, True, True, True),
]

_LESION_STEPS: list[tuple[str, bool, bool, bool, bool]] = [
    ("complete", True, True, True, True),
    ("-threshold", False, True, True, True),
    ("-tolerance", True, False, True, True),
    ("-equiwidth", True, True, False, True),
    ("-grid", True, True, True, False),
]


def _optimization_analysis(
    steps: list[tuple[str, bool, bool, bool, bool]],
    title: str,
    n: int,
    dim: int,
    p: float,
    epsilon: float,
    n_queries: int,
    slow_queries: int,
    seed: int,
    verbose: bool,
) -> list[Row]:
    """Shared driver for the Figure 12 (factor) / 16 (lesion) analyses.

    Classifies query samples from the tmy3 simulator under each
    optimization configuration, reporting throughput and kernel
    evaluations per point (training excluded, as in the paper's figures).
    Variants without the threshold rule are measured on the smaller
    ``slow_queries`` sample — they do orders of magnitude more work per
    query.
    """
    rng = np.random.default_rng(seed + 1)
    data = load("tmy3", n=n, d=dim, seed=seed)
    threshold = pilot_threshold(data, p, seed=seed)

    trees: dict[bool, KDTree] = {}
    kernel = kernel_for_data(data)
    scaled = kernel.scale(data)
    for equiwidth in (False, True):
        trees[equiwidth] = KDTree(
            scaled, split_rule="trimmed_midpoint" if equiwidth else "median"
        )
    grid = GridCache(scaled, kernel)

    rows: list[Row] = []
    for label, use_threshold, use_tolerance, use_equiwidth, use_grid in steps:
        m = n_queries if use_threshold else slow_queries
        sample = scaled[rng.choice(n, size=min(m, n), replace=False)]
        tree = trees[use_equiwidth]
        stats = TraversalStats()
        with Timer() as timer:
            for query in sample:
                if use_grid and grid.is_certain_inlier(query, threshold, epsilon):
                    stats.grid_hits += 1
                    stats.queries += 1
                    continue
                bound_density(
                    tree, kernel, query, threshold, threshold, epsilon, stats,
                    use_threshold_rule=use_threshold,
                    use_tolerance_rule=use_tolerance,
                )
        rows.append(
            {
                "variant": label,
                "points_per_s": sample.shape[0] / max(timer.elapsed, 1e-12),
                "kernels_per_pt": stats.kernel_evaluations / sample.shape[0],
                "queries": sample.shape[0],
            }
        )
    _print_rows(rows, ["variant", "points_per_s", "kernels_per_pt", "queries"],
                title, verbose)
    return rows


def fig12_factor_analysis(
    n: int = 20_000,
    dim: int = 4,
    p: float = 0.01,
    epsilon: float = 0.01,
    n_queries: int = 2_000,
    slow_queries: int = 100,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 12: cumulative factor analysis of tKDC's optimizations."""
    return _optimization_analysis(
        _FACTOR_STEPS, "Figure 12: cumulative factor analysis (tmy3 d=4)",
        n, dim, p, epsilon, n_queries, slow_queries, seed, verbose,
    )


def fig16_lesion_analysis(
    n: int = 20_000,
    dim: int = 4,
    p: float = 0.01,
    epsilon: float = 0.01,
    n_queries: int = 2_000,
    slow_queries: int = 100,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 16: lesion analysis (remove one optimization at a time)."""
    return _optimization_analysis(
        _LESION_STEPS, "Figure 16: lesion analysis (tmy3 d=4)",
        n, dim, p, epsilon, n_queries, slow_queries, seed, verbose,
    )


# ----------------------------------------------------------------------
# Figure 13: rkde radius sweep
# ----------------------------------------------------------------------

def fig13_rkde_radius(
    radii: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
    n: int = 20_000,
    dim: int = 4,
    n_queries: int = 300,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 13: rkde throughput/accuracy vs cutoff radius, with a tKDC
    reference row.

    Small radii trade accuracy for speed; the density error column shows
    the truncation error relative to the threshold (the paper notes
    errors of order t for r <= 1.2 bandwidths).
    """
    rng = np.random.default_rng(seed + 1)
    data = load("tmy3", n=n, d=dim, seed=seed)
    queries = data[rng.choice(n, size=min(n_queries, n), replace=False)]
    threshold = pilot_threshold(data, p, seed=seed)
    exact = NaiveKDE().fit(data).density(queries)

    rows: list[Row] = []
    for radius in radii:
        estimator = RadialKDE(radius_in_bandwidths=radius).fit(data)
        with Timer() as timer:
            densities = estimator.density(queries)
        rows.append(
            {
                "algorithm": "rkde", "radius": radius,
                "queries_per_s": queries.shape[0] / max(timer.elapsed, 1e-12),
                "max_err_over_t": float(np.max(np.abs(densities - exact)) / threshold),
            }
        )
    trained = train_for_queries("tkdc", data, p=p, seed=seed)
    run = trained.classify(queries)
    rows.append(
        {
            "algorithm": "tkdc", "radius": float("nan"),
            "queries_per_s": run.query_throughput,
            "max_err_over_t": 0.0,
        }
    )
    _print_rows(rows, ["algorithm", "radius", "queries_per_s", "max_err_over_t"],
                "Figure 13: rkde radius sweep (tmy3 d=4)", verbose)
    return rows


# ----------------------------------------------------------------------
# Figure 14: mnist dimensionality sweep
# ----------------------------------------------------------------------

def fig14_mnist_dims(
    dims: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256),
    n: int = 4_000,
    n_queries: int = 150,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 14: query throughput vs dimensionality on mnist.

    Dimensions are PCA projections of the simulator, with the paper's
    3x bandwidth scaling; densities are unnormalized above d=64 (the
    Gaussian constant underflows float64 there — classification is
    scale-invariant, see DESIGN.md).
    """
    rng = np.random.default_rng(seed + 1)
    raw = load("mnist", n=n, seed=seed)
    rows: list[Row] = []
    for dim in dims:
        data = PCA(dim).fit_transform(raw) if dim < raw.shape[1] else raw
        queries = data[rng.choice(n, size=min(n_queries, n), replace=False)]
        for name in ("tkdc", "simple"):
            config = None
            if name == "tkdc":
                config = TKDCConfig(
                    p=p, seed=seed, bandwidth_scale=3.0,
                    normalize_densities=dim <= 64,
                    refine_threshold=False, bootstrap_s0=min(2000, n),
                )
            trained = train_for_queries(
                name, data, p=p, seed=seed, bandwidth_scale=3.0, tkdc_config=config
            )
            run = trained.classify(queries)
            rows.append(
                {
                    "d": dim, "n": n, "algorithm": name,
                    "queries_per_s": run.query_throughput,
                    "kernels_per_query": run.kernels_per_item,
                }
            )
    _print_rows(rows, ["d", "n", "algorithm", "queries_per_s", "kernels_per_query"],
                "Figure 14: mnist dimensionality sweep", verbose)
    return rows


# ----------------------------------------------------------------------
# Figure 15: quantile threshold sweep
# ----------------------------------------------------------------------

def fig15_threshold_sweep(
    quantiles: tuple[float, ...] = (0.01, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99),
    n: int = 20_000,
    dim: int = 4,
    n_queries: int = 400,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Figure 15: tKDC query throughput vs quantile threshold ``p``.

    The paper's U-shape: pruning is most effective at extreme quantiles
    where few points sit near the threshold. A simple-baseline reference
    row (p-independent) is appended for comparison.
    """
    rng = np.random.default_rng(seed + 1)
    data = load("tmy3", n=n, d=dim, seed=seed)
    queries = data[rng.choice(n, size=min(n_queries, n), replace=False)]
    rows: list[Row] = []
    for p in quantiles:
        trained = train_for_queries("tkdc", data, p=p, seed=seed)
        run = trained.classify(queries)
        rows.append(
            {
                "p": p, "algorithm": "tkdc",
                "queries_per_s": run.query_throughput,
                "kernels_per_query": run.kernels_per_item,
            }
        )
    simple = train_for_queries("simple", data, p=0.5, seed=seed).classify(queries)
    rows.append(
        {
            "p": float("nan"), "algorithm": "simple",
            "queries_per_s": simple.query_throughput,
            "kernels_per_query": simple.kernels_per_item,
        }
    )
    _print_rows(rows, ["p", "algorithm", "queries_per_s", "kernels_per_query"],
                "Figure 15: quantile threshold sweep (tmy3 d=4)", verbose)
    return rows


# ----------------------------------------------------------------------
# Section 2.3 motivation: raw density thresholds are unwieldy
# ----------------------------------------------------------------------

def motivation_thresholds(
    n: int = 4_000,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Section 2.3: why tKDC parameterizes by quantile, not raw density.

    The same p = 1% quantile corresponds to raw density values spanning
    many orders of magnitude across datasets/dimensionalities — "it is
    difficult to a priori set thresholds for new datasets". This
    experiment measures t(p) for each simulator.
    """
    rows: list[Row] = []
    for dataset, dim in [("gauss", 2), ("tmy3", 4), ("tmy3", 8),
                         ("home", 10), ("shuttle", 9), ("hep", 27)]:
        data = load(dataset, n=n, seed=seed)
        if data.shape[1] > dim:
            data = data[:, :dim]
        clf = TKDCClassifier(TKDCConfig(p=p, seed=seed)).fit(data)
        rows.append(
            {
                "dataset": dataset, "d": dim,
                "t_quantile_p": p,
                "t_raw_density": clf.threshold.value,
                "log10_t": float(np.log10(max(clf.threshold.value, 1e-300))),
            }
        )
    spread = max(row["log10_t"] for row in rows) - min(row["log10_t"] for row in rows)
    rows.append({"dataset": "SPREAD", "d": 0, "t_quantile_p": p,
                 "t_raw_density": float("nan"), "log10_t": spread})
    _print_rows(rows, ["dataset", "d", "t_quantile_p", "t_raw_density", "log10_t"],
                "Section 2.3: raw thresholds across datasets (same p)", verbose)
    return rows


# ----------------------------------------------------------------------
# Theorem 1 / Lemma 1: the Appendix A scaling claims
# ----------------------------------------------------------------------

def thm1_scaling(
    sizes: tuple[int, ...] = (1_000, 2_000, 4_000, 8_000, 16_000, 32_000),
    dim: int = 2,
    n_queries: int = 400,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Appendix A: measure the near-query fraction and per-query cost.

    A query is operationally *near* when its traversal had to evaluate
    leaf-level kernels (the index bounds alone could not classify it) —
    exactly Definition 1. Lemma 1 predicts the near fraction shrinks as
    ``n^(-1/d)``; Theorem 1 predicts kernel work grows as
    ``n^((d-1)/d)``. Summary rows report the fitted log-log slopes.
    """
    from repro.analysis.theory import fit_cost_scaling, fit_near_scaling

    rng = np.random.default_rng(seed + 1)
    rows: list[Row] = []
    near_fractions: list[float] = []
    kernel_costs: list[float] = []
    for size in sizes:
        data = load("gauss", n=size, d=dim, seed=seed)
        threshold = pilot_threshold(data, p, seed=seed)
        kernel = kernel_for_data(data)
        scaled = kernel.scale(data)
        tree = KDTree(scaled)
        queries = scaled[rng.choice(size, size=min(n_queries, size), replace=False)]
        near = 0
        total_kernels = 0
        for query in queries:
            stats = TraversalStats()
            bound_density(tree, kernel, query, threshold, threshold, 0.01, stats)
            total_kernels += stats.kernel_evaluations
            if stats.kernel_evaluations > 0:
                near += 1
        fraction = near / queries.shape[0]
        cost = total_kernels / queries.shape[0]
        near_fractions.append(max(fraction, 1e-6))
        kernel_costs.append(max(cost, 1e-6))
        rows.append(
            {"n": size, "near_fraction": fraction, "kernels_per_query": cost}
        )
    cost_fit = fit_cost_scaling(np.array(sizes, float), np.array(kernel_costs), dim)
    near_fit = fit_near_scaling(np.array(sizes, float), np.array(near_fractions), dim)
    rows.append(
        {
            "n": 0, "near_fraction": near_fit.fitted_exponent,
            "kernels_per_query": cost_fit.fitted_exponent,
        }
    )
    if verbose:
        print(f"\n== Theorem 1 scaling (gauss d={dim}) ==")
        print(f"cost slope: fitted {cost_fit.fitted_exponent:.3f} "
              f"vs bound {cost_fit.predicted_exponent:.3f}")
        print(f"near slope: fitted {near_fit.fitted_exponent:.3f} "
              f"vs bound {near_fit.predicted_exponent:.3f}")
    _print_rows(rows, ["n", "near_fraction", "kernels_per_query"],
                "Theorem 1: near fraction & cost vs n", verbose)
    return rows


# ----------------------------------------------------------------------
# Extra ablations beyond the paper (DESIGN.md Section 5)
# ----------------------------------------------------------------------

def ablation_priority_orders(
    n: int = 20_000,
    dim: int = 4,
    n_queries: int = 500,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Ablation: frontier orderings for the bounding traversal."""
    rng = np.random.default_rng(seed + 1)
    data = load("tmy3", n=n, d=dim, seed=seed)
    threshold = pilot_threshold(data, p, seed=seed)
    kernel = kernel_for_data(data)
    scaled = kernel.scale(data)
    tree = KDTree(scaled)
    sample = scaled[rng.choice(n, size=min(n_queries, n), replace=False)]

    rows: list[Row] = []
    for priority in ("discrepancy", "nearest", "fifo", "lifo"):
        stats = TraversalStats()
        with Timer() as timer:
            for query in sample:
                bound_density(
                    tree, kernel, query, threshold, threshold, epsilon, stats,
                    priority=priority,
                )
        rows.append(
            {
                "priority": priority,
                "points_per_s": sample.shape[0] / max(timer.elapsed, 1e-12),
                "kernels_per_pt": stats.kernel_evaluations / sample.shape[0],
            }
        )
    _print_rows(rows, ["priority", "points_per_s", "kernels_per_pt"],
                "Ablation: frontier priority orders", verbose)
    return rows


def ablation_leaf_size(
    leaf_sizes: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
    n: int = 20_000,
    dim: int = 4,
    n_queries: int = 500,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Ablation: k-d tree leaf size (vectorized leaf work vs pruning)."""
    rng = np.random.default_rng(seed + 1)
    data = load("tmy3", n=n, d=dim, seed=seed)
    threshold = pilot_threshold(data, p, seed=seed)
    kernel = kernel_for_data(data)
    scaled = kernel.scale(data)
    sample = scaled[rng.choice(n, size=min(n_queries, n), replace=False)]

    rows: list[Row] = []
    for leaf_size in leaf_sizes:
        tree = KDTree(scaled, leaf_size=leaf_size)
        stats = TraversalStats()
        with Timer() as timer:
            for query in sample:
                bound_density(tree, kernel, query, threshold, threshold, epsilon, stats)
        rows.append(
            {
                "leaf_size": leaf_size,
                "points_per_s": sample.shape[0] / max(timer.elapsed, 1e-12),
                "kernels_per_pt": stats.kernel_evaluations / sample.shape[0],
            }
        )
    _print_rows(rows, ["leaf_size", "points_per_s", "kernels_per_pt"],
                "Ablation: leaf size", verbose)
    return rows


def ablation_epsilon(
    epsilons: tuple[float, ...] = (0.001, 0.01, 0.05, 0.1, 0.5),
    n: int = 8_000,
    dim: int = 4,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Ablation: the tolerance parameter epsilon's work/accuracy trade.

    Epsilon only licenses errors inside ``±eps·t(p)``; larger values let
    both pruning rules fire earlier. Reports kernel work and the label
    disagreement vs. the exact classifier as epsilon grows.
    """
    data = load("tmy3", n=n, d=dim, seed=seed)
    exact = NaiveKDE().fit(data)
    densities = exact.density(data) - exact.kernel.max_value / n
    exact_threshold = quantile_of_sorted(np.sort(densities), p)
    exact_labels = (densities > exact_threshold).astype(np.int64)

    rows: list[Row] = []
    for epsilon in epsilons:
        config = TKDCConfig(p=p, epsilon=epsilon, seed=seed)
        run = run_amortized("tkdc", data, p=p, epsilon=epsilon, seed=seed,
                            tkdc_config=config)
        disagreement = float(np.mean(run.labels != exact_labels))
        rows.append(
            {
                "epsilon": epsilon,
                "kernels_per_pt": run.kernels_per_item,
                "throughput": run.amortized_throughput,
                "label_disagreement": disagreement,
            }
        )
    _print_rows(rows, ["epsilon", "kernels_per_pt", "throughput",
                       "label_disagreement"],
                "Ablation: epsilon work/accuracy trade (tmy3 d=4)", verbose)
    return rows


def ablation_tree_family(
    n: int = 10_000,
    dims: tuple[int, ...] = (2, 4, 8, 16),
    n_queries: int = 300,
    p: float = 0.01,
    epsilon: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Ablation: k-d tree (boxes) vs ball tree as the bound index.

    Both index families plug into the same traversal; box bounds are
    typically tighter in low dimensions while ball bounds resist box
    elongation as d grows.
    """
    from repro.index.balltree import BallTree

    rng = np.random.default_rng(seed + 1)
    rows: list[Row] = []
    for dim in dims:
        data = load("hep", n=n, seed=seed)[:, :dim]
        threshold = pilot_threshold(data, p, seed=seed)
        kernel = kernel_for_data(data)
        scaled = kernel.scale(data)
        sample = scaled[rng.choice(n, size=min(n_queries, n), replace=False)]
        for family, tree in (("kdtree", KDTree(scaled)), ("balltree", BallTree(scaled))):
            stats = TraversalStats()
            with Timer() as timer:
                for query in sample:
                    bound_density(tree, kernel, query, threshold, threshold,
                                  epsilon, stats)
            rows.append(
                {
                    "d": dim, "index": family,
                    "points_per_s": sample.shape[0] / max(timer.elapsed, 1e-12),
                    "kernels_per_pt": stats.kernel_evaluations / sample.shape[0],
                    "expansions_per_pt": stats.node_expansions / sample.shape[0],
                }
            )
    _print_rows(rows, ["d", "index", "points_per_s", "kernels_per_pt",
                       "expansions_per_pt"], "Ablation: index family (hep)", verbose)
    return rows


def ablation_kernels(
    n: int = 20_000,
    dim: int = 4,
    p: float = 0.01,
    seed: int = 0,
    verbose: bool = True,
) -> list[Row]:
    """Ablation: Gaussian vs Epanechnikov kernels under tKDC.

    The Epanechnikov kernel's finite support zeroes distant nodes
    exactly, which changes how often the threshold rule fires.
    """
    data = load("tmy3", n=n, d=dim, seed=seed)
    rows: list[Row] = []
    for kernel_name in ("gaussian", "epanechnikov"):
        config = TKDCConfig(p=p, seed=seed, kernel=kernel_name)
        run = run_amortized("tkdc", data, p=p, seed=seed, tkdc_config=config)
        rows.append(
            {
                "kernel": kernel_name,
                "throughput": run.amortized_throughput,
                "kernels_per_pt": run.kernels_per_item,
                "low_fraction": float(np.mean(run.labels == int(Label.LOW))),
            }
        )
    _print_rows(rows, ["kernel", "throughput", "kernels_per_pt", "low_fraction"],
                "Ablation: kernel family", verbose)
    return rows


#: Registry used by the CLI and the benchmark suite.
EXPERIMENTS = {
    "table2": table2_algorithms,
    "table3": table3_datasets,
    "fig1": fig1_shuttle_classification,
    "fig7": fig7_throughput,
    "fig8": fig8_accuracy,
    "fig9": fig9_scaling_n,
    "fig10": fig10_scaling_hep,
    "fig11": fig11_dims,
    "fig12": fig12_factor_analysis,
    "fig13": fig13_rkde_radius,
    "fig14": fig14_mnist_dims,
    "fig15": fig15_threshold_sweep,
    "fig16": fig16_lesion_analysis,
    "thm1": thm1_scaling,
    "motivation": motivation_thresholds,
    "ablation-priority": ablation_priority_orders,
    "ablation-leafsize": ablation_leaf_size,
    "ablation-kernel": ablation_kernels,
    "ablation-tree": ablation_tree_family,
    "ablation-epsilon": ablation_epsilon,
}
