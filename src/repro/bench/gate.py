"""Bench regression gate: rerun smoke workloads, compare to baselines.

The committed ``BENCH_*.json`` reports at the repo root record the perf
trajectory across commits. This module re-runs *smoke-sized* versions of
the key workloads and compares the machine-independent and
machine-tolerant metrics against those baselines:

- **labels_match** (hard): the batch engine must reproduce the per-query
  engine's labels bit-for-bit — any mismatch fails the gate outright;
- **kernels_per_query** (tight, default ±2%): the paper's
  machine-independent cost proxy. Traversal is deterministic given the
  seed, so a drift here means the pruning logic changed, not the
  machine;
- **batch speedup** (loose, default ≥ 45% of baseline): wall-clock
  ratios are noisy on shared CI runners, so only a gross regression —
  e.g. the batch engine silently falling back to per-query — trips it;
- **coreset outside-band agreement** (default ≥ baseline min − 0.02):
  the certificate's accountability metric from ``BENCH_coreset.json``;
- **serving fleet** (baseline validation): the committed
  ``BENCH_serving.json`` must have a balanced accounting invariant
  (hard) and a multi-process throughput-scaling ratio above a floor
  keyed to the core count the baseline was recorded on — 2.5x on ≥4
  cores, relaxed on smaller machines where the scaling is physically
  unreachable. The serving bench itself is too heavy to re-run inside
  the gate, so this validates the committed report rather than
  measuring fresh.
- **streaming refit loop** (baseline validation): the committed
  ``BENCH_robustness.json`` streaming row must record a converged drift
  episode with exact accounting (hard), a detection→swap window inside
  the pipeline's own declared staleness bound (hard), and a mid-drift
  label lag of at most ``streaming_label_lag_ceiling`` points (the
  exact-buffer path must flip new-mode answers long before the refit
  lands). Validates the committed report; the drift episode itself runs
  under ``make bench-robustness``.
- **hbe engine** (baseline validation): the committed ``BENCH_hbe.json``
  must show outside-band label agreement of exactly 1.0 at *every*
  dimensionality (hard — the fall-back-on-straddle design makes parity
  structural, so anything less is a bug, not noise) and a speedup over
  the batch engine of at least ``hbe_speedup_floor`` (default 5x)
  wherever hashing claims the win (d ≥ 32). Like the serving check this
  validates the committed report; the hbe bench itself is n=50k and too
  heavy for the gate.

The same :func:`traversal_smoke_rows` produces both the baseline's
smoke section (via ``benchmarks/bench_batch_traversal.py``) and the
gate's fresh measurement — and both now measure through the
orchestrator's one-code-path runner
(:mod:`repro.orchestrator.runner`), so the two sides can never diverge
by construction. With ``--from-store``, the fresh measurement is
replaced by the newest matching trial records in the orchestrator's
results store (``.repro-bench/``) — refused loudly when their build
identity is not the current HEAD, because comparing a baseline against
stale-build numbers would let a regression gate itself in. Run via
``make bench-gate`` or ``scripts/bench_gate.py``; exits non-zero on any
failed check.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.classifier import TKDCClassifier
from repro.core.config import TKDCConfig
from repro.coresets.validate import exact_density
from repro.datasets.registry import load
from repro.obs.buildinfo import build_info
from repro.orchestrator.runner import fit_for_trial, measure_engine, query_block
from repro.orchestrator.spec import Trial
from repro.orchestrator.store import DEFAULT_STORE_ROOT, ResultsStore

#: Repo root — where the committed ``BENCH_*.json`` baselines live.
REPO_ROOT = Path(__file__).resolve().parents[3]

#: The traversal smoke workload: big enough that the batch engine's
#: amortization shows, small enough to finish in seconds on one core.
SMOKE_DATASET = "gauss"
SMOKE_N = 8_000
SMOKE_QUERIES = 256

#: The coreset smoke workload (mirrors bench_coreset's ``--smoke``).
CORESET_SMOKE = ("gauss", 5_000, 200, "uniform", 0.05)


@dataclass(frozen=True)
class GateTolerances:
    """How far a fresh smoke run may drift from the committed baseline."""

    #: Measured batch speedup must be at least this fraction of the
    #: baseline's (wall-clock is noisy; this catches only gross loss).
    min_speedup_fraction: float = 0.45
    #: Relative tolerance on kernels/query (deterministic given seed).
    kernels_rel_tol: float = 0.02
    #: Outside-band agreement may sit this far below the baseline's
    #: minimum over certified coreset rows.
    agreement_slack: float = 0.02
    #: Fleet answered/s at max workers must reach this multiple of the
    #: workers=1 throughput — when the baseline machine had ≥4 cores.
    #: On 2–3 cores the floor relaxes to 1.3x; on 1 core only a
    #: no-collapse floor of 0.8x applies (a fleet that *loses* 20%+
    #: throughput to its own routing overhead is a regression anywhere).
    fleet_scaling_floor: float = 2.5
    #: Committed streaming drift episode may need at most this many
    #: post-drift points before the exact-buffer path flips a new-mode
    #: probe HIGH (mid-drift label lag).
    streaming_label_lag_ceiling: int = 2048
    #: Committed WAL crash-recovery rows must replay within this many
    #: seconds (the bench workloads are small; anything slower means
    #: replay went quadratic or re-fits per record).
    recovery_seconds_ceiling: float = 5.0
    #: Committed hbe bench rows at d >= hbe_speedup_dim must beat the
    #: batch engine by at least this factor.
    hbe_speedup_floor: float = 5.0
    #: Dimensionality from which the speedup floor applies (below it the
    #: hbe engine only promises parity, not wins).
    hbe_speedup_dim: int = 32


def scaling_floor_for_cores(cpu_count: int, full_floor: float) -> float:
    """The scaling the recorded machine could physically deliver."""
    if cpu_count >= 4:
        return full_floor
    if cpu_count >= 2:
        return min(full_floor, 1.3)
    return min(full_floor, 0.8)


@dataclass
class GateCheck:
    """One comparison against the baseline, with its verdict."""

    name: str
    ok: bool
    measured: float
    reference: float
    detail: str

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"{status}  {self.name}: measured {self.measured:.4g} "
            f"vs reference {self.reference:.4g} ({self.detail})"
        )


class GateStoreError(RuntimeError):
    """``--from-store`` cannot produce trustworthy gate rows."""


def traversal_smoke_rows(
    dataset: str = SMOKE_DATASET,
    n: int = SMOKE_N,
    n_queries: int = SMOKE_QUERIES,
    seed: int = 0,
) -> list[dict]:
    """Time both engines on the smoke workload; one row per engine.

    Shared between ``benchmarks/bench_batch_traversal.py`` (which
    commits these rows into the baseline under ``section: "smoke"``)
    and :func:`run_gate` (which re-measures them), so both sides of the
    comparison come from the same code path. The measurement itself is
    the orchestrator's trial runner — one fit, then one
    :func:`~repro.orchestrator.runner.measure_engine` pass per engine —
    the exact functions a ``tkdc bench run`` trial executes.
    """
    base_trial = Trial(
        experiment="gate", dataset=dataset, n=n, n_queries=n_queries,
        engine="per-query", seed=seed,
    )
    clf, data, queries = fit_for_trial(base_trial)
    rows: list[dict] = []
    reference_digest: str | None = None
    for engine in ("per-query", "batch"):
        metrics, __ = measure_engine(
            clf, queries, replace(base_trial, engine=engine)
        )
        if reference_digest is None:
            reference_digest = metrics["labels_sha256"]
        rows.append({
            "section": "smoke",
            "dataset": dataset,
            "n": n,
            "dim": data.shape[1],
            "n_queries": n_queries,
            "engine": engine,
            "n_jobs": 1,
            "seed": seed,
            "seconds": metrics["seconds"],
            "queries_per_s": metrics["queries_per_s"],
            "kernels_per_query": metrics["kernels_per_query"],
            "labels_match_per_query": (
                metrics["labels_sha256"] == reference_digest
            ),
        })
    base = rows[0]["queries_per_s"]
    for row in rows:
        row["speedup_vs_per_query"] = row["queries_per_s"] / base
    return rows


def _smoke_record_matches(config: dict, seed: int, record_seed: int) -> bool:
    return (
        config.get("dataset") == SMOKE_DATASET
        and config.get("n") == SMOKE_N
        and config.get("n_queries") == SMOKE_QUERIES
        and config.get("engine") in ("per-query", "batch")
        and config.get("coreset") is None
        and config.get("fault_plan") is None
        and config.get("jobs") == 1
        and record_seed == seed
    )


def traversal_rows_from_store(
    store_root: Path | str = DEFAULT_STORE_ROOT,
    experiment: str | None = None,
    seed: int = 0,
) -> list[dict]:
    """Gate smoke rows from the orchestrator's results store.

    Finds the newest experiment (or the named one) holding completed
    smoke-scenario trials for both engines at this seed, and converts
    them to the same row shape :func:`traversal_smoke_rows` measures
    fresh. Refuses loudly — :class:`GateStoreError` — when no such
    records exist or when their recorded build identity differs from
    the current checkout: gating against another build's numbers would
    certify the wrong code.
    """
    store = ResultsStore(store_root)

    def smoke_records(records: list[dict]) -> dict[str, dict]:
        by_engine: dict[str, dict] = {}
        for record in records:
            if record.get("status") != "done":
                continue
            config = record.get("config", {})
            if _smoke_record_matches(config, seed, record.get("seed")):
                by_engine[config["engine"]] = record
        return by_engine

    if experiment is None:
        experiment = store.latest_experiment(
            lambda records: len(smoke_records(records)) == 2
        )
        if experiment is None:
            raise GateStoreError(
                f"no experiment under {store.root} holds completed smoke "
                f"trials for both engines at seed {seed} — run "
                "`tkdc bench run --suite smoke` first"
            )
    by_engine = smoke_records(store.records(experiment))
    missing = [e for e in ("per-query", "batch") if e not in by_engine]
    if missing:
        raise GateStoreError(
            f"experiment {experiment!r} has no completed smoke trial for "
            f"engine(s) {', '.join(missing)} at seed {seed} — run "
            "`tkdc bench run --suite smoke` (or resume it) first"
        )
    head = build_info()["git"]
    for record in by_engine.values():
        recorded = record.get("build", {}).get("git", "unknown")
        if recorded != head:
            raise GateStoreError(
                f"experiment {experiment!r} was recorded on build "
                f"{recorded}, but HEAD is {head} — refusing to gate "
                "against another build's numbers; re-run "
                "`tkdc bench run --suite smoke` on this checkout"
            )
    print(f"bench-gate: traversal rows from store experiment "
          f"{experiment!r} (build {head})")
    rows = []
    reference_digest = by_engine["per-query"]["metrics"]["labels_sha256"]
    for engine in ("per-query", "batch"):
        record = by_engine[engine]
        metrics = record["metrics"]
        rows.append({
            "section": "smoke",
            "dataset": SMOKE_DATASET,
            "n": SMOKE_N,
            "dim": metrics.get("dim"),
            "n_queries": SMOKE_QUERIES,
            "engine": engine,
            "n_jobs": 1,
            "seed": seed,
            "seconds": metrics["seconds"],
            "queries_per_s": metrics["queries_per_s"],
            "kernels_per_query": metrics["kernels_per_query"],
            "labels_match_per_query": (
                metrics["labels_sha256"] == reference_digest
            ),
        })
    base = rows[0]["queries_per_s"]
    for row in rows:
        row["speedup_vs_per_query"] = row["queries_per_s"] / base
    return rows


def coreset_smoke_row(seed: int = 0) -> dict:
    """One coreset-vs-uncompressed agreement measurement (smoke size)."""
    dataset, n, n_queries, method, fraction = CORESET_SMOKE
    data = load(dataset, n=n, seed=seed)
    queries = query_block(data, n_queries, np.random.default_rng(seed + 1))
    base_config = TKDCConfig(
        p=0.01, seed=seed, refine_threshold=False, bootstrap_s0=min(2000, n)
    )

    base = TKDCClassifier(base_config).fit(data)
    base_labels = base.predict(queries)
    t_base = base.threshold.value
    scaled = base.kernel.scale(data)
    f_exact = exact_density(scaled, base.kernel, base.kernel.scale(queries))

    clf = TKDCClassifier(
        base_config.with_updates(coreset=method, coreset_fraction=fraction)
    ).fit(data)
    labels = clf.predict(queries)

    # The widened band where the certificate permits a label flip (see
    # benchmarks/bench_coreset.py for the derivation).
    eta = clf.coreset_.eta
    band = base_config.epsilon * t_base + 2.0 * eta
    outside = np.abs(f_exact - t_base) > band
    agree = labels == base_labels
    return {
        "dataset": dataset,
        "n": n,
        "n_queries": n_queries,
        "method": method,
        "fraction": fraction,
        "certified": bool(clf.certified),
        "label_agreement": float(np.mean(agree)),
        "agreement_outside_band": (
            float(np.mean(agree[outside])) if outside.any() else 1.0
        ),
    }


def load_report(baseline_dir: Path, name: str) -> dict | None:
    path = Path(baseline_dir) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _check_traversal(
    baseline: dict | None,
    tolerances: GateTolerances,
    seed: int,
    rows: list[dict] | None = None,
) -> list[GateCheck]:
    checks: list[GateCheck] = []
    measured = rows if rows is not None else traversal_smoke_rows(seed=seed)

    for row in measured:
        checks.append(GateCheck(
            name=f"labels_match[{row['engine']}]",
            ok=bool(row["labels_match_per_query"]),
            measured=float(row["labels_match_per_query"]),
            reference=1.0,
            detail="batch engine must replicate per-query labels exactly",
        ))

    if baseline is None:
        checks.append(GateCheck(
            name="baseline[batch_traversal]", ok=False,
            measured=0.0, reference=1.0,
            detail="BENCH_batch_traversal.json missing from baseline dir",
        ))
        return checks
    base_rows = {
        r["engine"]: r
        for r in baseline.get("rows", ())
        if r.get("section") == "smoke"
    }
    if not base_rows:
        checks.append(GateCheck(
            name="baseline[batch_traversal.smoke]", ok=False,
            measured=0.0, reference=1.0,
            detail="baseline has no smoke section; regenerate it with "
                   "`make bench-batch`",
        ))
        return checks

    for row in measured:
        base = base_rows.get(row["engine"])
        if base is None or "kernels_per_query" not in base:
            checks.append(GateCheck(
                name=f"baseline[{row['engine']}]", ok=False,
                measured=0.0, reference=1.0,
                detail="baseline smoke row missing for this engine",
            ))
            continue
        expected = float(base["kernels_per_query"])
        got = float(row["kernels_per_query"])
        drift = abs(got - expected) / expected if expected else 0.0
        checks.append(GateCheck(
            name=f"kernels_per_query[{row['engine']}]",
            ok=drift <= tolerances.kernels_rel_tol,
            measured=got,
            reference=expected,
            detail=f"drift {drift:.2%} (tolerance "
                   f"{tolerances.kernels_rel_tol:.0%}; deterministic "
                   "cost proxy — drift means pruning behaviour changed)",
        ))

    got_speedup = next(
        r["speedup_vs_per_query"] for r in measured if r["engine"] == "batch"
    )
    base_speedup = float(base_rows["batch"]["speedup_vs_per_query"])
    floor = base_speedup * tolerances.min_speedup_fraction
    checks.append(GateCheck(
        name="batch_speedup",
        ok=got_speedup >= floor,
        measured=got_speedup,
        reference=floor,
        detail=f"baseline {base_speedup:.2f}x × "
               f"{tolerances.min_speedup_fraction:.0%} floor",
    ))
    return checks


def _check_coreset(
    baseline: dict | None, tolerances: GateTolerances, seed: int
) -> list[GateCheck]:
    row = coreset_smoke_row(seed=seed)
    if baseline is None:
        return [GateCheck(
            name="baseline[coreset]", ok=False,
            measured=0.0, reference=1.0,
            detail="BENCH_coreset.json missing from baseline dir",
        )]
    reference_rows = [
        float(r["agreement_outside_band"])
        for r in baseline.get("rows", ())
        if r.get("method") not in (None, "none") and r.get("certified")
    ]
    reference = min(reference_rows) if reference_rows else 1.0
    floor = reference - tolerances.agreement_slack
    return [GateCheck(
        name="coreset_agreement_outside_band",
        ok=row["agreement_outside_band"] >= floor,
        measured=row["agreement_outside_band"],
        reference=floor,
        detail=f"baseline min {reference:.3f} − "
               f"{tolerances.agreement_slack} slack "
               f"(smoke: {row['method']} k/n={row['fraction']:.0%}, "
               f"certified={row['certified']})",
    )]


def _check_serving(
    baseline: dict | None, tolerances: GateTolerances
) -> list[GateCheck]:
    """Validate the committed serving baseline (no fresh measurement)."""
    if baseline is None:
        return [GateCheck(
            name="baseline[serving]", ok=False,
            measured=0.0, reference=1.0,
            detail="BENCH_serving.json missing from baseline dir",
        )]
    checks: list[GateCheck] = []

    accounting = baseline.get("accounting", {})
    checks.append(GateCheck(
        name="serving_accounting_balanced",
        ok=bool(accounting.get("balanced")),
        measured=float(accounting.get("terminal", 0)),
        reference=float(accounting.get("submitted", 0)),
        detail="every submitted request must land in exactly one "
               "terminal counter",
    ))

    scaling = baseline.get("fleet_scaling")
    if not scaling:
        checks.append(GateCheck(
            name="baseline[serving.fleet_scaling]", ok=False,
            measured=0.0, reference=1.0,
            detail="baseline has no fleet_scaling section; regenerate it "
                   "with `make bench-serving`",
        ))
        return checks
    cpu_count = int(scaling.get("cpu_count", 1))
    ratio = float(scaling.get("scaling_ratio", 0.0))
    floor = scaling_floor_for_cores(cpu_count, tolerances.fleet_scaling_floor)
    checks.append(GateCheck(
        name="fleet_throughput_scaling",
        ok=ratio >= floor,
        measured=ratio,
        reference=floor,
        detail=f"workers={scaling.get('max_workers')} vs workers=1 "
               f"answered/s on a {cpu_count}-core recording machine "
               f"(full floor {tolerances.fleet_scaling_floor}x at ≥4 "
               "cores)",
    ))
    return checks


def _check_robustness(
    baseline: dict | None, tolerances: GateTolerances
) -> list[GateCheck]:
    """Validate the committed robustness/streaming baseline."""
    if baseline is None:
        return [GateCheck(
            name="baseline[robustness]", ok=False,
            measured=0.0, reference=1.0,
            detail="BENCH_robustness.json missing from baseline dir",
        )]
    streaming = next(
        (r for r in baseline.get("rows", ())
         if r.get("section") == "streaming"),
        None,
    )
    if streaming is None:
        return [GateCheck(
            name="baseline[robustness.streaming]", ok=False,
            measured=0.0, reference=1.0,
            detail="baseline has no streaming row; regenerate it with "
                   "`make bench-robustness`",
        )]
    checks = [GateCheck(
        name="streaming_drift_converged",
        ok=bool(streaming.get("converged"))
        and bool(streaming.get("accounting_ok")),
        measured=float(bool(streaming.get("converged"))),
        reference=1.0,
        detail="the scripted drift episode must swap in a refit model "
               "with the conservation accounting intact",
    )]
    window = streaming.get("detect_to_swap_seconds")
    bound = streaming.get("staleness_bound_seconds")
    checks.append(GateCheck(
        name="streaming_staleness_within_bound",
        ok=window is not None and bound is not None and window <= bound,
        measured=float(window if window is not None else -1.0),
        reference=float(bound if bound is not None else 0.0),
        detail="detection->swap must finish inside the pipeline's own "
               "declared staleness bound",
    ))
    lag = streaming.get("label_lag_points")
    checks.append(GateCheck(
        name="streaming_label_lag",
        ok=lag is not None and lag <= tolerances.streaming_label_lag_ceiling,
        measured=float(lag if lag is not None else -1.0),
        reference=float(tolerances.streaming_label_lag_ceiling),
        detail="post-drift points before the exact-buffer path flips a "
               "new-mode probe HIGH (answers must move well before the "
               "refit lands)",
    ))
    recoveries = [
        r for r in baseline.get("rows", ())
        if r.get("section") == "durability" and r.get("variant") == "recovery"
    ]
    if not recoveries:
        checks.append(GateCheck(
            name="baseline[robustness.durability]", ok=False,
            measured=0.0, reference=1.0,
            detail="baseline has no durability recovery rows; regenerate "
                   "it with `make bench-robustness`",
        ))
        return checks
    worst_loss = max(int(r.get("acknowledged_loss", -1)) for r in recoveries)
    checks.append(GateCheck(
        name="durability_zero_acknowledged_loss",
        ok=worst_loss == 0 and all(
            bool(r.get("conservation_ok")) for r in recoveries
        ),
        measured=float(worst_loss),
        reference=0.0,
        detail="every point acknowledged before the simulated crash must "
               "be in the recovered total, with conservation intact — "
               "exactly zero loss, not approximately",
    ))
    worst_recovery = max(
        float(r.get("recovery_seconds", float("inf"))) for r in recoveries
    )
    checks.append(GateCheck(
        name="durability_recovery_time",
        ok=worst_recovery <= tolerances.recovery_seconds_ceiling,
        measured=worst_recovery,
        reference=tolerances.recovery_seconds_ceiling,
        detail="WAL replay on the bench workloads must stay comfortably "
               "sub-second-scale; a blowout means replay re-fits or "
               "re-scans per record",
    ))
    return checks


def _check_hbe(
    baseline: dict | None, tolerances: GateTolerances
) -> list[GateCheck]:
    """Validate the committed hbe baseline (no fresh measurement)."""
    if baseline is None:
        return [GateCheck(
            name="baseline[hbe]", ok=False,
            measured=0.0, reference=1.0,
            detail="BENCH_hbe.json missing from baseline dir",
        )]
    rows = [r for r in baseline.get("rows", ()) if "dim" in r]
    if not rows:
        return [GateCheck(
            name="baseline[hbe.rows]", ok=False,
            measured=0.0, reference=1.0,
            detail="baseline has no rows; regenerate it with "
                   "`make bench-hbe`",
        )]
    checks: list[GateCheck] = []
    worst_agreement = min(
        float(r.get("agreement_outside_band", 0.0)) for r in rows
    )
    checks.append(GateCheck(
        name="hbe_agreement_outside_band",
        ok=worst_agreement >= 1.0,
        measured=worst_agreement,
        reference=1.0,
        detail="outside-band parity with the batch engine is structural "
               "(straddle queries fall back to the tree) — must be "
               "exactly 1.0 at every dimensionality",
    ))
    high_dim = [r for r in rows if int(r["dim"]) >= tolerances.hbe_speedup_dim]
    if not high_dim:
        checks.append(GateCheck(
            name=f"baseline[hbe.d>={tolerances.hbe_speedup_dim}]", ok=False,
            measured=0.0, reference=1.0,
            detail="baseline has no high-dimensional rows; regenerate it "
                   "with `make bench-hbe`",
        ))
        return checks
    worst_speedup = min(float(r.get("speedup_vs_batch", 0.0)) for r in high_dim)
    checks.append(GateCheck(
        name="hbe_speedup_vs_batch",
        ok=worst_speedup >= tolerances.hbe_speedup_floor,
        measured=worst_speedup,
        reference=tolerances.hbe_speedup_floor,
        detail=f"minimum over committed rows at d >= "
               f"{tolerances.hbe_speedup_dim} "
               f"(dims {sorted(int(r['dim']) for r in high_dim)})",
    ))
    return checks


def run_gate(
    baseline_dir: Path | str = REPO_ROOT,
    tolerances: GateTolerances | None = None,
    seed: int = 0,
    skip_coreset: bool = False,
    from_store: bool = False,
    store_root: Path | str = DEFAULT_STORE_ROOT,
    store_experiment: str | None = None,
) -> list[GateCheck]:
    """Run every gate check; returns the full list of verdicts.

    With ``from_store=True`` the traversal smoke rows come from the
    orchestrator's results store instead of a fresh measurement —
    raising :class:`GateStoreError` when no current-build records
    qualify.
    """
    baseline_dir = Path(baseline_dir)
    tolerances = tolerances if tolerances is not None else GateTolerances()
    stored_rows = (
        traversal_rows_from_store(store_root, store_experiment, seed)
        if from_store else None
    )
    checks = _check_traversal(
        load_report(baseline_dir, "batch_traversal"), tolerances, seed,
        rows=stored_rows,
    )
    if not skip_coreset:
        checks.extend(_check_coreset(
            load_report(baseline_dir, "coreset"), tolerances, seed
        ))
    checks.extend(_check_serving(
        load_report(baseline_dir, "serving"), tolerances
    ))
    checks.extend(_check_robustness(
        load_report(baseline_dir, "robustness"), tolerances
    ))
    checks.extend(_check_hbe(
        load_report(baseline_dir, "hbe"), tolerances
    ))
    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench-gate",
        description="Rerun smoke benchmarks and fail on regression vs "
                    "the committed BENCH_*.json baselines.",
    )
    parser.add_argument(
        "--baseline-dir", default=str(REPO_ROOT),
        help="directory holding BENCH_*.json (default: repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-coreset", action="store_true",
        help="skip the coreset agreement check (traversal only)",
    )
    parser.add_argument(
        "--from-store", nargs="?", const="", default=None,
        metavar="EXPERIMENT",
        help="take the traversal smoke rows from the orchestrator's "
             "results store instead of measuring fresh — from this "
             "experiment, or the newest matching one when no name is "
             "given; refused loudly unless the records' build matches "
             "HEAD",
    )
    parser.add_argument(
        "--store", default=str(DEFAULT_STORE_ROOT),
        help="results store root for --from-store (default: .repro-bench)",
    )
    parser.add_argument(
        "--min-speedup-fraction", type=float,
        default=GateTolerances.min_speedup_fraction,
        help="measured batch speedup must reach this fraction of baseline",
    )
    parser.add_argument(
        "--kernels-rel-tol", type=float,
        default=GateTolerances.kernels_rel_tol,
        help="relative tolerance on kernels/query vs baseline",
    )
    parser.add_argument(
        "--agreement-slack", type=float,
        default=GateTolerances.agreement_slack,
        help="allowed drop below the baseline's outside-band agreement",
    )
    parser.add_argument(
        "--fleet-scaling-floor", type=float,
        default=GateTolerances.fleet_scaling_floor,
        help="required fleet throughput scaling (max workers vs 1) when "
             "the baseline machine had >=4 cores; auto-relaxed below",
    )
    parser.add_argument(
        "--streaming-label-lag-ceiling", type=int,
        default=GateTolerances.streaming_label_lag_ceiling,
        help="max mid-drift label lag (points) in the committed "
             "BENCH_robustness.json streaming row",
    )
    parser.add_argument(
        "--recovery-seconds-ceiling", type=float,
        default=GateTolerances.recovery_seconds_ceiling,
        help="max WAL crash-recovery replay seconds in the committed "
             "BENCH_robustness.json durability rows",
    )
    parser.add_argument(
        "--hbe-speedup-floor", type=float,
        default=GateTolerances.hbe_speedup_floor,
        help="required hbe-vs-batch speedup in the committed "
             "BENCH_hbe.json at d >= 32",
    )
    args = parser.parse_args(argv)

    info = build_info()
    print(f"bench-gate: repro {info['version']} ({info['git']}), "
          f"python {info['python']}, baselines from {args.baseline_dir}")
    try:
        checks = run_gate(
            baseline_dir=args.baseline_dir,
            tolerances=GateTolerances(
                min_speedup_fraction=args.min_speedup_fraction,
                kernels_rel_tol=args.kernels_rel_tol,
                agreement_slack=args.agreement_slack,
                fleet_scaling_floor=args.fleet_scaling_floor,
                streaming_label_lag_ceiling=args.streaming_label_lag_ceiling,
                recovery_seconds_ceiling=args.recovery_seconds_ceiling,
                hbe_speedup_floor=args.hbe_speedup_floor,
            ),
            seed=args.seed,
            skip_coreset=args.skip_coreset,
            from_store=args.from_store is not None,
            store_root=args.store,
            store_experiment=args.from_store or None,
        )
    except GateStoreError as exc:
        print(f"bench-gate: {exc}", file=sys.stderr)
        return 2
    for check in checks:
        print(check.render())
    failed = [check for check in checks if not check.ok]
    if failed:
        print(f"bench-gate: {len(failed)}/{len(checks)} checks FAILED",
              file=sys.stderr)
        return 1
    print(f"bench-gate: all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/
    sys.exit(main())
