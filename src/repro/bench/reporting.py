"""Console tables and JSON capture for benchmark results."""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Iterable, Mapping

#: Default directory (under the repo root) where experiment runs are saved.
DEFAULT_RESULTS_DIR = Path("results")


class ConsoleTable:
    """Minimal aligned-column table printer for benchmark output.

    >>> table = ConsoleTable(["algo", "qps"])
    >>> table.add_row({"algo": "tkdc", "qps": 55200})
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    algo | qps
    -----+------
    tkdc | 55200
    """

    def __init__(self, columns: list[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = columns
        self.rows: list[dict[str, str]] = []

    def add_row(self, row: Mapping[str, object]) -> None:
        """Add one row; values are formatted with :func:`format_value`."""
        self.rows.append({col: format_value(row.get(col, "")) for col in self.columns})

    def render(self) -> str:
        widths = {
            col: max(len(col), *(len(row[col]) for row in self.rows)) if self.rows else len(col)
            for col in self.columns
        }
        header = " | ".join(col.ljust(widths[col]) for col in self.columns)
        rule = "-+-".join("-" * widths[col] for col in self.columns)
        lines = [header.rstrip(), rule]
        for row in self.rows:
            lines.append(" | ".join(row[col].ljust(widths[col]) for col in self.columns).rstrip())
        return "\n".join(lines)

    def print(self, title: str | None = None) -> None:
        if title:
            print(f"\n== {title} ==")
        print(self.render())


def format_value(value: object) -> str:
    """Human-friendly scalar formatting (3 significant digits for floats)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def report_metadata() -> dict:
    """Provenance header stamped into every ``BENCH_*.json`` report.

    Carries the interpreter, the machine, and the library's build
    identity (version + git describe) so each point on the committed
    perf trajectory is attributable to the exact tree that produced it.
    """
    # Imported here, not at module top: buildinfo pulls in the repro
    # package root, and reporting must stay importable very early.
    from repro.obs.buildinfo import build_info

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "build": build_info(),
    }


def save_results(
    name: str, rows: Iterable[Mapping[str, object]], directory: Path | str | None = None
) -> Path:
    """Persist experiment rows as JSON under the results directory.

    Returns the written path. Rows must be JSON-serializable after float
    coercion (numpy scalars are converted).
    """
    # Imported here: repro.io's package init imports this module back
    # (load_results needs DEFAULT_RESULTS_DIR), so a top-level import
    # would be circular.
    from repro.io.atomic import atomic_write_text

    directory = Path(directory) if directory is not None else DEFAULT_RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.json"
    serializable = [
        {key: _to_builtin(value) for key, value in row.items()} for row in rows
    ]
    # Temp-then-rename: an interrupted run never truncates the previous
    # good results file.
    atomic_write_text(path, json.dumps(serializable, indent=2))
    return path


def _to_builtin(value: object) -> object:
    """Coerce numpy scalars and other simple types to JSON builtins."""
    if hasattr(value, "item"):
        return value.item()  # type: ignore[union-attr]
    return value
