"""Timing and curve-fitting primitives for the benchmark suite."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

T = TypeVar("T")


@dataclass
class Timer:
    """A context manager recording wall-clock elapsed seconds.

    >>> with Timer() as timer:
    ...     __ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = field(default=0.0)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def measure(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once, returning ``(result, elapsed_seconds)``."""
    with Timer() as timer:
        result = fn()
    return result, timer.elapsed


def throughput(items: int, seconds: float) -> float:
    """Items per second, guarding against zero-duration measurements."""
    if items < 0:
        raise ValueError(f"items must be non-negative, got {items}")
    return items / max(seconds, 1e-12)


def fit_loglog_slope(xs: np.ndarray, ys: np.ndarray) -> float:
    """Least-squares slope of ``log(y)`` against ``log(x)``.

    Used to verify the paper's asymptotic claims: query cost growing as
    ``n^((d-1)/d)`` shows up as a throughput slope near ``-(d-1)/d`` on a
    size sweep (Figures 9 and 10).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be 1-d arrays of equal length")
    if xs.shape[0] < 2:
        raise ValueError("need at least two points to fit a slope")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ValueError("log-log fit requires strictly positive data")
    slope, __ = np.polyfit(np.log(xs), np.log(ys), deg=1)
    return float(slope)


def human_rate(rate: float) -> str:
    """Format a throughput like the paper's figures (55.2k, 6.36M)."""
    if rate >= 1e6:
        return f"{rate / 1e6:.3g}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.3g}k"
    return f"{rate:.3g}"
