"""Benchmark harness: regenerates every table and figure in the paper.

- :mod:`repro.bench.harness` — timing, throughput, log-log slope fits;
- :mod:`repro.bench.reporting` — console tables and JSON result capture;
- :mod:`repro.bench.algorithms` — uniform drivers for every algorithm in
  the paper's Table 2, under the paper's two measurement protocols
  (amortized train+classify, and query-only);
- :mod:`repro.bench.experiments` — one function per paper table/figure.
"""

from repro.bench.algorithms import (
    AMORTIZED_ALGORITHMS,
    AlgorithmRun,
    run_amortized,
    train_for_queries,
)
from repro.bench.harness import Timer, fit_loglog_slope, measure
from repro.bench.reporting import ConsoleTable, save_results

__all__ = [
    "AMORTIZED_ALGORITHMS",
    "AlgorithmRun",
    "run_amortized",
    "train_for_queries",
    "Timer",
    "measure",
    "fit_loglog_slope",
    "ConsoleTable",
    "save_results",
]
