"""Dependency-free SVG rendering of benchmark figures.

The ASCII charts (:mod:`repro.bench.charts`) serve the terminal; this
module writes the same line/bar figures as standalone ``.svg`` files so
experiment runs can leave shareable pictures under ``results/`` without
a plotting dependency. The generator emits a small, readable subset of
SVG: axes, grid-free plot area, polyline series with point markers, and
a legend.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Sequence

#: Series colours (colour-blind-safe qualitative palette).
PALETTE = ("#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9")

#: Canvas geometry.
_WIDTH, _HEIGHT = 640, 400
_MARGIN_LEFT, _MARGIN_RIGHT = 70, 20
_MARGIN_TOP, _MARGIN_BOTTOM = 40, 60


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError(f"log axis requires positive values, got {value}")
        return math.log10(value)
    return value


def _ticks(lo: float, hi: float, log: bool, count: int = 5) -> list[float]:
    """Tick positions in *transformed* coordinates."""
    if log:
        first, last = math.ceil(lo), math.floor(hi)
        if first > last:
            return [lo, hi]
        return [float(t) for t in range(first, last + 1)]
    if hi == lo:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def _format_tick(transformed: float, log: bool) -> str:
    actual = 10**transformed if log else transformed
    return f"{actual:.3g}"


def line_chart_svg(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render named (xs, ys) series as an SVG line chart string."""
    if not series:
        raise ValueError("at least one series is required")
    points: dict[str, list[tuple[float, float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys) or len(xs) == 0:
            raise ValueError(f"series {name!r} must be non-empty with equal lengths")
        points[name] = [
            (_transform(float(x), logx), _transform(float(y), logy))
            for x, y in zip(xs, ys)
        ]

    all_x = [x for pts in points.values() for x, __ in pts]
    all_y = [y for pts in points.values() for __, y in pts]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi == y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def px(x: float) -> float:
        return _MARGIN_LEFT + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_TOP + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
            f'font-size="15">{_escape(title)}</text>'
        )
    # Axes.
    axis_bottom = _MARGIN_TOP + plot_h
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_bottom}" '
        f'x2="{_MARGIN_LEFT + plot_w}" y2="{axis_bottom}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{axis_bottom}" stroke="black"/>'
    )
    for tick in _ticks(x_lo, x_hi, logx):
        x = px(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{axis_bottom}" x2="{x:.1f}" '
                     f'y2="{axis_bottom + 5}" stroke="black"/>')
        parts.append(f'<text x="{x:.1f}" y="{axis_bottom + 18}" '
                     f'text-anchor="middle">{_format_tick(tick, logx)}</text>')
    for tick in _ticks(y_lo, y_hi, logy):
        y = py(tick)
        parts.append(f'<line x1="{_MARGIN_LEFT - 5}" y1="{y:.1f}" '
                     f'x2="{_MARGIN_LEFT}" y2="{y:.1f}" stroke="black"/>')
        parts.append(f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_format_tick(tick, logy)}</text>')
    if x_label:
        parts.append(f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{_HEIGHT - 12}" '
                     f'text-anchor="middle">{_escape(x_label)}</text>')
    if y_label:
        mid_y = _MARGIN_TOP + plot_h / 2
        parts.append(f'<text x="16" y="{mid_y}" text-anchor="middle" '
                     f'transform="rotate(-90 16 {mid_y})">{_escape(y_label)}</text>')

    # Series polylines + markers + legend.
    for index, (name, pts) in enumerate(points.items()):
        colour = PALETTE[index % len(PALETTE)]
        ordered = sorted(pts)
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in ordered)
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{colour}" stroke-width="2"/>')
        for x, y in ordered:
            parts.append(f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3.5" '
                         f'fill="{colour}"/>')
        legend_y = _MARGIN_TOP + 8 + index * 18
        legend_x = _MARGIN_LEFT + plot_w - 130
        parts.append(f'<rect x="{legend_x}" y="{legend_y - 9}" width="12" '
                     f'height="12" fill="{colour}"/>')
        parts.append(f'<text x="{legend_x + 18}" y="{legend_y + 2}">'
                     f'{_escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart_svg(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    value_label: str = "",
    logscale: bool = False,
) -> str:
    """Render labelled values as an SVG horizontal bar chart string."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must be non-empty and equal length")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")

    if logscale:
        positive = [v for v in values if v > 0]
        floor = min(positive) if positive else 1.0
        lengths = [math.log10(max(v, floor) / floor) + 1.0 if v > 0 else 0.0
                   for v in values]
    else:
        lengths = list(values)
    peak = max(lengths) or 1.0

    bar_h, gap = 26, 10
    height = _MARGIN_TOP + len(labels) * (bar_h + gap) + 30
    label_w = 150
    plot_w = _WIDTH - label_w - 90

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
                     f'font-size="15">{_escape(title)}</text>')
    for index, (label, value, length) in enumerate(zip(labels, values, lengths)):
        y = _MARGIN_TOP + index * (bar_h + gap)
        width = max(1.0 if value > 0 else 0.0, length / peak * plot_w)
        colour = PALETTE[index % len(PALETTE)]
        parts.append(f'<text x="{label_w - 8}" y="{y + bar_h / 2 + 4}" '
                     f'text-anchor="end">{_escape(str(label))}</text>')
        parts.append(f'<rect x="{label_w}" y="{y}" width="{width:.1f}" '
                     f'height="{bar_h}" fill="{colour}"/>')
        parts.append(f'<text x="{label_w + width + 6:.1f}" y="{y + bar_h / 2 + 4}">'
                     f'{value:.4g}{_escape(value_label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path: Path | str, svg: str) -> Path:
    """Write an SVG string to disk (suffix ``.svg`` enforced)."""
    path = Path(path)
    if path.suffix != ".svg":
        path = path.with_suffix(".svg")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path
